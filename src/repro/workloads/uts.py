"""Unbalanced Tree Search workload (UTS, input ``-T8 -c 2 ST3``).

A real unbalanced-tree traversal inside the simulator: the tree shape is
a deterministic function of node ids (a splitmix64 hash plays the role
of UTS's SHA-1 node descriptors), so every run explores the identical
tree regardless of interleaving.  The root is wide (UTS's large initial
branching) and interior branching is slightly sub-critical, which makes
subtree sizes wildly imbalanced — the program's whole point.

Each thread owns a stack guarded by ``stackLock[i]``; idle threads steal
from the other stacks.  Stack critical sections are tiny, so — as the
paper observes in Fig. 8 — wait-time metrics claim the locks are
harmless, while some ``stackLock[i]`` still sits on ~5% of the critical
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["UTS", "splitmix64"]

_MASK = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """Deterministic 64-bit hash (node-id → pseudo-random stream)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


@dataclass
class _Stack:
    lock: Any
    items: list


@dataclass
class _State:
    stacks: list[_Stack]
    in_flight: int = 0
    nodes_done: int = 0


@register
class UTS(Workload):
    """Work-stealing unbalanced tree search."""

    name = "uts"

    def __init__(
        self,
        root_children: int = 240,
        branch_children: int = 3,
        branch_prob: float = 0.31,
        node_cost: float = 0.03,
        stack_op_cost: float = 0.004,
        tree_seed: int = 8,  # the paper's -T8
        idle_backoff: float = 0.01,
        max_nodes: int = 200_000,
    ):
        self.root_children = root_children
        self.branch_children = branch_children
        self.branch_prob = branch_prob
        self.node_cost = node_cost
        self.stack_op_cost = stack_op_cost
        self.tree_seed = tree_seed
        self.idle_backoff = idle_backoff
        self.max_nodes = max_nodes

    # -- tree shape --------------------------------------------------------

    def children_of(self, node_id: int) -> int:
        """Deterministic child count of a non-root node."""
        u = splitmix64(node_id ^ (self.tree_seed * 0x9E3779B97F4A7C15)) / 2**64
        return self.branch_children if u < self.branch_prob else 0

    def child_id(self, node_id: int, k: int) -> int:
        return splitmix64(node_id * 1_000_003 + k + 1) & _MASK

    # -- construction ----------------------------------------------------------

    def build(self, prog: Program, nthreads: int) -> None:
        stacks = [
            _Stack(lock=prog.mutex(f"stackLock[{i}]"), items=[])
            for i in range(nthreads)
        ]
        state = _State(stacks=stacks)
        # Root node expands immediately; its children seed stack 0.
        root = splitmix64(self.tree_seed)
        state.stacks[0].items.extend(
            self.child_id(root, k) for k in range(self.root_children)
        )
        state.in_flight = self.root_children
        prog.spawn_workers(nthreads, self._worker, state, nthreads)

    # -- stack helpers (each op holds that stack's lock) --------------------------

    def _pop(self, env, stack: _Stack):
        yield env.acquire(stack.lock)
        yield env.compute(self.stack_op_cost)
        node = stack.items.pop() if stack.items else None
        yield env.release(stack.lock)
        return node

    def _push_all(self, env, stack: _Stack, nodes: list):
        if not nodes:
            return
        yield env.acquire(stack.lock)
        yield env.compute(self.stack_op_cost * len(nodes))
        stack.items.extend(nodes)
        yield env.release(stack.lock)

    # -- thread body ----------------------------------------------------------------

    def _worker(self, env, wid: int, state: _State, nthreads: int):
        backoff = self.idle_backoff
        own = state.stacks[wid]
        while True:
            node = yield from self._pop(env, own)
            if node is None:
                node = yield from self._steal(env, wid, state, nthreads)
            if node is None:
                if state.in_flight == 0:
                    return
                yield env.yield_core()  # sched_yield: let ready threads run
                yield env.compute(backoff)
                backoff = min(backoff * 2, 0.5)
                continue
            backoff = self.idle_backoff
            yield env.compute(self.node_cost)  # "evaluate" the node
            nchildren = self.children_of(node)
            if state.nodes_done + state.in_flight >= self.max_nodes:
                nchildren = 0  # safety valve against runaway trees
            children = [self.child_id(node, k) for k in range(nchildren)]
            state.in_flight += len(children)
            yield from self._push_all(env, own, children)
            state.in_flight -= 1
            state.nodes_done += 1

    def _steal(self, env, wid: int, state: _State, nthreads: int):
        for offset in range(1, nthreads):
            victim = state.stacks[(wid + offset) % nthreads]
            if not victim.items:
                continue
            node = yield from self._pop(env, victim)
            if node is not None:
                return node
        return None
