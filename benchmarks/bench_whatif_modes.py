"""Ablation: the three counterfactual engines against each other.

For the same lock and trace, compare

* ``predict_shrink`` (software optimization: smaller critical sections),
* ``predict_no_contention`` (§VII hardware/runtime help: waiters stop
  serializing, critical-section work kept),
* trace **replay** with the shrink applied (ground truth for the first).

Shapes asserted: replay and the shrink prediction agree where the DAG
model is exact; contention elimination can never lose; on a saturated
lock, eliminating contention beats merely halving the critical section.
"""

import pytest

from repro.core.analyzer import analyze
from repro.replay import reconstruct
from repro.tables import format_table
from repro.workloads import MicroBenchmark, TSP

from conftest import run_once


@pytest.mark.benchmark(group="whatif-modes")
def test_three_counterfactuals(benchmark, show):
    def experiment():
        rows = []
        checks = []

        # Micro-benchmark, L2.
        base = MicroBenchmark().run(nthreads=4, seed=0)
        analysis = analyze(base.trace)
        shrink = analysis.what_if("L2", factor=0.5)
        nc = analysis.what_if_no_contention("L2")
        replayed = reconstruct(base.trace).run(shrink_lock="L2", factor=0.5)
        replay_speedup = base.completion_time / replayed.completion_time
        rows.append(["micro / L2", f"{shrink.predicted_speedup:.3f}",
                     f"{nc.predicted_speedup:.3f}", f"{replay_speedup:.3f}"])
        checks.append(abs(shrink.predicted_speedup - replay_speedup) < 1e-9)
        checks.append(nc.predicted_speedup >= 1.0)

        # TSP at 16 threads: Qlock is saturated.
        base = TSP().run(nthreads=16, seed=0)
        analysis = analyze(base.trace)
        shrink = analysis.what_if("Q.qlock", factor=0.5)
        nc = analysis.what_if_no_contention("Q.qlock")
        replayed = reconstruct(base.trace).run(shrink_lock="Q.qlock", factor=0.5)
        replay_speedup = base.completion_time / replayed.completion_time
        rows.append(["tsp @16 / Q.qlock", f"{shrink.predicted_speedup:.3f}",
                     f"{nc.predicted_speedup:.3f}", f"{replay_speedup:.3f}"])
        # On a saturated lock, removing the serialization beats halving it.
        checks.append(nc.predicted_speedup > shrink.predicted_speedup)
        # The frozen-order shrink prediction brackets the replayed truth.
        checks.append(0.5 < shrink.predicted_speedup / replay_speedup < 2.0)
        return rows, checks

    rows, checks = run_once(benchmark, experiment)
    show(format_table(
        ["Scenario", "Shrink x0.5 (DAG)", "No contention (DAG)",
         "Shrink x0.5 (replay truth)"],
        rows,
        title="[whatif-modes] shrink vs contention-elimination vs replay",
    ))
    assert all(checks)
