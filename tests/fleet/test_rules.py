"""Alert rules: parsing, linting rejections, evaluation."""

from __future__ import annotations

import pytest

from tests.fleet.fleethelpers import seeded_aggregator, synth_report

from repro.errors import ReproError, RuleError
from repro.fleet import (
    evaluate_rules,
    lint_rules,
    load_rules,
    parse_rules,
    render_alerts,
)

GOOD = """
[[rule]]
name = "hot-lock"
expr = "cp_fraction > 0.35 and runs >= 2"
severity = "page"
description = "one lock owns over a third of the critical path"
labels = { team = "perf" }

[[rule]]
name = "ranking-shift"
expr = "topk_churn >= 0.25"
workload = "radiosity"
"""


def test_parse_good_spec():
    rules = parse_rules(GOOD)
    assert [r.name for r in rules] == ["hot-lock", "ranking-shift"]
    hot, shift = rules
    assert hot.scope == "cluster"
    assert hot.severity == "page"
    assert hot.expr == "cp_fraction > 0.35 and runs >= 2"
    assert hot.labels == {"team": "perf"}
    assert shift.scope == "workload"
    assert shift.workload == "radiosity"
    assert shift.severity == "warn"  # default


def test_rule_error_is_a_repro_error():
    with pytest.raises(ReproError):
        parse_rules("nope = 1")


@pytest.mark.parametrize(
    ("spec", "message"),
    [
        ("", "no \\[\\[rule\\]\\] entries"),
        ("[server]\nport = 1", "unknown top-level table"),
        ("[[rule]]\nexpr = 'runs > 1'", "non-empty string 'name'"),
        ("[[rule]]\nname = 'x'", "needs a string 'expr'"),
        ("[[rule]]\nname = 'x'\nexpr = 'runs > 1'\nfrobnicate = 1", "unknown field"),
        (
            "[[rule]]\nname = 'x'\nexpr = 'runs > 1'\nseverity = 'fatal'",
            "severity 'fatal'",
        ),
        ("[[rule]]\nname = 'x'\nexpr = 'bogus_metric > 1'", "unknown metric"),
        ("[[rule]]\nname = 'x'\nexpr = 'runs >> 1'", "bad clause"),
        ("[[rule]]\nname = 'x'\nexpr = ''", "empty expr"),
        (
            "[[rule]]\nname = 'x'\nexpr = 'cp_fraction > 0.2 and topk_churn > 0.1'",
            "mixes cluster-scope",
        ),
        ("[[rule]]\nname = 'x'\nexpr = 'cp_fraction > 2'", "never exceeds 1"),
        ("[[rule]]\nname = 'x'\nexpr = 'topk_churn < 0'", "never drops below 0"),
        (
            "[[rule]]\nname = 'x'\nexpr = 'runs > 5 and runs < 3'",
            "unsatisfiable",
        ),
        (
            "[[rule]]\nname = 'x'\nexpr = 'runs > 3 and runs <= 3'",
            "unsatisfiable",
        ),
        ("[[rule]]\nname = 'x'\nexpr = 'cont_prob == 1.5'", "can never hold"),
        (
            "[[rule]]\nname = 'a'\nexpr = 'runs > 1'\n"
            "[[rule]]\nname = 'a'\nexpr = 'runs > 2'",
            "duplicate rule name",
        ),
        ("[[rule]\nname = oops", "not valid TOML"),
    ],
)
def test_lint_rejections(spec, message):
    with pytest.raises(RuleError, match=message):
        parse_rules(spec)


def test_boundary_equalities_are_satisfiable():
    # == at a range edge and closed-interval points are fine.
    rules = parse_rules(
        "[[rule]]\nname = 'a'\nexpr = 'cp_fraction == 1'\n"
        "[[rule]]\nname = 'b'\nexpr = 'runs >= 3 and runs <= 3'\n"
    )
    assert len(rules) == 2


def test_load_rules_prefixes_path(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text("[[rule]]\nname = 'x'\nexpr = 'cp_fraction > 2'\n")
    with pytest.raises(RuleError, match="bad.toml"):
        load_rules(bad)
    with pytest.raises(RuleError, match="cannot read"):
        load_rules(tmp_path / "missing.toml")


def test_lint_rules_collects_problems(tmp_path):
    good = tmp_path / "good.toml"
    good.write_text(GOOD)
    bad = tmp_path / "bad.toml"
    bad.write_text("[[rule]]\nname = 'x'\nexpr = 'nope > 1'\n")
    assert lint_rules([good]) == []
    problems = lint_rules([good, bad])
    assert len(problems) == 1
    assert "unknown metric" in problems[0]


def test_evaluate_rules_fires_on_matching_rows(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=4)
    rules = parse_rules(
        "[[rule]]\nname = 'hot'\nexpr = 'cp_fraction > 0.5'\nseverity = 'page'\n"
        "[[rule]]\nname = 'cold'\nexpr = 'cp_fraction > 0.99'\n"
        "[[rule]]\nname = 'stable'\nexpr = 'topk_churn <= 0.5 and runs >= 2'\n"
    )
    alerts = evaluate_rules(rules, agg)
    assert [a["rule"] for a in alerts] == ["hot", "stable"]  # page sorts first
    hot = alerts[0]
    assert hot["site"] == "L2"
    assert hot["values"]["cp_fraction"] > 0.5
    assert alerts[1]["scope"] == "workload"


def test_evaluate_rules_workload_filter(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=2, workload="ocean")
    rules = parse_rules(
        "[[rule]]\nname = 'r'\nexpr = 'cp_fraction > 0.1'\nworkload = 'radiosity'\n"
    )
    assert evaluate_rules(rules, agg) == []


def test_evaluate_rules_sees_regression_delta(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=4)
    agg.observe(
        synth_report({"L2": 0.2, "L1": 0.8}), digest="shift", workload="micro"
    )
    rules = parse_rules(
        "[[rule]]\nname = 'jumped'\nexpr = 'cp_fraction_delta > 0.3'\n"
        "[[rule]]\nname = 'regressed'\nexpr = 'regressions >= 1'\n"
    )
    fired = {a["rule"] for a in evaluate_rules(rules, agg)}
    assert fired == {"jumped", "regressed"}


def test_render_alerts_text(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=3)
    rules = parse_rules("[[rule]]\nname = 'hot'\nexpr = 'cp_fraction > 0.5'\n")
    text = render_alerts(evaluate_rules(rules, agg), len(rules))
    assert "1 firing" in text and "hot" in text and "L2" in text
    assert render_alerts([], 2) == "alert rules: 2 rule(s) evaluated, 0 firing"
