"""Trace-driven replay: reconstruct and re-run a traced execution.

The what-if engine (:mod:`repro.core.whatif`) predicts speedups on the
event DAG with the observed lock-acquisition order frozen.  Replay goes
further: it rebuilds each thread's *program* (compute blocks between
synchronization operations) from the trace and re-executes it on the
simulator, letting contention re-resolve — so "shrink this lock's
critical sections by 2x" produces ground truth including handoff-order
changes, not an estimate.

Reconstruction rules (per thread, events in order):

* the gap before a non-wake event is a compute block (gaps that end a
  blocked interval — contended OBTAIN, BARRIER_DEPART, COND_WAKE,
  JOIN_END — are waiting and are *not* replayed as compute);
* ACQUIRE/RELEASE map back to the primitive operations (mutex, semaphore
  or rwlock by object kind; rwlock mode from the event ``arg``);
* COND_BLOCK maps to ``cond_wait`` (the mutex is identified from the
  atomically-following RELEASE) and the instrumentation's reacquire
  events are consumed;
* THREAD_CREATE/JOIN_BEGIN map to spawn/join with remapped handles.

Supported modification: scaling the execution time spent while holding a
chosen lock (``shrink_lock``/``factor``), the paper's optimization move.

Limitations: barrier party counts must be constant across generations;
condition-variable programs replay correctly only when the rebuilt
timing preserves signal/wait pairing (true for deterministic traces from
this simulator; hand-edited traces may deadlock in replay); and
simultaneous acquisitions whose original order was decided by
zero-duration scheduling (not by timestamps) may re-resolve their race,
since zero-length compute steps leave no trace events to replay.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.core.segments import build_timelines
from repro.core.wakers import resolve_wakers
from repro.errors import AnalysisError
from repro.sim.program import Program
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import Trace

__all__ = ["ReplayProgram", "reconstruct"]

# Ops the reconstructor emits: (verb, payload...)
_COMPUTE = "compute"
_ACQUIRE = "acquire"
_RELEASE = "release"
_BARRIER = "barrier"
_COND_WAIT = "cond_wait"
_COND_SIGNAL = "cond_signal"
_COND_BROADCAST = "cond_broadcast"
_SPAWN = "spawn"
_JOIN = "join"


@dataclass
class _ThreadScript:
    tid: int
    name: str
    ops: list[tuple] = field(default_factory=list)
    root: bool = True


@dataclass
class ReplayProgram:
    """A reconstructed program, ready to run (possibly modified)."""

    trace: Trace
    scripts: dict[int, _ThreadScript]

    def build(
        self,
        shrink_lock: int | str | None = None,
        factor: float = 1.0,
        cores: int | None = None,
        seed: int = 0,
        protocol: Any = None,
        scheduler: Any = None,
        priorities: dict[int | str, int] | None = None,
        preserve_name: bool = False,
    ) -> Program:
        """Materialize a :class:`Program` from the scripts.

        ``shrink_lock``/``factor`` scale compute blocks executed while
        holding the given lock (0 removes them, 0.5 halves them).

        ``protocol``/``scheduler`` re-run the reconstruction under an
        alternative lock protocol or ready-queue policy (names or
        instances; ``protocol="recorded"`` builds the identity protocol
        from this trace, pinning grants to the recorded order).
        ``priorities`` maps original tids or thread names to base
        priorities for the priority-aware policies.  ``preserve_name``
        keeps the original trace name instead of the ``replay:`` prefix,
        so identity replays render byte-identical reports.
        """
        if factor < 0:
            raise AnalysisError(f"factor must be >= 0, got {factor}")
        shrink_obj = None
        if shrink_lock is not None:
            from repro.core.whatif import resolve_lock

            shrink_obj = resolve_lock(self.trace, shrink_lock)

        recorded = isinstance(protocol, str) and protocol == "recorded"
        orig_name = self.trace.meta.get("name", "")
        prog = Program(
            cores=cores,
            seed=seed,
            name=orig_name if preserve_name else f"replay:{orig_name}",
            protocol=None if recorded else protocol,
            scheduler=scheduler,
        )
        objects: dict[int, Any] = {}
        for obj, info in self.trace.objects.items():
            if info.kind == ObjectKind.MUTEX:
                objects[obj] = prog.mutex(info.name)
            elif info.kind == ObjectKind.SEMAPHORE:
                objects[obj] = prog.semaphore(_initial_sem_value(self.trace, obj), info.name)
            elif info.kind == ObjectKind.RWLOCK:
                objects[obj] = prog.rwlock(info.name)
            elif info.kind == ObjectKind.CONDITION:
                objects[obj] = prog.condition(info.name)
            elif info.kind == ObjectKind.BARRIER:
                objects[obj] = prog.barrier(
                    _barrier_parties(self.trace, obj), info.name
                )

        if recorded:
            from repro.sim.protocols import RecordedProtocol

            obj_map = {old: new.obj for old, new in objects.items()}
            prog.set_protocol(RecordedProtocol.from_trace(self.trace, obj_map))

        priorities = priorities or {}

        def prio_of(script: _ThreadScript) -> int:
            if script.tid in priorities:
                return priorities[script.tid]
            return priorities.get(script.name, 0)

        handles: dict[int, Any] = {}

        def body(env, script: _ThreadScript):
            env.replay_tid = script.tid  # lets the recorded protocol map grants
            held: set[int] = set()
            for op in script.ops:
                verb = op[0]
                if verb == _COMPUTE:
                    duration = op[1]
                    if shrink_obj is not None and shrink_obj in held:
                        duration *= factor
                    yield env.compute(duration)
                elif verb == _ACQUIRE:
                    obj, mode = op[1], op[2]
                    target = objects[obj]
                    kind = self.trace.objects[obj].kind
                    if kind == ObjectKind.MUTEX:
                        yield env.acquire(target)
                    elif kind == ObjectKind.SEMAPHORE:
                        yield env.sem_acquire(target)
                    else:  # rwlock
                        if mode:
                            yield env.rw_acquire_write(target)
                        else:
                            yield env.rw_acquire_read(target)
                    held.add(obj)
                elif verb == _RELEASE:
                    obj, mode = op[1], op[2]
                    target = objects[obj]
                    kind = self.trace.objects[obj].kind
                    if kind == ObjectKind.MUTEX:
                        yield env.release(target)
                    elif kind == ObjectKind.SEMAPHORE:
                        yield env.sem_release(target)
                    else:
                        if mode:
                            yield env.rw_release_write(target)
                        else:
                            yield env.rw_release_read(target)
                    held.discard(obj)
                elif verb == _BARRIER:
                    yield env.barrier_wait(objects[op[1]])
                elif verb == _COND_WAIT:
                    cv, mutex = op[1], op[2]
                    held.discard(mutex)
                    yield env.cond_wait(objects[cv], objects[mutex])
                    held.add(mutex)
                elif verb == _COND_SIGNAL:
                    yield env.cond_signal(objects[op[1]])
                elif verb == _COND_BROADCAST:
                    yield env.cond_broadcast(objects[op[1]])
                elif verb == _SPAWN:
                    child_tid = op[1]
                    child = self.scripts[child_tid]
                    handle = yield env.spawn(
                        body, child, name=child.name, priority=prio_of(child)
                    )
                    handles[child_tid] = handle
                elif verb == _JOIN:
                    yield env.join(handles[op[1]])

        for tid, script in sorted(self.scripts.items()):
            if script.root:
                prog.spawn(body, script, name=script.name, priority=prio_of(script))
        return prog

    def run(self, **kwargs) -> "Any":
        """Shortcut: build and execute."""
        return self.build(**kwargs).run()


def reconstruct(trace: Trace) -> ReplayProgram:
    """Rebuild per-thread scripts from a trace (see module docstring)."""
    wakers = resolve_wakers(trace)
    timelines = build_timelines(trace, wakers)
    wake_seqs: set[int] = {
        w.wake_seq for tl in timelines.values() for w in tl.waits
    }
    per_thread: dict[int, list[Event]] = defaultdict(list)
    for ev in trace:
        per_thread[ev.tid].append(ev)

    scripts: dict[int, _ThreadScript] = {}
    for tid, events in sorted(per_thread.items()):
        scripts[tid] = _reconstruct_thread(trace, tid, events, wake_seqs)
    for child_tid in wakers.creations:
        if child_tid in scripts:
            scripts[child_tid].root = False
    return ReplayProgram(trace=trace, scripts=scripts)


def _reconstruct_thread(
    trace: Trace, tid: int, events: list[Event], wake_seqs: set[int]
) -> _ThreadScript:
    script = _ThreadScript(tid=tid, name=trace.thread_name(tid))
    ops = script.ops
    prev_time: float | None = None
    skip_reacquire_obj: int | None = None  # mutex reacquired inside cond_wait

    def emit_gap(ev: Event, is_wait_end: bool) -> None:
        nonlocal prev_time
        if prev_time is not None and not is_wait_end:
            gap = ev.time - prev_time
            if gap > 0:
                ops.append((_COMPUTE, gap))
        prev_time = ev.time

    i = 0
    while i < len(events):
        ev = events[i]
        et = ev.etype
        kind = trace.objects[ev.obj].kind if ev.obj in trace.objects else None
        if et == EventType.THREAD_START:
            prev_time = ev.time
        elif et == EventType.ACQUIRE:
            if ev.obj == skip_reacquire_obj:
                skip_reacquire_obj = None
                # Swallow the matching OBTAIN too.
                if i + 1 < len(events) and events[i + 1].etype == EventType.OBTAIN:
                    i += 1
                    prev_time = events[i].time
            else:
                emit_gap(ev, is_wait_end=False)
                ops.append((_ACQUIRE, ev.obj, ev.arg))
        elif et == EventType.OBTAIN:
            # The wait (if any) is re-created by the simulator.
            prev_time = ev.time
        elif et == EventType.RELEASE:
            # A RELEASE immediately after COND_BLOCK was synthetic (the
            # cond_wait releases internally) — detected below, so a plain
            # RELEASE here is a real one.
            emit_gap(ev, is_wait_end=False)
            ops.append((_RELEASE, ev.obj, ev.arg))
        elif et == EventType.BARRIER_ARRIVE:
            emit_gap(ev, is_wait_end=False)
            ops.append((_BARRIER, ev.obj))
        elif et == EventType.BARRIER_DEPART:
            prev_time = ev.time
        elif et == EventType.COND_BLOCK:
            emit_gap(ev, is_wait_end=False)
            # The atomically-following RELEASE identifies the mutex.
            if i + 1 >= len(events) or events[i + 1].etype != EventType.RELEASE:
                raise AnalysisError(
                    f"seq {ev.seq}: COND_BLOCK not followed by the mutex RELEASE; "
                    "cannot reconstruct cond_wait"
                )
            mutex_obj = events[i + 1].obj
            ops.append((_COND_WAIT, ev.obj, mutex_obj))
            skip_reacquire_obj = mutex_obj
            i += 1  # consume the RELEASE
            prev_time = events[i].time
        elif et == EventType.COND_WAKE:
            prev_time = ev.time
        elif et == EventType.COND_SIGNAL:
            emit_gap(ev, is_wait_end=False)
            ops.append((_COND_SIGNAL, ev.obj))
        elif et == EventType.COND_BROADCAST:
            emit_gap(ev, is_wait_end=False)
            ops.append((_COND_BROADCAST, ev.obj))
        elif et == EventType.THREAD_CREATE:
            emit_gap(ev, is_wait_end=False)
            ops.append((_SPAWN, ev.arg))
        elif et == EventType.JOIN_BEGIN:
            emit_gap(ev, is_wait_end=False)
            ops.append((_JOIN, ev.arg))
        elif et == EventType.JOIN_END:
            prev_time = ev.time
        elif et == EventType.THREAD_EXIT:
            emit_gap(ev, is_wait_end=ev.seq in wake_seqs)
        i += 1
    return script


def _barrier_parties(trace: Trace, obj: int) -> int:
    """Cohort size of a barrier (must be constant across generations)."""
    sizes: dict[int, int] = defaultdict(int)
    for ev in trace:
        if ev.obj == obj and ev.etype == EventType.BARRIER_ARRIVE:
            sizes[ev.arg] += 1
    if not sizes:
        return 1
    distinct = set(sizes.values())
    if len(distinct) > 1:
        raise AnalysisError(
            f"barrier {trace.object_name(obj)} has varying cohort sizes "
            f"{sorted(distinct)}; replay is not supported"
        )
    return distinct.pop()


def _initial_sem_value(trace: Trace, obj: int) -> int:
    """Lower bound on a semaphore's initial value from its event history."""
    value = 0
    low = 0
    for ev in trace:
        if ev.obj != obj:
            continue
        if ev.etype == EventType.OBTAIN:
            value -= 1
            low = min(low, value)
        elif ev.etype == EventType.RELEASE:
            value += 1
    return -low
