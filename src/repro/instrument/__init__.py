"""Instrumentation for *real* Python threads.

The analog of the paper's LD_PRELOAD module (Fig. 4): traced wrappers
around :mod:`threading` primitives record the same event schema the
simulator emits, so the analysis module works unchanged on real runs.

Two deliberate deviations from the paper's C implementation, both forced
by observability rather than taste, are documented in DESIGN.md:

* release/signal/arrival timestamps are taken *before* the underlying
  call (the paper records after the unlock), which guarantees the waker's
  event precedes the wake in the merged trace and keeps the backward
  walk's termination invariant on real traces;
* ``Condition.wait`` folds the mutex reacquisition into the condition
  wait (the reacquire happens inside ``threading.Condition``, out of our
  sight).

Note Python's GIL serializes bytecode execution, so *scalability*
numbers from real threads are not meaningful — use the simulator for
the paper's experiments; use this package to profile real applications'
synchronization structure.

Example::

    from repro.instrument import ProfilingSession

    with ProfilingSession(name="myapp") as session:
        lock = session.lock("shared")
        threads = [session.thread(worker, args=(lock,)) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    report = analyze(session.trace())
"""

from repro.instrument.autopatch import PatchedThread, patch_threading
from repro.instrument.clock import Clock, MonotonicClock, VirtualClock
from repro.instrument.locks import TracedLock, TracedRLock, TracedSemaphore
from repro.instrument.barrier import TracedBarrier
from repro.instrument.condition import TracedCondition
from repro.instrument.session import ProfilingSession
from repro.instrument.threads import TracedThread

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "ProfilingSession",
    "TracedLock",
    "TracedRLock",
    "TracedSemaphore",
    "patch_threading",
    "PatchedThread",
    "TracedBarrier",
    "TracedCondition",
    "TracedThread",
]
