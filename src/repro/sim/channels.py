"""Bounded channels (producer/consumer queues) built on traced primitives.

A classic condition-variable construction: one mutex plus ``not_empty``
and ``not_full`` condition variables.  Because every operation goes
through the traced primitives, critical lock analysis sees channel-based
pipelines with zero extra support — the channel's mutex shows up as the
critical lock when a pipeline stage bottlenecks.

Use with ``yield from``::

    ch = Channel(prog, capacity=4, name="stage1")
    item = yield from ch.get(env)
    yield from ch.put(env, item)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.errors import WorkloadError
from repro.sim import syscalls as sc
from repro.sim.program import Program

__all__ = ["Channel", "CLOSED"]

#: Sentinel yielded by :meth:`Channel.get` once the channel is drained.
CLOSED = object()


class Channel:
    """A bounded FIFO channel with blocking put/get and close semantics."""

    def __init__(self, prog: Program, capacity: int, name: str = "chan",
                 op_cost: float = 0.0):
        if capacity < 1:
            raise WorkloadError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.op_cost = op_cost
        self.lock = prog.mutex(f"{name}.lock")
        self.not_empty = prog.condition(f"{name}.not_empty")
        self.not_full = prog.condition(f"{name}.not_full")
        self._items: deque[Any] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    def put(self, env, item: Any) -> Generator[sc.Request, Any, None]:
        """Block until there is room, then enqueue ``item``."""
        yield env.acquire(self.lock)
        while len(self._items) >= self.capacity:
            yield env.cond_wait(self.not_full, self.lock)
        if self._closed:
            yield env.release(self.lock)
            raise WorkloadError(f"put on closed channel {self.name!r}")
        if self.op_cost:
            yield env.compute(self.op_cost)
        self._items.append(item)
        yield env.cond_signal(self.not_empty)
        yield env.release(self.lock)

    def get(self, env) -> Generator[sc.Request, Any, Any]:
        """Block for an item; returns :data:`CLOSED` once drained+closed."""
        yield env.acquire(self.lock)
        while not self._items and not self._closed:
            yield env.cond_wait(self.not_empty, self.lock)
        if self._items:
            if self.op_cost:
                yield env.compute(self.op_cost)
            item = self._items.popleft()
            yield env.cond_signal(self.not_full)
            yield env.release(self.lock)
            return item
        yield env.release(self.lock)
        return CLOSED

    def close(self, env) -> Generator[sc.Request, Any, None]:
        """Mark the channel closed and wake all blocked getters."""
        yield env.acquire(self.lock)
        self._closed = True
        yield env.cond_broadcast(self.not_empty)
        yield env.release(self.lock)
