"""Unit tests for the event model."""

from repro.trace.events import NO_OBJECT, Event, EventType, ObjectKind


class TestEventType:
    def test_blocking_entries(self):
        assert EventType.ACQUIRE.is_blocking_entry
        assert EventType.BARRIER_ARRIVE.is_blocking_entry
        assert EventType.COND_BLOCK.is_blocking_entry
        assert EventType.JOIN_BEGIN.is_blocking_entry

    def test_non_blocking_entries(self):
        assert not EventType.RELEASE.is_blocking_entry
        assert not EventType.THREAD_START.is_blocking_entry
        assert not EventType.COND_SIGNAL.is_blocking_entry

    def test_wakeups(self):
        assert EventType.OBTAIN.is_wakeup
        assert EventType.BARRIER_DEPART.is_wakeup
        assert EventType.COND_WAKE.is_wakeup
        assert EventType.JOIN_END.is_wakeup
        assert not EventType.ACQUIRE.is_wakeup

    def test_values_stable(self):
        # The binary format encodes these; they must never silently change.
        assert int(EventType.ACQUIRE) == 1
        assert int(EventType.OBTAIN) == 2
        assert int(EventType.RELEASE) == 3
        assert int(EventType.JOIN_END) == 14


class TestObjectKind:
    def test_lock_like(self):
        assert ObjectKind.MUTEX.is_lock_like
        assert ObjectKind.SEMAPHORE.is_lock_like
        assert ObjectKind.RWLOCK.is_lock_like
        assert not ObjectKind.BARRIER.is_lock_like
        assert not ObjectKind.CONDITION.is_lock_like
        assert not ObjectKind.NONE.is_lock_like


class TestEvent:
    def test_defaults(self):
        ev = Event(seq=0, time=1.5, tid=3, etype=EventType.THREAD_START)
        assert ev.obj == NO_OBJECT
        assert ev.arg == 0

    def test_frozen(self):
        ev = Event(seq=0, time=0.0, tid=0, etype=EventType.ACQUIRE, obj=1)
        try:
            ev.time = 2.0
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_str_contains_fields(self):
        ev = Event(seq=7, time=1.25, tid=2, etype=EventType.OBTAIN, obj=4, arg=1)
        s = str(ev)
        assert "OBTAIN" in s and "T2" in s and "obj=4" in s
