"""Analysis data model: waits, hold intervals, timelines, path pieces."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["WaitKind", "Wait", "HoldInterval", "ThreadTimeline", "CPPiece", "Junction"]


class WaitKind(enum.Enum):
    """What kind of synchronization a blocked interval waited on."""

    LOCK = "lock"  # mutex / semaphore / rwlock
    BARRIER = "barrier"
    CONDITION = "condition"
    JOIN = "join"


@dataclass(frozen=True, slots=True)
class Wait:
    """One blocked interval of one thread.

    ``waker_*`` identify the event that ended the wait: the matching lock
    RELEASE, the last BARRIER_ARRIVE of the cohort, the COND_SIGNAL /
    COND_BROADCAST, or the joinee's THREAD_EXIT.  ``wake_seq`` is the
    sequence number of this thread's own wake event (OBTAIN,
    BARRIER_DEPART, COND_WAKE, JOIN_END); the backward walk cursors on it.
    """

    tid: int
    kind: WaitKind
    obj: int
    start: float  # when the thread started blocking
    end: float  # when the thread was woken
    wake_seq: int  # seq of this thread's wake event
    waker_tid: int
    waker_time: float
    waker_seq: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class HoldInterval:
    """One critical section: a lock held from ``start`` to ``end``."""

    tid: int
    obj: int
    start: float  # OBTAIN time
    end: float  # RELEASE time
    contended: bool  # whether the acquisition blocked
    acquire_time: float  # ACQUIRE time (start - acquire_time is the wait)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wait(self) -> float:
        return self.start - self.acquire_time


@dataclass(slots=True)
class ThreadTimeline:
    """Everything the analysis needs to know about one thread.

    ``waits`` and each ``holds[obj]`` list are in increasing time order.
    """

    tid: int
    name: str
    start: float
    end: float
    creator_tid: int | None = None  # None for root threads
    create_time: float = 0.0
    create_seq: int = -1  # seq of the creator's THREAD_CREATE event
    waits: list[Wait] = field(default_factory=list)
    holds: dict[int, list[HoldInterval]] = field(default_factory=dict)

    @property
    def lifetime(self) -> float:
        """Wall time between the thread's first and last event."""
        return self.end - self.start

    @property
    def total_wait(self) -> float:
        return sum(w.duration for w in self.waits)

    def wait_time_by_kind(self) -> dict[WaitKind, float]:
        """Total blocked time per synchronization kind."""
        out: dict[WaitKind, float] = {}
        for w in self.waits:
            out[w.kind] = out.get(w.kind, 0.0) + w.duration
        return out

    def hold_time(self, obj: int) -> float:
        """Total time this thread held lock ``obj``."""
        return sum(h.duration for h in self.holds.get(obj, ()))


@dataclass(frozen=True, slots=True)
class CPPiece:
    """One contiguous execution span on the critical path.

    Pieces tile the whole execution: consecutive pieces share boundary
    times, the first starts at the trace start and the last ends at the
    trace end, so their durations sum to the end-to-end completion time.
    """

    tid: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Junction:
    """A point where the critical path crosses from one thread to another.

    ``kind``/``obj`` describe the synchronization dependency at the
    crossing; ``obj`` is ``-1`` for thread-creation junctions.
    """

    time: float
    from_tid: int  # the waker (earlier on the path)
    to_tid: int  # the woken thread (later on the path)
    kind: WaitKind | None  # None for thread creation
    obj: int
