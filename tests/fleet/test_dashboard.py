"""Dashboard rendering: self-contained HTML + SVG sparklines."""

from __future__ import annotations

from tests.fleet.fleethelpers import seeded_aggregator, synth_report

from repro.fleet import (
    evaluate_rules,
    parse_rules,
    render_dashboard,
    render_sparkline,
)


def test_sparkline_svg():
    svg = render_sparkline([0.1, 0.5, 0.9])
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "polyline" in svg and "circle" in svg
    assert render_sparkline([]) == ""
    assert "circle" in render_sparkline([0.4])  # single point still marks


def test_dashboard_lists_clusters_and_flags(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=4)
    agg.observe(
        synth_report({"L2": 0.2, "L1": 0.8}), digest="shift", workload="micro"
    )
    rules = parse_rules(
        "[[rule]]\nname = 'hot'\nexpr = 'cp_fraction > 0.5'\nseverity = 'page'\n"
    )
    summary, regressions = agg.summary(), agg.regressions()
    alerts = evaluate_rules(rules, agg)
    html = render_dashboard(summary, regressions, alerts, len(rules))
    assert html.startswith("<!DOCTYPE html>")
    assert "micro" in html and "L1" in html and "L2" in html
    assert "cp_shift" in html  # regression table
    assert "hot" in html and "alert-page" in html  # alert severity styling
    assert "<svg" in html  # sparklines
    assert "EventSource('/fleet/events')" in html  # live refresh hook


def test_dashboard_renders_empty_state(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=0)
    html = render_dashboard(agg.summary(), agg.regressions(), [], 0)
    assert "no observations yet" in html
    assert "EventSource" in html
