"""Content-addressed result cache: bounded LRU in memory, spill to disk.

Keys are the job's :meth:`~repro.service.jobs.JobSpec.cache_key` — a
sha256 over (trace digests, analysis kind, canonical params) — so a hit
is only possible for byte-identical questions about content-identical
traces.  Values are finished report dicts (JSON-serializable by
construction), which is what makes the spill tier trivial: evicted
entries are written as ``<key>.json`` and promoted back on access.

The spill tier is a :class:`~repro.service.backend.StorageBackend`.
``disk_dir`` keeps the original local layout; passing ``backend=``
points the tier at shared object storage instead, and flips on
write-through (every ``put`` persists immediately), so a restarted
instance — or a *different* instance sharing the namespace — serves
results computed before the restart.  Trim order is maintained
incrementally (an insertion-ordered key set, refreshed on promotion),
so eviction is O(1) amortized instead of stat+sort over the whole tier
on every spill.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.service.backend import BackendMissing, LocalDiskBackend, StorageBackend

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU of analysis results with an optional spill tier."""

    def __init__(
        self,
        capacity: int = 256,
        disk_dir: str | Path | None = None,
        disk_capacity: int = 4096,
        backend: StorageBackend | None = None,
        write_through: bool | None = None,
    ):
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.disk_capacity = disk_capacity
        if backend is not None:
            self._tier: StorageBackend | None = backend
        elif disk_dir is not None:
            self._tier = LocalDiskBackend(disk_dir)
        else:
            self._tier = None
        # Shared/object tiers default to write-through: results must
        # survive this process and be visible to ring peers.  The local
        # tier keeps the original spill-on-evict behavior.
        self.write_through = (backend is not None) if write_through is None else write_through
        self._mem: OrderedDict[str, dict] = OrderedDict()
        # Spill order, oldest first; maintained incrementally so evicting
        # into a 4096-entry tier never stats and sorts the whole tier.
        self._tier_keys: OrderedDict[str, None] = OrderedDict()
        if self._tier is not None:
            for key in self._tier.keys_oldest_first():
                if key.endswith(".json"):
                    self._tier_keys[key[: -len(".json")]] = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        """Look a key up; promotes hits to most-recently-used."""
        with self._lock:
            value = self._mem.get(key)
            if value is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return value
            value = self._tier_load(key)
            if value is not None:
                self.hits += 1
                self.disk_hits += 1
                self._insert(key, value)  # promote back into memory
                return value
            self.misses += 1
            return None

    def put(self, key: str, value: dict[str, Any]) -> None:
        with self._lock:
            self._insert(key, value)
            if self.write_through:
                self._tier_store(key, value)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
            return self._tier is not None and self._tier.exists(f"{key}.json")

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._mem),
                "capacity": self.capacity,
                "disk_entries": len(self._tier_keys),
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "write_through": self.write_through,
                "backend": self._tier.name if self._tier is not None else None,
            }

    # -- internals (callers hold self._lock) --------------------------------

    def _insert(self, key: str, value: dict) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            old_key, old_value = self._mem.popitem(last=False)
            self.evictions += 1
            self._tier_store(old_key, old_value)

    def _tier_load(self, key: str) -> dict | None:
        if self._tier is None:
            return None
        try:
            return json.loads(self._tier.get(f"{key}.json").decode("utf-8"))
        except (BackendMissing, OSError, UnicodeDecodeError, json.JSONDecodeError):
            # A torn write (crash mid-spill) must read as a miss, not an
            # error; a peer may also have trimmed the key under us.
            self._tier_keys.pop(key, None)
            return None

    def _tier_store(self, key: str, value: dict) -> None:
        if self._tier is None:
            return
        self._tier.put(f"{key}.json", json.dumps(value).encode("utf-8"))
        # Refresh this key's position, then trim oldest-first — O(1)
        # amortized per spill against the incremental order.
        self._tier_keys.pop(key, None)
        self._tier_keys[key] = None
        while len(self._tier_keys) > self.disk_capacity:
            victim, _ = self._tier_keys.popitem(last=False)
            self._tier.delete(f"{victim}.json")
