"""Waker resolution rules on hand-built traces."""

import pytest

from repro.core.wakers import resolve_wakers
from repro.errors import WakerResolutionError
from repro.trace.builder import TraceBuilder
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace


def test_lock_waker_is_previous_releaser(handoff_trace):
    table = resolve_wakers(handoff_trace)
    # T1's contended OBTAIN (seq of the OBTAIN event at t=4).
    wake_seq = next(
        ev.seq for ev in handoff_trace
        if ev.etype == EventType.OBTAIN and ev.arg == 1
    )
    info = table.wakes[wake_seq]
    assert info.waker_tid == 0
    assert info.waker_time == 4.0


def test_barrier_waker_is_last_arriver():
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    threads = [b.thread(f"t{i}") for i in range(3)]
    for i, t in enumerate(threads):
        t.start(at=0.0)
        t.barrier(bar, arrive=float(i), depart=2.0, gen=0)
        t.exit(at=3.0)
    trace = b.build()
    table = resolve_wakers(trace)
    departs = [ev for ev in trace if ev.etype == EventType.BARRIER_DEPART]
    for ev in departs:
        info = table.wakes[ev.seq]
        assert info.waker_tid == 2  # arrived at t=2, last
        assert info.waker_time == 2.0


def test_cond_waker_is_signaller():
    b = TraceBuilder()
    cv = b.condition("cv")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.cond_block(cv, at=1.0)
    t1.cond_signal(cv, at=2.0)
    t0.cond_wake(cv, at=2.0, by=t1)
    t0.exit(at=3.0)
    t1.exit(at=3.0)
    trace = b.build()
    table = resolve_wakers(trace)
    wake = next(ev for ev in trace if ev.etype == EventType.COND_WAKE)
    info = table.wakes[wake.seq]
    assert info.waker_tid == 1
    assert info.waker_time == 2.0


def test_cond_waker_fallback_without_signal_event():
    b = TraceBuilder()
    cv = b.condition("cv")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.cond_block(cv, at=1.0)
    t0.cond_wake(cv, at=2.0, by=t1)  # t1 never emits COND_SIGNAL
    t0.exit(at=3.0)
    t1.exit(at=3.0)
    trace = b.build()
    table = resolve_wakers(trace)
    wake = next(ev for ev in trace if ev.etype == EventType.COND_WAKE)
    assert table.wakes[wake.seq].waker_tid == 1


def test_join_waker_is_target_exit():
    b = TraceBuilder()
    t0, t1 = b.thread("main"), b.thread("child")
    t0.start(at=0.0)
    t0.create(t1, at=0.5)
    t1.start(at=0.5)
    t1.exit(at=2.0)
    t0.join(t1, begin=1.0, end=2.0)
    t0.exit(at=3.0)
    trace = b.build()
    table = resolve_wakers(trace)
    join_end = next(ev for ev in trace if ev.etype == EventType.JOIN_END)
    info = table.wakes[join_end.seq]
    assert info.waker_tid == t1.tid
    assert info.waker_time == 2.0


def test_creation_table():
    b = TraceBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t0.create(t1, at=1.0)
    t1.start(at=1.0)
    t1.exit(at=2.0)
    t0.exit(at=3.0)
    trace = b.build()
    table = resolve_wakers(trace)
    assert table.creations[t1.tid].waker_tid == t0.tid
    assert table.creations[t1.tid].waker_time == 1.0
    assert t0.tid not in table.creations


def test_contended_obtain_without_release_rejected():
    events = [
        Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START),
        Event(seq=1, time=1.0, tid=0, etype=EventType.ACQUIRE, obj=0),
        Event(seq=2, time=2.0, tid=0, etype=EventType.OBTAIN, obj=0, arg=1),
        Event(seq=3, time=3.0, tid=0, etype=EventType.THREAD_EXIT),
    ]
    trace = Trace.from_events(
        events, objects={0: ObjectInfo(obj=0, kind=ObjectKind.MUTEX, name="L")}
    )
    with pytest.raises(WakerResolutionError, match="no preceding RELEASE"):
        resolve_wakers(trace)


def test_join_end_without_exit_rejected():
    events = [
        Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START),
        Event(seq=1, time=1.0, tid=0, etype=EventType.JOIN_BEGIN, arg=5),
        Event(seq=2, time=2.0, tid=0, etype=EventType.JOIN_END, arg=5),
        Event(seq=3, time=3.0, tid=0, etype=EventType.THREAD_EXIT),
    ]
    trace = Trace.from_events(events)
    with pytest.raises(WakerResolutionError, match="has not exited"):
        resolve_wakers(trace)


def test_uncontended_obtains_have_no_waker(micro_trace):
    table = resolve_wakers(micro_trace)
    uncontended = [
        ev.seq for ev in micro_trace
        if ev.etype == EventType.OBTAIN and ev.arg == 0
    ]
    for seq in uncontended:
        assert seq not in table.wakes
