"""Execute a :class:`~repro.check.spec.ProgramSpec` on the simulator.

The interpreter maps the op grammar onto :class:`repro.sim.Program`
primitives.  Two composites deserve a note:

* **channels** are condition-variable token queues: a mutex, a condvar
  and an integer counter.  ``produce`` increments the counter under the
  mutex and signals (or broadcasts); ``consume`` cond-waits until the
  counter is positive.  Because producers signal *after* releasing the
  mutex and consumers gate on the counter, tokens are never lost.
* **children** spawned by ``spawn`` ops are joined implicitly at the end
  of the spawning thread, after all its other ops — so a spawn inside a
  lock body never makes the holder block on its child.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.check.spec import ProgramSpec
from repro.errors import CheckError
from repro.sim.engine import SimResult
from repro.sim.program import Program

__all__ = ["build_program", "run_spec"]


class _Channel:
    """A condvar-gated token queue (see module docstring)."""

    __slots__ = ("mutex", "cond", "tokens")

    def __init__(self, mutex, cond):
        self.mutex = mutex
        self.cond = cond
        self.tokens = 0


@dataclass
class _Ctx:
    """Shared interpreter state: the spec's objects, realized."""

    mutexes: list = field(default_factory=list)
    rwlocks: list = field(default_factory=list)
    sems: list = field(default_factory=list)
    channels: list = field(default_factory=list)
    barrier: Any = None
    n_children: int = 0


def _run_ops(env, ops: list[dict], ctx: _Ctx, children: list) -> Generator:
    for node in ops:
        kind = node["op"]
        if kind == "compute":
            yield env.compute(float(node["dur"]))
        elif kind == "lock":
            m = ctx.mutexes[node["m"]]
            yield env.acquire(m)
            yield from _run_ops(env, node["body"], ctx, children)
            yield env.release(m)
        elif kind == "trylock":
            m = ctx.mutexes[node["m"]]
            ok = yield env.try_acquire(m)
            if ok:
                yield env.compute(float(node["dur"]))
                yield env.release(m)
        elif kind == "rw":
            rw = ctx.rwlocks[node["rw"]]
            if node["write"]:
                yield env.rw_acquire_write(rw)
                yield env.compute(float(node["dur"]))
                yield env.rw_release_write(rw)
            else:
                yield env.rw_acquire_read(rw)
                yield env.compute(float(node["dur"]))
                yield env.rw_release_read(rw)
        elif kind == "sem":
            s = ctx.sems[node["s"]]
            yield env.sem_acquire(s)
            yield env.compute(float(node["dur"]))
            yield env.sem_release(s)
        elif kind == "produce":
            ch = ctx.channels[node["ch"]]
            yield env.acquire(ch.mutex)
            ch.tokens += 1
            yield env.release(ch.mutex)
            if node.get("broadcast"):
                yield env.cond_broadcast(ch.cond)
            else:
                yield env.cond_signal(ch.cond)
        elif kind == "consume":
            ch = ctx.channels[node["ch"]]
            yield env.acquire(ch.mutex)
            while ch.tokens == 0:
                yield env.cond_wait(ch.cond, ch.mutex)
            ch.tokens -= 1
            yield env.release(ch.mutex)
        elif kind == "barrier":
            if ctx.barrier is None:
                raise CheckError("barrier op in a spec with no barrier rounds")
            yield env.barrier_wait(ctx.barrier)
        elif kind == "spawn":
            ctx.n_children += 1
            h = yield env.spawn(
                _thread_body, node["ops"], ctx, name=f"child-{ctx.n_children}"
            )
            children.append(h)
        else:
            raise CheckError(f"unknown op kind {kind!r}")


def _thread_body(env, ops: list[dict], ctx: _Ctx) -> Generator:
    children: list = []
    yield from _run_ops(env, ops, ctx, children)
    yield from env.join_all(children)


def build_program(spec: ProgramSpec) -> Program:
    """Realize a spec as a ready-to-run :class:`Program`."""
    if not spec.threads:
        raise CheckError("spec has no threads")
    p = Program(seed=spec.seed, name=f"check-{spec.seed}")
    ctx = _Ctx(
        mutexes=[p.mutex(name=f"m{i}") for i in range(spec.n_mutexes)],
        rwlocks=[p.rwlock(name=f"rw{i}") for i in range(spec.n_rwlocks)],
        sems=[
            p.semaphore(
                value=spec.sem_values[i] if i < len(spec.sem_values) else 1,
                name=f"s{i}",
            )
            for i in range(spec.n_sems)
        ],
        channels=[
            _Channel(p.mutex(name=f"ch{i}.m"), p.condition(name=f"ch{i}.c"))
            for i in range(spec.n_channels)
        ],
        barrier=(
            p.barrier(parties=len(spec.threads), name="phase")
            if spec.barrier_rounds > 0
            else None
        ),
    )
    for t in spec.threads:
        p.spawn(_thread_body, t.ops, ctx, name=t.name)
    return p


def run_spec(spec: ProgramSpec) -> SimResult:
    """Build and run a spec; deterministic for a given spec."""
    return build_program(spec).run(meta={"check_seed": spec.seed})
