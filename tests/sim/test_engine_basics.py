"""Engine fundamentals: time, lifecycle, determinism, guards."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Program
from repro.trace.events import EventType
from repro.trace.validate import validate_trace

from tests.conftest import make_micro_program


def test_single_thread_compute():
    prog = Program()

    def body(env):
        yield env.compute(1.5)
        yield env.compute(0.5)
        return "done"

    h = prog.spawn(body)
    result = prog.run()
    assert result.completion_time == 2.0
    assert h.result == "done"
    assert result.results[h.tid] == "done"


def test_zero_compute_allowed():
    prog = Program()
    prog.spawn(lambda env: (yield env.compute(0.0)))
    assert prog.run().completion_time == 0.0


def test_negative_compute_rejected():
    prog = Program()

    def body(env):
        yield env.compute(-1.0)

    prog.spawn(body)
    with pytest.raises(SimulationError, match="negative compute duration"):
        prog.run()


def test_plain_function_body():
    prog = Program()
    h = prog.spawn(lambda env: 42)
    prog.run()
    assert h.result == 42


def test_threads_run_in_parallel():
    prog = Program()

    def body(env, i):
        yield env.compute(3.0)

    prog.spawn_workers(5, body)
    assert prog.run().completion_time == 3.0


def test_trace_is_valid(micro_trace):
    validate_trace(micro_trace)


def test_lifecycle_events_present():
    prog = Program()
    prog.spawn(lambda env: (yield env.compute(1.0)))
    trace = prog.run().trace
    assert trace.count(EventType.THREAD_START) == 1
    assert trace.count(EventType.THREAD_EXIT) == 1


def test_determinism_same_seed():
    a = make_micro_program().run().trace
    b = make_micro_program().run().trace
    assert np.array_equal(a.records, b.records)


def test_rng_streams_differ_per_thread():
    prog = Program(seed=3)
    seen = []

    def body(env, i):
        seen.append(float(env.rng.random()))
        yield env.compute(0.1)

    prog.spawn_workers(4, body)
    prog.run()
    assert len(set(seen)) == 4


def test_rng_deterministic_across_runs():
    def collect():
        prog = Program(seed=9)
        seen = []

        def body(env, i):
            seen.append(float(env.rng.random()))
            yield env.compute(0.1)

        prog.spawn_workers(3, body)
        prog.run()
        return seen

    assert collect() == collect()


def test_run_twice_rejected():
    prog = Program()
    prog.spawn(lambda env: (yield env.compute(1.0)))
    prog.run()
    with pytest.raises(SimulationError, match="only be called once"):
        prog.run()


def test_spawn_after_run_rejected():
    prog = Program()
    prog.spawn(lambda env: (yield env.compute(1.0)))
    prog.run()
    with pytest.raises(SimulationError, match="after run"):
        prog.spawn(lambda env: (yield env.compute(1.0)))


def test_body_exception_wrapped():
    prog = Program()

    def body(env):
        yield env.compute(1.0)
        raise ValueError("boom")

    prog.spawn(body, name="bad")
    with pytest.raises(SimulationError, match="bad.*ValueError.*boom"):
        prog.run()


def test_yielding_garbage_rejected():
    prog = Program()

    def body(env):
        yield "not a request"

    prog.spawn(body)
    with pytest.raises(SimulationError, match="non-request"):
        prog.run()


def test_max_events_guard():
    prog = Program(max_events=100)

    def body(env):
        while True:
            yield env.compute(1.0)

    prog.spawn(body)
    with pytest.raises(SimulationError, match="max_events"):
        prog.run()


def test_env_now_tracks_virtual_time():
    prog = Program()
    stamps = []

    def body(env):
        stamps.append(env.now)
        yield env.compute(2.5)
        stamps.append(env.now)

    prog.spawn(body)
    prog.run()
    assert stamps == [0.0, 2.5]


def test_invalid_cores_rejected():
    with pytest.raises(SimulationError, match="cores"):
        Program(cores=0)


def test_meta_recorded():
    prog = Program(name="myprog", seed=5, cores=8)
    prog.spawn(lambda env: (yield env.compute(1.0)))
    trace = prog.run(meta={"extra": 1}).trace
    assert trace.meta["name"] == "myprog"
    assert trace.meta["seed"] == 5
    assert trace.meta["cores"] == 8
    assert trace.meta["extra"] == 1
    assert trace.meta["nthreads"] == 1
