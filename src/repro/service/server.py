"""Stdlib HTTP/JSON transport over :class:`~repro.service.api.ServiceAPI`.

A :class:`ThreadingHTTPServer` keeps request handling off the worker
pool entirely: handler threads only parse/serialize JSON and touch
thread-safe service state, while the CPU-heavy analysis runs in worker
*processes*.  One service instance therefore overlaps network I/O,
bookkeeping and N analyses at once.

Two routes bypass the JSON bridge: ``GET /dashboard`` returns the live
HTML fleet dashboard, and ``GET /fleet/events`` holds the connection
open as a Server-Sent-Events stream — an immediate snapshot event,
then one event per fleet-state change, with comment keepalives in
between.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qsl, urlsplit

from repro.service.api import ServiceAPI
from repro.service.pool import DEFAULT_START_METHOD

__all__ = ["ServiceHTTPServer", "make_server", "serve"]

log = logging.getLogger("repro.service")

#: Uploads beyond this are rejected before buffering (64 MiB of trace).
MAX_BODY_BYTES = 64 << 20

#: Seconds between SSE comment keepalives while fleet state is idle.
SSE_KEEPALIVE = 15.0


class _Handler(BaseHTTPRequestHandler):
    server_version = "critical-lock-analysis"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    @property
    def api(self) -> ServiceAPI:
        return self.server.api  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        log.debug("%s - %s", self.address_string(), fmt % args)

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        query = dict(parse_qsl(url.query))
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            self._reply(413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"})
            return
        body = self.rfile.read(length) if length else b""
        try:
            status, payload = self.api.handle(method, url.path, body, query)
        except Exception as exc:  # noqa: BLE001 — transport must answer something
            log.exception("unhandled error for %s %s", method, url.path)
            status, payload = 500, {"error": f"internal error: {exc}"}
        self._reply(status, payload)

    def _reply(self, status: int, payload: dict) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        if status in (307, 308) and payload.get("redirect"):
            # Ring routing: point plain HTTP clients at the owning node
            # (the JSON body carries the same URL for ours).
            self.send_header("Location", payload["redirect"])
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    # -- fleet dashboard (non-JSON routes) ----------------------------------

    def _serve_dashboard(self) -> None:
        blob = self.api.dashboard_html().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _serve_fleet_events(self) -> None:
        """Server-Sent-Events stream of fleet-state changes.

        The response has no length and stays open, so the connection is
        marked close-on-done; the loop ends when the client disconnects
        (write fails) or the server shuts down beneath us.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        api = self.api
        api.metrics.count_fleet_sse(clients=1)
        last = -1  # version -1: the first wait returns the current state
        try:
            while True:
                version = api.fleet.wait_version(last, timeout=SSE_KEEPALIVE)
                if version <= last:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                last = version
                blob = json.dumps(api.fleet_event_payload())
                self.wfile.write(f"event: fleet\ndata: {blob}\n\n".encode("utf-8"))
                self.wfile.flush()
                api.metrics.count_fleet_sse(events=1)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away — the stream has no other exit

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        if path == "/dashboard":
            self._serve_dashboard()
            return
        if path == "/fleet/events":
            self._serve_fleet_events()
            return
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`ServiceAPI` instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], api: ServiceAPI):
        super().__init__(address, _Handler)
        self.api = api

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.api.close()


def make_server(
    api: ServiceAPI, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind (port 0 = ephemeral) without starting the serve loop."""
    return ServiceHTTPServer((host, port), api)


def serve(
    host: str = "127.0.0.1",
    port: int = 8323,
    data_dir: str | Path = ".cla-service",
    workers: int = 2,
    cache_capacity: int = 256,
    start_method: str = DEFAULT_START_METHOD,
    rules_path: str | Path | None = None,
    backend: str = "local",
    object_root: str | Path | None = None,
    self_url: str | None = None,
    peers: tuple[str, ...] = (),
) -> int:
    """Run the analysis service until interrupted (CLI entry point)."""
    if peers and not self_url:
        self_url = f"http://{host}:{port}"
    api = ServiceAPI(
        data_dir=data_dir,
        workers=workers,
        cache_capacity=cache_capacity,
        start_method=start_method,
        rules_path=rules_path,
        backend=backend,
        object_root=object_root,
        self_url=self_url,
        peers=peers,
    )
    server = make_server(api, host, port)
    resumed = api.streams.recovered_sessions
    print(
        f"critical-lock-analysis service on {server.url} "
        f"({workers} worker process(es), data in {Path(data_dir).resolve()}, "
        f"storage backend {api.backend.name if api.backend else 'local'}"
        + (f", {len(api.fleet_rules)} alert rule(s)" if rules_path else "")
        + (f", ring of {len(api.ring)} nodes" if api.ring else "")
        + (f", {resumed} stream session(s) resumed" if resumed else "")
        + f"); dashboard at {server.url}/dashboard"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        api.close()
    return 0
