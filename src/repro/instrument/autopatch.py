"""Global interposition on :mod:`threading` — the real LD_PRELOAD analog.

The paper preloads a shared library so *unmodified* applications get
traced (§IV.A).  Python's equivalent is monkey-patching the factory
functions in :mod:`threading`: inside :func:`patch_threading`, code that
calls ``threading.Lock()``, ``threading.RLock()``, ``threading.Semaphore``,
``threading.BoundedSemaphore``, ``threading.Barrier``,
``threading.Condition`` or ``threading.Thread`` receives traced
replacements bound to the active session — no source changes needed::

    with ProfilingSession(name="app") as session:
        with patch_threading(session):
            unmodified_module.main()   # uses plain `threading` internally
    report = analyze(session.trace())

Scope and caveats:

* only objects *created inside* the patch window are traced; direct
  imports bound before patching (``from threading import Lock``) are not
  intercepted — same limitation as symbol interposition with static
  linking;
* the low-level ``threading._allocate_lock`` is left alone (patching it
  breaks interpreter internals), so ``threading.Event``/``queue.Queue``
  internals remain untraced.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterator

from repro.instrument.barrier import TracedBarrier
from repro.instrument.condition import TracedCondition
from repro.instrument.locks import TracedLock, TracedRLock, TracedSemaphore
from repro.instrument.session import ProfilingSession
from repro.instrument.threads import TracedThread

__all__ = ["patch_threading", "PatchedThread"]


class PatchedThread:
    """``threading.Thread``-compatible facade over :class:`TracedThread`."""

    def __init__(
        self,
        group=None,
        target: Callable[..., Any] | None = None,
        name: str | None = None,
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        daemon: bool | None = None,
        session: ProfilingSession | None = None,
    ):
        if session is None:  # pragma: no cover - bound via partial below
            raise RuntimeError("PatchedThread requires a session")
        self._traced = TracedThread(
            session, target or (lambda: None), args, kwargs or {}, name or ""
        )
        self.daemon = bool(daemon)

    @property
    def name(self) -> str:
        return self._traced.name

    @property
    def result(self) -> Any:
        return self._traced.result

    def start(self) -> None:
        self._traced.start()

    def join(self, timeout: float | None = None) -> None:
        self._traced.join(timeout)

    def is_alive(self) -> bool:
        return self._traced.is_alive()


def _caller_is_interpreter_internal() -> bool:
    """True when the factory call comes from the threading machinery itself.

    CPython's ``Thread``/``Event``/internal bookkeeping create locks and
    conditions through the same module globals we patch; those must get
    the *real* primitives or the interpreter recurses into our tracing
    from unregistered bootstrap threads.  This is the Python analog of
    resolving the next symbol with ``dlsym(RTLD_NEXT, ...)``.
    """
    import sys

    frame = sys._getframe(2)  # _caller_is_interpreter_internal -> factory -> caller
    mod = frame.f_globals.get("__name__", "")
    return mod == "threading" or mod.startswith("threading.") or mod == "_threading_local"


@contextlib.contextmanager
def patch_threading(session: ProfilingSession) -> Iterator[None]:
    """Patch ``threading`` factories to emit into ``session`` (see above)."""
    counters = {"lock": 0, "rlock": 0, "sem": 0, "barrier": 0, "cond": 0}
    saved = {
        "Lock": threading.Lock,
        "RLock": threading.RLock,
        "Semaphore": threading.Semaphore,
        "BoundedSemaphore": threading.BoundedSemaphore,
        "Barrier": threading.Barrier,
        "Condition": threading.Condition,
        "Thread": threading.Thread,
    }

    def make_lock():
        if _caller_is_interpreter_internal():
            return saved["Lock"]()
        counters["lock"] += 1
        return TracedLock(session, f"Lock#{counters['lock']}")

    def make_rlock():
        if _caller_is_interpreter_internal():
            return saved["RLock"]()
        counters["rlock"] += 1
        return TracedRLock(session, f"RLock#{counters['rlock']}")

    class make_semaphore(saved["Semaphore"]):
        # A class, not a function: the stdlib's BoundedSemaphore.__init__
        # resolves the ``Semaphore`` module global at call time and invokes
        # its ``__init__`` directly, so the patched name must still expose
        # the real initializer (inherited here) or real bounded semaphores
        # built inside the patch window come out uninitialized.
        def __new__(cls, value=1):
            if _caller_is_interpreter_internal():
                return saved["Semaphore"](value)
            counters["sem"] += 1
            return TracedSemaphore(session, value, f"Semaphore#{counters['sem']}")

    def make_bounded_semaphore(value=1):
        if _caller_is_interpreter_internal():
            return saved["BoundedSemaphore"](value)
        counters["sem"] += 1
        return TracedSemaphore(
            session, value, f"Semaphore#{counters['sem']}", bounded=True
        )

    def make_barrier(parties, action=None, timeout=None):
        if _caller_is_interpreter_internal():
            return saved["Barrier"](parties, action, timeout)
        counters["barrier"] += 1
        return TracedBarrier(session, parties, f"Barrier#{counters['barrier']}")

    def make_condition(lock=None):
        if _caller_is_interpreter_internal():
            return saved["Condition"](lock)
        counters["cond"] += 1
        traced_lock = lock if isinstance(lock, TracedLock) else None
        return TracedCondition(session, traced_lock, f"Condition#{counters['cond']}")

    def make_thread(*args, **kwargs):
        if _caller_is_interpreter_internal():
            return saved["Thread"](*args, **kwargs)
        return PatchedThread(*args, session=session, **kwargs)
    threading.Lock = make_lock  # type: ignore[misc]
    threading.RLock = make_rlock  # type: ignore[misc]
    threading.Semaphore = make_semaphore  # type: ignore[misc]
    threading.BoundedSemaphore = make_bounded_semaphore  # type: ignore[misc]
    threading.Barrier = make_barrier  # type: ignore[misc]
    threading.Condition = make_condition  # type: ignore[misc]
    threading.Thread = make_thread  # type: ignore[misc]
    try:
        yield
    finally:
        for attr, original in saved.items():
            setattr(threading, attr, original)
