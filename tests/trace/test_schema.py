"""Unit tests for the numpy record schema."""

import numpy as np

from repro.trace.events import Event, EventType
from repro.trace.schema import (
    EVENT_DTYPE,
    empty_records,
    events_from_records,
    records_from_events,
)


def sample_events():
    return [
        Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START),
        Event(seq=1, time=0.5, tid=0, etype=EventType.ACQUIRE, obj=2),
        Event(seq=2, time=0.5, tid=0, etype=EventType.OBTAIN, obj=2, arg=0),
        Event(seq=3, time=1.5, tid=0, etype=EventType.RELEASE, obj=2),
        Event(seq=4, time=2.0, tid=0, etype=EventType.THREAD_EXIT),
    ]


def test_roundtrip():
    events = sample_events()
    records = records_from_events(events)
    assert records.dtype == EVENT_DTYPE
    back = list(events_from_records(records))
    assert back == events


def test_empty_records():
    assert len(empty_records()) == 0
    assert empty_records(5).shape == (5,)


def test_negative_obj_preserved():
    ev = Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START, obj=-1)
    back = next(events_from_records(records_from_events([ev])))
    assert back.obj == -1


def test_large_values():
    ev = Event(
        seq=2**40, time=1e9, tid=2**20, etype=EventType.JOIN_END, obj=2**30, arg=-(2**40)
    )
    back = next(events_from_records(records_from_events([ev])))
    assert back == ev


def test_dtype_itemsize_stable():
    # On-disk format compatibility: field layout is part of the contract.
    assert EVENT_DTYPE.itemsize == 33  # u8 + f8 + i4 + u1 + i4 + i8, packed
    assert list(EVENT_DTYPE.names) == ["seq", "time", "tid", "etype", "obj", "arg"]


def test_times_stored_as_float64():
    records = records_from_events(sample_events())
    assert records["time"].dtype == np.float64
