"""Engine and sharding wall-clock comparison.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_shard.py --quick
    PYTHONPATH=src python benchmarks/bench_shard.py --min-columnar-speedup 5
    PYTHONPATH=src python benchmarks/bench_shard.py --jobs 4 --min-speedup 1.5

Builds a multi-phase SyntheticLocks trace (barriers every few hundred
ops give the cut-point detector plenty of quiescent positions), then
times three configurations against each other and checks all renders
are byte-identical — a perf harness that silently changed the answer
would be worse than no harness:

* ``analyze(trace, engine="object")`` — the per-event reference engine;
* ``analyze(trace)`` — the columnar (numpy) engine, the default;
* ``analyze(trace, jobs=N)`` — columnar + barrier-cut sharding.

``--min-columnar-speedup`` gates the columnar-vs-object ratio and is
CPU-count independent (both runs are sequential).  ``--min-speedup``
gates sharded-vs-sequential; the parallel path only engages with >1
usable CPU (see ``repro.core.shard``) — on a single-core runner the
analyzer deliberately skips sharding, so that gate is meant for
multi-core CI runners, not laptops pinned to one core.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.analyzer import analyze
from repro.trace.shard import find_cuts
from repro.workloads import SyntheticLocks


def build_trace(quick: bool):
    if quick:
        params = dict(ops_per_thread=800, nlocks=6, barrier_every=100)
        nthreads = 6
    else:
        params = dict(ops_per_thread=9000, nlocks=8, barrier_every=250)
        nthreads = 8
    wl = SyntheticLocks(**params)
    return wl.run(nthreads=nthreads, seed=0).trace


def _time(fn, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small trace, machinery check only (CI smoke job)")
    ap.add_argument("--jobs", type=int, default=4, help="shard count (default: 4)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats, best-of (default: 3, 1 with --quick)")
    ap.add_argument("--min-speedup", type=float, default=None, metavar="X",
                    help="fail unless sharded is at least X times faster")
    ap.add_argument("--min-columnar-speedup", type=float, default=None,
                    metavar="X", help="fail unless the columnar engine beats "
                    "the object engine by at least X times")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    args = ap.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    trace = build_trace(args.quick)
    cuts = find_cuts(trace)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1
    print(f"trace: {len(trace)} events, {len(trace.threads)} threads, "
          f"{len(cuts)} cut points, {cpus} usable CPU(s)")

    t_obj, obj = _time(
        lambda: analyze(trace, validate=False, engine="object"), repeats
    )
    t_seq, seq = _time(lambda: analyze(trace, validate=False), repeats)
    t_shard, sharded = _time(
        lambda: analyze(trace, validate=False, jobs=args.jobs), repeats
    )

    if seq.report.render(None) != obj.report.render(None):
        print("FAIL: columnar report differs from object engine", file=sys.stderr)
        return 1
    if sharded.report.render(None) != seq.report.render(None):
        print("FAIL: sharded report differs from sequential", file=sys.stderr)
        return 1
    speedup = t_seq / t_shard if t_shard > 0 else float("inf")
    col_speedup = t_obj / t_seq if t_seq > 0 else float("inf")
    print(f"object engine     {t_obj:8.3f}s")
    print(f"columnar (seq.)   {t_seq:8.3f}s   ({col_speedup:.2f}x over object)")
    print(f"sharded jobs={args.jobs:<2}   {t_shard:8.3f}s   "
          f"({sharded.shards} shards, {speedup:.2f}x over columnar seq.)")

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {
                    "bench": "shard",
                    "quick": args.quick,
                    "events": len(trace),
                    "threads": len(trace.threads),
                    "cut_points": len(cuts),
                    "usable_cpus": cpus,
                    "jobs": args.jobs,
                    "shards": sharded.shards,
                    "repeats": repeats,
                    "object_s": round(t_obj, 4),
                    "sequential_s": round(t_seq, 4),
                    "sharded_s": round(t_shard, 4),
                    "speedup": round(speedup, 3),
                    "columnar_speedup": round(col_speedup, 3),
                    "identical_render": True,
                },
                f,
                indent=2,
            )
            f.write("\n")
        print(f"numbers written to {args.json}")

    if args.min_columnar_speedup is not None:
        if col_speedup < args.min_columnar_speedup:
            print(f"FAIL: columnar speedup {col_speedup:.2f}x < required "
                  f"{args.min_columnar_speedup:.2f}x", file=sys.stderr)
            return 1
    if args.min_speedup is not None:
        if sharded.shards <= 1:
            print("FAIL: sharding never engaged", file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x < required "
                  f"{args.min_speedup:.2f}x", file=sys.stderr)
            return 1
    print("ok: sharded output is byte-identical to sequential")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
