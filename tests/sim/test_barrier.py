"""Barrier semantics: cohort release, generations, event schema."""

import pytest

from repro.errors import SimulationError
from repro.sim import Program
from repro.trace.events import EventType


def test_all_wait_for_last():
    prog = Program()
    bar = prog.barrier(3, "B")
    departures = {}

    def body(env, i):
        yield env.compute(float(i))  # arrive at 0, 1, 2
        yield env.barrier_wait(bar)
        departures[i] = env.now

    prog.spawn_workers(3, body)
    prog.run()
    assert departures == {0: 2.0, 1: 2.0, 2: 2.0}


def test_cyclic_generations():
    prog = Program()
    bar = prog.barrier(2, "B")

    def body(env, i):
        for _ in range(3):
            yield env.compute(1.0 + i)
            yield env.barrier_wait(bar)

    prog.spawn_workers(2, body)
    trace = prog.run().trace
    gens = sorted({ev.arg for ev in trace if ev.etype == EventType.BARRIER_ARRIVE})
    assert gens == [0, 1, 2]
    # Completion: each round gated by the slower thread (2.0 each).
    assert trace.duration == 6.0


def test_single_party_barrier_never_blocks():
    prog = Program()
    bar = prog.barrier(1, "B")

    def body(env):
        yield env.compute(1.0)
        yield env.barrier_wait(bar)
        yield env.compute(1.0)

    prog.spawn(body)
    assert prog.run().completion_time == 2.0


def test_departs_match_arrivals():
    prog = Program()
    bar = prog.barrier(4, "B")

    def body(env, i):
        yield env.compute(i * 0.5)
        yield env.barrier_wait(bar)

    prog.spawn_workers(4, body)
    trace = prog.run().trace
    assert trace.count(EventType.BARRIER_ARRIVE) == 4
    assert trace.count(EventType.BARRIER_DEPART) == 4


def test_invalid_parties_rejected():
    prog = Program()
    with pytest.raises(SimulationError, match="parties"):
        prog.barrier(0, "B")


def test_two_barriers_independent():
    prog = Program()
    b1 = prog.barrier(2, "B1")
    b2 = prog.barrier(2, "B2")
    log = []

    def body(env, i):
        yield env.compute(i * 1.0)
        yield env.barrier_wait(b1)
        log.append(("b1", i, env.now))
        yield env.compute((1 - i) * 1.0)
        yield env.barrier_wait(b2)
        log.append(("b2", i, env.now))

    prog.spawn_workers(2, body)
    prog.run()
    assert all(t == 1.0 for (name, _, t) in log if name == "b1")
    assert all(t == 2.0 for (name, _, t) in log if name == "b2")
