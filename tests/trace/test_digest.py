"""Content-addressed trace digests."""

from repro.trace import read_trace, trace_digest, write_trace
from repro.trace.digest import file_digest


def test_digest_is_stable(micro_trace):
    assert trace_digest(micro_trace) == trace_digest(micro_trace)
    assert len(trace_digest(micro_trace)) == 64


def test_digest_survives_roundtrip(micro_trace, tmp_path):
    path = write_trace(micro_trace, tmp_path / "t.clt")
    assert trace_digest(read_trace(path)) == trace_digest(micro_trace)


def test_digest_is_format_invariant(micro_trace, tmp_path):
    """Same execution uploaded as .clt and .jsonl must address identically."""
    clt = read_trace(write_trace(micro_trace, tmp_path / "t.clt"))
    jsonl = read_trace(write_trace(micro_trace, tmp_path / "t.jsonl"))
    assert trace_digest(clt) == trace_digest(jsonl)


def test_digest_distinguishes_traces(micro_trace, handoff_trace):
    assert trace_digest(micro_trace) != trace_digest(handoff_trace)


def test_file_digest_is_byte_level(tmp_path):
    a = tmp_path / "a.bin"
    b = tmp_path / "b.bin"
    a.write_bytes(b"hello")
    b.write_bytes(b"hello")
    assert file_digest(a) == file_digest(b)
    b.write_bytes(b"hello!")
    assert file_digest(a) != file_digest(b)
