"""Chunk framing: round-trips, corruption detection, the .cls container."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.framing import (
    FRAME_HEADER_SIZE,
    decode_frame,
    encode_records_frame,
    encode_trailer_frame,
    iter_frames,
    read_frame,
    sort_stream_records,
    split_records,
)
from repro.trace.reader import read_trace
from repro.trace.writer import header_dict


def test_records_frame_roundtrip(micro_trace):
    blob = encode_records_frame(micro_trace.records, 7)
    frame, consumed = decode_frame(blob)
    assert consumed == len(blob)
    assert frame.chunk_id == 7
    assert not frame.is_trailer
    assert np.array_equal(frame.records, micro_trace.records)


def test_trailer_frame_roundtrip(micro_trace):
    header = header_dict(micro_trace)
    frame, _ = decode_frame(encode_trailer_frame(header, 3))
    assert frame.is_trailer
    assert frame.header == header


def test_iter_frames_concatenated(micro_trace):
    blocks = list(split_records(micro_trace.records, 10))
    blob = b"".join(
        encode_records_frame(b, i) for i, b in enumerate(blocks)
    ) + encode_trailer_frame(header_dict(micro_trace), len(blocks))
    frames = list(iter_frames(blob))
    assert [f.chunk_id for f in frames] == list(range(len(blocks) + 1))
    assert frames[-1].is_trailer
    joined = np.concatenate([f.records for f in frames[:-1]])
    assert np.array_equal(joined, micro_trace.records)


def test_crc_corruption_detected(micro_trace):
    blob = bytearray(encode_records_frame(micro_trace.records, 0))
    blob[FRAME_HEADER_SIZE + 5] ^= 0xFF
    with pytest.raises(TraceFormatError, match="CRC"):
        decode_frame(bytes(blob))


def test_truncated_payload_detected(micro_trace):
    blob = encode_records_frame(micro_trace.records, 0)
    with pytest.raises(TraceFormatError, match="truncated frame payload"):
        decode_frame(blob[:-4])


def test_truncated_header_detected():
    with pytest.raises(TraceFormatError, match="truncated frame header"):
        decode_frame(b"CLCHUNK1\x00")


def test_bad_magic_detected():
    with pytest.raises(TraceFormatError, match="bad chunk magic"):
        decode_frame(b"X" * 64)


def test_partial_record_in_frame_rejected(micro_trace):
    # Shave 1 byte off the payload but fix the CRC so only the
    # whole-record check can catch it.
    import struct
    import zlib

    payload = micro_trace.records[:2].tobytes()[:-1]
    head = struct.pack(
        "<8sBQQI", b"CLCHUNK1", 0, 0, len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    frame, _ = decode_frame(head + payload)
    with pytest.raises(TraceFormatError, match="whole number of"):
        frame.records


def test_read_frame_from_file(micro_trace):
    blob = encode_records_frame(micro_trace.records, 0) + encode_trailer_frame(
        header_dict(micro_trace), 1
    )
    fh = io.BytesIO(blob)
    f0 = read_frame(fh)
    f1 = read_frame(fh)
    assert not f0.is_trailer and f1.is_trailer
    assert read_frame(fh) is None  # clean EOF


def test_read_frame_partial_raises(micro_trace):
    blob = encode_records_frame(micro_trace.records, 0)
    fh = io.BytesIO(blob[:-3])
    with pytest.raises(TraceFormatError):
        read_frame(fh)


def test_split_records_covers_everything(micro_trace):
    blocks = list(split_records(micro_trace.records, 7))
    assert all(len(b) <= 7 for b in blocks)
    assert np.array_equal(np.concatenate(blocks), micro_trace.records)


def test_split_records_empty():
    from repro.trace.schema import empty_records

    assert list(split_records(empty_records(), 10)) == []


def test_sort_stream_records_matches_from_events(micro_trace):
    rng = np.random.default_rng(0)
    shuffled = micro_trace.records[rng.permutation(len(micro_trace.records))]
    restored = sort_stream_records(shuffled)
    assert np.array_equal(restored, micro_trace.records)


def test_cls_container_readable(micro_trace, tmp_path):
    path = tmp_path / "t.cls"
    blocks = list(split_records(micro_trace.records, 9))
    with open(path, "wb") as fh:
        for i, block in enumerate(blocks):
            fh.write(encode_records_frame(block, i))
        fh.write(encode_trailer_frame(header_dict(micro_trace), len(blocks)))
    back = read_trace(path)
    assert np.array_equal(back.records, micro_trace.records)
    assert back.objects == micro_trace.objects
    assert back.threads == micro_trace.threads


def test_cls_without_trailer_rejected_by_read_trace(micro_trace, tmp_path):
    path = tmp_path / "open.cls"
    path.write_bytes(encode_records_frame(micro_trace.records, 0))
    with pytest.raises(TraceFormatError, match="trailer"):
        read_trace(path)
