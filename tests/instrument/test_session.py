"""Profiling session lifecycle and trace assembly."""

import pytest

from repro.errors import TraceError
from repro.instrument import ProfilingSession
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def test_empty_session_trace():
    with ProfilingSession(name="empty") as s:
        pass
    trace = s.trace()
    validate_trace(trace)
    assert len(trace) == 2  # main THREAD_START + THREAD_EXIT
    assert trace.meta["name"] == "empty"
    assert trace.meta["source"] == "instrument"


def test_trace_before_exit_rejected():
    with ProfilingSession() as s:
        with pytest.raises(TraceError, match="still active"):
            s.trace()


def test_session_not_reusable():
    s = ProfilingSession()
    with s:
        pass
    with pytest.raises(TraceError, match="not reusable"):
        with s:
            pass


def test_unregistered_thread_rejected():
    import threading

    with ProfilingSession() as s:
        lock = s.lock("L")
        errors = []

        def rogue():
            try:
                lock.acquire()
            except TraceError as exc:
                errors.append(exc)

        t = threading.Thread(target=rogue)  # plain thread, not session.thread
        t.start()
        t.join()
    assert len(errors) == 1


def test_thread_names_recorded():
    with ProfilingSession() as s:
        t = s.thread(lambda: None, name="worker-x")
        t.start()
        t.join()
    trace = s.trace()
    assert "worker-x" in trace.threads.values()
    assert trace.threads[0] == "main"


def test_times_relative_to_session_start():
    with ProfilingSession() as s:
        pass
    trace = s.trace()
    assert trace.start_time >= 0.0
    assert trace.duration >= 0.0


def test_event_order_consistent():
    with ProfilingSession() as s:
        lock = s.lock("L")
        for _ in range(10):
            with lock:
                pass
    trace = s.trace()
    validate_trace(trace)
    assert trace.count(EventType.OBTAIN) == 10
    assert trace.count(EventType.RELEASE) == 10
