"""Cut-point detection edge cases (``repro.trace.shard``).

The sharded analyzer is only as sound as ``find_cuts``: a position it
returns must be truly quiescent, and traces with no such position must
degenerate to a single shard rather than split unsafely.  These tests
pin down the awkward shapes — no barriers at all, a single thread,
truncation mid-episode, and cuts landing on a pile of equal-timestamp
events — alongside the ``select_cuts`` balancing policy.
"""

import numpy as np

from repro.core.analyzer import analyze
from repro.core.shard import analyze_sharded
from repro.trace import TraceBuilder
from repro.trace.events import EventType
from repro.trace.shard import CutPoint, find_cuts, select_cuts
from repro.trace.trace import Trace
from repro.workloads import SyntheticLocks


def _truncate_before_first_exit(trace: Trace) -> Trace:
    # Same shape as the tests/core/test_truncated.py fixture: cut the
    # record array just before the first THREAD_EXIT, keeping metadata.
    exits = np.flatnonzero(trace.records["etype"] == int(EventType.THREAD_EXIT))
    cut = int(exits[0])
    return Trace(
        records=trace.records[:cut].copy(),
        objects=dict(trace.objects),
        threads=dict(trace.threads),
        meta=dict(trace.meta),
    )


def _assert_identical(seq, sharded) -> None:
    assert sharded.critical_path.pieces == seq.critical_path.pieces
    assert sharded.critical_path.waits == seq.critical_path.waits
    assert sharded.report.render(None) == seq.report.render(None)


# ---------------------------------------------------------------------------
# Degenerate shapes: no usable cut anywhere.
# ---------------------------------------------------------------------------


def test_no_barriers_means_one_shard():
    trace = SyntheticLocks(ops_per_thread=60, nlocks=3).run(nthreads=4, seed=9).trace
    assert find_cuts(trace) == []
    result = analyze(trace, validate=False, jobs=8)
    assert result.shards == 1
    _assert_identical(analyze(trace, validate=False), result)


def test_single_thread_trace_has_no_cuts():
    b = TraceBuilder()
    lock = b.mutex("L")
    t0 = b.thread("T0")
    t0.start(at=0.0)
    t0.critical_section(lock, acquire=1.0, obtain=1.0, release=2.0)
    t0.critical_section(lock, acquire=3.0, obtain=3.0, release=4.0)
    t0.exit(at=5.0)
    trace = b.build()
    assert find_cuts(trace) == []
    assert analyze_sharded(trace, jobs=4) is None
    assert analyze(trace, jobs=4).shards == 1


def test_tiny_trace_has_no_cuts():
    b = TraceBuilder()
    t0 = b.thread("T0")
    t0.start(at=0.0).exit(at=1.0)
    assert find_cuts(b.build(validate=False)) == []


# ---------------------------------------------------------------------------
# Truncated traces: incomplete episodes must not become cuts.
# ---------------------------------------------------------------------------


def test_truncated_barrier_workload_still_shards_safely():
    full = SyntheticLocks(ops_per_thread=40, nlocks=3, barrier_every=10).run(
        nthreads=4, seed=5
    ).trace
    trunc = _truncate_before_first_exit(full)
    cuts = find_cuts(trunc)
    # Whatever survives truncation must still satisfy strict bit-identity.
    seq = analyze(trunc, validate=False)
    sharded = analyze_sharded(trunc, jobs=4, parallel=False, strict=True)
    if cuts:
        assert sharded is not None and sharded.shards > 1
        _assert_identical(seq, sharded)
    else:
        assert sharded is None


def test_truncated_mid_episode_rejects_the_open_barrier():
    # Chop the trace right after a BARRIER_ARRIVE so its episode has
    # arrivals but no departs: an incomplete episode is not quiescent
    # (its threads are still blocked) and must never be offered as a cut.
    full = SyntheticLocks(ops_per_thread=40, nlocks=3, barrier_every=10).run(
        nthreads=4, seed=5
    ).trace
    arrives = np.flatnonzero(full.records["etype"] == int(EventType.BARRIER_ARRIVE))
    pos = int(arrives[len(arrives) // 2])
    trunc = Trace(
        records=full.records[: pos + 1].copy(),
        objects=dict(full.objects),
        threads=dict(full.threads),
        meta=dict(full.meta),
    )
    tail_obj = int(trunc.records["obj"][pos])
    tail_gen = int(trunc.records["arg"][pos])
    for cut in find_cuts(trunc):
        assert cut.barrier != (tail_obj, tail_gen)
        assert cut.pos <= pos  # never inside or after the open episode


# ---------------------------------------------------------------------------
# Equal-timestamp pile-ups at the cut position.
# ---------------------------------------------------------------------------


def _equal_timestamp_trace() -> Trace:
    """Lock handoff at t=3; anchor arrive, departs and next acquire tie at t=3.5.

    Emission order controls the tie-break at time 3.5 (events sort by
    (time, insertion order)): release -> anchor arrive -> both departs
    -> uncontended acquire.  The cut lands right after the anchor
    arrive, with same-timestamp records on both sides of it.  The
    non-anchor thread arrives strictly earlier (3.0 < 3.5): a barrier
    only yields a cut when it actually blocked every non-anchor
    participant, since an unblocked participant's zero-duration Wait is
    dropped and the backward walk would tunnel through the episode.
    """
    b = TraceBuilder()
    lock = b.mutex("L")
    bar = b.barrier_obj("B")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.acquire(lock, at=1.0)
    t0.release(lock, at=3.0)
    t1.acquire(lock, at=2.0, obtain=3.0)  # handoff at exactly 3.0
    t1.release(lock, at=3.5)
    # Arrives and departs emitted separately so both arrives precede
    # both departs in insertion order (ThreadScript.barrier would
    # interleave them and sink the d_first > a_last requirement).
    t0._emit(3.0, EventType.BARRIER_ARRIVE, obj=bar, arg=0)
    t1._emit(3.5, EventType.BARRIER_ARRIVE, obj=bar, arg=0)
    t0._emit(3.5, EventType.BARRIER_DEPART, obj=bar, arg=0)
    t1._emit(3.5, EventType.BARRIER_DEPART, obj=bar, arg=0)
    t1.acquire(lock, at=3.5)  # post-cut work at the anchor timestamp
    t1.release(lock, at=4.0)
    t0.critical_section(lock, acquire=4.0, obtain=4.5, release=5.0)
    t0.exit(at=6.0)
    t1.exit(at=6.0)
    return b.build()


def test_cut_on_equal_timestamp_handoff_is_found():
    trace = _equal_timestamp_trace()
    cuts = find_cuts(trace)
    assert len(cuts) == 1
    cut = cuts[0]
    assert cut.kind == "barrier"
    assert cut.anchor_time == 3.5
    # pos splits between the last arrive and the first depart, both at 3.5
    assert trace.records["etype"][cut.pos - 1] == int(EventType.BARRIER_ARRIVE)
    assert trace.records["etype"][cut.pos] == int(EventType.BARRIER_DEPART)
    assert float(trace.records["time"][cut.pos]) == cut.anchor_time
    assert sorted(t for t, _ in cut.arrivals) == [0, 1]


def test_tied_arrival_episode_is_rejected():
    # Both threads arrive at the same instant: neither blocked, both
    # depart Waits are zero-duration and dropped, and the backward walk
    # tunnels straight through the episode — no legal cut exists.
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0._emit(3.0, EventType.BARRIER_ARRIVE, obj=bar, arg=0)
    t1._emit(3.0, EventType.BARRIER_ARRIVE, obj=bar, arg=0)
    t0._emit(3.0, EventType.BARRIER_DEPART, obj=bar, arg=0)
    t1._emit(3.0, EventType.BARRIER_DEPART, obj=bar, arg=0)
    t0.exit(at=4.0)
    t1.exit(at=4.0)
    trace = b.build()
    assert find_cuts(trace) == []
    # jobs on such a trace silently runs the sequential pass.
    result = analyze(trace, jobs=2, parallel=False)
    _assert_identical(analyze(trace), result)
    assert result.shards == 1


def test_cut_on_equal_timestamp_handoff_analyzes_identically():
    trace = _equal_timestamp_trace()
    seq = analyze(trace)
    sharded = analyze_sharded(trace, jobs=2, parallel=False, strict=True)
    assert sharded is not None and sharded.shards == 2
    _assert_identical(seq, sharded)


def test_interleaved_departs_are_rejected():
    # The convenience ThreadScript.barrier emits arrive+depart together,
    # so a same-timestamp episode records a depart *before* the last
    # arrive — an ordering the stitcher cannot re-inject, which
    # find_cuts must therefore refuse.
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.barrier(bar, arrive=1.0, depart=1.0)
    t1.barrier(bar, arrive=1.0, depart=1.0)
    t0.exit(at=2.0)
    t1.exit(at=2.0)
    assert find_cuts(b.build(validate=False)) == []


# ---------------------------------------------------------------------------
# Join cuts.
# ---------------------------------------------------------------------------


def test_join_collapse_to_one_thread_is_a_cut():
    b = TraceBuilder()
    lock = b.mutex("L")
    t0 = b.thread("main")
    t1 = b.thread("worker")
    t0.start(at=0.0)
    t0.create(t1, at=0.5)
    t1.start(at=1.0)
    t1.critical_section(lock, acquire=1.5, obtain=1.5, release=2.0)
    t1.exit(at=2.5)
    t0.join(t1, begin=1.0, end=2.5)
    t0.critical_section(lock, acquire=3.0, obtain=3.0, release=4.0)
    t0.exit(at=5.0)
    trace = b.build()
    cuts = find_cuts(trace)
    assert [c.kind for c in cuts] == ["join"]
    assert cuts[0].anchor_tid == t0.tid
    seq = analyze(trace)
    sharded = analyze_sharded(trace, jobs=2, parallel=False, strict=True)
    assert sharded is not None and sharded.shards == 2
    _assert_identical(seq, sharded)


def test_join_as_final_record_is_not_a_cut():
    # A cut at the very end would leave an empty right shard.
    b = TraceBuilder()
    t0 = b.thread("main")
    t1 = b.thread("worker")
    t0.start(at=0.0)
    t0.create(t1, at=0.5)
    t1.start(at=1.0)
    t1.exit(at=2.0)
    t0.join(t1, begin=1.0, end=2.5)
    trace = b.build(validate=False)
    assert find_cuts(trace) == []


# ---------------------------------------------------------------------------
# select_cuts balancing policy.
# ---------------------------------------------------------------------------


def _cut(pos: int) -> CutPoint:
    return CutPoint(pos=pos, kind="join", anchor_tid=0, anchor_time=0.0, anchor_seq=pos - 1)


def test_select_cuts_picks_nearest_to_even_split():
    cuts = [_cut(p) for p in (100, 480, 520, 900)]
    chosen = select_cuts(cuts, n_records=1000, jobs=2)
    assert [c.pos for c in chosen] == [480]  # nearest to 500


def test_select_cuts_collapses_duplicates():
    cuts = [_cut(500)]
    chosen = select_cuts(cuts, n_records=1000, jobs=8)
    assert [c.pos for c in chosen] == [500]


def test_select_cuts_caps_at_jobs_minus_one():
    cuts = [_cut(p) for p in range(50, 1000, 50)]
    chosen = select_cuts(cuts, n_records=1000, jobs=4)
    assert len(chosen) == 3
    assert chosen == sorted(chosen, key=lambda c: c.pos)


def test_select_cuts_degenerate_inputs():
    assert select_cuts([], 1000, 4) == []
    assert select_cuts([_cut(10)], 1000, 1) == []
    assert select_cuts([_cut(10)], 0, 4) == []
