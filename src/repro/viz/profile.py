"""ASCII lock-profile charts: CP Time vs Wait Time side by side.

The textual equivalent of the paper's Figs. 8/9 bar charts: for each
lock, two horizontal bars — the TYPE 1 CP share and the TYPE 2 wait
share — so the disagreement between the metrics is visible at a glance.
"""

from __future__ import annotations

from repro.core.report import AnalysisReport
from repro.units import format_percent

__all__ = ["render_lock_profile"]


def render_lock_profile(
    report: AnalysisReport, n: int = 8, width: int = 40
) -> str:
    """Render the top-``n`` locks (by CP Time) as paired text bars."""
    locks = [m for m in report.top_locks(n) if m.total_invocations > 0]
    if not locks:
        return "(no lock activity)"
    name_w = max(len(m.name) for m in locks)
    scale = max(
        max(m.cp_fraction for m in locks),
        max(m.avg_wait_fraction for m in locks),
        1e-12,
    )
    lines = [
        f"lock criticality profile (bar scale: {format_percent(scale)} = {width} chars)"
    ]
    for m in locks:
        cp_bar = "#" * max(1 if m.cp_fraction > 0 else 0,
                           round(m.cp_fraction / scale * width))
        wait_bar = "." * max(1 if m.avg_wait_fraction > 0 else 0,
                             round(m.avg_wait_fraction / scale * width))
        lines.append(
            f"{m.name.rjust(name_w)}  CP   |{cp_bar.ljust(width)}| "
            f"{format_percent(m.cp_fraction)}"
        )
        lines.append(
            f"{' ' * name_w}  wait |{wait_bar.ljust(width)}| "
            f"{format_percent(m.avg_wait_fraction)}"
        )
    lines.append("(# = CP Time, TYPE 1;  . = Wait Time, TYPE 2)")
    return "\n".join(lines)
