"""Before/after comparison of two analyses.

The paper's validation loop (§V.D.3) is: analyze, optimize the top
critical lock, re-analyze, and explain where the speedup came from
(Figs. 13-14 vs 10-11).  This module automates the diff: per-lock deltas
of the TYPE 1 metrics, matched by lock name, plus the end-to-end change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisResult
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["LockDelta", "ComparisonReport", "compare_analyses"]


@dataclass(frozen=True)
class LockDelta:
    """Change in one lock's critical-path metrics between two runs."""

    name: str
    cp_fraction_before: float
    cp_fraction_after: float
    cont_prob_before: float
    cont_prob_after: float
    present_before: bool
    present_after: bool

    @property
    def cp_fraction_delta(self) -> float:
        return self.cp_fraction_after - self.cp_fraction_before


@dataclass(frozen=True)
class ComparisonReport:
    """Diff of two analyses (typically original vs optimized)."""

    duration_before: float
    duration_after: float
    deltas: list[LockDelta]

    @property
    def speedup(self) -> float:
        if self.duration_after <= 0:
            return float("inf")
        return self.duration_before / self.duration_after

    @property
    def improvement(self) -> float:
        """Fractional end-to-end gain (positive = after is faster)."""
        return self.speedup - 1.0

    def top_movers(self, n: int = 5) -> list[LockDelta]:
        """Locks with the largest absolute CP-share change."""
        return sorted(
            self.deltas, key=lambda d: abs(d.cp_fraction_delta), reverse=True
        )[:n]

    def to_dict(self) -> dict:
        """JSON-serializable dump (used by the analysis service)."""
        return {
            "duration_before": self.duration_before,
            "duration_after": self.duration_after,
            "speedup": self.speedup,
            "improvement": self.improvement,
            "locks": [
                {
                    "name": d.name,
                    "cp_time_frac_before": d.cp_fraction_before,
                    "cp_time_frac_after": d.cp_fraction_after,
                    "cp_time_frac_delta": d.cp_fraction_delta,
                    "cont_prob_before": d.cont_prob_before,
                    "cont_prob_after": d.cont_prob_after,
                    "present_before": d.present_before,
                    "present_after": d.present_after,
                }
                for d in self.deltas
            ],
        }

    def render(self, n: int = 8) -> str:
        rows = []
        for d in self.top_movers(n):
            rows.append(
                [
                    d.name,
                    format_percent(d.cp_fraction_before) if d.present_before else "-",
                    format_percent(d.cp_fraction_after) if d.present_after else "-",
                    f"{d.cp_fraction_delta:+.2%}",
                    format_percent(d.cont_prob_before) if d.present_before else "-",
                    format_percent(d.cont_prob_after) if d.present_after else "-",
                ]
            )
        header = (
            f"before {self.duration_before:.4g} -> after {self.duration_after:.4g} "
            f"({self.improvement:+.1%} end to end)"
        )
        table = format_table(
            ["Lock", "CP % before", "CP % after", "delta",
             "Cont. on CP before", "after"],
            rows,
            title="Critical lock comparison",
        )
        return header + "\n" + table


def compare_analyses(
    before: AnalysisResult, after: AnalysisResult
) -> ComparisonReport:
    """Diff two analyses by lock display name."""
    b_locks = {m.name: m for m in before.report.locks.values()}
    a_locks = {m.name: m for m in after.report.locks.values()}
    deltas = []
    for name in sorted(set(b_locks) | set(a_locks)):
        b, a = b_locks.get(name), a_locks.get(name)
        deltas.append(
            LockDelta(
                name=name,
                cp_fraction_before=b.cp_fraction if b else 0.0,
                cp_fraction_after=a.cp_fraction if a else 0.0,
                cont_prob_before=b.cont_prob_on_cp if b else 0.0,
                cont_prob_after=a.cont_prob_on_cp if a else 0.0,
                present_before=b is not None,
                present_after=a is not None,
            )
        )
    return ComparisonReport(
        duration_before=before.report.duration,
        duration_after=after.report.duration,
        deltas=deltas,
    )
