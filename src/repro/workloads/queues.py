"""Concurrent queues on the simulator.

Two implementations with identical interfaces:

:class:`SingleLockQueue`
    One lock guards both ends — the structure Radiosity's ``tq[i].qlock``
    and TSP's ``Qlock`` protect in the paper.

:class:`TwoLockQueue`
    The Michael & Scott two-lock concurrent queue the paper uses for its
    optimization case study (§V.D.3): the enqueue holds only the tail
    lock and the dequeue only the head lock, so producers and consumers
    proceed in parallel.

Queue methods are sub-generators: call them with ``yield from`` inside a
thread body.  ``op_cost`` models the time spent manipulating the queue
inside the critical section (pointer updates, allocation), the paper's
"size of the critical section".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.program import Program
from repro.sim import syscalls as sc

__all__ = ["SingleLockQueue", "TwoLockQueue", "make_queue"]


class SingleLockQueue:
    """FIFO queue guarded by a single lock (coarse-grained)."""

    uses_two_locks = False

    def __init__(self, prog: Program, name: str, op_cost: float):
        self.name = name
        self.op_cost = op_cost
        self.qlock = prog.mutex(f"{name}.qlock")
        self._items: deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, env, item: Any) -> Generator[sc.Request, Any, None]:
        """Enqueue ``item`` at the tail (holds the queue lock)."""
        yield env.acquire(self.qlock)
        yield env.compute(self.op_cost)
        self._items.append(item)
        yield env.release(self.qlock)

    def put_many(self, env, items: list) -> Generator[sc.Request, Any, None]:
        """Enqueue a batch under one lock hold (cost scales with the batch)."""
        if not items:
            return
        yield env.acquire(self.qlock)
        yield env.compute(self.op_cost * len(items))
        self._items.extend(items)
        yield env.release(self.qlock)

    def get(self, env) -> Generator[sc.Request, Any, Any]:
        """Dequeue from the head; returns ``None`` when empty."""
        yield env.acquire(self.qlock)
        yield env.compute(self.op_cost)
        item = self._items.popleft() if self._items else None
        yield env.release(self.qlock)
        return item


class TwoLockQueue:
    """Michael & Scott two-lock queue: separate head and tail locks.

    As in the original algorithm, a dummy-node design lets the two ends
    be mutated independently; here the internal deque stands in for the
    linked list and the simulation only models the lock hold times.
    """

    uses_two_locks = True

    def __init__(self, prog: Program, name: str, op_cost: float):
        self.name = name
        self.op_cost = op_cost
        self.head_lock = prog.mutex(f"{name}.q_head_lock")
        self.tail_lock = prog.mutex(f"{name}.q_tail_lock")
        self._items: deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, env, item: Any) -> Generator[sc.Request, Any, None]:
        """Enqueue at the tail (holds only the tail lock)."""
        yield env.acquire(self.tail_lock)
        yield env.compute(self.op_cost)
        self._items.append(item)
        yield env.release(self.tail_lock)

    def put_many(self, env, items: list) -> Generator[sc.Request, Any, None]:
        """Enqueue a batch under one tail-lock hold."""
        if not items:
            return
        yield env.acquire(self.tail_lock)
        yield env.compute(self.op_cost * len(items))
        self._items.extend(items)
        yield env.release(self.tail_lock)

    def get(self, env) -> Generator[sc.Request, Any, Any]:
        """Dequeue from the head (holds only the head lock)."""
        yield env.acquire(self.head_lock)
        yield env.compute(self.op_cost)
        item = self._items.popleft() if self._items else None
        yield env.release(self.head_lock)
        return item


def make_queue(
    prog: Program, name: str, op_cost: float, two_lock: bool
) -> SingleLockQueue | TwoLockQueue:
    """Factory selecting the queue implementation (the paper's optimization knob)."""
    cls = TwoLockQueue if two_lock else SingleLockQueue
    return cls(prog, name, op_cost)
