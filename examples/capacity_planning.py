#!/usr/bin/env python
"""Capacity planning workflow: forecast, plan, verify, report.

A complete investigation the way a performance engineer would run it,
using only a *small* profiling run:

1. profile TSP at 4 threads;
2. forecast which lock saturates as threads grow (roofline model);
3. build a greedy optimization plan from what-if predictions;
4. verify the plan's first step by replaying the trace with the lock
   shrunk (ground truth, no re-implementation needed);
5. emit a self-contained HTML report plus an SVG timeline.

Run:  python examples/capacity_planning.py  [--out-dir /tmp]
"""

import argparse
from pathlib import Path

from repro import analyze
from repro.core.forecast import forecast
from repro.core.planner import plan_optimizations
from repro.replay import reconstruct
from repro.report_html import write_html_report
from repro.viz.svg import write_svg
from repro.workloads import TSP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default=".", help="where to write artifacts")
    args = parser.parse_args()
    out_dir = Path(args.out_dir)

    # 1. Profile small.
    profile_run = TSP().run(nthreads=4, seed=0)
    analysis = analyze(profile_run.trace)
    print(analysis.report.render_summary())
    print()

    # 2. Forecast scaling from the 4-thread profile.
    fc = forecast(analysis)
    print(fc.render(thread_counts=(8, 16, 24, 48)))
    first = fc.first_saturating_lock()
    print(
        f"\n=> {first.name} saturates at ~"
        f"{first.saturation_threads(fc.total_work):.1f} threads; plan around it.\n"
    )

    # 3. Greedy optimization plan (what-if, no re-runs).
    plan = plan_optimizations(analysis, steps=2, factor=0.5)
    print(plan.render())
    print()

    # 4. Ground-truth check of step 1 via trace replay.
    step1 = plan.steps[0]
    replayed = reconstruct(profile_run.trace).run(
        shrink_lock=step1.lock_name, factor=step1.factor
    )
    actual = profile_run.completion_time / replayed.completion_time
    print(
        f"replay verification of step 1 ({step1.lock_name} x{step1.factor}): "
        f"predicted speedup {step1.cumulative_speedup:.3f}, "
        f"replayed {actual:.3f}"
    )

    # 5. Artifacts.
    html = write_html_report(profile_run.trace, out_dir / "tsp_report.html", analysis)
    svg = write_svg(profile_run.trace, out_dir / "tsp_timeline.svg", analysis)
    print(f"\nartifacts: {html}, {svg}")


if __name__ == "__main__":
    main()
