"""Trace merging."""

import pytest

from repro.core.analyzer import analyze
from repro.errors import TraceError
from repro.trace.merge import merge_traces
from repro.trace.validate import validate_trace
from repro.workloads import MicroBenchmark, SyntheticLocks

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def two_traces():
    a = make_micro_program().run().trace
    b = SyntheticLocks(ops_per_thread=10, nlocks=2).run(nthreads=2, seed=3).trace
    return a, b


def test_merged_is_valid(two_traces):
    a, b = two_traces
    merged = merge_traces([a, b])
    validate_trace(merged)
    assert len(merged) == len(a) + len(b)
    assert len(merged.thread_ids) == len(a.thread_ids) + len(b.thread_ids)


def test_ids_disjoint_and_prefixed(two_traces):
    a, b = two_traces
    merged = merge_traces([a, b])
    names = set(merged.threads.values())
    assert "p0:worker-0" in names
    assert "p1:worker-0" in names
    lock_names = {info.name for info in merged.locks}
    assert "p0:L1" in lock_names and "p1:lock[0]" in lock_names


def test_analysis_spans_both(two_traces):
    a, b = two_traces
    merged = merge_traces([a, b])
    analysis = analyze(merged)
    assert analysis.report.nthreads == len(a.thread_ids) + len(b.thread_ids)
    # Each component's lock stats survive intact.
    assert analysis.report.lock("p0:L2").total_hold_time == pytest.approx(10.0)


def test_offset_shifts_time(two_traces):
    a, b = two_traces
    merged = merge_traces([a, b], offsets=[0.0, 100.0])
    validate_trace(merged)
    assert merged.end_time == pytest.approx(100.0 + b.duration)
    # No dependency chain spans the idle gap between the components, so
    # the walk stops at the later component's start: the coverage error
    # equals the 100s offset (exactly the uncovered gap).
    analysis = analyze(merged)
    assert analysis.critical_path.length == pytest.approx(b.duration)
    assert analysis.critical_path.coverage_error == pytest.approx(100.0)


def test_single_trace_identity_names(two_traces):
    a, _ = two_traces
    merged = merge_traces([a])
    assert merged.thread_name(0) == "worker-0"  # no prefix for a single trace
    assert analyze(merged).report.duration == pytest.approx(a.duration)


def test_custom_prefixes(two_traces):
    a, b = two_traces
    merged = merge_traces([a, b], prefixes=["web:", "db:"])
    assert "web:worker-0" in merged.threads.values()
    assert any(info.name.startswith("db:") for info in merged.locks)


def test_tid_args_remapped():
    # Merge two traces with spawn/join: the child references must follow
    # the remapped tids.
    from repro.sim import Program

    def make():
        prog = Program()

        def child(env):
            yield env.compute(1.0)

        def parent(env):
            h = yield env.spawn(child)
            yield env.join(h)

        prog.spawn(parent)
        return prog.run().trace

    merged = merge_traces([make(), make()])
    validate_trace(merged)  # joins/creates must still pair up


def test_errors(two_traces):
    a, b = two_traces
    with pytest.raises(TraceError, match="at least one"):
        merge_traces([])
    with pytest.raises(TraceError, match="offsets"):
        merge_traces([a, b], offsets=[0.0])
    with pytest.raises(TraceError, match="prefixes"):
        merge_traces([a, b], prefixes=["x:"])
