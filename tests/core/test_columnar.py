"""Columnar-engine guarantees beyond plain output equivalence.

The bit-identity of the two engines is pinned by the golden-report
tests, the shard-equivalence suite and the oracle's ``engine-equiv``
invariant.  This file covers the remaining columnar contracts:

* the hot path really is columnar — analyzing a trace allocates no
  per-event Python objects (``Event``/``Wait``/``HoldInterval``);
* equal-timestamp pile-ups (the regime zero-duration waits live in)
  analyze identically under both engines and neither emits a
  zero-duration ``Wait``;
* the vectorized ``observe_batch`` kernel reproduces per-event
  ``observe`` exactly, at every chunking.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.analyzer import ENGINES, analyze
from repro.core.online import OnlineAnalyzer
from repro.workloads import SyntheticLocks

from tests.conftest import make_micro_program


def _synthetic_trace(ops=400, seed=3):
    return SyntheticLocks(ops_per_thread=ops, nlocks=4).run(
        nthreads=4, seed=seed
    ).trace


def _bench_trace():
    """benchmarks/bench_shard.py's --quick trace (same generator and
    shape as the 216k-event full bench trace, scaled to test budget;
    the zero-allocation property below is size-independent, and the
    full trace is exercised by the CI bench-columnar job)."""
    return SyntheticLocks(ops_per_thread=800, nlocks=6, barrier_every=100).run(
        nthreads=6, seed=0
    ).trace


def test_columnar_path_builds_no_per_event_objects():
    """The columnar engine must never round-trip through Event/Wait/
    HoldInterval objects — that is the whole point of the numpy hot
    path.  tracemalloc attributes every allocation to the source file
    that made it; after a warm-up pass (imports, caches), a traced
    analyze+render must charge nothing to the per-event object
    modules."""
    trace = _bench_trace()
    per_event_files = ("trace/schema.py", "core/model.py", "core/segments.py",
                      "core/wakers.py", "core/critical_path.py")

    analyze(trace, validate=False).render(10)  # warm up

    tracemalloc.start()
    try:
        analyze(trace, validate=False).render(10)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    offenders = [
        stat
        for stat in snapshot.statistics("filename")
        if any(stat.traceback[0].filename.replace("\\", "/").endswith(f)
               for f in per_event_files)
    ]
    assert not offenders, (
        "columnar analyze allocated in per-event modules: "
        + ", ".join(f"{s.traceback[0].filename} ({s.size}B)" for s in offenders)
    )


def test_object_engine_does_allocate_per_event_objects():
    """Sanity check that the probe above has teeth: the object engine
    *does* allocate in the per-event modules under identical tracing."""
    trace = _synthetic_trace(ops=100)
    analyze(trace, validate=False, engine="object").render(10)  # warm up

    tracemalloc.start()
    try:
        analyze(trace, validate=False, engine="object").render(10)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    hits = [
        stat
        for stat in snapshot.statistics("filename")
        if stat.traceback[0].filename.replace("\\", "/").endswith(
            ("core/model.py", "core/segments.py"))
    ]
    assert hits, "object engine unexpectedly allocation-free in model/segments"


@pytest.mark.parametrize("seed", range(12))
def test_equal_timestamp_traces_agree_across_engines(seed):
    """Property test over fuzzed programs: the generator makes ~35% of
    computes zero-duration, deliberately manufacturing equal-timestamp
    acquire/obtain/release pile-ups.  Both engines must render the same
    bytes and drop every zero-duration wait."""
    from repro.check.generator import generate_spec
    from repro.check.interp import run_spec

    trace = run_spec(generate_spec(seed)).trace
    results = {e: analyze(trace, validate=False, engine=e) for e in ENGINES}

    a, b = (results[e] for e in ENGINES)
    assert a.render(None) == b.render(None)
    assert a.critical_path.pieces == b.critical_path.pieces
    for res in results.values():
        for tl in res.timelines.values():
            assert all(w.duration > 0 for w in tl.waits), (
                f"zero-duration wait survived in {res.engine} engine"
            )


def _lock_rows(trace):
    from repro.core.online import _LOCK_VERBS

    return trace.records[np.isin(trace.records["etype"], _LOCK_VERBS)]


@pytest.mark.parametrize("chunk", [1, 7, 64, 10**9])
def test_observe_batch_chunked_matches_observe(chunk):
    """The vectorized batch kernel must be a drop-in for per-event
    observe at any chunk boundary — counters exact, accumulated floats
    to 1e-9, and the carried slot state identical so that chunks can be
    split anywhere."""
    trace = _synthetic_trace(ops=200, seed=5)

    ref = OnlineAnalyzer(trace)
    for ev in trace:
        ref.observe(ev)

    batched = OnlineAnalyzer(trace)
    records = trace.records
    for lo in range(0, len(records), chunk):
        batched.observe_batch(records[lo:lo + chunk])

    assert set(batched._locks) == set(ref._locks)
    for obj, want in ref._locks.items():
        got = batched._locks[obj]
        assert got.invocations == want.invocations
        assert got.contended == want.contended
        assert got.wait_time == pytest.approx(want.wait_time, abs=1e-9)
        assert got.hold_time == pytest.approx(want.hold_time, abs=1e-9)
        assert got.max_chain_time == pytest.approx(want.max_chain_time, abs=1e-9)
        assert got.chain_time == pytest.approx(want.chain_time, abs=1e-9)
        # Slot state must carry across arbitrary chunk boundaries.
        assert got._pending_acquire == want._pending_acquire
        assert got._obtain_time == want._obtain_time
        assert got._last_release == want._last_release


def test_observe_batch_micro_matches_offline():
    trace = make_micro_program().run().trace
    offline = analyze(trace)
    online = OnlineAnalyzer(trace)
    online.observe_batch(trace.records)
    for obj, m in offline.report.locks.items():
        ls = online.stats(obj)
        assert ls.invocations == m.total_invocations
        assert ls.hold_time == pytest.approx(
            sum(tl.hold_time(obj) for tl in offline.timelines.values()), abs=1e-9
        )
