"""Pluggable durable storage behind the trace store and result cache.

The service originally assumed one process with one local directory.
A :class:`StorageBackend` narrows what the stores actually need from
durability to five verbs — atomic ``put``, ``get``, ``exists``,
``delete``, ``keys`` — so the same :class:`~repro.service.store.TraceStore`
and :class:`~repro.service.cache.ResultCache` logic runs unchanged over:

* :class:`LocalDiskBackend` — keys are files under one root directory,
  written tmp-then-``os.replace`` so a crash can never leave a torn
  visible object.  With the store's own root this reproduces the
  original on-disk layout byte for byte (it *is* the default).
* :class:`ObjectBackend` — keys are objects in an S3-style bucket
  reached through a client exposing ``put_object`` / ``get_object`` /
  ``delete_object`` / ``list_objects``.  Two in-process clients ship
  with it: :class:`MemoryObjectClient` (unit tests) and
  :class:`DirectoryObjectClient` (a bucket persisted as a flat
  directory — N service instances pointed at the same directory share
  one namespace, which is what the multi-node routing tests and the
  consistent-hash ring build on).

Backends are *namespaceable*: ``backend.scoped("traces")`` returns a
view with the prefix applied to every key, so one bucket cleanly holds
the trace store (``traces/``) and the result cache (``cache/``) without
the two ever seeing each other's keys.
"""

from __future__ import annotations

import os
import threading
import urllib.parse
import uuid
from pathlib import Path
from typing import Any, Iterable, Protocol

from repro.errors import ServiceError

__all__ = [
    "BackendMissing",
    "StorageBackend",
    "LocalDiskBackend",
    "ObjectBackend",
    "MemoryObjectClient",
    "DirectoryObjectClient",
    "make_backend",
    "BACKEND_KINDS",
]

#: Backend specs accepted by ``serve --backend`` / :func:`make_backend`.
BACKEND_KINDS = ("local", "object", "memory")


class BackendMissing(ServiceError):
    """A requested key does not exist in the backend."""

    def __init__(self, key: str):
        self.key = key
        super().__init__(f"no such stored object: {key}", status=404)


class StorageBackend:
    """Durable key/bytes storage with atomic, all-or-nothing writes."""

    #: short human name ("local", "object:<bucket>") for /metrics and logs.
    name: str = "backend"

    # -- required verbs ------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` atomically (overwrite allowed)."""
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        """Read a key's bytes; raises :class:`BackendMissing`."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove a key (missing keys are ignored — deletes are retried)."""
        raise NotImplementedError

    def keys(self, prefix: str = "") -> list[str]:
        """All keys under ``prefix``, sorted by name."""
        raise NotImplementedError

    def scoped(self, prefix: str) -> "StorageBackend":
        """A view of this backend with ``prefix/`` prepended to keys."""
        raise NotImplementedError

    # -- optional fast paths -------------------------------------------------

    def put_path(self, key: str, src: Path) -> None:
        """Adopt a fully-written local file as ``key``.

        The base implementation uploads a copy and leaves ``src`` in
        place (callers may reuse it as a local materialization);
        :class:`LocalDiskBackend` overrides this with a rename, which
        *consumes* ``src``.
        """
        self.put(key, src.read_bytes())

    def local_path(self, key: str) -> Path | None:
        """The key's bytes as a local file path, if directly addressable."""
        return None

    def size(self, key: str) -> int:
        return len(self.get(key))

    def keys_oldest_first(self, prefix: str = "") -> list[str]:
        """Keys ordered oldest-write-first where the backend knows; the
        fallback is name order (good enough to seed a cache trim order)."""
        return self.keys(prefix)


# ---------------------------------------------------------------------------
# Local disk
# ---------------------------------------------------------------------------


class LocalDiskBackend(StorageBackend):
    """Keys are files under ``root``; writes are tmp-then-``os.replace``.

    ``'/'`` in a key maps to a subdirectory.  Dotfiles under the root
    (``.stage-*``, ``.upload-*`` staging leftovers) are invisible to
    :meth:`keys` — they are working files, not stored objects.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.name = "local"

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if not path.is_relative_to(self.root.resolve()):
            raise ServiceError(f"invalid storage key: {key!r}")
        return path

    def put(self, key: str, data: bytes) -> None:
        dest = self._path(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        tmp = dest.parent / f".stage-{uuid.uuid4().hex}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, dest)

    def put_path(self, key: str, src: Path) -> None:
        dest = self._path(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dest)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise BackendMissing(key) from None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(self._iter_keys(prefix))

    def keys_oldest_first(self, prefix: str = "") -> list[str]:
        def mtime(key: str) -> float:
            try:
                return self._path(key).stat().st_mtime
            except OSError:
                return 0.0

        return sorted(self._iter_keys(prefix), key=lambda k: (mtime(k), k))

    def _iter_keys(self, prefix: str) -> Iterable[str]:
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name.startswith("."):
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                yield key

    def local_path(self, key: str) -> Path | None:
        path = self._path(key)
        return path if path.is_file() else None

    def size(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except OSError:
            raise BackendMissing(key) from None

    def scoped(self, prefix: str) -> "LocalDiskBackend":
        return LocalDiskBackend(self.root / prefix)


# ---------------------------------------------------------------------------
# S3-style object storage
# ---------------------------------------------------------------------------


class ObjectClient(Protocol):
    """The minimal S3-shaped surface :class:`ObjectBackend` consumes."""

    def put_object(self, key: str, data: bytes) -> None: ...

    def get_object(self, key: str) -> bytes:  # raises KeyError when absent
        ...

    def delete_object(self, key: str) -> None: ...

    def list_objects(self, prefix: str = "") -> list[str]: ...


class MemoryObjectClient:
    """In-process bucket fake: a thread-safe dict with S3 verbs.

    Object writes are replace-the-value atomic by construction, which
    is exactly the consistency model of a real object store — readers
    see the old blob or the new blob, never a torn one.
    """

    def __init__(self):
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.puts = 0
        self.gets = 0

    def put_object(self, key: str, data: bytes) -> None:
        with self._lock:
            self._objects[key] = bytes(data)
            self.puts += 1

    def get_object(self, key: str) -> bytes:
        with self._lock:
            self.gets += 1
            return self._objects[key]

    def delete_object(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def list_objects(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(k for k in self._objects if k.startswith(prefix))


class DirectoryObjectClient:
    """Bucket fake persisted as one flat directory (multi-process safe).

    Keys are percent-encoded into single filenames — no hierarchy on
    disk, exactly like an object store's flat namespace — and writes go
    through tmp-then-``os.replace``, so concurrent service instances
    sharing the directory get last-writer-wins atomic puts.  This is
    the backend the two-instance routing tests (and any on-box fleet)
    point at a shared path.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _fname(self, key: str) -> Path:
        return self.root / urllib.parse.quote(key, safe="")

    def put_object(self, key: str, data: bytes) -> None:
        dest = self._fname(key)
        tmp = self.root / f".put-{uuid.uuid4().hex}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, dest)

    def get_object(self, key: str) -> bytes:
        try:
            return self._fname(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def delete_object(self, key: str) -> None:
        self._fname(key).unlink(missing_ok=True)

    def list_objects(self, prefix: str = "") -> list[str]:
        out = []
        for path in self.root.iterdir():
            if not path.is_file() or path.name.startswith("."):
                continue
            key = urllib.parse.unquote(path.name)
            if key.startswith(prefix):
                out.append(key)
        return sorted(out)


class ObjectBackend(StorageBackend):
    """S3-style objects behind the :class:`StorageBackend` verbs.

    ``prefix`` namespaces every key (``scoped`` stacks further
    prefixes), so independent stores share one bucket/client without
    key collisions.  There is no local addressability: callers that
    need a file (worker processes read trace *files*) materialize
    through :meth:`get` — see ``TraceStore._materialize``.
    """

    def __init__(self, client: ObjectClient, prefix: str = "", name: str = "object"):
        self.client = client
        self.prefix = prefix
        self.name = name

    def _k(self, key: str) -> str:
        return f"{self.prefix}{key}"

    def put(self, key: str, data: bytes) -> None:
        self.client.put_object(self._k(key), data)

    def get(self, key: str) -> bytes:
        try:
            return self.client.get_object(self._k(key))
        except KeyError:
            raise BackendMissing(key) from None

    def exists(self, key: str) -> bool:
        try:
            self.client.get_object(self._k(key))
            return True
        except KeyError:
            return False

    def delete(self, key: str) -> None:
        self.client.delete_object(self._k(key))

    def keys(self, prefix: str = "") -> list[str]:
        full = self._k(prefix)
        return sorted(
            k[len(self.prefix):]
            for k in self.client.list_objects(full)
        )

    def scoped(self, prefix: str) -> "ObjectBackend":
        return ObjectBackend(
            self.client, prefix=f"{self.prefix}{prefix}/", name=self.name
        )


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def make_backend(
    spec: str, data_dir: str | Path, object_root: str | Path | None = None
) -> StorageBackend | None:
    """Resolve a ``serve --backend`` spec to a backend instance.

    * ``"local"`` → ``None``: the stores keep their original private
      local-disk layout (the default; on-disk format unchanged).
    * ``"object"`` → an :class:`ObjectBackend` over a
      :class:`DirectoryObjectClient` bucket at ``object_root``
      (default: ``<data_dir>/objects``).  Point several instances at
      one shared ``object_root`` to share the namespace.
    * ``"memory"`` → an :class:`ObjectBackend` over a private
      :class:`MemoryObjectClient` (tests and demos; nothing persists).
    """
    if spec == "local":
        return None
    if spec == "object":
        bucket = Path(object_root) if object_root is not None else Path(data_dir) / "objects"
        return ObjectBackend(
            DirectoryObjectClient(bucket), name=f"object:{bucket}"
        )
    if spec == "memory":
        return ObjectBackend(MemoryObjectClient(), name="object:memory")
    raise ServiceError(
        f"unknown storage backend {spec!r}; expected one of {', '.join(BACKEND_KINDS)}"
    )


def backend_stats(backend: StorageBackend | None) -> dict[str, Any]:
    """Small descriptor for /metrics (never lists objects — may be huge)."""
    if backend is None:
        return {"backend": "local"}
    return {"backend": backend.name}
