"""Paper Figs. 10 & 11: Radiosity 24-thread quantification tables.

Fig. 10 — contention probability along the critical path (paper:
tq[0].qlock 78.69% contended on the path, 7.01x invocation increase).
Fig. 11 — critical section sizes (paper: 39.15% CP from 4.76% average
hold, an 8.22x amplification).
"""

import pytest

from repro.experiments import fig10_11

from conftest import run_once


@pytest.mark.benchmark(group="fig10_11")
def test_fig10_11(benchmark, show):
    result = run_once(benchmark, fig10_11.run, nthreads=24, seed=0)
    show(result.render())
    f10 = result.values["fig10"]
    f11 = result.values["fig11"]
    tq0 = "tq[0].qlock"

    # Contention amplification (paper: 78.69% on-CP contention, 7.01x).
    assert f10[tq0]["cont_prob_on_cp"] > 0.6
    assert f10[tq0]["invocation_increase"] > 3.0
    assert f10[tq0]["invocations_on_cp"] > f10[tq0]["avg_invocations"]

    # Size amplification (paper: 8.22x).
    assert f11[tq0]["size_increase"] > 3.0
    assert f11[tq0]["cp_fraction"] > f11[tq0]["avg_hold_fraction"]

    # freeInter: lower on-CP contention than tq[0] (paper: 9.31% vs 78.69%).
    if "freeInter" in f10:
        assert f10["freeInter"]["cont_prob_on_cp"] < f10[tq0]["cont_prob_on_cp"]
