"""Trace deserialization (see :mod:`repro.trace.writer` for the formats)."""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.events import Event, EventType
from repro.trace.schema import EVENT_DTYPE
from repro.trace.trace import Trace
from repro.trace.writer import MAGIC, objects_from_header

__all__ = ["read_trace"]

_LEN_FMT = "<Q"
_LEN_SIZE = struct.calcsize(_LEN_FMT)


def read_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`repro.trace.write_trace`.

    The format is sniffed from the file contents, not the suffix, so
    renamed files still load.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
    if head == MAGIC:
        return _read_binary(path)
    if not head:
        raise TraceFormatError(f"{path}: empty file is not a trace")
    if len(head) < len(MAGIC):
        # Too short for the binary magic, and a JSONL trace needs at
        # least its header line — nothing valid is this small.
        raise TraceFormatError(
            f"{path}: file too short ({len(head)} bytes) to be a trace"
        )
    return _read_jsonl(path)


def _read_binary(path: Path) -> Trace:
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        raw_len = fh.read(_LEN_SIZE)
        if len(raw_len) != _LEN_SIZE:
            raise TraceFormatError(f"{path}: truncated header length")
        (header_len,) = struct.unpack(_LEN_FMT, raw_len)
        raw_header = fh.read(header_len)
        if len(raw_header) != header_len:
            raise TraceFormatError(f"{path}: truncated header")
        try:
            header = json.loads(raw_header)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: corrupt header: {exc}") from exc
        body = fh.read()
    nevents = int(header.get("nevents", 0))
    expected = nevents * EVENT_DTYPE.itemsize
    if len(body) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} bytes of records for {nevents} events, got {len(body)}"
        )
    records = np.frombuffer(body, dtype=EVENT_DTYPE).copy()
    return Trace(
        records=records,
        objects=objects_from_header(header),
        threads={int(t): name for t, name in header.get("threads", {}).items()},
        meta=header.get("meta", {}),
    )


def _read_jsonl(path: Path) -> Trace:
    events: list[Event] = []
    header = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(f"{path}:{lineno}: not JSON: {exc}") from exc
                if "header" in obj:
                    header = obj["header"]
                    continue
                try:
                    events.append(
                        Event(
                            seq=int(obj["seq"]),
                            time=float(obj["time"]),
                            tid=int(obj["tid"]),
                            etype=EventType[obj["etype"]],
                            obj=int(obj.get("obj", -1)),
                            arg=int(obj.get("arg", 0)),
                        )
                    )
                except (KeyError, ValueError) as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad event record: {exc}"
                    ) from exc
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{path}: neither a binary .clt trace (bad magic) nor UTF-8 JSONL: {exc}"
        ) from exc
    if header is None:
        raise TraceFormatError(f"{path}: missing JSONL header line")
    return Trace.from_events(
        events,
        objects=objects_from_header(header),
        threads={int(t): name for t, name in header.get("threads", {}).items()},
        meta=header.get("meta", {}),
    )
