"""Backward-walk critical path: paper examples and invariants."""

import pytest

from repro.core.critical_path import compute_critical_path
from repro.core.model import WaitKind
from repro.trace.builder import TraceBuilder

from tests.conftest import make_micro_program


def test_handoff_path(handoff_trace):
    cp = compute_critical_path(handoff_trace)
    assert [(p.tid, p.start, p.end) for p in cp.pieces] == [
        (0, 0.0, 4.0),
        (1, 4.0, 6.0),
    ]
    assert cp.length == 6.0
    assert cp.coverage_error == 0.0
    (j,) = cp.junctions
    assert (j.from_tid, j.to_tid, j.kind) == (0, 1, WaitKind.LOCK)


def test_micro_benchmark_path():
    """The paper's Fig. 7 execution: the path snakes through the L2 chain."""
    trace = make_micro_program().run().trace
    cp = compute_critical_path(trace)
    assert cp.length == pytest.approx(12.0)
    assert cp.coverage_error == 0.0
    # Pieces: T0 [0,4.5] then T1..T3 [+2.5 each].
    expected = [(0, 0.0, 4.5), (1, 4.5, 7.0), (2, 7.0, 9.5), (3, 9.5, 12.0)]
    assert [(p.tid, p.start, p.end) for p in cp.pieces] == expected
    # Each crossing is an L2 handoff.
    assert all(j.kind == WaitKind.LOCK for j in cp.junctions)
    assert cp.junction_count(obj=1, kind=WaitKind.LOCK) == 3  # L2 is obj 1


def test_pieces_tile_execution(micro_trace):
    cp = compute_critical_path(micro_trace)
    assert cp.pieces[0].start == micro_trace.start_time
    assert cp.pieces[-1].end == micro_trace.end_time
    for a, b in zip(cp.pieces, cp.pieces[1:]):
        assert a.end == b.start


def test_barrier_path_goes_through_last_arriver():
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    t0, t1 = b.thread("fast"), b.thread("slow")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.barrier(bar, arrive=1.0, depart=3.0, gen=0)
    t1.barrier(bar, arrive=3.0, depart=3.0, gen=0)
    t0.exit(at=5.0)
    t1.exit(at=4.0)
    cp = compute_critical_path(b.build())
    # Path: slow thread until the barrier (it gated everyone), then fast
    # thread to its exit at 5.
    assert [(p.tid, p.start, p.end) for p in cp.pieces] == [
        (1, 0.0, 3.0),
        (0, 3.0, 5.0),
    ]
    assert cp.junctions[0].kind == WaitKind.BARRIER


def test_creation_junction():
    b = TraceBuilder()
    t0, t1 = b.thread("main"), b.thread("child")
    t0.start(at=0.0)
    t0.create(t1, at=1.0)
    t1.start(at=1.0)
    t0.exit(at=2.0)
    t1.exit(at=5.0)
    cp = compute_critical_path(b.build())
    assert [(p.tid, p.start, p.end) for p in cp.pieces] == [
        (0, 0.0, 1.0),
        (1, 1.0, 5.0),
    ]
    (j,) = cp.junctions
    assert j.kind is None and j.obj == -1


def test_join_junction():
    b = TraceBuilder()
    t0, t1 = b.thread("main"), b.thread("child")
    t0.start(at=0.0)
    t0.create(t1, at=0.0)
    t1.start(at=0.0)
    t1.exit(at=4.0)
    t0.join(t1, begin=1.0, end=4.0)
    t0.exit(at=5.0)
    cp = compute_critical_path(b.build())
    # A zero-length leading piece on main (start -> create at t=0) is fine.
    positive = [(p.tid, p.start, p.end) for p in cp.pieces if p.duration > 0]
    assert positive == [
        (1, 0.0, 4.0),
        (0, 4.0, 5.0),
    ]
    assert any(j.kind == WaitKind.JOIN for j in cp.junctions)


def test_empty_trace():
    from repro.trace.trace import Trace

    cp = compute_critical_path(Trace.from_events([]))
    assert cp.pieces == []
    assert cp.length == 0.0


def test_single_thread_path():
    b = TraceBuilder()
    lock = b.mutex("L")
    t = b.thread()
    t.start(at=0.0)
    t.critical_section(lock, acquire=1.0, obtain=1.0, release=2.0)
    t.exit(at=3.0)
    cp = compute_critical_path(b.build())
    assert [(p.tid, p.start, p.end) for p in cp.pieces] == [(0, 0.0, 3.0)]
    assert cp.junctions == []


def test_cond_junction_on_path():
    """A signal sent while not holding the mutex leaves the condition
    wait as the woken thread's last delay -> CONDITION junction."""
    from repro.sim import Program

    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")

    def waiter(env):
        yield env.acquire(lock)
        yield env.cond_wait(cv, lock)
        yield env.release(lock)
        yield env.compute(1.0)

    def signaller(env):
        yield env.compute(2.0)
        yield env.cond_signal(cv)  # mutex NOT held: reacquire is instant

    prog.spawn(waiter)
    prog.spawn(signaller)
    cp = compute_critical_path(prog.run().trace)
    assert any(j.kind == WaitKind.CONDITION for j in cp.junctions)
    assert cp.length == pytest.approx(3.0)


def test_simultaneous_zero_length_chain_terminates():
    """Chains of same-time handoffs must not loop (seq strictly decreases)."""
    b = TraceBuilder()
    lock = b.mutex("L")
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    for t in (t0, t1, t2):
        t.start(at=0.0)
    t0.critical_section(lock, acquire=0.0, obtain=0.0, release=1.0)
    t1.critical_section(lock, acquire=0.5, obtain=1.0, release=1.0)  # zero hold
    t2.critical_section(lock, acquire=0.5, obtain=1.0, release=1.0)  # zero hold
    t0.exit(at=1.0)
    t1.exit(at=1.0)
    t2.exit(at=1.0)
    cp = compute_critical_path(b.build(validate=False))
    assert cp.length == pytest.approx(1.0)
