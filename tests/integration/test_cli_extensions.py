"""CLI tests for the extension features (chart/windows/lock-order/model/compare)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def micro_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "micro.clt"
    assert main(["run", "micro", "-t", "4", "-o", str(path)]) == 0
    return path


def test_chart(micro_trace_path, capsys):
    assert main(["analyze", str(micro_trace_path), "--chart"]) == 0
    out = capsys.readouterr().out
    assert "lock criticality profile" in out
    assert "#" in out


def test_windows(micro_trace_path, capsys):
    assert main(["analyze", str(micro_trace_path), "--windows", "4"]) == 0
    out = capsys.readouterr().out
    assert "criticality over time" in out
    assert "Dominant" in out


def test_lock_order(micro_trace_path, capsys):
    assert main(["analyze", str(micro_trace_path), "--lock-order"]) == 0
    out = capsys.readouterr().out
    assert "Lock-order graph" in out
    assert "no lock-order cycles" in out


def test_model(micro_trace_path, capsys):
    assert main(["analyze", str(micro_trace_path), "--model"]) == 0
    out = capsys.readouterr().out
    assert "Eyerman-Eeckhout model" in out
    assert "model speedup @ 8 threads" in out


def test_compare(tmp_path, capsys):
    before = tmp_path / "before.clt"
    after = tmp_path / "after.clt"
    assert main(["run", "micro", "-t", "4", "-o", str(before)]) == 0
    assert main([
        "run", "micro", "-t", "4", "-p", "optimize=L2", "-o", str(after)
    ]) == 0
    capsys.readouterr()
    assert main(["compare", str(before), str(after)]) == 0
    out = capsys.readouterr().out
    assert "end to end" in out
    assert "+26." in out  # 12.0 -> 9.5 is +26.3%
