"""Scalability forecasting: bounds, saturation points, validation."""

import pytest

from repro.core.analyzer import analyze
from repro.core.forecast import forecast
from repro.errors import AnalysisError
from repro.workloads import MicroBenchmark, Radiosity, SyntheticLocks

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_forecast():
    return forecast(analyze(make_micro_program().run().trace))


def test_micro_bounds_exact(micro_forecast):
    f = micro_forecast
    # Total work: 4 threads x 4.5 each.
    assert f.total_work == pytest.approx(18.0)
    # L2's serialization bound: 4 x 2.5 = 10; L1: 8.
    assert f.locks[0].name == "L2"
    assert f.locks[0].serial_demand == pytest.approx(10.0)
    assert f.locks[1].serial_demand == pytest.approx(8.0)


def test_completion_bounds(micro_forecast):
    f = micro_forecast
    assert f.completion_time(1) == pytest.approx(18.0)
    # At 4 threads the L2 bound (10) dominates work/4 = 4.5.
    assert f.completion_time(4) == pytest.approx(10.0)
    # The real 4-thread run takes 12.0: the forecast is a lower bound.
    assert f.completion_time(4) <= 12.0


def test_saturation_point(micro_forecast):
    f = micro_forecast
    l2 = f.locks[0]
    # L2 saturates at W / demand = 18/10 = 1.8 threads.
    assert l2.saturation_threads(f.total_work) == pytest.approx(1.8)
    assert f.first_saturating_lock().name == "L2"
    assert f.bottleneck_lock(4).name == "L2"
    assert f.bottleneck_lock(1) is None  # work-bound at 1 thread


def test_cp_share_forecast(micro_forecast):
    # At saturation, L2's forecast CP share is demand/bound = 1.0.
    assert micro_forecast.cp_share_forecast("L2", 8) == pytest.approx(1.0)
    assert micro_forecast.cp_share_forecast("L1", 8) == pytest.approx(0.8)


def test_forecast_from_low_thread_profile_predicts_high_thread_bottleneck():
    """Profile radiosity at 4 threads; the forecast must name tq[0].qlock
    as the first saturating lock — which the 24-thread run confirms."""
    profile = analyze(Radiosity().run(nthreads=4, seed=0).trace)
    f = forecast(profile)
    assert f.first_saturating_lock().name == "tq[0].qlock"
    measured = analyze(Radiosity().run(nthreads=24, seed=0).trace)
    assert measured.report.top_locks(1)[0].name == "tq[0].qlock"


def test_forecast_lower_bounds_measured_times():
    wl = SyntheticLocks(nlocks=2, ops_per_thread=80, zipf_skew=1.5)
    profile = analyze(wl.run(nthreads=4, seed=6).trace)
    f = forecast(profile)
    # Strong-scaling comparison requires fixed total work: rescale ops.
    for n in (8, 16):
        scaled = SyntheticLocks(
            nlocks=2, ops_per_thread=80 * 4 // n, zipf_skew=1.5
        )
        measured = scaled.run(nthreads=n, seed=6).completion_time
        assert f.completion_time(n) <= measured * 1.1


def test_unknown_lock(micro_forecast):
    with pytest.raises(AnalysisError, match="no lock named"):
        micro_forecast.cp_share_forecast("nope", 4)


def test_invalid_n(micro_forecast):
    with pytest.raises(AnalysisError, match="n must be"):
        micro_forecast.completion_time(0)


def test_no_locks():
    from repro.sim import Program

    prog = Program()
    prog.spawn(lambda env: (yield env.compute(2.0)))
    f = forecast(analyze(prog.run().trace))
    assert f.locks == []
    assert f.bottleneck_lock(64) is None
    assert f.completion_time(2) == pytest.approx(1.0)


def test_render(micro_forecast):
    text = micro_forecast.render()
    assert "Saturates at N" in text
    assert "L2" in text
