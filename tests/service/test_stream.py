"""Streaming ingestion: chunked append, backpressure, finalize identity."""

import json
import time

import numpy as np
import pytest

from repro.core.analyzer import analyze
from repro.errors import ServiceError
from repro.service.api import ServiceAPI
from repro.service.jobs import execute
from repro.trace.digest import trace_digest
from repro.trace.framing import encode_records_frame, encode_trailer_frame, split_records
from repro.trace.writer import header_dict, write_trace

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro():
    return make_micro_program().run().trace


@pytest.fixture
def api(tmp_path):
    with ServiceAPI(tmp_path / "svc", workers=0) as a:
        yield a


def _post_json(api, path, payload):
    return api.handle("POST", path, json.dumps(payload).encode())


def _stream_all(api, sid, records, chunk_events=7):
    for cid, block in enumerate(split_records(records, chunk_events)):
        status, ack = api.handle(
            "POST", f"/traces/{sid}/chunks", encode_records_frame(block, cid)
        )
        assert status == 202, ack
    return ack


def _wait_drained(api, sid, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = api.handle("GET", f"/streams/{sid}")
        if status["pending_chunks"] == 0:
            return status
        time.sleep(0.01)
    raise AssertionError(f"ingest never drained: {status}")


def _open(api, **payload):
    status, session = _post_json(api, "/streams", payload)
    assert status == 201
    return session["id"]


class TestLifecycle:
    def test_open_and_list(self, api):
        sid = _open(api, name="s1")
        status, listing = api.handle("GET", "/streams")
        assert status == 200
        assert [s["id"] for s in listing["streams"]] == [sid]
        assert listing["streams"][0]["state"] == "open"

    def test_unknown_session_404(self, api, micro):
        status, err = api.handle(
            "POST", "/traces/nope/chunks", encode_records_frame(micro.records, 0)
        )
        assert status == 404

    def test_malformed_body_400(self, api):
        sid = _open(api)
        status, err = api.handle("POST", f"/traces/{sid}/chunks", b"garbage!!")
        assert status == 400
        assert "malformed" in err["error"]

    def test_trailer_frame_rejected(self, api, micro):
        sid = _open(api)
        status, err = api.handle(
            "POST", f"/traces/{sid}/chunks",
            encode_trailer_frame(header_dict(micro), 0),
        )
        assert status == 409
        assert "finalize" in err["error"]


class TestSequencing:
    def test_duplicate_chunk_is_idempotent(self, api, micro):
        sid = _open(api)
        blob = encode_records_frame(micro.records[:10], 0)
        s1, a1 = api.handle("POST", f"/traces/{sid}/chunks", blob)
        s2, a2 = api.handle("POST", f"/traces/{sid}/chunks", blob)
        assert (s1, s2) == (202, 202)
        assert a1["accepted"] == 1 and a2["accepted"] == 0
        assert a2["duplicates"] == 1
        assert a2["events"] == 10  # not double-ingested

    def test_gap_rejected_409(self, api, micro):
        sid = _open(api)
        status, err = api.handle(
            "POST", f"/traces/{sid}/chunks",
            encode_records_frame(micro.records[:5], 3),
        )
        assert status == 409
        assert "gap" in err["error"]

    def test_multiple_frames_per_body(self, api, micro):
        sid = _open(api)
        body = encode_records_frame(micro.records[:10], 0) + encode_records_frame(
            micro.records[10:], 1
        )
        status, ack = api.handle("POST", f"/traces/{sid}/chunks", body)
        assert status == 202 and ack["accepted"] == 2
        assert ack["events"] == len(micro.records)


class TestBackpressure:
    def test_full_queue_answers_429(self, api, micro):
        api.streams.pause_ingest()
        sid = _open(api, max_pending=2)
        blocks = list(split_records(micro.records, 4))
        codes = []
        for cid, block in enumerate(blocks[:3]):
            status, _ = api.handle(
                "POST", f"/traces/{sid}/chunks", encode_records_frame(block, cid)
            )
            codes.append(status)
        assert codes == [202, 202, 429]
        api.streams.resume_ingest()
        _wait_drained(api, sid)
        # The rejected chunk id was not consumed: retrying it succeeds.
        status, ack = api.handle(
            "POST", f"/traces/{sid}/chunks", encode_records_frame(blocks[2], 2)
        )
        assert status == 202 and ack["accepted"] == 1

    def test_backpressure_counted_in_metrics(self, api, micro):
        api.streams.pause_ingest()
        sid = _open(api, max_pending=1)
        for cid in range(2):
            api.handle(
                "POST", f"/traces/{sid}/chunks",
                encode_records_frame(micro.records[:4], cid),
            )
        api.streams.resume_ingest()
        _, m = api.handle("GET", "/metrics")
        assert m["streams"]["backpressure_429"] == 1


class TestSnapshot:
    def test_rolling_snapshot_counts_events(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _wait_drained(api, sid)
        status, snap = api.handle("GET", f"/streams/{sid}/snapshot")
        assert status == 200
        assert snap["events"] == len(micro.records)
        assert snap["nlocks"] == 2
        assert snap["state"] == "open"

    def test_snapshot_top_and_render(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _wait_drained(api, sid)
        status, snap = api.handle(
            "GET", f"/streams/{sid}/snapshot", query={"top": "1", "render": "1"}
        )
        assert len(snap["locks"]) == 1
        assert "Max dependent chain" in snap["rendered"]


class TestFinalize:
    def test_digest_identical_to_batch_upload(self, api, micro, tmp_path):
        sid = _open(api, name="micro")
        _stream_all(api, sid, micro.records)
        status, fin = _post_json(
            api, f"/traces/{sid}/finalize", {"header": header_dict(micro)}
        )
        assert status == 200
        assert fin["trace"]["digest"] == trace_digest(micro)
        assert fin["stream"]["state"] == "finalized"

    def test_rendered_report_byte_identical_to_batch(self, api, micro, tmp_path):
        path = write_trace(micro, tmp_path / "batch.clt")
        batch = execute("analyze", [str(path)], {"render": True, "top": 10})

        sid = _open(api)
        _stream_all(api, sid, micro.records, chunk_events=5)
        status, fin = _post_json(
            api,
            f"/traces/{sid}/finalize",
            {"header": header_dict(micro), "analyze": True,
             "params": {"render": True, "top": 10}},
        )
        assert status == 200
        assert fin["report"]["rendered"] == batch["rendered"]

    def test_out_of_order_arrival_normalized(self, api, micro):
        # Chunk the records in *reverse* order: framing preserves bytes,
        # finalize re-sorts, so the digest still matches.
        sid = _open(api)
        rev = micro.records[::-1].copy()
        _stream_all(api, sid, rev)
        _, fin = _post_json(
            api, f"/traces/{sid}/finalize", {"header": header_dict(micro)}
        )
        assert fin["trace"]["digest"] == trace_digest(micro)

    def test_reconciliation_counters_exact(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _, fin = _post_json(
            api,
            f"/traces/{sid}/finalize",
            {"header": header_dict(micro), "analyze": True},
        )
        rec = fin["reconciliation"]
        assert rec["counters_exact"]
        assert rec["top_lock_agrees"]
        assert rec["ranking_exact"][0] == "L2"
        exact = analyze(micro).report
        assert rec["exact_cp_time"] == pytest.approx(exact.duration)

    def test_finalize_twice_409(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _post_json(api, f"/traces/{sid}/finalize", {"header": header_dict(micro)})
        status, err = _post_json(
            api, f"/traces/{sid}/finalize", {"header": header_dict(micro)}
        )
        assert status == 409

    def test_chunks_after_finalize_409(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _post_json(api, f"/traces/{sid}/finalize", {"header": header_dict(micro)})
        status, err = api.handle(
            "POST", f"/traces/{sid}/chunks",
            encode_records_frame(micro.records[:5], 99),
        )
        assert status == 409

    def test_names_from_header_in_final_snapshot(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        _, fin = _post_json(
            api, f"/traces/{sid}/finalize", {"header": header_dict(micro)}
        )
        names = {l["name"] for l in fin["snapshot"]["locks"]}
        assert names == {"L1", "L2"}

    def test_spool_removed_after_finalize(self, api, micro):
        sid = _open(api)
        _stream_all(api, sid, micro.records)
        spool = api.streams.get(sid).spool_path
        _post_json(api, f"/traces/{sid}/finalize", {"header": header_dict(micro)})
        assert not spool.exists()


class TestStoreDirect:
    """StreamStore unit behavior not reachable through the HTTP surface."""

    def test_closed_store_rejects_open(self, tmp_path):
        from repro.service.stream import StreamStore

        store = StreamStore(tmp_path / "s")
        store.close()
        with pytest.raises(ServiceError, match="closed"):
            store.open()

    def test_finalize_drain_timeout_504_reopens(self, tmp_path, micro):
        from repro.service.stream import StreamStore

        store = StreamStore(tmp_path / "s")
        try:
            store.pause_ingest()
            session = store.open()
            store.append_chunks(
                session.id, encode_records_frame(micro.records[:5], 0)
            )
            with pytest.raises(ServiceError, match="did not drain"):
                store.finalize(session.id, timeout=0.1)
            assert session.state == "open"  # caller may retry
            store.resume_ingest()
            _, trace = store.finalize(session.id, header=header_dict(micro))
            assert len(trace) == 5
        finally:
            store.close()

    def test_service_memory_stays_bounded(self, tmp_path, micro):
        # The pending queue never holds more than max_pending chunks; the
        # rest of the stream lives in the disk spool.
        from repro.service.stream import StreamStore

        store = StreamStore(tmp_path / "s", max_pending_chunks=4)
        try:
            session = store.open()
            for cid, block in enumerate(split_records(micro.records, 2)):
                while True:
                    try:
                        store.append_chunks(
                            session.id, encode_records_frame(block, cid)
                        )
                        break
                    except ServiceError as exc:
                        assert exc.status == 429
                        time.sleep(0.005)
                assert len(session.pending) <= 4
            _, trace = store.finalize(session.id, header=header_dict(micro))
            assert np.array_equal(trace.records, micro.records)
        finally:
            store.close()
