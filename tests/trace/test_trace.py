"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.schema import records_from_events
from repro.trace.trace import ObjectInfo, Trace


def two_thread_events():
    return [
        Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START),
        Event(seq=1, time=0.0, tid=1, etype=EventType.THREAD_START),
        Event(seq=2, time=1.0, tid=0, etype=EventType.ACQUIRE, obj=0),
        Event(seq=3, time=1.0, tid=0, etype=EventType.OBTAIN, obj=0),
        Event(seq=4, time=2.0, tid=0, etype=EventType.RELEASE, obj=0),
        Event(seq=5, time=3.0, tid=0, etype=EventType.THREAD_EXIT),
        Event(seq=6, time=4.0, tid=1, etype=EventType.THREAD_EXIT),
    ]


def make_trace():
    return Trace.from_events(
        two_thread_events(),
        objects={0: ObjectInfo(obj=0, kind=ObjectKind.MUTEX, name="L")},
        threads={0: "a", 1: "b"},
        meta={"name": "t"},
    )


class TestConstruction:
    def test_wrong_dtype_rejected(self):
        with pytest.raises(TraceError, match="dtype"):
            Trace(records=np.zeros(3, dtype=np.float64))

    def test_unsorted_seq_rejected(self):
        events = two_thread_events()
        records = records_from_events(events)
        records["seq"] = records["seq"][::-1].copy()
        with pytest.raises(TraceError, match="seq"):
            Trace(records=records)

    def test_time_seq_mismatch_rejected(self):
        events = two_thread_events()
        records = records_from_events(events)
        records["time"][2] = 10.0  # later than everything after it
        with pytest.raises(TraceError, match="time order"):
            Trace(records=records)

    def test_from_events_sorts_and_renumbers(self):
        events = list(reversed(two_thread_events()))
        trace = Trace.from_events(events)
        times = [ev.time for ev in trace]
        assert times == sorted(times)
        assert [ev.seq for ev in trace] == list(range(len(events)))


class TestAccessors:
    def test_len_iter_getitem(self):
        trace = make_trace()
        assert len(trace) == 7
        assert trace[0].etype == EventType.THREAD_START
        assert sum(1 for _ in trace) == 7

    def test_duration(self):
        trace = make_trace()
        assert trace.start_time == 0.0
        assert trace.end_time == 4.0
        assert trace.duration == 4.0

    def test_empty_trace_duration(self):
        trace = Trace.from_events([])
        assert trace.duration == 0.0
        with pytest.raises(TraceError, match="empty"):
            trace.last_finished_thread()

    def test_thread_ids_and_names(self):
        trace = make_trace()
        assert trace.thread_ids == [0, 1]
        assert trace.thread_name(0) == "a"
        assert trace.thread_name(99) == "T99"

    def test_object_lookup(self):
        trace = make_trace()
        assert trace.object_name(0) == "L"
        assert trace.object_name(5) == "obj#5"
        with pytest.raises(TraceError, match="unknown"):
            trace.object_info(5)

    def test_locks_property(self):
        trace = make_trace()
        assert [info.name for info in trace.locks] == ["L"]

    def test_objects_of_kind(self):
        trace = make_trace()
        assert len(trace.objects_of_kind(ObjectKind.MUTEX)) == 1
        assert trace.objects_of_kind(ObjectKind.BARRIER) == []

    def test_for_thread_and_object(self):
        trace = make_trace()
        assert len(trace.for_thread(0)) == 5
        assert len(trace.for_thread(1)) == 2
        assert len(trace.for_object(0)) == 3

    def test_count(self):
        trace = make_trace()
        assert trace.count(EventType.THREAD_START) == 2
        assert trace.count(EventType.OBTAIN) == 1

    def test_thread_span(self):
        trace = make_trace()
        assert trace.thread_span(0) == (0.0, 3.0)
        with pytest.raises(TraceError, match="no events"):
            trace.thread_span(7)

    def test_last_finished_thread(self):
        assert make_trace().last_finished_thread() == 1

    def test_display_name_fallback(self):
        info = ObjectInfo(obj=3, kind=ObjectKind.BARRIER, name="")
        assert info.display_name == "barrier#3"
