"""Chunk sinks: where the flusher's framed record blocks go.

Both sinks speak the same two-call protocol — :meth:`write_chunk` per
record batch, one :meth:`finalize` with the trace header — and both
assign sequential chunk ids, which is what makes retries idempotent on
the service side.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.trace.framing import encode_records_frame, encode_trailer_frame

__all__ = ["ChunkSink", "ChunkFileSink", "ServiceSink"]


class ChunkSink:
    """Protocol base: sequentially-numbered chunks, one finalize."""

    def write_chunk(self, records: np.ndarray) -> None:
        raise NotImplementedError

    def finalize(self, header: dict[str, Any]) -> Any:
        raise NotImplementedError


class ChunkFileSink(ChunkSink):
    """Append framed chunks to a ``.cls`` stream container on disk.

    The file is readable *while growing* via
    :func:`repro.trace.read_trace` / ``iter_trace_chunks(follow=True)``;
    :meth:`finalize` writes the trailer frame (the JSON header) that
    marks it complete.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._next = 0
        self.chunks = 0
        self.events = 0

    def write_chunk(self, records: np.ndarray) -> None:
        self._fh.write(encode_records_frame(records, self._next))
        self._fh.flush()
        self._next += 1
        self.chunks += 1
        self.events += len(records)

    def finalize(self, header: dict[str, Any]) -> Path:
        self._fh.write(encode_trailer_frame(header, self._next))
        self._fh.flush()
        self._fh.close()
        return self.path

    def abort(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class ServiceSink(ChunkSink):
    """Ship chunks to the analysis service's chunked-append endpoint.

    Backpressure (429) is handled inside
    :meth:`~repro.service.client.ServiceClient.send_chunk` — the sink
    retries with exponential backoff, and a retried chunk id is an
    idempotent duplicate server-side.
    """

    def __init__(
        self,
        client,
        name: str = "",
        meta: dict | None = None,
        analyze: bool = False,
        params: dict | None = None,
    ):
        self.client = client
        self.session_id = client.open_stream(name=name, meta=meta)
        self.analyze = analyze
        self.params = params
        self._next = 0
        self.chunks = 0
        self.events = 0

    def write_chunk(self, records: np.ndarray) -> None:
        self.client.send_chunk(self.session_id, self._next, records)
        self._next += 1
        self.chunks += 1
        self.events += len(records)

    def finalize(self, header: dict[str, Any]) -> dict[str, Any]:
        return self.client.finalize_stream(
            self.session_id, header, analyze=self.analyze, params=self.params
        )
