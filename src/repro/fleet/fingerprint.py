"""Stable lock identity across traces, runs and uploads.

A lock's per-run display name is noisy: auto-generated names embed the
object id (``mutex#42``), per-instance names embed pool or shard
indices (``tq[3].qlock``), and a re-run with a different seed shuffles
both.  Fleet aggregation needs the opposite — one identity per *site*
(the place in the workload that allocates the lock) that every run of
the workload maps to, so thousands of stored traces can be clustered
and compared.

:func:`canonical_site` collapses exactly the run-varying parts of a
display name; :func:`fingerprint_lock` hashes ``(workload, site)`` into
a short stable id.  Deterministic per-run indices that *are* the
identity (``L1`` vs ``L2`` in the paper's micro-benchmark) survive
untouched: only bracketed indices and ``#<objid>`` suffixes are
canonicalized.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Any

__all__ = ["LockFingerprint", "canonical_site", "fingerprint_lock", "workload_of"]

#: ``tq[3].qlock`` -> ``tq[*].qlock`` (pool/shard instance index).
_BRACKET_INDEX = re.compile(r"\[\d+\]")
#: ``mutex#42`` -> ``mutex#*`` (auto-generated display names embed the
#: run-local object id, which no two runs agree on).
_OBJ_ID_SUFFIX = re.compile(r"#\d+$")


def canonical_site(name: str) -> str:
    """Collapse the run-varying parts of a lock display name."""
    site = _BRACKET_INDEX.sub("[*]", name)
    site = _OBJ_ID_SUFFIX.sub("#*", site)
    return site


@dataclass(frozen=True)
class LockFingerprint:
    """One lock site's fleet-wide identity."""

    fingerprint: str
    workload: str
    site: str

    def to_dict(self) -> dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "workload": self.workload,
            "site": self.site,
        }


def fingerprint_lock(workload: str, name: str) -> LockFingerprint:
    """Fingerprint one lock: stable across tids, seeds and object ids."""
    site = canonical_site(name)
    digest = hashlib.sha256(
        f"{workload}\x00{site}".encode("utf-8")
    ).hexdigest()[:16]
    return LockFingerprint(fingerprint=digest, workload=workload, site=site)


def workload_of(meta: dict[str, Any] | None, fallback: str = "") -> str:
    """Workload tag for a trace: recorded metadata, else the stored name.

    Workload runs record ``meta["workload"]``; hand-built and imported
    traces usually carry ``meta["name"]``.  The last resort is whatever
    name the store indexed the trace under — still stable across
    re-uploads of the same workload.
    """
    meta = meta or {}
    for key in ("workload", "name"):
        value = meta.get(key)
        if isinstance(value, str) and value:
            return value
    return fallback or "unknown"
