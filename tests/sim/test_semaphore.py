"""Semaphore semantics: counting, blocking at zero, FIFO handoff."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Program


def test_counting_allows_k_holders():
    prog = Program()
    sem = prog.semaphore(2, "S")

    def body(env, i):
        yield env.sem_acquire(sem)
        yield env.compute(1.0)
        yield env.sem_release(sem)

    prog.spawn_workers(4, body)
    # 4 holders, 2 slots, 1.0 each => 2 waves.
    assert prog.run().completion_time == 2.0


def test_binary_semaphore_serializes():
    prog = Program()
    sem = prog.semaphore(1, "S")

    def body(env, i):
        yield env.sem_acquire(sem)
        yield env.compute(1.0)
        yield env.sem_release(sem)

    prog.spawn_workers(3, body)
    assert prog.run().completion_time == 3.0


def test_zero_semaphore_used_for_signalling():
    prog = Program()
    sem = prog.semaphore(0, "S")
    woke_at = []

    def waiter(env):
        yield env.sem_acquire(sem)
        woke_at.append(env.now)

    def poster(env):
        yield env.compute(2.5)
        yield env.sem_release(sem)

    prog.spawn(waiter)
    prog.spawn(poster)
    prog.run()
    assert woke_at == [2.5]


def test_release_without_hold_allowed():
    # Semaphores (unlike mutexes) may be released by any thread.
    prog = Program()
    sem = prog.semaphore(0, "S")

    def body(env):
        yield env.sem_release(sem)
        yield env.sem_acquire(sem)

    prog.spawn(body)
    prog.run()
    assert sem.value == 0


def test_starved_semaphore_deadlocks():
    prog = Program()
    sem = prog.semaphore(0, "S")

    def body(env):
        yield env.sem_acquire(sem)

    prog.spawn(body)
    with pytest.raises(DeadlockError):
        prog.run()


def test_negative_initial_value_rejected():
    prog = Program()
    with pytest.raises(SimulationError, match="semaphore value"):
        prog.semaphore(-1, "S")


def test_fifo_wakeup_order():
    prog = Program()
    sem = prog.semaphore(0, "S")
    order = []

    def waiter(env, i):
        yield env.compute(i * 0.1)
        yield env.sem_acquire(sem)
        order.append(i)

    def poster(env):
        yield env.compute(1.0)
        for _ in range(3):
            yield env.sem_release(sem)

    prog.spawn_workers(3, waiter)
    prog.spawn(poster)
    prog.run()
    assert order == [0, 1, 2]
