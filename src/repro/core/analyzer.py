"""The analysis façade: one call from trace to report.

Mirrors the paper's post-processing analysis module (Fig. 3): validate
the trace, build timelines, resolve wakers, run the backward critical-
path walk, compute TYPE 1 / TYPE 2 metrics and wrap everything in an
:class:`AnalysisReport`.

Two engines implement the pipeline:

* ``engine="columnar"`` (default) keeps the trace's numpy columns end to
  end (:mod:`repro.core.columnar`) and only materializes
  ``Wait``/``HoldInterval``/``ThreadTimeline`` objects lazily, when a
  caller actually reads :attr:`AnalysisResult.timelines` or
  :attr:`AnalysisResult.wakers` (the DAG, what-if and viz layers do);
* ``engine="object"`` is the original per-event object pipeline, kept
  as an escape hatch and as the differential baseline — the
  ``engine-equiv`` invariant of ``repro.check`` holds the two to
  bit-identical output on every fuzzed seed.
"""

from __future__ import annotations

from functools import cached_property

from repro.core.columnar.metrics import (
    compute_metrics_columnar,
    compute_thread_stats_columnar,
)
from repro.core.columnar.timelines import ColumnarTimelines, build_timelines_columnar
from repro.core.columnar.wakers import ColumnarWakers, resolve_wakers_columnar
from repro.core.columnar.walk import compute_critical_path_columnar
from repro.core.critical_path import CriticalPath, compute_critical_path
from repro.core.dag import EventGraph, build_event_graph
from repro.core.metrics import compute_metrics, compute_thread_stats
from repro.core.model import ThreadTimeline
from repro.core.report import AnalysisReport
from repro.core.segments import build_timelines
from repro.core.wakers import WakerTable, resolve_wakers
from repro.core.whatif import WhatIfResult, predict_no_contention, predict_shrink
from repro.trace.trace import Trace
from repro.trace.validate import validate_trace

__all__ = ["AnalysisResult", "analyze"]

#: Valid values for ``analyze(engine=...)``.
ENGINES = ("columnar", "object")


class AnalysisResult:
    """Everything produced by one analysis pass over a trace.

    ``wakers`` and ``timelines`` are materialized lazily when the result
    came from the columnar engine: the hot path never builds per-event
    Python objects, but every downstream consumer (DAG cross-check,
    what-if, viz, export) still sees the exact object-engine structures
    on first access.
    """

    def __init__(
        self,
        trace: Trace,
        critical_path: CriticalPath,
        report: AnalysisReport,
        shards: int = 1,
        wakers: WakerTable | None = None,
        timelines: dict[int, ThreadTimeline] | None = None,
        columnar: tuple[ColumnarWakers, ColumnarTimelines] | None = None,
    ):
        if columnar is None and (wakers is None or timelines is None):
            raise ValueError("AnalysisResult needs object structures or columnar ones")
        self.trace = trace
        self.critical_path = critical_path
        self.report = report
        #: How many shards produced this result (1 = sequential pass).
        self.shards = shards
        self._wakers = wakers
        self._timelines = timelines
        self._columnar = columnar

    @property
    def engine(self) -> str:
        """Which engine produced this result."""
        return "columnar" if self._columnar is not None else "object"

    @property
    def wakers(self) -> WakerTable:
        if self._wakers is None:
            self._wakers = self._columnar[0].to_table(self.trace.records)
        return self._wakers

    @property
    def timelines(self) -> dict[int, ThreadTimeline]:
        if self._timelines is None:
            self._timelines = self._columnar[1].to_object()
        return self._timelines

    @cached_property
    def graph(self) -> EventGraph:
        """Event DAG (built lazily; used by cross-checks and what-if)."""
        return build_event_graph(self.trace, self.timelines, self.wakers)

    def what_if(self, lock: int | str, factor: float = 0.0) -> WhatIfResult:
        """Predict the speedup from shrinking ``lock``'s critical sections."""
        return predict_shrink(self.trace, lock, factor, graph=self.graph)

    def what_if_no_contention(self, lock: int | str) -> WhatIfResult:
        """Predict the speedup if ``lock``'s acquisitions never blocked.

        The paper's §VII scenario (ACS / speculation / transactional
        memory): waiters stop serializing behind holders while the
        critical sections' own work is kept.
        """
        return predict_no_contention(self.trace, lock, graph=self.graph)

    def render(self, n: int | None = 10) -> str:
        """Convenience passthrough to :meth:`AnalysisReport.render`."""
        return self.report.render(n)


def _report(trace: Trace, nthreads: int, cp: CriticalPath, locks, threads) -> AnalysisReport:
    return AnalysisReport(
        name=str(trace.meta.get("name", "")),
        nthreads=nthreads,
        duration=trace.duration,
        cp=cp,
        locks=locks,
        thread_stats=threads,
    )


def analyze(
    trace: Trace,
    validate: bool = True,
    jobs: int | None = None,
    parallel: bool | None = None,
    engine: str = "columnar",
) -> AnalysisResult:
    """Run the full critical lock analysis pipeline on a trace.

    ``jobs`` > 1 enables sharded analysis: the trace is split at
    quiescent cut points (full-barrier episodes, final joins) and the
    shards run concurrently, stitched back into a result identical to
    the sequential one (see ``docs/sharding.md``).  Traces with no cut
    points, machines with a single usable CPU, and any shard-level
    inconsistency silently use the sequential pass, so ``jobs`` never
    changes the answer, only the wall-clock.  ``parallel`` forces worker
    processes on or off (the default picks based on trace size and CPU
    count).

    ``engine`` selects the implementation: ``"columnar"`` (default, the
    numpy hot path) or ``"object"`` (the per-event reference pipeline);
    both produce bit-identical results.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    if validate:
        validate_trace(trace)
    if jobs is not None and jobs > 1:
        from repro.core.shard import analyze_sharded  # deferred: import cycle

        result = analyze_sharded(trace, jobs=jobs, parallel=parallel, engine=engine)
        if result is not None:
            return result
    if engine == "columnar":
        cw = resolve_wakers_columnar(trace)
        ct = build_timelines_columnar(trace, cw)
        cp = compute_critical_path_columnar(trace, ct)
        locks = compute_metrics_columnar(trace, ct, cp)
        threads = compute_thread_stats_columnar(ct, cp)
        return AnalysisResult(
            trace=trace,
            critical_path=cp,
            report=_report(trace, len(ct.tids), cp, locks, threads),
            columnar=(cw, ct),
        )
    wakers = resolve_wakers(trace)
    timelines = build_timelines(trace, wakers)
    cp = compute_critical_path(trace, timelines, wakers)
    locks = compute_metrics(trace, timelines, cp)
    threads = compute_thread_stats(timelines, cp)
    return AnalysisResult(
        trace=trace,
        critical_path=cp,
        report=_report(trace, len(timelines), cp, locks, threads),
        wakers=wakers,
        timelines=timelines,
    )
