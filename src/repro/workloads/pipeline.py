"""Software pipeline workload: channel-connected stages.

A three-stage pipeline (decode -> transform -> encode) connected by
bounded channels; thread counts per stage are configurable.  This is the
condition-variable-heavy workload class (thread pools, streaming
servers) complementing the lock/barrier-heavy SPLASH set: the analysis
must trace the critical path through cond_wait wake-ups and channel
mutexes, and the slowest stage's channel lock becomes the critical lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.channels import CLOSED, Channel
from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["Pipeline"]


@dataclass
class _State:
    stage1: Channel
    stage2: Channel
    done: int = 0


@register
class Pipeline(Workload):
    """Three-stage channel pipeline; nthreads is split across stages."""

    name = "pipeline"

    def __init__(
        self,
        items: int = 120,
        capacity: int = 8,
        decode_cost: float = 0.05,
        transform_cost: float = 0.15,
        encode_cost: float = 0.05,
        channel_op_cost: float = 0.004,
    ):
        self.items = items
        self.capacity = capacity
        self.decode_cost = decode_cost
        self.transform_cost = transform_cost
        self.encode_cost = encode_cost
        self.channel_op_cost = channel_op_cost

    def stage_split(self, nthreads: int) -> tuple[int, int, int]:
        """Split the thread budget across decode/transform/encode.

        The transform stage is the heaviest, so it gets the remainder.
        """
        decode = max(1, nthreads // 4)
        encode = max(1, nthreads // 4)
        transform = max(1, nthreads - decode - encode)
        return decode, transform, encode

    def build(self, prog: Program, nthreads: int) -> None:
        state = _State(
            stage1=Channel(prog, self.capacity, "stage1", self.channel_op_cost),
            stage2=Channel(prog, self.capacity, "stage2", self.channel_op_cost),
        )
        n_dec, n_tr, n_enc = self.stage_split(nthreads)
        per_decoder = [
            self.items // n_dec + (1 if i < self.items % n_dec else 0)
            for i in range(n_dec)
        ]
        counters = {"decoders": n_dec, "transformers": n_tr}

        def decoder(env, i):
            rng = env.rng
            for _ in range(per_decoder[i]):
                yield env.compute(float(rng.exponential(self.decode_cost)))
                yield from state.stage1.put(env, 1)
            counters["decoders"] -= 1
            if counters["decoders"] == 0:
                yield from state.stage1.close(env)

        def transformer(env, i):
            rng = env.rng
            while True:
                item = yield from state.stage1.get(env)
                if item is CLOSED:
                    break
                yield env.compute(float(rng.exponential(self.transform_cost)))
                yield from state.stage2.put(env, item)
            counters["transformers"] -= 1
            if counters["transformers"] == 0:
                yield from state.stage2.close(env)

        def encoder(env, i):
            rng = env.rng
            while True:
                item = yield from state.stage2.get(env)
                if item is CLOSED:
                    break
                yield env.compute(float(rng.exponential(self.encode_cost)))
                state.done += 1

        for i in range(n_dec):
            prog.spawn(decoder, i, name=f"decode-{i}")
        for i in range(n_tr):
            prog.spawn(transformer, i, name=f"transform-{i}")
        for i in range(n_enc):
            prog.spawn(encoder, i, name=f"encode-{i}")
