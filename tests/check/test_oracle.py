"""Oracle: clean traces pass every invariant; broken analyses are caught."""

import numpy as np
import pytest

from repro.check.generator import generate_spec
from repro.check.interp import run_spec
from repro.check.oracle import check_trace
from repro.core.dag import EventGraph


@pytest.mark.parametrize("seed", range(10))
def test_generated_seeds_pass_clean(seed):
    spec = generate_spec(seed)
    trace = run_spec(spec).trace
    assert check_trace(trace, spec.has_nested_holds) == []


def test_micro_benchmark_passes_clean(micro_trace):
    assert check_trace(micro_trace, has_nested_holds=False) == []


def test_catches_wrong_completion_time(micro_trace, monkeypatch):
    # A DAG formulation that disagrees with the trace must trip cp-length.
    real = EventGraph.completion_time
    monkeypatch.setattr(
        EventGraph, "completion_time",
        lambda self, *a, **kw: real(self, *a, **kw) + 1.0,
    )
    invariants = {d.invariant for d in check_trace(micro_trace, False)}
    assert "cp-length" in invariants


def test_catches_stale_chain_accounting(monkeypatch):
    # Reintroduce an over-eager dependent chain (chain resets undone):
    # the independent offline replay disagrees and online-chain fires.
    # Needs a trace where resets matter: spaced-out uncontended holds.
    from repro.core import online as online_mod
    from repro.sim import Program

    prog = Program()
    lock = prog.mutex("L")

    def body(env, i):
        yield env.compute(1.0 + i * 5.0)
        yield env.acquire(lock)
        yield env.compute(0.5)
        yield env.release(lock)

    prog.spawn_workers(3, body)
    trace = prog.run().trace
    assert check_trace(trace, False) == []  # clean analyzer passes

    orig = online_mod.OnlineAnalyzer.observe

    def observe(self, ev):
        before = {o: ls.chain_time for o, ls in self._locks.items()}
        orig(self, ev)
        ls = self._locks.get(ev.obj)
        if ls is not None and ls.chain_time == 0.0 and before.get(ev.obj):
            ls.chain_time = before[ev.obj]  # undo every chain reset

    monkeypatch.setattr(online_mod.OnlineAnalyzer, "observe", observe)
    invariants = {d.invariant for d in check_trace(trace, False)}
    assert "online-chain" in invariants


def test_catches_perturbed_records(micro_trace):
    # Flip one contended OBTAIN to "uncontended": online counters split
    # from the offline metrics.
    from repro.trace.events import EventType

    records = micro_trace.records.copy()
    ob = np.flatnonzero(
        (records["etype"] == int(EventType.OBTAIN)) & (records["arg"] == 1)
    )
    records["arg"][ob[0]] = 0
    bad = type(micro_trace)(
        records=records, objects=dict(micro_trace.objects),
        threads=dict(micro_trace.threads), meta=dict(micro_trace.meta),
    )
    invariants = {d.invariant for d in check_trace(bad, False)}
    assert "online" in invariants


def test_catches_drifted_identity_replay(micro_trace, monkeypatch):
    # An identity replay that finishes at the wrong time must trip
    # replay-identity even when the lock ranking still matches.
    import types

    import importlib

    # repro.core re-exports the replay_whatif *function*, shadowing the
    # submodule attribute on the package: resolve the module directly.
    rw_mod = importlib.import_module("repro.core.replay_whatif")
    real = rw_mod.replay_identity

    def drifted(trace):
        result = real(trace)
        return types.SimpleNamespace(
            completion_time=result.completion_time + 1.0, trace=result.trace
        )

    monkeypatch.setattr(rw_mod, "replay_identity", drifted)
    invariants = {d.invariant for d in check_trace(micro_trace, False)}
    assert "replay-identity" in invariants


def test_catches_unfaithful_identity_replay(micro_trace, monkeypatch):
    # A "replay" that actually changed the program (L2 critical sections
    # shrunk) diverges in both completion time and cp_fraction ranking.
    import importlib

    from repro.replay import reconstruct

    rw_mod = importlib.import_module("repro.core.replay_whatif")

    def unfaithful(trace):
        return reconstruct(trace).run(shrink_lock="L2", factor=0.5)

    monkeypatch.setattr(rw_mod, "replay_identity", unfaithful)
    invariants = {d.invariant for d in check_trace(micro_trace, False)}
    assert "replay-identity" in invariants


def test_discrepancy_rendering():
    from repro.check.oracle import Discrepancy

    d = Discrepancy("cp-length", "walk 1.0 != duration 2.0")
    assert str(d) == "[cp-length] walk 1.0 != duration 2.0"


def test_catches_dishonest_sampling_intervals(micro_trace, monkeypatch):
    # Zero-width intervals pinned at the point estimate cannot contain
    # the exact value at sub-1.0 rates: sample-coverage must fire.
    from repro.core.estimate import estimate_report as real
    from repro.sampling import crossval as crossval_mod

    def degenerate(trace, *a, **kw):
        import dataclasses

        est = real(trace, *a, **kw)
        est.locks = {
            obj: dataclasses.replace(e, ci_low=0.5, ci_high=0.5)
            for obj, e in est.locks.items()  # confident and wrong
        }
        return est

    monkeypatch.setattr(crossval_mod, "estimate_report", degenerate)
    invariants = {d.invariant for d in check_trace(micro_trace, False)}
    assert "sample-coverage" in invariants


def test_catches_crashing_estimator(micro_trace, monkeypatch):
    from repro.errors import AnalysisError
    from repro.sampling import crossval as crossval_mod

    def boom(trace, *a, **kw):
        raise AnalysisError("estimator exploded")

    monkeypatch.setattr(crossval_mod, "estimate_report", boom)
    found = [d for d in check_trace(micro_trace, False)
             if d.invariant == "sample-coverage"]
    assert found and "exploded" in found[0].detail
