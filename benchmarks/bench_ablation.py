"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

1. Backward walk vs forward DAG longest path — equal critical-path
   lengths on every workload (and both are timed).
2. What-if DAG prediction vs actual re-run — the prediction brackets the
   measured optimization outcome (the paper's §V.D.3 path-shift effect).
3. Core-limited scheduling — oversubscription folds scheduler delay into
   segments without breaking any invariant.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.critical_path import compute_critical_path
from repro.core.dag import build_event_graph
from repro.core.whatif import predict_shrink
from repro.tables import format_table
from repro.workloads import MicroBenchmark, Radiosity, TSP

from conftest import run_once


@pytest.fixture(scope="module")
def radiosity_trace():
    return Radiosity(total_tasks=200, iterations=2).run(nthreads=8, seed=0).trace


@pytest.mark.benchmark(group="ablation-backward-vs-dag")
def test_backward_walk_timing(benchmark, radiosity_trace):
    cp = benchmark(compute_critical_path, radiosity_trace)
    assert cp.coverage_error == pytest.approx(0.0, abs=1e-9)


@pytest.mark.benchmark(group="ablation-backward-vs-dag")
def test_dag_timing_and_agreement(benchmark, radiosity_trace):
    def run():
        return build_event_graph(radiosity_trace).completion_time()

    dag_time = benchmark.pedantic(run, rounds=3, iterations=1)
    cp = compute_critical_path(radiosity_trace)
    assert dag_time == pytest.approx(cp.length, abs=1e-9)


@pytest.mark.benchmark(group="ablation-whatif")
def test_whatif_vs_actual(benchmark, show):
    """Predicted vs measured optimization outcome per workload."""

    def experiment():
        rows = []
        checks = []
        # Micro: prediction is exact.
        base = MicroBenchmark().run(nthreads=4, seed=0)
        pred = predict_shrink(base.trace, "L2", factor=0.6)
        actual = base.completion_time / MicroBenchmark(optimize="L2").run(
            nthreads=4, seed=0
        ).completion_time
        rows.append(["micro / L2 -> 60%", f"{pred.predicted_speedup:.3f}",
                     f"{actual:.3f}"])
        checks.append(abs(pred.predicted_speedup - actual) < 1e-6)

        # Radiosity: eliminating tq[0].qlock CSs vs the real two-lock fix.
        orig = Radiosity().run(nthreads=16, seed=0)
        pred = predict_shrink(orig.trace, "tq[0].qlock", factor=0.0)
        opt = Radiosity(two_lock_queues=True).run(nthreads=16, seed=0)
        actual = orig.completion_time / opt.completion_time
        rows.append(["radiosity / tq[0].qlock -> 0 (vs 2-lock fix)",
                     f"{pred.predicted_speedup:.3f}", f"{actual:.3f}"])
        # Eliminating the CS entirely upper-bounds the 2-lock split's gain.
        checks.append(pred.predicted_speedup >= actual * 0.95)

        # TSP: same comparison for Qlock.
        orig = TSP().run(nthreads=16, seed=0)
        pred = predict_shrink(orig.trace, "Q.qlock", factor=0.0)
        opt = TSP(split_queue=True).run(nthreads=16, seed=0)
        actual = orig.completion_time / opt.completion_time
        rows.append(["tsp / Q.qlock -> 0 (vs head/tail split)",
                     f"{pred.predicted_speedup:.3f}", f"{actual:.3f}"])
        checks.append(pred.predicted_speedup >= actual * 0.95)
        return rows, checks

    rows, checks = run_once(benchmark, experiment)
    show(format_table(
        ["Scenario", "Predicted speedup", "Measured speedup"],
        rows,
        title="[ablation] what-if DAG prediction vs actual re-run",
    ))
    assert all(checks)


@pytest.mark.benchmark(group="ablation-cores")
def test_core_limited_scheduling(benchmark, show):
    """Oversubscribing cores slows completion but keeps analysis sound."""

    def experiment():
        rows = []
        times = {}
        for cores in (None, 8, 4):
            res = Radiosity(total_tasks=120, iterations=1).run(
                nthreads=8, seed=0, cores=cores
            )
            analysis = analyze(res.trace)
            times[cores] = res.completion_time
            rows.append([
                "unlimited" if cores is None else cores,
                f"{res.completion_time:.2f}",
                f"{analysis.critical_path.coverage_error:.2e}",
            ])
        return rows, times

    rows, times = run_once(benchmark, experiment)
    show(format_table(
        ["Cores", "Completion time", "CP coverage error"],
        rows,
        title="[ablation] core-limited scheduling (8 threads)",
    ))
    assert times[4] > times[8] * 1.2  # halving cores must hurt
    assert times[8] <= times[4]
