"""Paper Fig. 12 — speedups of original vs optimized Radiosity.

Replaces every ``tq[i].qlock`` with the two-lock queue and measures
end-to-end speedup over the single-threaded original at 4/8/16/24
threads.  The paper obtains ~7% end-to-end improvement at 24 threads —
far below the optimized lock's 39% CP share, because other segments
shift onto the critical path (validated here via the what-if predictor
as well).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, experiment
from repro.workloads.radiosity import Radiosity

__all__ = ["run"]


@experiment("fig12")
def run(thread_counts: tuple = (4, 8, 16, 24), seed: int = 0) -> ExperimentResult:
    base = Radiosity().run(nthreads=1, seed=seed).completion_time
    rows = []
    values: dict[int, dict] = {}
    for n in thread_counts:
        orig = Radiosity().run(nthreads=n, seed=seed).completion_time
        opt = Radiosity(two_lock_queues=True).run(nthreads=n, seed=seed).completion_time
        improvement = orig / opt - 1.0
        rows.append(
            [
                n,
                f"{base / orig:.2f}",
                f"{base / opt:.2f}",
                f"{improvement:+.1%}",
            ]
        )
        values[n] = {
            "orig_time": orig,
            "opt_time": opt,
            "speedup_orig": base / orig,
            "speedup_opt": base / opt,
            "improvement": improvement,
        }
    return ExperimentResult(
        exp_id="fig12",
        title="Radiosity speedups: original vs two-lock-queue optimized",
        headers=["Threads", "Speedup (original)", "Speedup (optimized)",
                 "Improvement"],
        rows=rows,
        notes=[
            "paper: ~7% end-to-end improvement at 24 threads — much less than "
            "tq[0].qlock's ~39% CP share because the critical path shifts",
        ],
        values=values,
    )
