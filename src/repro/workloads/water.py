"""Water-nsquared workload model (SPLASH-2, 512 molecules).

A barrier-phase molecular-dynamics skeleton: per timestep the threads
compute intra/inter-molecular forces over their molecule chunk (O(N²/P)
work with load-imbalance noise), touch per-molecule-bucket ``MolLock``
entries when writing back forces of molecules owned by other threads,
and fold kinetic/potential energies into globals under ``KinetiSumLock``
/ ``IndexLock`` — all separated by the phase barrier.

Critical sections are small and barrier waits dominate blocking, so —
as paper Fig. 8 shows — no lock matters much here; the workload is the
negative control for the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["WaterNSquared"]


@dataclass
class _State:
    mol_locks: list[Any]
    kineti_lock: Any
    index_lock: Any
    barrier: Any


@register
class WaterNSquared(Workload):
    """Barrier-dominated N² molecular dynamics skeleton."""

    name = "water-nsquared"

    def __init__(
        self,
        nmol: int = 512,
        timesteps: int = 3,
        work_per_mol: float = 0.04,
        imbalance: float = 0.12,
        mol_buckets: int = 16,
        mol_updates_per_step: int = 24,
        mol_lock_cost: float = 0.003,
        reduction_cost: float = 0.0015,
    ):
        self.nmol = nmol
        self.timesteps = timesteps
        self.work_per_mol = work_per_mol
        self.imbalance = imbalance
        self.mol_buckets = mol_buckets
        self.mol_updates_per_step = mol_updates_per_step
        self.mol_lock_cost = mol_lock_cost
        self.reduction_cost = reduction_cost

    def build(self, prog: Program, nthreads: int) -> None:
        state = _State(
            mol_locks=[prog.mutex(f"MolLock[{i}]") for i in range(self.mol_buckets)],
            kineti_lock=prog.mutex("KinetiSumLock"),
            index_lock=prog.mutex("IndexLock"),
            barrier=prog.barrier(nthreads, "gl->start"),
        )
        prog.spawn_workers(nthreads, self._worker, state, nthreads)

    def _worker(self, env, wid: int, state: _State, nthreads: int):
        rng = env.rng
        chunk = self.nmol / nthreads
        for _ in range(self.timesteps):
            # INTRAF: forces within own molecules.
            noise = 1.0 + self.imbalance * (2.0 * rng.random() - 1.0)
            yield env.compute(chunk * self.work_per_mol * noise)
            yield env.barrier_wait(state.barrier)
            # INTERF: pairwise forces; write-backs to foreign molecules
            # go through the per-bucket molecule locks.
            updates = self.mol_updates_per_step
            slice_cost = chunk * self.work_per_mol * noise / max(1, updates)
            for _ in range(updates):
                yield env.compute(slice_cost)
                bucket = int(rng.integers(self.mol_buckets))
                yield env.acquire(state.mol_locks[bucket])
                yield env.compute(self.mol_lock_cost)
                yield env.release(state.mol_locks[bucket])
            yield env.barrier_wait(state.barrier)
            # KINETI/POTENG: global energy reductions.
            yield env.acquire(state.kineti_lock)
            yield env.compute(self.reduction_cost)
            yield env.release(state.kineti_lock)
            yield env.acquire(state.index_lock)
            yield env.compute(self.reduction_cost)
            yield env.release(state.index_lock)
            yield env.barrier_wait(state.barrier)
