"""Descriptive trace statistics."""

import pytest

from repro.trace.events import EventType
from repro.trace.stats import compute_trace_stats

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def stats():
    return compute_trace_stats(make_micro_program().run().trace)


def test_counts(stats):
    assert stats.nthreads == 4
    assert stats.nobjects == 2
    assert stats.duration == pytest.approx(12.0)
    assert stats.events_by_type["ACQUIRE"] == 8
    assert stats.events_by_type["THREAD_START"] == 4
    assert "BARRIER_ARRIVE" not in stats.events_by_type  # zero counts omitted


def test_busiest_objects(stats):
    names = [name for name, _ in stats.events_by_object]
    assert set(names) == {"L1", "L2"}
    counts = [c for _, c in stats.events_by_object]
    assert counts == sorted(counts, reverse=True)
    assert all(c == 12 for c in counts)  # 4 threads x (acq+obt+rel)


def test_events_per_thread(stats):
    assert set(stats.events_per_thread) == {0, 1, 2, 3}
    assert sum(stats.events_per_thread.values()) == stats.nevents


def test_hold_quantiles(stats):
    p50, p90, p99 = stats.hold_time_quantiles
    # Holds are 4x 2.0 (L1) and 4x 2.5 (L2).
    assert 2.0 <= p50 <= 2.5
    assert p99 == pytest.approx(2.5, abs=0.01)


def test_render(stats):
    text = stats.render()
    assert "events" in text
    assert "Busiest synchronization objects" in text
    assert "p50" in text


def test_empty_holds():
    from repro.sim import Program

    prog = Program()
    prog.spawn(lambda env: (yield env.compute(1.0)))
    s = compute_trace_stats(prog.run().trace)
    assert s.hold_time_quantiles == (0.0, 0.0, 0.0)
    assert s.events_by_object == []
