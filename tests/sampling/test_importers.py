"""Foreign-trace importer tests: round-trips and line-numbered errors."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.analyzer import analyze
from repro.core.estimate import estimate_report
from repro.errors import TraceFormatError
from repro.trace import (
    EventType,
    import_perf_jsonl,
    import_trace,
    read_trace,
    write_trace,
)
from repro.trace.validate import validate_trace

EXAMPLE = pathlib.Path(__file__).parents[2] / "examples" / "perf_lock_events.jsonl"


def write_lines(tmp_path, lines, name="dump.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


def ev(ts, tid, event, lock, **extra):
    return json.dumps({"ts": ts, "tid": tid, "event": event, "lock": lock, **extra})


# -- the checked-in example ------------------------------------------------


def test_example_dump_imports_and_analyzes():
    trace = import_perf_jsonl(EXAMPLE)
    validate_trace(trace)
    assert trace.meta["source"] == "import:perf-jsonl"
    assert len(trace.threads) == 3
    assert trace.thread_name(trace.thread_ids[0]) == "worker-0"
    assert {o.name for o in trace.locks} == {
        "rq->lock", "hash->bucket[3]", "log->mutex",
    }
    report = analyze(trace).report
    # rq->lock carries the contended handoffs; it must rank first.
    top = max(report.locks.values(), key=lambda m: m.cp_fraction)
    assert top.name == "rq->lock"


def test_example_dump_feeds_the_estimator():
    trace = import_perf_jsonl(EXAMPLE)
    est = estimate_report(trace, rate=1.0)
    assert est.top_locks(1)[0].name == "rq->lock"


def test_imported_trace_round_trips_through_native_format(tmp_path):
    trace = import_perf_jsonl(EXAMPLE)
    path = tmp_path / "imported.clt"
    write_trace(trace, path)
    back = read_trace(path)
    assert back.records.tobytes() == trace.records.tobytes()
    assert back.meta["import"]["file"] == EXAMPLE.name


def test_import_trace_dispatcher(tmp_path):
    trace = import_trace(EXAMPLE, format="perf-jsonl")
    assert len(trace) > 0
    with pytest.raises(TraceFormatError, match="unknown import format"):
        import_trace(EXAMPLE, format="ftrace")


# -- repairs ----------------------------------------------------------------


def test_blank_lines_skipped_and_lifecycle_synthesized(tmp_path):
    path = write_lines(
        tmp_path,
        [
            ev(0.0, 1, "acquire", "m"),
            "",
            ev(0.1, 1, "acquired", "m"),
            ev(0.5, 1, "release", "m"),
        ],
    )
    trace = import_perf_jsonl(path)
    validate_trace(trace)
    assert trace.count(EventType.THREAD_START) == 1
    assert trace.count(EventType.THREAD_EXIT) == 1


def test_unmatched_release_dropped_and_counted(tmp_path):
    path = write_lines(
        tmp_path,
        [
            ev(0.0, 1, "release", "m"),  # hold opened before the capture
            ev(0.1, 1, "acquired", "m"),
            ev(0.5, 1, "release", "m"),
        ],
    )
    trace = import_perf_jsonl(path)
    assert trace.meta["import"]["dropped_releases"] == 1
    assert trace.count(EventType.RELEASE) == 1


def test_open_hold_forced_closed(tmp_path):
    path = write_lines(
        tmp_path,
        [
            ev(0.0, 1, "acquired", "m"),
            ev(0.4, 1, "acquired", "n"),  # still held at capture end
            ev(0.5, 1, "release", "m"),
        ],
    )
    trace = import_perf_jsonl(path)
    validate_trace(trace)
    assert trace.meta["import"]["forced_closes"] == 1


def test_orphan_contention_demoted(tmp_path):
    # A contended acquisition whose waking release precedes the capture
    # window must be demoted to uncontended, not rejected.
    path = write_lines(
        tmp_path,
        [
            ev(0.0, 1, "acquire", "m"),
            ev(0.3, 1, "acquired", "m", contended=True),
            ev(0.5, 1, "release", "m"),
        ],
    )
    trace = import_perf_jsonl(path)
    validate_trace(trace)
    assert trace.meta["import"]["demoted_waits"] == 1


# -- strict failures, all with path:line ------------------------------------


@pytest.mark.parametrize(
    "lines, lineno, match",
    [
        (['{"ts": 0.0, "tid":'], 1, "malformed JSON"),
        (['["ts", 0.0]'], 1, "expected an object"),
        ([ev(0.0, 1, "acquired", "m"), ev(0.1, 1, "locked", "m")], 2, "unknown event"),
        ([ev(0.0, 1, "acquired", "m", cpu=3)], 1, "unknown field"),
        (['{"ts": 0.0, "tid": 1, "event": "acquired"}'], 1, "missing field.*lock"),
        ([ev("soon", 1, "acquired", "m")], 1, "bad ts/tid"),
        (
            [ev(0.5, 1, "acquired", "m"), ev(0.2, 1, "release", "m")],
            2,
            "timestamp goes backwards",
        ),
    ],
)
def test_malformed_input_raises_with_line_number(tmp_path, lines, lineno, match):
    path = write_lines(tmp_path, lines)
    with pytest.raises(TraceFormatError, match=match) as exc:
        import_perf_jsonl(path)
    assert f"{path}:{lineno}:" in str(exc.value)


def test_out_of_order_timestamps_across_threads_allowed(tmp_path):
    # Regression is per-thread: interleaved threads may jump backwards
    # relative to each other (perf merges per-CPU buffers).
    path = write_lines(
        tmp_path,
        [
            ev(0.5, 1, "acquired", "m"),
            ev(0.1, 2, "acquired", "n"),
            ev(0.6, 1, "release", "m"),
            ev(0.7, 2, "release", "n"),
        ],
    )
    validate_trace(import_perf_jsonl(path))


def test_empty_dump_rejected(tmp_path):
    path = write_lines(tmp_path, [""])
    with pytest.raises(TraceFormatError, match="no lock events"):
        import_perf_jsonl(path)
