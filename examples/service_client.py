"""Quickstart for the parallel analysis service.

Boots a service in this process (so the example is self-contained),
uploads a Radiosity trace over HTTP, and walks every job kind through
the client — then shows the cache answering the repeat query instantly.

In production you would instead run::

    critical-lock-analysis serve --port 8323 --workers 4

and point ``ServiceClient("http://host:8323")`` at it.

Run with: PYTHONPATH=src python examples/service_client.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.service import ServiceAPI, ServiceClient
from repro.service.server import make_server
from repro.trace import write_trace
from repro.workloads import Radiosity


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # -- boot a service (normally: `critical-lock-analysis serve`) ----
        api = ServiceAPI(Path(tmp) / "svc", workers=2)
        server = make_server(api, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(server.url)
        print(f"service up at {server.url}")

        # -- trace a workload and upload it -------------------------------
        result = Radiosity(total_tasks=120, iterations=2).run(nthreads=8, seed=0)
        trace_path = Path(tmp) / "radiosity.clt"
        write_trace(result.trace, trace_path)
        digest = client.upload_trace(trace_path, name="radiosity")
        print(f"uploaded radiosity trace: {digest[:12]}… ({len(result.trace)} events)")

        # -- analyze: the paper's critical-lock ranking --------------------
        t0 = time.perf_counter()
        report = client.analyze(digest, top=3)
        cold = time.perf_counter() - t0
        print(f"\ntop critical locks (cold, {cold * 1e3:.0f} ms):")
        for lock in report["critical_locks"]:
            print(
                f"  {lock['name']:<16} CP share {lock['cp_time_frac']:6.1%}  "
                f"contention prob {lock['cont_prob_on_cp']:6.1%}"
            )

        # -- what-if: shrink the top lock's critical sections --------------
        top_lock = report["critical_locks"][0]["name"]
        whatif = client.whatif(digest, top_lock, factor=0.5)
        print(f"\nwhat-if: {whatif['summary']}")

        # -- forecast: who saturates first at higher thread counts --------
        forecast = client.forecast(digest)
        first = forecast["locks"][0]
        sat = first["saturation_threads"]
        print(
            f"forecast: {first['name']} saturates at "
            f"{'∞' if sat is None else f'{sat:.0f}'} threads"
        )

        # -- the cache: same question again is O(1) ------------------------
        t0 = time.perf_counter()
        client.analyze(digest, top=3)
        warm = time.perf_counter() - t0
        hit_rate = client.metrics()["cache"]["hit_rate"]
        print(
            f"\nwarm repeat: {warm * 1e3:.1f} ms "
            f"({cold / max(warm, 1e-9):.0f}x faster; cache hit rate {hit_rate:.0%})"
        )

        server.close()


if __name__ == "__main__":
    main()
