"""Deterministic unit sampling of lock events (GAPP-style low overhead).

Full tracing records every synchronization event; production services
cannot afford that.  This module implements the capture-side half of the
statistical pipeline (the analysis half is :mod:`repro.core.estimate`):
keep a configurable fraction of *lock invocations* while always
retaining the blocking-chain edges the backward walk needs.

Sampling unit
-------------
The unit is one **lock invocation**: the ACQUIRE/OBTAIN/RELEASE bracket
of one critical section (reentrant re-acquisitions inside an open
bracket belong to the outermost one), identified by ``(tid, obj, k)``
where ``k`` is the per-``(tid, obj)`` outermost-acquisition counter.
Keeping or dropping whole units means a sampled trace never contains an
orphaned RELEASE or a hold without its acquisition — the per-thread lock
protocol stays intact, so the exact analyzer runs on the sampled trace
unchanged.

The keep/drop decision is hash-Bernoulli: a splitmix64-style mix of
``(seed, tid, obj, k)`` compared against ``rate * 2**64``.  The same
hash is computed by the streaming scalar sampler (used inside
:meth:`repro.instrument.ProfilingSession.emit`, before the event is ever
buffered) and by the vectorized :func:`downsample_trace` (used to thin
an already-captured trace), so both paths select the *same* units for a
given ``(rate, seed)``.

Blocking-chain retention
------------------------
Events that carry cross-thread blocking-chain edges are never sampled
out.  Two classes:

* thread lifecycle (create/start/exit, join), barriers and condition
  variables never participate in sampling at all;
* **waker units**: when a kept OBTAIN is contended, the wait it records
  is a blocking-chain edge whose other end is the previous holder's
  RELEASE.  If that holder's unit lost the hash toss it is retained
  *retroactively* (the whole unit, so the trace stays well formed) —
  the streaming sampler keeps a one-unit stash per lock for exactly
  this purpose.  Retention raises a lock's effective inclusion rate to
  ``r + (1-r)·r·c`` (``c`` = its contention probability); the estimator
  inverts that, not the nominal rate (see ``docs/sampling.md``).

At ``rate=1.0`` every unit hashes below the threshold and the output
records are byte-identical to full capture; at ``rate=0.0`` only the
blocking-chain events remain.

Sampled traces carry ``trace.meta["sampling"] = {"strategy", "rate",
"seed"}``; the estimator reads it to invert the inclusion probability.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import TraceError
from repro.trace.events import Event, EventType
from repro.trace.trace import Trace

__all__ = [
    "SAMPLING_STRATEGY",
    "EventSampler",
    "downsample_trace",
    "sample_mask",
    "sampling_meta",
    "trace_sample_rate",
    "unit_hash",
]

#: Strategy tag written into the sampling metadata header.
SAMPLING_STRATEGY = "unit-hash"

_MASK64 = (1 << 64) - 1
# splitmix64 finalizer constants plus three odd stream-separation
# multipliers (golden-ratio family) for tid / obj / k.
_C_GAMMA = 0x9E3779B97F4A7C15
_C_MIX1 = 0xBF58476D1CE4E5B9
_C_MIX2 = 0x94D049BB133111EB
_C_TID = 0xA24BAED4963EE407
_C_OBJ = 0x9FB21C651E98DF25
_C_K = 0xC2B2AE3D27D4EB4F

_ACQUIRE = int(EventType.ACQUIRE)
_OBTAIN = int(EventType.OBTAIN)
_RELEASE = int(EventType.RELEASE)
_LOCK_VERBS = (_ACQUIRE, _OBTAIN, _RELEASE)


def unit_hash(seed: int, tid: int, obj: int, k: int) -> int:
    """64-bit mix of one sampling unit (pure-Python reference).

    :func:`sample_mask` computes the identical value vectorized; the
    equality of the two implementations is pinned by tests.
    """
    x = (seed * _C_GAMMA + tid * _C_TID + obj * _C_OBJ + k * _C_K) & _MASK64
    x = ((x ^ (x >> 30)) * _C_MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _C_MIX2) & _MASK64
    return x ^ (x >> 31)


def _threshold(rate: float) -> int:
    """Keep threshold on the 64-bit hash for inclusion probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise TraceError(f"sample rate must be in [0, 1], got {rate}")
    return int(round(rate * float(1 << 64)))


def sampling_meta(rate: float, seed: int) -> dict[str, Any]:
    """The ``meta["sampling"]`` header describing a sampled capture."""
    return {"strategy": SAMPLING_STRATEGY, "rate": float(rate), "seed": int(seed)}


def trace_sample_rate(trace: Trace) -> float | None:
    """The trace's sampling rate, or ``None`` for a full capture."""
    info = trace.meta.get("sampling")
    if not isinstance(info, dict) or "rate" not in info:
        return None
    return float(info["rate"])


class EventSampler:
    """Streaming keep/drop decisions for the instrumentation hot path.

    One instance per :class:`~repro.instrument.ProfilingSession`.
    :meth:`process` is called only for lock verbs on lock-like objects,
    in per-thread event order, and returns the events to record — the
    event itself when its unit is kept, preceded by a retroactively
    retained waker unit when the event is a kept contended OBTAIN.

    The per-``(tid, obj)`` counters and stashes are touched only by
    their own thread; the per-lock pending-waker slot is handed between
    the releasing and the acquiring thread with atomic dict operations,
    so a unit is flushed at most once even under races.
    """

    __slots__ = ("rate", "seed", "_threshold", "_depth_k", "_stash", "_pending")

    def __init__(self, rate: float, seed: int = 0):
        self.rate = float(rate)
        self.seed = int(seed)
        self._threshold = _threshold(self.rate)
        # (tid, obj) -> [bracket depth, outermost-acquisition counter k]
        self._depth_k: dict[tuple[int, int], list[int]] = {}
        # (tid, obj) -> dropped events of the current (open) unit
        self._stash: dict[tuple[int, int], list[Event]] = {}
        # obj -> completed dropped unit awaiting a possible contended waiter
        self._pending: dict[int, list[Event]] = {}

    def process(self, ev: Event) -> list[Event]:
        """Decide one lock event; returns the events to record now."""
        key = (ev.tid, ev.obj)
        state = self._depth_k.get(key)
        if state is None:
            state = self._depth_k[key] = [0, 0]
        if ev.etype == EventType.ACQUIRE:
            if state[0] == 0:
                state[1] += 1
            state[0] += 1
        elif ev.etype == EventType.RELEASE:
            state[0] -= 1
        kept = unit_hash(self.seed, ev.tid, ev.obj, state[1]) < self._threshold
        closes_unit = ev.etype == EventType.RELEASE and state[0] == 0

        if kept:
            out = []
            if ev.etype == EventType.OBTAIN and ev.arg:
                # Contended: the previous holder's RELEASE is this wait's
                # blocking-chain edge — retain its whole unit if dropped.
                out = self._pending.pop(ev.obj, [])
            out.append(ev)
            if closes_unit:
                # The latest release on this lock is now in the trace.
                self._pending.pop(ev.obj, None)
            return out

        unit = self._stash.get(key)
        if unit is None or (ev.etype == EventType.ACQUIRE and state[0] == 1):
            unit = self._stash[key] = []
        unit.append(ev)
        if closes_unit:
            del self._stash[key]
            # Only a well-formed bracket may be resurrected: flushing a
            # bare RELEASE would corrupt the per-thread lock protocol.
            if any(e.etype == EventType.OBTAIN for e in unit):
                self._pending[ev.obj] = unit
        return []

    def meta(self) -> dict[str, Any]:
        """Sampling metadata header for this sampler's configuration."""
        return sampling_meta(self.rate, self.seed)


def _unit_columns(records: np.ndarray, is_unit: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(k, uid)`` for the lock events selected by ``is_unit``.

    ``k`` is the per-``(tid, obj)`` outermost-acquisition counter
    (vectorized equivalent of :class:`EventSampler`'s bracket tracking);
    ``uid`` densely numbers the distinct ``(tid, obj, k)`` units.
    """
    idx = np.flatnonzero(is_unit)
    n = len(idx)
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    tid = records["tid"][idx].astype(np.int64)
    obj = records["obj"][idx].astype(np.int64)
    etype = records["etype"][idx]
    is_acq = (etype == _ACQUIRE).astype(np.int64)
    is_rel = (etype == _RELEASE).astype(np.int64)
    # Dense group ids per (tid, obj), then group-segmented cumsums in
    # stable trace order.
    pair = np.stack([tid, obj], axis=1)
    _, inv = np.unique(pair, axis=0, return_inverse=True)
    order = np.lexsort((np.arange(n), inv))
    starts = np.flatnonzero(np.diff(inv[order], prepend=-1))
    counts = np.diff(np.append(starts, n))

    def seg_cumsum(sorted_values: np.ndarray) -> np.ndarray:
        # Input must already be in sorted-group space (i.e. values[order]).
        csum = np.cumsum(sorted_values)
        base = np.where(starts > 0, csum[starts - 1], 0)
        return csum - np.repeat(base, counts)

    acq_incl = seg_cumsum(is_acq[order])
    rel_incl = seg_cumsum(is_rel[order])
    depth_before = (acq_incl - is_acq[order]) - (rel_incl - is_rel[order])
    outermost = is_acq[order] * (depth_before == 0)
    k_sorted = seg_cumsum(outermost)
    k = np.empty(n, dtype=np.int64)
    k[order] = k_sorted
    triple = np.stack([tid, obj, k], axis=1)
    _, uid = np.unique(triple, axis=0, return_inverse=True)
    return k, uid.astype(np.int64)


def _hash_events(
    records: np.ndarray, idx: np.ndarray, k: np.ndarray, seed: int
) -> np.ndarray:
    """Vectorized splitmix64 mix, identical to :func:`unit_hash`."""
    with np.errstate(over="ignore"):
        x = (
            np.uint64(seed & _MASK64) * np.uint64(_C_GAMMA)
            + records["tid"][idx].astype(np.uint64) * np.uint64(_C_TID)
            + records["obj"][idx].astype(np.uint64) * np.uint64(_C_OBJ)
            + k.astype(np.uint64) * np.uint64(_C_K)
        )
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_C_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_C_MIX2)
        return x ^ (x >> np.uint64(31))


def sample_mask(
    records: np.ndarray, lock_objs: set[int] | frozenset[int], rate: float, seed: int = 0
) -> np.ndarray:
    """Boolean keep-mask over ``records`` (vectorized unit sampling).

    Selects the same events as a stream of :meth:`EventSampler.process`
    calls with the same ``(rate, seed)``, waker retention included.
    """
    n = len(records)
    keep = np.ones(n, dtype=bool)
    thresh = _threshold(rate)
    if thresh >= 1 << 64 or n == 0:
        return keep
    is_unit = np.isin(records["etype"], _LOCK_VERBS)
    if lock_objs:
        is_unit &= np.isin(records["obj"], np.fromiter(lock_objs, dtype=np.int64))
    else:
        is_unit &= False
    idx = np.flatnonzero(is_unit)
    if len(idx) == 0:
        return keep
    k, uid = _unit_columns(records, is_unit)
    if thresh <= 0:
        hash_kept = np.zeros(len(idx), dtype=bool)
    else:
        hash_kept = _hash_events(records, idx, k, seed) < np.uint64(thresh)

    nunits = int(uid.max()) + 1
    unit_kept = np.zeros(nunits, dtype=bool)
    unit_kept[uid[hash_kept]] = True
    etype = records["etype"][idx]
    obj = records["obj"][idx].astype(np.int64)
    arg = records["arg"][idx]
    # Replay EventSampler's waker-retention rule: a kept contended OBTAIN
    # resurrects the dropped unit of the latest prior unit-closing
    # RELEASE on its lock (well-formed brackets only).
    unit_has_obtain = np.zeros(nunits, dtype=bool)
    unit_has_obtain[uid[etype == _OBTAIN]] = True
    is_acq = (etype == _ACQUIRE).astype(np.int64)
    is_rel = (etype == _RELEASE).astype(np.int64)
    depth = {}
    last_closed: dict[int, int] = {}
    retained: set[int] = set()
    for j in range(len(idx)):
        o = int(obj[j])
        if is_acq[j]:
            depth[(int(records["tid"][idx[j]]), o)] = depth.get(
                (int(records["tid"][idx[j]]), o), 0
            ) + 1
        elif is_rel[j]:
            key = (int(records["tid"][idx[j]]), o)
            d = depth.get(key, 0) - 1
            depth[key] = d
            if d == 0:
                last_closed[o] = int(uid[j])
        elif etype[j] == _OBTAIN and arg[j] and hash_kept[j]:
            u = last_closed.get(o)
            if u is not None and not unit_kept[u] and unit_has_obtain[u]:
                retained.add(u)
    if retained:
        unit_kept[np.fromiter(retained, dtype=np.int64)] = True
    keep[idx] = unit_kept[uid]
    return keep


def downsample_trace(trace: Trace, rate: float, seed: int = 0) -> Trace:
    """Thin an already-captured full trace to inclusion probability ``rate``.

    Whole invocation units are kept or dropped together; blocking-chain
    events (lifecycle, barriers, condition variables, waker units of
    kept contended acquisitions) always survive.  The result carries the
    sampling metadata header and (sparse) original sequence numbers.  At
    ``rate=1.0`` the records are byte-identical to the input's.
    """
    if trace_sample_rate(trace) is not None:
        raise TraceError(
            "trace is already sampled; downsampling twice would make the "
            "inclusion probability unknowable"
        )
    lock_objs = {info.obj for info in trace.objects.values() if info.kind.is_lock_like}
    mask = sample_mask(trace.records, lock_objs, rate, seed)
    meta = dict(trace.meta)
    meta["sampling"] = sampling_meta(rate, seed)
    return Trace(
        records=trace.records[mask].copy(),
        objects=dict(trace.objects),
        threads=dict(trace.threads),
        meta=meta,
    )
