"""What-if predictions validated against actual re-runs."""

import pytest

from repro.core.analyzer import analyze
from repro.core.whatif import predict_shrink
from repro.errors import AnalysisError
from repro.workloads import MicroBenchmark

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


def test_prediction_matches_actual_rerun(micro_analysis):
    """For the micro-benchmark the DAG prediction is exact."""
    for lock, factor in (("L1", 0.5), ("L2", 0.6)):
        predicted = micro_analysis.what_if(lock, factor=factor)
        actual = MicroBenchmark(optimize=lock).run(nthreads=4, seed=0)
        assert predicted.predicted_time == pytest.approx(actual.completion_time)


def test_l2_beats_l1(micro_analysis):
    """The paper's Fig. 6 conclusion, predicted without re-running."""
    s1 = micro_analysis.what_if("L1", factor=0.5).predicted_speedup
    s2 = micro_analysis.what_if("L2", factor=0.6).predicted_speedup
    assert s2 > s1


def test_factor_one_is_noop(micro_analysis):
    r = micro_analysis.what_if("L2", factor=1.0)
    assert r.predicted_time == pytest.approx(r.baseline_time)
    assert r.predicted_speedup == pytest.approx(1.0)


def test_result_fields(micro_analysis):
    r = micro_analysis.what_if("L2", factor=0.0)
    assert r.lock_name == "L2"
    assert 0 < r.predicted_time < r.baseline_time
    assert r.predicted_gain == pytest.approx(1 - r.predicted_time / r.baseline_time)
    assert "L2" in str(r)


def test_unknown_lock_rejected(micro_analysis):
    with pytest.raises(AnalysisError, match="no lock named"):
        micro_analysis.what_if("bogus")


def test_unknown_lock_error_lists_candidates(micro_trace):
    with pytest.raises(AnalysisError, match=r"locks in trace: L1, L2"):
        predict_shrink(micro_trace, "bogus")


def test_unknown_object_id_error_lists_candidates(micro_trace):
    with pytest.raises(AnalysisError, match=r"locks in trace: L1, L2"):
        predict_shrink(micro_trace, 999)


def test_unique_prefix_resolves():
    from repro.core.whatif import resolve_lock
    from repro.sim import Program

    prog = Program()
    alpha = prog.mutex("alpha_lock")
    beta = prog.mutex("beta_lock")

    def worker(env, i):
        yield env.acquire(alpha)
        yield env.compute(0.1)
        yield env.release(alpha)
        yield env.acquire(beta)
        yield env.release(beta)

    prog.spawn_workers(2, worker)
    trace = prog.run().trace
    assert resolve_lock(trace, "alp") == resolve_lock(trace, "alpha_lock")
    with pytest.raises(AnalysisError, match=r"alpha_lock, beta_lock"):
        resolve_lock(trace, "gamma")


def test_ambiguous_prefix_lists_matches(micro_trace):
    # "L" prefixes both L1 and L2: the error must name both candidates.
    with pytest.raises(AnalysisError, match=r"ambiguous prefix.*L1, L2"):
        predict_shrink(micro_trace, "L")


def test_lookup_by_object_id(micro_trace):
    r = predict_shrink(micro_trace, 1, factor=0.6)
    assert r.lock_name == "L2"
    with pytest.raises(AnalysisError, match="no synchronization object"):
        predict_shrink(micro_trace, 999)


def test_standalone_function(micro_trace):
    r = predict_shrink(micro_trace, "L2", factor=0.6)
    assert r.predicted_time == pytest.approx(9.5)


class TestNoContention:
    """Contention elimination (§VII's ACS/TM scenario) on the micro-benchmark."""

    def test_l2_handoffs_removed(self, micro_analysis):
        r = micro_analysis.what_if_no_contention("L2")
        # Hand-computed: T3's chain becomes CS1 wait (until 8) + CS2 (2.5).
        assert r.predicted_time == pytest.approx(10.5)
        assert r.mode == "no-contention"
        assert "eliminating contention" in str(r)

    def test_l1_no_gain(self, micro_analysis):
        # Even contention-free L1 can't beat the untouched L2 chain.
        r = micro_analysis.what_if_no_contention("L1")
        assert r.predicted_time == pytest.approx(12.0)
        assert r.predicted_speedup == pytest.approx(1.0)

    def test_never_slower(self, micro_analysis):
        for lock in ("L1", "L2"):
            r = micro_analysis.what_if_no_contention(lock)
            assert r.predicted_time <= r.baseline_time + 1e-9

    def test_standalone(self, micro_trace):
        from repro.core.whatif import predict_no_contention

        r = predict_no_contention(micro_trace, "L2")
        assert r.predicted_time == pytest.approx(10.5)
