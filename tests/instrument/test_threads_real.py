"""Traced thread lifecycle on real threads."""

import pytest

from repro.errors import TraceError
from repro.instrument import ProfilingSession
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def test_create_join_events():
    with ProfilingSession() as s:
        t = s.thread(lambda: 123, name="kid")
        t.start()
        t.join()
        assert t.result == 123
    trace = s.trace()
    validate_trace(trace)
    create = next(ev for ev in trace if ev.etype == EventType.THREAD_CREATE)
    assert create.tid == 0  # main created it
    assert create.arg == t.tid
    assert trace.count(EventType.JOIN_END) == 1


def test_double_start_rejected():
    with ProfilingSession() as s:
        t = s.thread(lambda: None)
        t.start()
        t.join()
        with pytest.raises(TraceError, match="already started"):
            t.start()


def test_target_exception_reraised_on_join():
    with ProfilingSession() as s:
        def boom():
            raise RuntimeError("kapow")

        t = s.thread(boom)
        t.start()
        with pytest.raises(RuntimeError, match="kapow"):
            t.join()
    # Trace still structurally sound (THREAD_EXIT emitted in finally).
    validate_trace(s.trace())


def test_nested_thread_creation():
    with ProfilingSession() as s:
        inner_results = []

        def inner():
            inner_results.append(1)

        def outer():
            t = s.thread(inner, name="inner")
            t.start()
            t.join()

        t = s.thread(outer, name="outer")
        t.start()
        t.join()
    trace = s.trace()
    validate_trace(trace)
    assert inner_results == [1]
    assert trace.count(EventType.THREAD_CREATE) == 2


def test_args_and_kwargs_passed():
    with ProfilingSession() as s:
        t = s.thread(lambda a, b=0: a + b, args=(40,), kwargs={"b": 2})
        t.start()
        t.join()
        assert t.result == 42
