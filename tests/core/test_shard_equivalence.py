"""Sharded analysis must be indistinguishable from sequential analysis.

Property-style coverage of the ``docs/sharding.md`` bit-identity claim:
for every fuzzed ``repro.check`` program and every built-in workload
with barriers, ``analyze(trace, jobs=4)`` and ``analyze(trace)`` agree
byte-for-byte — rendered report, critical-path pieces/junctions, and
completion time — not merely within a float tolerance.  Both analysis
engines are held to the claim.

Tests that assert sharding *engages* pass ``parallel=False``: with the
default ``parallel=None``, a single usable CPU makes ``analyze`` skip
sharding outright (there is nothing to parallelize), and CI runners are
routinely pinned to one core.
"""

import pytest

from repro.check.generator import generate_spec
from repro.check.interp import run_spec
from repro.core.analyzer import ENGINES, analyze
from repro.core.shard import analyze_sharded
from repro.errors import ReproError
from repro.trace.shard import find_cuts
from repro.workloads import get_workload

N_SEEDS = 30

BARRIER_WORKLOADS = [
    ("synthetic", {"ops_per_thread": 200, "nlocks": 4, "barrier_every": 50}),
    ("radiosity", {"total_tasks": 80, "iterations": 2}),
    ("volrend", {"frames": 2, "tiles_per_frame": 48}),
    ("water-nsquared", {"nmol": 48, "timesteps": 2}),
]


def _assert_identical(seq, sharded) -> None:
    assert sharded.critical_path.length == seq.critical_path.length
    assert sharded.critical_path.pieces == seq.critical_path.pieces
    assert sharded.critical_path.junctions == seq.critical_path.junctions
    assert sharded.critical_path.waits == seq.critical_path.waits
    assert sharded.report.render(None) == seq.report.render(None)
    assert sharded.report.to_dict() == seq.report.to_dict()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_fuzzed_programs_shard_identically(seed, engine):
    spec = generate_spec(seed)
    try:
        trace = run_spec(spec).trace
        seq = analyze(trace, engine=engine)
    except ReproError:
        pytest.skip("seed produced an unanalyzable program (oracle covers these)")
    _assert_identical(seq, analyze(trace, jobs=4, parallel=False, engine=engine))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "name,params", BARRIER_WORKLOADS, ids=[n for n, _ in BARRIER_WORKLOADS]
)
def test_barrier_workloads_shard_identically(name, params, engine):
    trace = get_workload(name)(**params).run(nthreads=4, seed=11).trace
    assert find_cuts(trace), f"{name} should expose barrier cut points"
    seq = analyze(trace, validate=False, engine=engine)
    sharded = analyze(trace, validate=False, jobs=4, parallel=False, engine=engine)
    assert sharded.shards > 1, "sharding should actually engage"
    _assert_identical(seq, sharded)


@pytest.mark.parametrize("engine", ENGINES)
def test_strict_mode_runs_every_shard(engine):
    trace = get_workload("synthetic")(
        ops_per_thread=120, nlocks=3, barrier_every=40
    ).run(nthreads=4, seed=2).trace
    seq = analyze(trace, validate=False, engine=engine)
    sharded = analyze_sharded(trace, jobs=4, parallel=False, strict=True, engine=engine)
    assert sharded is not None and sharded.shards > 1
    _assert_identical(seq, sharded)


@pytest.mark.parametrize("engine", ENGINES)
def test_process_pool_path_matches_inline(engine):
    # Force real worker processes regardless of trace size / CPU count:
    # the transport (pickling shard payloads and results) must not change
    # the answer either.
    trace = get_workload("synthetic")(
        ops_per_thread=150, nlocks=4, barrier_every=50
    ).run(nthreads=4, seed=3).trace
    seq = analyze(trace, validate=False, engine=engine)
    sharded = analyze_sharded(trace, jobs=4, parallel=True, engine=engine)
    assert sharded is not None and sharded.shards > 1
    _assert_identical(seq, sharded)


def test_jobs_on_cutless_trace_is_sequential():
    trace = get_workload("synthetic")(ops_per_thread=50, nlocks=2).run(
        nthreads=4, seed=4
    ).trace
    assert find_cuts(trace) == []
    result = analyze(trace, validate=False, jobs=4, parallel=False)
    assert result.shards == 1
    _assert_identical(analyze(trace, validate=False), result)


def test_shards_field_counts_shards():
    trace = get_workload("synthetic")(
        ops_per_thread=200, nlocks=4, barrier_every=50
    ).run(nthreads=4, seed=7).trace
    result = analyze(trace, validate=False, jobs=3, parallel=False)
    assert 1 < result.shards <= 3


def test_merged_structures_feed_the_event_graph():
    # AnalysisResult.graph is built lazily from (trace, timelines,
    # wakers); the merged structures must be as complete as sequential
    # ones so downstream what-if prediction keeps working.
    trace = get_workload("synthetic")(
        ops_per_thread=200, nlocks=4, barrier_every=50
    ).run(nthreads=4, seed=7).trace
    seq = analyze(trace, validate=False)
    sharded = analyze(trace, validate=False, jobs=4, parallel=False)
    assert sharded.shards > 1
    assert sharded.graph.completion_time() == seq.graph.completion_time()
    lock = next(iter(seq.report.locks.values())).name
    assert sharded.what_if(lock).predicted_time == pytest.approx(
        seq.what_if(lock).predicted_time
    )


def test_single_cpu_default_skips_sharding(monkeypatch):
    # Regression: on a 1-CPU machine (pinned CI runner, container quota)
    # inline sharding costs split/stitch overhead with zero concurrency
    # to pay for it — BENCH_SHARD.json once recorded a 0.93x "speedup".
    # With the default parallel=None, analyze must not shard at all, and
    # must never touch the process pool.
    import repro.core.shard as shard_mod

    monkeypatch.setattr(shard_mod, "_available_cpus", lambda: 1)

    def _boom(*args, **kwargs):
        raise AssertionError("process pool must not be used on a single CPU")

    monkeypatch.setattr(shard_mod, "ProcessPoolExecutor", _boom)
    trace = get_workload("synthetic")(
        ops_per_thread=200, nlocks=4, barrier_every=50
    ).run(nthreads=4, seed=7).trace
    assert find_cuts(trace), "trace should have cut points"
    result = analyze(trace, validate=False, jobs=4)
    assert result.shards == 1
