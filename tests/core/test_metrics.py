"""TYPE 1 / TYPE 2 metric values on exactly-known executions."""

import pytest

from repro.core.analyzer import analyze

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


class TestMicroType1:
    """Paper §II / Fig. 6 numbers for the micro-benchmark."""

    def test_l2_cp_fraction(self, micro_analysis):
        m = micro_analysis.report.lock("L2")
        assert m.cp_fraction == pytest.approx(10.0 / 12.0)  # 83.33%

    def test_l1_cp_fraction(self, micro_analysis):
        m = micro_analysis.report.lock("L1")
        assert m.cp_fraction == pytest.approx(2.0 / 12.0)  # 16.67%

    def test_l2_invocations_on_cp(self, micro_analysis):
        m = micro_analysis.report.lock("L2")
        assert m.invocations_on_cp == 4
        assert m.contended_on_cp == 3
        assert m.cont_prob_on_cp == pytest.approx(0.75)  # paper: 75%

    def test_l1_on_cp(self, micro_analysis):
        m = micro_analysis.report.lock("L1")
        assert m.invocations_on_cp == 1
        assert m.cont_prob_on_cp == 0.0  # paper: 0

    def test_invocation_increase(self, micro_analysis):
        # L2 appears 4x on the CP vs 1 avg invocation per thread (paper §III.B.1).
        assert micro_analysis.report.lock("L2").invocation_increase == pytest.approx(4.0)
        assert micro_analysis.report.lock("L1").invocation_increase == pytest.approx(1.0)

    def test_cp_crossings(self, micro_analysis):
        assert micro_analysis.report.lock("L2").cp_crossings == 3
        assert micro_analysis.report.lock("L1").cp_crossings == 0

    def test_both_locks_critical(self, micro_analysis):
        assert micro_analysis.report.lock("L1").is_critical
        assert micro_analysis.report.lock("L2").is_critical


class TestMicroType2:
    def test_total_invocations(self, micro_analysis):
        for name in ("L1", "L2"):
            m = micro_analysis.report.lock(name)
            assert m.total_invocations == 4
            assert m.avg_invocations == 1.0

    def test_contention(self, micro_analysis):
        # 3 of 4 acquisitions of each lock block.
        for name in ("L1", "L2"):
            assert micro_analysis.report.lock(name).avg_cont_prob == pytest.approx(0.75)

    def test_wait_time_ranks_l1_first(self, micro_analysis):
        # The paper's key misleading TYPE 2 signal.
        l1 = micro_analysis.report.lock("L1")
        l2 = micro_analysis.report.lock("L2")
        assert l1.avg_wait_fraction > l2.avg_wait_fraction
        assert l1.total_wait_time == pytest.approx(2.0 + 4.0 + 6.0)
        assert l2.total_wait_time == pytest.approx(0.5 + 1.0 + 1.5)

    def test_hold_time(self, micro_analysis):
        l1 = micro_analysis.report.lock("L1")
        l2 = micro_analysis.report.lock("L2")
        assert l1.total_hold_time == pytest.approx(8.0)
        assert l2.total_hold_time == pytest.approx(10.0)


class TestThreadStats:
    def test_breakdown(self, micro_analysis):
        stats = {s.tid: s for s in micro_analysis.report.thread_stats}
        # worker-3: lifetime 12, waits 6 (L1) + 1.5 (L2), exec 4.5.
        s3 = stats[3]
        assert s3.lifetime == pytest.approx(12.0)
        assert s3.lock_wait == pytest.approx(7.5)
        assert s3.exec_time == pytest.approx(4.5)
        assert s3.barrier_wait == 0.0

    def test_cp_time_sums_to_duration(self, micro_analysis):
        total = sum(s.cp_time for s in micro_analysis.report.thread_stats)
        assert total == pytest.approx(12.0)


def test_unused_lock_zero_metrics():
    from repro.sim import Program

    prog = Program()
    prog.mutex("unused")
    used = prog.mutex("used")

    def body(env):
        yield env.acquire(used)
        yield env.compute(1.0)
        yield env.release(used)

    prog.spawn(body)
    analysis = analyze(prog.run().trace)
    m = analysis.report.lock("unused")
    assert m.total_invocations == 0
    assert m.cp_fraction == 0.0
    assert m.invocation_increase == 0.0
    assert m.size_increase == 0.0
    assert not m.is_critical


def test_zero_length_hold_inside_piece_counts():
    from repro.trace.builder import TraceBuilder

    b = TraceBuilder()
    lock = b.mutex("L")
    t = b.thread()
    t.start(at=0.0)
    t.critical_section(lock, acquire=1.0, obtain=1.0, release=1.0)
    t.exit(at=2.0)
    analysis = analyze(b.build())
    m = analysis.report.lock("L")
    assert m.invocations_on_cp == 1
    assert m.cp_fraction == 0.0
