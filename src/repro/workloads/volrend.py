"""Volrend workload model (SPLASH-2 volume rendering, ``head`` input).

Frame-oriented tile rendering: each frame's tiles are claimed from a
shared index counter guarded by ``QLock`` (a tiny critical section hit
once per tile), rendered (ray compositing compute, highly variable per
tile — that is the octree's unbalance), and completion is tallied under
``CountLock``; frames end at a barrier.

With many threads the tiny-but-universal ``QLock`` starts to appear on
the critical path even though per-thread wait time stays low — the same
"critical but not idle" pattern the paper highlights for UTS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["Volrend"]


@dataclass
class _State:
    qlock: Any
    count_lock: Any
    image_lock: Any
    barrier: Any
    next_tile: int = 0
    done_count: int = 0


@register
class Volrend(Workload):
    """Tile-queue volume renderer skeleton."""

    name = "volrend"

    def __init__(
        self,
        tiles_per_frame: int = 320,
        frames: int = 3,
        tile_cost: float = 0.12,
        tile_cost_spread: float = 1.0,
        q_op_cost: float = 0.004,
        count_cost: float = 0.003,
        image_write_prob: float = 0.06,
        image_cost: float = 0.005,
    ):
        self.tiles_per_frame = tiles_per_frame
        self.frames = frames
        self.tile_cost = tile_cost
        self.tile_cost_spread = tile_cost_spread
        self.q_op_cost = q_op_cost
        self.count_cost = count_cost
        self.image_write_prob = image_write_prob
        self.image_cost = image_cost

    def build(self, prog: Program, nthreads: int) -> None:
        state = _State(
            qlock=prog.mutex("QLock"),
            count_lock=prog.mutex("CountLock"),
            image_lock=prog.mutex("ImageLock"),
            barrier=prog.barrier(nthreads, "SlaveBarrier"),
        )
        prog.spawn_workers(nthreads, self._worker, state)

    def _worker(self, env, wid: int, state: _State):
        rng = env.rng
        for _ in range(self.frames):
            if wid == 0:
                state.next_tile = 0
                state.done_count = 0
            yield env.barrier_wait(state.barrier)
            while True:
                # Claim the next tile index under QLock.
                yield env.acquire(state.qlock)
                yield env.compute(self.q_op_cost)
                tile = state.next_tile
                state.next_tile += 1
                yield env.release(state.qlock)
                if tile >= self.tiles_per_frame:
                    break
                # Ray compositing: octree makes tile costs very uneven.
                cost = self.tile_cost * float(
                    rng.lognormal(0.0, self.tile_cost_spread)
                )
                yield env.compute(cost)
                if rng.random() < self.image_write_prob:
                    yield env.acquire(state.image_lock)
                    yield env.compute(self.image_cost)
                    yield env.release(state.image_lock)
                yield env.acquire(state.count_lock)
                yield env.compute(self.count_cost)
                state.done_count += 1
                yield env.release(state.count_lock)
            yield env.barrier_wait(state.barrier)
