"""Lock-order analysis: nesting graph and potential-deadlock detection.

A natural companion to critical lock analysis: the same traces that feed
the critical-path walk also record every *nested* acquisition (a thread
obtaining lock B while holding lock A).  The lock-order graph has an
edge A -> B for each such pair; a cycle means two executions could
acquire the locks in opposite orders — a potential deadlock, even if
this particular run got lucky (classic lockdep reasoning).

The analysis is trace-based and therefore sound only for orders actually
exercised; it cannot prove absence of deadlock.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.tables import format_table
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["LockOrderGraph", "build_lock_order"]


@dataclass(frozen=True)
class _Edge:
    """One observed nesting: ``inner`` obtained while ``outer`` held."""

    outer: int
    inner: int
    count: int
    example_tid: int


@dataclass
class LockOrderGraph:
    """Observed lock-nesting graph of one trace."""

    trace: Trace
    edges: dict[tuple[int, int], _Edge] = field(default_factory=dict)
    max_depth: int = 0

    @property
    def nesting_pairs(self) -> list[tuple[str, str, int]]:
        """(outer, inner, count) by display name, most frequent first."""
        return sorted(
            (
                (
                    self.trace.object_name(e.outer),
                    self.trace.object_name(e.inner),
                    e.count,
                )
                for e in self.edges.values()
            ),
            key=lambda t: -t[2],
        )

    def successors(self, obj: int) -> set[int]:
        return {inner for (outer, inner) in self.edges if outer == obj}

    def cycles(self) -> list[list[str]]:
        """Strongly-connected components with >1 lock (or a self-loop).

        Each returned cycle is a list of lock display names whose members
        were acquired in conflicting orders somewhere in the trace.
        """
        adj: dict[int, set[int]] = defaultdict(set)
        nodes: set[int] = set()
        for outer, inner in self.edges:
            adj[outer].add(inner)
            nodes.update((outer, inner))
        sccs = _tarjan_sccs(nodes, adj)
        out = []
        for scc in sccs:
            if len(scc) > 1 or (len(scc) == 1 and scc[0] in adj[scc[0]]):
                out.append(sorted(self.trace.object_name(o) for o in scc))
        return out

    @property
    def has_potential_deadlock(self) -> bool:
        return bool(self.cycles())

    def render(self, n: int = 15) -> str:
        rows = [
            [outer, inner, count] for outer, inner, count in self.nesting_pairs[:n]
        ]
        table = format_table(
            ["Outer lock", "Inner lock", "Times nested"],
            rows,
            title=f"Lock-order graph (max nesting depth {self.max_depth})",
        )
        cycles = self.cycles()
        if cycles:
            warnings = "\n".join(
                f"POTENTIAL DEADLOCK: conflicting order among {{{', '.join(c)}}}"
                for c in cycles
            )
            return table + "\n" + warnings
        return table + "\nno lock-order cycles observed"


def build_lock_order(trace: Trace) -> LockOrderGraph:
    """Scan a trace for nested acquisitions and build the order graph."""
    graph = LockOrderGraph(trace=trace)
    held: dict[int, list[int]] = defaultdict(list)  # tid -> stack of held objs
    counts: dict[tuple[int, int], int] = defaultdict(int)
    examples: dict[tuple[int, int], int] = {}
    lock_ids = {info.obj for info in trace.locks}

    for ev in trace:
        if ev.obj not in lock_ids:
            continue
        if ev.etype == EventType.OBTAIN:
            stack = held[ev.tid]
            for outer in stack:
                key = (outer, ev.obj)
                counts[key] += 1
                examples.setdefault(key, ev.tid)
            stack.append(ev.obj)
            graph.max_depth = max(graph.max_depth, len(stack))
        elif ev.etype == EventType.RELEASE:
            stack = held[ev.tid]
            if ev.obj in stack:
                stack.remove(ev.obj)  # releases may be out of LIFO order

    graph.edges = {
        key: _Edge(outer=key[0], inner=key[1], count=c, example_tid=examples[key])
        for key, c in counts.items()
    }
    return graph


def _tarjan_sccs(nodes: set[int], adj: dict[int, set[int]]) -> list[list[int]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    sccs: list[list[int]] = []

    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[int, list[int]]] = [(root, sorted(adj[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            while children:
                child = children.pop(0)
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(adj[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
