"""Streaming trace ingestion: chunked-append sessions for the service.

The batch pipeline uploads a complete trace and analyzes it post-mortem;
this module lets a *running* instrumented program ship its trace in
framed chunks (:mod:`repro.trace.framing`) and be diagnosed live:

* chunks land in a bounded per-session **pending queue** — when the
  producer outruns ingestion the service answers 429 (backpressure)
  instead of buffering without limit;
* a single **ingest thread** drains the queues, spools raw records to
  disk (service memory stays O(chunk), not O(trace)) and feeds the
  incremental estimator (:class:`repro.core.online.OnlineAnalyzer`),
  whose rolling snapshot is served while the stream is still open;
* chunk ids are **sequential per session**: the next expected id is
  accepted, anything already ingested is an idempotent duplicate (safe
  retries), and a gap is a hard 409 — the analyzer must never see a
  reordered stream silently;
* **finalize** drains the queue, assembles the spooled records into a
  canonical :class:`~repro.trace.Trace` (same sort + renumber as the
  batch path, so the digest and every downstream analysis are identical
  to a whole-file upload) and hands it to the caller.

Sessions are **checkpointed**: after every durably spooled chunk the
ingest thread rewrites ``<sid>.ckpt.json`` (tmp-then-replace, after an
fsync of the spool) recording the session identity, the number of
chunks on disk and the exact spool byte offset.  A restarted server
rebuilds every open session from its checkpoint — truncating any torn
spool tail past the checkpointed offset and replaying the spool through
a fresh :class:`OnlineAnalyzer` — so producers ``GET /streams/<sid>``,
see the durable ``next_chunk``, and resume from the last acknowledged
chunk instead of getting 404s and losing the stream.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.online import OnlineAnalyzer
from repro.errors import ServiceError, TraceFormatError
from repro.trace.framing import iter_frames, sort_stream_records
from repro.trace.schema import EVENT_DTYPE
from repro.trace.trace import Trace
from repro.trace.writer import objects_from_header

__all__ = ["StreamSession", "StreamStore"]

log = logging.getLogger("repro.service")

# Stream lifecycle states.
OPEN = "open"
FINALIZING = "finalizing"
FINALIZED = "finalized"

#: Records per block when replaying a spool at recovery (bounds memory).
_REPLAY_BLOCK = 1 << 18


class StreamSession:
    """One chunked-append ingestion session (bookkeeping only)."""

    __slots__ = (
        "id", "name", "meta", "created_at", "state", "next_chunk",
        "ingested_chunks", "events", "bytes", "duplicates", "rejected_429",
        "pending", "analyzer", "alock", "spool_path", "digest", "max_pending",
        "spool_offset", "spooled_events", "resumed",
    )

    def __init__(self, sid: str, name: str, meta: dict, spool_path: Path,
                 max_pending: int):
        self.id = sid
        self.name = name
        self.meta = meta
        self.created_at = time.time()
        self.state = OPEN
        self.next_chunk = 0            # next expected chunk id
        self.ingested_chunks = 0       # chunks fully spooled + estimated
        self.events = 0
        self.bytes = 0
        self.duplicates = 0
        self.rejected_429 = 0
        self.pending: deque[np.ndarray] = deque()
        self.analyzer = OnlineAnalyzer()
        self.alock = threading.Lock()  # guards analyzer reads vs ingest writes
        self.spool_path = spool_path
        self.digest: str | None = None
        self.max_pending = max_pending
        self.spool_offset = 0          # durable bytes in the spool file
        self.spooled_events = 0        # events durably on disk
        self.resumed = False           # rebuilt from a checkpoint?

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "created_at": self.created_at,
            "chunks": self.next_chunk,
            "ingested_chunks": self.ingested_chunks,
            "pending_chunks": len(self.pending),
            "events": self.events,
            "bytes": self.bytes,
            "duplicates": self.duplicates,
            "rejected_429": self.rejected_429,
            "max_pending": self.max_pending,
            "digest": self.digest,
            "resumed": self.resumed,
        }

    # -- checkpointing -------------------------------------------------------

    def checkpoint_blob(self) -> dict[str, Any]:
        """Durable bookkeeping: everything needed to resume this session.

        Only *ingested* progress is recorded — chunks still in the
        pending queue are not durable and the producer re-sends them
        after a restart (the ack contract makes that an idempotent
        duplicate at worst, never a double-ingest).
        """
        return {
            "version": 1,
            "id": self.id,
            "name": self.name,
            "meta": self.meta,
            "created_at": self.created_at,
            "chunks": self.ingested_chunks,
            "spool_offset": self.spool_offset,
            "events": self.spooled_events,
            "bytes": self.bytes,
            "max_pending": self.max_pending,
        }


class StreamStore:
    """All live streaming sessions plus the shared ingest thread."""

    def __init__(
        self,
        root: str | Path,
        max_pending_chunks: int = 64,
        drain_timeout: float = 30.0,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_pending_chunks = max_pending_chunks
        self.drain_timeout = drain_timeout
        self._sessions: dict[str, StreamSession] = {}
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # chunks pending
        self._drained = threading.Condition(self._lock)  # a queue emptied
        self._closed = False
        self._paused = False  # test hook: freeze ingestion to force 429s
        self.recovered_sessions = self._recover()
        self._ingester = threading.Thread(
            target=self._ingest_loop, name="stream-ingest", daemon=True
        )
        self._ingester.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        self._ingester.join(timeout=5.0)
        # Open sessions keep their spool + checkpoint on disk — that is
        # the restart contract.  Only retired sessions are swept.
        for session in list(self._sessions.values()):
            if session.state == FINALIZED:
                session.spool_path.unlink(missing_ok=True)
                self._ckpt_path(session.id).unlink(missing_ok=True)

    def pause_ingest(self) -> None:
        """Stop draining queues (tests: deterministic backpressure)."""
        with self._lock:
            self._paused = True

    def resume_ingest(self) -> None:
        with self._lock:
            self._paused = False
            self._work.notify_all()

    # -- session management ---------------------------------------------------

    def open(
        self,
        name: str = "",
        meta: dict | None = None,
        max_pending: int | None = None,
    ) -> StreamSession:
        sid = uuid.uuid4().hex[:12]
        session = StreamSession(
            sid,
            name=name,
            meta=dict(meta or {}),
            spool_path=self.root / f"{sid}.spool",
            max_pending=int(max_pending or self.max_pending_chunks),
        )
        with self._lock:
            if self._closed:
                raise ServiceError("stream store is closed", status=503)
        session.spool_path.touch()
        self._write_checkpoint(session)
        with self._lock:
            self._sessions[sid] = session
        return session

    def get(self, sid: str) -> StreamSession:
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise ServiceError(f"no such stream session: {sid}", status=404)
        return session

    def list(self) -> list[StreamSession]:
        with self._lock:
            return sorted(self._sessions.values(), key=lambda s: s.created_at)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            open_sessions = [s for s in self._sessions.values() if s.state == OPEN]
            return {
                "sessions": len(self._sessions),
                "open": len(open_sessions),
                "pending_chunks": sum(len(s.pending) for s in open_sessions),
                "recovered": self.recovered_sessions,
            }

    # -- chunk ingestion -------------------------------------------------------

    def append_chunks(self, sid: str, body: bytes) -> dict[str, Any]:
        """Apply a body of one or more framed chunks to a session.

        Returns an ack dict; raises :class:`ServiceError` with status
        404 (unknown session), 409 (finalized session, sequence gap, or
        trailer frame), 429 (queue full — retry the *unacknowledged*
        frames after a pause) or 400 (malformed frame).
        """
        if not body:
            raise ServiceError("empty chunk body", status=400)
        try:
            frames = list(iter_frames(body))
        except TraceFormatError as exc:
            raise ServiceError(f"malformed chunk frame: {exc}", status=400) from exc
        accepted = 0
        accepted_events = 0
        duplicates = 0
        with self._lock:
            session = self._sessions.get(sid)
            if session is None:
                raise ServiceError(f"no such stream session: {sid}", status=404)
            if session.state != OPEN:
                raise ServiceError(
                    f"stream {sid} is {session.state}; no more chunks", status=409
                )
            for frame in frames:
                if frame.is_trailer:
                    raise ServiceError(
                        "trailer frames are not accepted here; "
                        f"POST /traces/{sid}/finalize instead",
                        status=409,
                    )
                if frame.chunk_id < session.next_chunk:
                    duplicates += 1  # idempotent retry of an applied chunk
                    session.duplicates += 1
                    continue
                if frame.chunk_id > session.next_chunk:
                    raise ServiceError(
                        f"stream {sid}: got chunk {frame.chunk_id}, expected "
                        f"{session.next_chunk} (gap)",
                        status=409,
                    )
                if len(session.pending) >= session.max_pending:
                    session.rejected_429 += 1
                    if accepted:
                        self._work.notify_all()
                    raise ServiceError(
                        f"stream {sid}: ingest queue full "
                        f"({len(session.pending)} chunks pending); retry",
                        status=429,
                    )
                try:
                    records = frame.records
                except TraceFormatError as exc:
                    raise ServiceError(str(exc), status=400) from exc
                session.pending.append(records)
                session.next_chunk = frame.chunk_id + 1
                session.events += len(records)
                session.bytes += len(frame.payload)
                accepted += 1
                accepted_events += len(records)
            self._work.notify_all()
            return {
                "session": session.id,
                "accepted": accepted,
                "accepted_events": accepted_events,
                "duplicates": duplicates,
                "next_chunk": session.next_chunk,
                "durable_chunk": session.ingested_chunks,
                "pending_chunks": len(session.pending),
                "events": session.events,
            }

    # -- queries ---------------------------------------------------------------

    def snapshot(self, sid: str, top: int | None = None) -> dict[str, Any]:
        """The incremental estimator's rolling view of one session."""
        session = self.get(sid)
        with session.alock:
            snap = session.analyzer.snapshot(top=top)
        snap["session"] = session.id
        snap["state"] = session.state
        snap["pending_chunks"] = len(session.pending)
        return snap

    def render_snapshot(self, sid: str, top: int = 8) -> str:
        session = self.get(sid)
        with session.alock:
            return session.analyzer.render(top)

    # -- finalize --------------------------------------------------------------

    def finalize(
        self, sid: str, header: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> tuple[StreamSession, Trace]:
        """Drain, assemble and retire a session; returns the full trace.

        ``header`` is the producer's JSON trace header (objects, thread
        names, meta).  The assembled records get the canonical
        normalization (stable sort by (time, seq) + dense renumber), so
        the resulting trace — and its content digest — is identical to
        the same events uploaded as one batch file.
        """
        header = header or {}
        deadline = time.monotonic() + (
            self.drain_timeout if timeout is None else timeout
        )
        with self._lock:
            session = self._sessions.get(sid)
            if session is None:
                raise ServiceError(f"no such stream session: {sid}", status=404)
            if session.state != OPEN:
                raise ServiceError(
                    f"stream {sid} is already {session.state}", status=409
                )
            session.state = FINALIZING
            while session.pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    session.state = OPEN  # give the caller another shot
                    raise ServiceError(
                        f"stream {sid}: ingest backlog did not drain in time",
                        status=504,
                    )
                self._work.notify_all()
                self._drained.wait(timeout=min(remaining, 0.25))
        records = np.fromfile(session.spool_path, dtype=EVENT_DTYPE)
        trace = Trace(
            records=sort_stream_records(records),
            objects=objects_from_header(header),
            threads={
                int(t): name for t, name in header.get("threads", {}).items()
            },
            meta=dict(header.get("meta", {})),
        )
        with self._lock:
            session.state = FINALIZED
        session.spool_path.unlink(missing_ok=True)
        self._ckpt_path(sid).unlink(missing_ok=True)
        return session, trace

    def forget(self, sid: str) -> None:
        """Drop a finalized session from the listing."""
        with self._lock:
            self._sessions.pop(sid, None)

    # -- checkpoint persistence ------------------------------------------------

    def _ckpt_path(self, sid: str) -> Path:
        return self.root / f"{sid}.ckpt.json"

    def _write_checkpoint(self, session: StreamSession) -> None:
        """Atomically persist a session's durable bookkeeping."""
        blob = json.dumps(session.checkpoint_blob()).encode("utf-8")
        tmp = self.root / f".ckpt-{uuid.uuid4().hex}.tmp"
        tmp.write_bytes(blob)
        os.replace(tmp, self._ckpt_path(session.id))

    def _recover(self) -> int:
        """Rebuild open sessions from checkpoints left by a dead server.

        For each ``<sid>.ckpt.json``: truncate the spool to the
        checkpointed offset (a crash mid-spill leaves a torn tail past
        it — those events were never acknowledged as durable), replay
        the surviving spool through a fresh analyzer, and re-open the
        session at ``next_chunk = chunks-on-disk`` so the producer's
        next append resumes exactly after the last durable chunk.
        """
        for stale in self.root.glob(".ckpt-*.tmp"):
            stale.unlink(missing_ok=True)
        recovered = 0
        for ckpt in sorted(self.root.glob("*.ckpt.json")):
            try:
                blob = json.loads(ckpt.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                log.warning("stream recovery: unreadable checkpoint %s", ckpt)
                continue
            sid = str(blob.get("id") or ckpt.name[: -len(".ckpt.json")])
            spool = self.root / f"{sid}.spool"
            session = StreamSession(
                sid,
                name=str(blob.get("name", "")),
                meta=dict(blob.get("meta") or {}),
                spool_path=spool,
                max_pending=int(blob.get("max_pending") or self.max_pending_chunks),
            )
            session.created_at = float(blob.get("created_at", session.created_at))
            offset = int(blob.get("spool_offset", 0))
            have = spool.stat().st_size if spool.exists() else 0
            if have < offset:
                # The spool lost acknowledged bytes (filesystem damage,
                # manual truncation): chunk boundaries are unknowable, so
                # restart the session from zero rather than serve a lie.
                log.warning(
                    "stream recovery: %s spool has %d bytes, checkpoint "
                    "says %d; restarting session from chunk 0", sid, have, offset,
                )
                offset = 0
                blob["chunks"] = 0
                blob["events"] = 0
                blob["bytes"] = 0
            if have != offset:
                # Torn tail from a crash mid-spill: drop it. Those events
                # were never checkpointed, so the producer re-sends them.
                with open(spool, "ab") as fh:
                    fh.truncate(offset)
            else:
                spool.touch()
            session.spool_offset = offset
            session.next_chunk = session.ingested_chunks = int(blob.get("chunks", 0))
            session.spooled_events = session.events = int(blob.get("events", 0))
            session.bytes = int(blob.get("bytes", 0))
            session.resumed = True
            self._replay_spool(session)
            self._sessions[sid] = session
            recovered += 1
            log.info(
                "stream recovery: resumed session %s at chunk %d "
                "(%d events replayed)", sid, session.next_chunk, session.events,
            )
        return recovered

    def _replay_spool(self, session: StreamSession) -> None:
        """Rebuild the incremental estimator from the durable spool."""
        with open(session.spool_path, "rb") as fh:
            while True:
                block = np.fromfile(fh, dtype=EVENT_DTYPE, count=_REPLAY_BLOCK)
                if len(block) == 0:
                    break
                session.analyzer.observe_batch(block)

    # -- the ingest thread ------------------------------------------------------

    def _ingest_loop(self) -> None:
        while True:
            with self._lock:
                session, records = self._next_pending()
                while session is None:
                    if self._closed:
                        return
                    self._work.wait()
                    session, records = self._next_pending()
            # Spool + estimate outside the lock: ingestion cost must not
            # block producers posting to *other* sessions' queues.
            with open(session.spool_path, "ab") as fh:
                fh.write(records.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
                offset = fh.tell()
            with session.alock:
                session.analyzer.observe_batch(records)
            with self._lock:
                session.pending.popleft()
                session.ingested_chunks += 1
                session.spool_offset = offset
                session.spooled_events += len(records)
                if not session.pending:
                    self._drained.notify_all()
            # Checkpoint *after* the spool is durable (fsync above): the
            # checkpoint never claims bytes the spool does not have.
            self._write_checkpoint(session)

    def _next_pending(self) -> tuple[StreamSession | None, np.ndarray | None]:
        if self._paused and not self._closed:
            return None, None
        for session in self._sessions.values():
            if session.pending:
                return session, session.pending[0]
        return None, None
