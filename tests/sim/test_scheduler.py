"""Core-limited scheduling."""

from repro.sim import Program


def test_one_core_serializes_compute():
    prog = Program(cores=1)

    def body(env, i):
        yield env.compute(1.0)

    prog.spawn_workers(3, body)
    assert prog.run().completion_time == 3.0


def test_two_cores_halve_elapsed():
    prog = Program(cores=2)

    def body(env, i):
        yield env.compute(1.0)

    prog.spawn_workers(4, body)
    assert prog.run().completion_time == 2.0


def test_enough_cores_fully_parallel():
    prog = Program(cores=8)

    def body(env, i):
        yield env.compute(1.0)

    prog.spawn_workers(4, body)
    assert prog.run().completion_time == 1.0


def test_blocked_thread_frees_core():
    prog = Program(cores=1)
    lock = prog.mutex("L")
    log = []

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)
        log.append(("holder-done", env.now))

    def blocker(env):
        yield env.acquire(lock)  # blocks immediately, giving up the core
        log.append(("blocker-got", env.now))
        yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(blocker)
    prog.run()
    # Blocker's acquire was processed while holder computed (core released
    # on block), so the lock hands off at 1.0.
    assert ("blocker-got", 1.0) in log


def test_yield_core_round_robins():
    prog = Program(cores=1)
    order = []

    def body(env, i):
        for step in range(2):
            yield env.compute(1.0)
            order.append((i, step))
            yield env.yield_core()

    prog.spawn_workers(2, body)
    prog.run()
    assert order == [(0, 0), (1, 0), (0, 1), (1, 1)]


def test_yield_core_noop_when_unlimited():
    prog = Program()

    def body(env):
        yield env.compute(1.0)
        yield env.yield_core()
        yield env.compute(1.0)

    prog.spawn(body)
    assert prog.run().completion_time == 2.0


def test_ready_queue_fifo():
    prog = Program(cores=1)
    start_order = []

    def body(env, i):
        start_order.append(i)
        yield env.compute(1.0)

    prog.spawn_workers(4, body)
    prog.run()
    assert start_order == [0, 1, 2, 3]
