"""Shared array primitives for the columnar engine.

Three tools cover every dict the object engine keeps while scanning the
trace:

* :func:`latest_prior` — "latest earlier event with the same key", the
  vectorized form of ``last_release[obj]`` / ``exits[tid]`` /
  ``last_event[tid]`` style lookups.  One ``np.maximum.accumulate`` over
  an encoded (key, position) stream answers every query at once.
* :func:`lifo_match` — parenthesis matching per key, the vectorized form
  of the per-``(tid, obj)`` ``open_holds`` stacks.  Depth levels come
  from a segmented cumsum; the k-th push at ``(key, level)`` matches the
  k-th pop at the same pair.
* :func:`exact_group_sums` — per-group sums computed with ``np.cumsum``
  so each group's floats are added left to right, exactly like the
  object engine's ``for``-loop accumulators.  ``np.add.reduceat`` would
  be faster but uses pairwise summation and is *not* bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dense_keys",
    "exact_group_sums",
    "group_bounds",
    "latest_prior",
    "lifo_match",
    "segmented_cumsum",
]


def dense_keys(*cols: np.ndarray) -> np.ndarray:
    """Collapse parallel key columns into one dense non-negative int64 key.

    All columns must be the same length; the result assigns equal rows
    equal ids without overflow regardless of the input value ranges.
    """
    key: np.ndarray | None = None
    for col in cols:
        uniq, inv = np.unique(np.asarray(col), return_inverse=True)
        inv = inv.astype(np.int64, copy=False)
        key = inv if key is None else key * np.int64(len(uniq)) + inv
    if key is None:
        raise ValueError("dense_keys needs at least one column")
    return key


def latest_prior(
    marker_pos: np.ndarray,
    marker_key: np.ndarray,
    query_pos: np.ndarray,
    query_key: np.ndarray,
) -> np.ndarray:
    """For each query, the position of the latest marker strictly before it
    carrying the same key, or ``-1`` when none exists.

    ``marker_pos`` / ``query_pos`` are global record positions (unique,
    non-negative, no marker sharing a position with a query unless the
    marker should be visible to later queries only — positions are
    compared strictly, so a marker *at* a query's own position is never
    returned).  Keys are arbitrary integers; they are densified here so
    callers can pack whatever fits.
    """
    nq = len(query_pos)
    out = np.full(nq, -1, dtype=np.int64)
    if nq == 0 or len(marker_pos) == 0:
        return out

    marker_pos = np.asarray(marker_pos, dtype=np.int64)
    query_pos = np.asarray(query_pos, dtype=np.int64)
    nm = len(marker_pos)
    key = dense_keys(np.concatenate([np.asarray(marker_key), np.asarray(query_key)]))
    pos = np.concatenate([marker_pos, query_pos])
    is_marker = np.zeros(nm + nq, dtype=bool)
    is_marker[:nm] = True

    # Sort by (key, pos, is_marker): one record can be both a marker and
    # a query (a COND_WAKE is an event of its own thread), and "prior"
    # is strict, so at equal positions the query must come first to keep
    # the marker out of its own running maximum.
    order = np.lexsort((is_marker, pos, key))
    span = np.int64(int(pos.max()) + 1)
    enc = np.where(is_marker[order], key[order] * span + pos[order] + 1, 0)
    running = np.maximum.accumulate(enc)
    prior = np.empty_like(running)
    prior[0] = 0
    prior[1:] = running[:-1]

    qmask = ~is_marker[order]
    pq = prior[qmask] - 1  # encoded latest prior entry, -1 when none
    qkey = key[order][qmask]
    valid = (pq >= 0) & (pq // span == qkey)
    result_sorted = np.where(valid, pq % span, -1)

    orig_idx = order[qmask] - nm
    out[orig_idx] = result_sorted
    return out


def group_bounds(sorted_key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start offsets and keys of each run in an already-sorted key array."""
    if len(sorted_key) == 0:
        return np.zeros(0, dtype=np.int64), sorted_key
    starts = np.flatnonzero(np.concatenate([[True], sorted_key[1:] != sorted_key[:-1]]))
    return starts.astype(np.int64), sorted_key[starts]


def segmented_cumsum(values: np.ndarray, seg_starts: np.ndarray) -> np.ndarray:
    """Cumulative sum restarting at each segment boundary.

    Only safe for *integer* values (exact arithmetic): implemented as a
    global cumsum minus the per-segment offset.
    """
    if len(values) == 0:
        return values.copy()
    total = np.cumsum(values)
    seg_lens = np.diff(np.append(seg_starts, len(values)))
    base_vals = np.zeros(len(seg_starts), dtype=total.dtype)
    if len(seg_starts) > 1:
        base_vals[1:] = total[seg_starts[1:] - 1]
    return total - np.repeat(base_vals, seg_lens)


def lifo_match(
    pos: np.ndarray,
    key: np.ndarray,
    is_open: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack-discipline matching of opens/closes per key.

    ``pos`` are unique global positions; events are stacked per ``key``
    in position order.  Returns ``(close_for_open, open_for_close)``:
    for each open event (in input order) the input index of its matching
    close or ``-1`` if never closed, and for each close the index of its
    open or ``-1`` for a pop on an empty stack (an error in the object
    engine).  Indices refer to the *input* arrays.
    """
    n = len(pos)
    close_for_open = np.full(n, -1, dtype=np.int64)
    open_for_close = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return close_for_open, open_for_close

    pos = np.asarray(pos, dtype=np.int64)
    key = dense_keys(key)
    delta = np.where(is_open, 1, -1).astype(np.int64)

    order = np.lexsort((pos, key))
    k_s = key[order]
    d_s = delta[order]
    seg_starts, _ = group_bounds(k_s)
    depth_after = segmented_cumsum(d_s, seg_starts)
    depth_before = depth_after - d_s
    level = np.where(d_s > 0, depth_before, depth_after)

    # A pop below depth 0 has no matching push by construction; matching
    # on (key, level, rank) below leaves it unmatched because ranks are
    # counted per non-negative level only.
    open_sel = d_s > 0
    close_sel = ~open_sel

    def ranked(sel: np.ndarray) -> np.ndarray:
        """Rank within (key, level) in position order, for selected rows."""
        kk = k_s[sel]
        ll = level[sel]
        sub = dense_keys(kk, ll)
        sub_order = np.argsort(sub, kind="stable")  # rows already pos-sorted per key
        sorted_sub = sub[sub_order]
        starts, _ = group_bounds(sorted_sub)
        rank_sorted = segmented_cumsum(np.ones(len(sorted_sub), dtype=np.int64), starts) - 1
        rank = np.empty(len(sorted_sub), dtype=np.int64)
        rank[sub_order] = rank_sorted
        return rank

    open_rank = ranked(open_sel)
    close_rank = ranked(close_sel)

    open_key3 = np.stack(
        [k_s[open_sel], level[open_sel], open_rank], axis=1
    ) if open_sel.any() else np.zeros((0, 3), dtype=np.int64)
    close_key3 = np.stack(
        [k_s[close_sel], level[close_sel], close_rank], axis=1
    ) if close_sel.any() else np.zeros((0, 3), dtype=np.int64)

    combined = dense_keys(
        np.concatenate([open_key3[:, 0], close_key3[:, 0]]),
        np.concatenate([open_key3[:, 1], close_key3[:, 1]]),
        np.concatenate([open_key3[:, 2], close_key3[:, 2]]),
    )
    no = int(open_sel.sum())
    ok3 = combined[:no]
    ck3 = combined[no:]
    if len(ok3) == 0:
        return close_for_open, open_for_close
    # Negative-level closes must never match anything (their level can
    # coincide with a later open's level after the depth went negative,
    # but the object engine aborts at the first bad pop anyway; we just
    # need them flagged unmatched so the caller can raise).
    neg_close = level[close_sel] < 0

    o_order = np.argsort(ok3, kind="stable")
    idx = np.searchsorted(ok3[o_order], ck3)
    idx_clipped = np.minimum(idx, len(ok3) - 1)
    hit = (idx < len(ok3)) & (ok3[o_order][idx_clipped] == ck3) & ~neg_close

    open_input_idx = order[open_sel]
    close_input_idx = order[close_sel]
    matched_open = np.where(hit, open_input_idx[o_order][idx_clipped], -1)
    open_for_close[close_input_idx] = matched_open
    ok_closes = matched_open >= 0
    close_for_open[matched_open[ok_closes]] = close_input_idx[ok_closes]
    return close_for_open, open_for_close


def exact_group_sums(values: np.ndarray, seg_starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Left-to-right float sum of each ``[start, end)`` segment.

    One ``np.cumsum`` per segment keeps IEEE addition order identical to
    the object engine's accumulator loops.  Call sites have few segments
    (locks × threads), so the Python loop is cheap.
    """
    out = np.zeros(len(seg_starts), dtype=np.float64)
    for i, (lo, hi) in enumerate(zip(seg_starts, ends)):
        if hi > lo:
            out[i] = np.cumsum(values[lo:hi])[-1]
    return out
