"""Seeded random program generation — deadlock-free by construction.

Programs must always terminate so a differential failure means "analysis
bug", never "generator hung the simulator".  Four structural rules give
that guarantee:

1. **Ordered blocking locks.**  A thread blocking-acquires mutex ``i``
   only while its statically held mutexes all have index ``< i``
   (trylocks are exempt: they never block).  No cycles → no mutex
   deadlock.
2. **Atomic composites.**  Trylock / rwlock / semaphore sections contain
   only a compute, so their holders never block and always release.
3. **Phase-balanced channels.**  ``produce`` ops may appear anywhere in
   a root thread's phase (including nested in lock bodies); ``consume``
   ops sit only at root-thread phase *tails*, and the generator never
   allocates more consumes than the cumulative root-thread produces, so
   every consume is backed by a token that arrives before the barriers.
   Child-thread produces are surplus and never counted.
4. **Column barriers, leaf children.**  Barrier ops form identical
   columns across all root threads (parties = root-thread count), and
   spawned children never consume or touch barriers; children are joined
   implicitly at the end of the spawning thread.

Zero-length computes are generated deliberately often: equal-timestamp
handoffs are the adversarial regime for chain accounting and float
comparisons.
"""

from __future__ import annotations

import random

from repro.check.spec import ProgramSpec, ThreadSpec

__all__ = ["generate_spec"]

_MAX_DEPTH = 2  # nesting bound for lock bodies and spawn trees


def _dur(rng: random.Random) -> float:
    """A compute duration; zero ~35% of the time (see module docstring)."""
    if rng.random() < 0.35:
        return 0.0
    return round(rng.uniform(0.1, 3.0), 2)


class _Gen:
    def __init__(self, rng: random.Random, spec: ProgramSpec):
        self.rng = rng
        self.spec = spec
        # produce count per channel for the current phase (root threads only)
        self.produced = [0] * spec.n_channels

    def ops(self, n: int, depth: int, held_max: int, in_child: bool) -> list[dict]:
        return [self.op(depth, held_max, in_child) for _ in range(n)]

    def op(self, depth: int, held_max: int, in_child: bool) -> dict:
        rng, spec = self.rng, self.spec
        menu = ["compute", "compute"]
        if depth < _MAX_DEPTH and held_max + 1 < spec.n_mutexes:
            menu += ["lock", "lock"]
        if spec.n_mutexes:
            menu.append("trylock")
        if spec.n_rwlocks:
            menu.append("rw")
        if spec.n_sems:
            menu.append("sem")
        if spec.n_channels:
            menu.append("produce")
        if depth < _MAX_DEPTH:
            menu.append("spawn")
        kind = rng.choice(menu)
        if kind == "compute":
            return {"op": "compute", "dur": _dur(rng)}
        if kind == "lock":
            # Rule 1: only mutexes above every statically held index.
            m = rng.randrange(held_max + 1, spec.n_mutexes)
            body = self.ops(rng.randint(0, 2), depth + 1, m, in_child)
            return {"op": "lock", "m": m, "body": body}
        if kind == "trylock":
            # Non-blocking, so any index is fair game — including one the
            # thread already holds (exercises the try-fail path).
            return {"op": "trylock", "m": rng.randrange(spec.n_mutexes), "dur": _dur(rng)}
        if kind == "rw":
            return {
                "op": "rw",
                "rw": rng.randrange(spec.n_rwlocks),
                "write": rng.random() < 0.5,
                "dur": _dur(rng),
            }
        if kind == "sem":
            return {"op": "sem", "s": rng.randrange(spec.n_sems), "dur": _dur(rng)}
        if kind == "produce":
            ch = rng.randrange(spec.n_channels)
            if not in_child:
                self.produced[ch] += 1
            return {"op": "produce", "ch": ch, "broadcast": rng.random() < 0.25}
        # spawn: children start with no held locks and may nest once more.
        return {"op": "spawn", "ops": self.ops(rng.randint(1, 3), depth + 1, -1, True)}


def generate_spec(seed: int) -> ProgramSpec:
    """Generate the deterministic random program for ``seed``."""
    rng = random.Random(seed)
    spec = ProgramSpec(
        seed=seed,
        n_mutexes=rng.randint(1, 4),
        n_rwlocks=rng.randint(0, 2),
        n_sems=rng.randint(0, 2),
        n_channels=rng.randint(0, 2),
        barrier_rounds=rng.randint(0, 2),
    )
    spec.sem_values = [rng.randint(1, 2) for _ in range(spec.n_sems)]
    n_threads = rng.randint(2, 4)
    spec.threads = [ThreadSpec(name=f"t{i}") for i in range(n_threads)]

    gen = _Gen(rng, spec)
    avail = [0] * spec.n_channels  # unconsumed root-thread tokens per channel
    for phase in range(spec.barrier_rounds + 1):
        gen.produced = [0] * spec.n_channels
        phase_ops = [
            gen.ops(rng.randint(0, 4), 0, -1, False) for _ in range(n_threads)
        ]
        for c in range(spec.n_channels):
            avail[c] += gen.produced[c]
        # Rule 3: tail consumes, never exceeding the produced balance.
        for c in range(spec.n_channels):
            k = rng.randint(0, avail[c]) if avail[c] else 0
            avail[c] -= k
            for _ in range(k):
                phase_ops[rng.randrange(n_threads)].append({"op": "consume", "ch": c})
        for ti, t in enumerate(spec.threads):
            t.ops.extend(phase_ops[ti])
            if phase < spec.barrier_rounds:
                t.ops.append({"op": "barrier"})
    return spec
