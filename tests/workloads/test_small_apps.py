"""Water-nsquared, Volrend, Raytrace, OpenLDAP, Synthetic workload checks."""

import pytest

from repro.core.analyzer import analyze
from repro.core.model import WaitKind
from repro.trace.events import EventType, ObjectKind
from repro.trace.validate import validate_trace
from repro.workloads import LDAPServer, Raytrace, SyntheticLocks, Volrend, WaterNSquared


class TestWater:
    @pytest.fixture(scope="class")
    def run8(self):
        return WaterNSquared(timesteps=2).run(nthreads=8, seed=5)

    def test_valid(self, run8):
        validate_trace(run8.trace)

    def test_barrier_dominated(self, run8):
        analysis = analyze(run8.trace)
        barrier_wait = sum(s.barrier_wait for s in analysis.report.thread_stats)
        lock_wait = sum(s.lock_wait for s in analysis.report.thread_stats)
        assert barrier_wait > lock_wait

    def test_locks_not_bottleneck(self, run8):
        analysis = analyze(run8.trace)
        top = analysis.report.top_locks(1)[0]
        assert top.cp_fraction < 0.10  # paper: water has no lock bottleneck

    def test_barrier_generations(self, run8):
        gens = {
            ev.arg for ev in run8.trace if ev.etype == EventType.BARRIER_ARRIVE
        }
        assert len(gens) == 3 * 2  # 3 phases x 2 timesteps


class TestVolrend:
    @pytest.fixture(scope="class")
    def run8(self):
        return Volrend(frames=2, tiles_per_frame=80).run(nthreads=8, seed=5)

    def test_valid(self, run8):
        validate_trace(run8.trace)

    def test_all_tiles_claimed(self, run8):
        analysis = analyze(run8.trace)
        qlock = analysis.report.lock("QLock")
        # Every tile claim + the terminating probe per thread per frame.
        assert qlock.total_invocations == (80 + 8) * 2

    def test_qlock_cheap_but_critical(self, run8):
        analysis = analyze(run8.trace)
        qlock = analysis.report.lock("QLock")
        assert qlock.avg_hold_fraction < 0.05
        assert qlock.is_critical


class TestRaytrace:
    @pytest.fixture(scope="class")
    def run8(self):
        return Raytrace(bundles_per_thread=10).run(nthreads=8, seed=5)

    def test_valid(self, run8):
        validate_trace(run8.trace)

    def test_mem_lock_tops_cp(self, run8):
        analysis = analyze(run8.trace)
        assert analysis.report.top_locks(1)[0].name == "mem"

    def test_mem_cp_exceeds_wait(self, run8):
        m = analyze(run8.trace).report.lock("mem")
        assert m.cp_fraction > m.avg_wait_fraction  # paper Fig. 8 Raytrace story

    def test_all_bundles_traced(self, run8):
        m = analyze(run8.trace).report.lock("mem")
        wl = Raytrace(bundles_per_thread=10)
        assert m.total_invocations == 8 * 10 * wl.allocs_per_bundle


class TestLDAP:
    @pytest.fixture(scope="class")
    def run8(self):
        return LDAPServer(requests=200).run(nthreads=8, seed=5)

    def test_valid(self, run8):
        validate_trace(run8.trace)

    def test_listener_plus_workers(self, run8):
        assert len(run8.trace.thread_ids) == 9

    def test_no_significant_bottleneck(self, run8):
        """The paper's OpenLDAP finding: mature locking, tiny CP shares."""
        analysis = analyze(run8.trace)
        top = analysis.report.top_locks(1)[0]
        assert top.cp_fraction < 0.10

    def test_rwlocks_used(self, run8):
        rw = run8.trace.objects_of_kind(ObjectKind.RWLOCK)
        assert len(rw) == 64
        analysis = analyze(run8.trace)
        lookups = sum(
            m.total_invocations
            for m in analysis.report.locks.values()
            if m.name.startswith("entry_lock")
        )
        assert lookups == 200  # one per request


class TestSynthetic:
    def test_valid_and_deterministic(self):
        import numpy as np

        a = SyntheticLocks(ops_per_thread=20).run(nthreads=4, seed=9)
        b = SyntheticLocks(ops_per_thread=20).run(nthreads=4, seed=9)
        validate_trace(a.trace)
        assert np.array_equal(a.trace.records, b.trace.records)

    def test_zipf_skew_concentrates_on_lock0(self):
        res = SyntheticLocks(zipf_skew=2.5, ops_per_thread=60).run(nthreads=4, seed=2)
        analysis = analyze(res.trace)
        counts = {m.name: m.total_invocations for m in analysis.report.locks.values()}
        assert counts["lock[0]"] > counts["lock[3]"]

    def test_barrier_mode(self):
        res = SyntheticLocks(barrier_every=5, ops_per_thread=10).run(nthreads=3, seed=2)
        validate_trace(res.trace)
        analysis = analyze(res.trace)
        assert any(
            w.kind == WaitKind.BARRIER
            for tl in analysis.timelines.values()
            for w in tl.waits
        )

    def test_invalid_nlocks(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            SyntheticLocks(nlocks=0)
