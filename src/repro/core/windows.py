"""Windowed critical lock analysis: lock criticality over time.

The paper's future work (§VII) proposes feeding critical-lock rankings
to runtime mechanisms (accelerated critical sections, speculative lock
reordering, transactional memory), which need to know **which lock is
critical right now** — a single whole-run ranking hides phase behaviour.

This module splits the critical path into equal time windows and
attributes each window's path time to the locks whose hot critical
sections occupy it, yielding a (window x lock) criticality matrix and a
per-window dominant lock.  Because the critical path tiles the
execution, the per-window shares are directly comparable across windows.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import AnalysisResult
from repro.errors import AnalysisError
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["WindowedCriticality", "windowed_criticality"]


@dataclass(frozen=True)
class WindowedCriticality:
    """Per-time-window lock shares of the critical path.

    ``shares[w, i]`` is the fraction of window ``w``'s critical-path time
    spent inside critical sections of ``lock_names[i]``.
    """

    window_edges: np.ndarray  # (nwindows + 1,) time boundaries
    lock_names: list[str]
    shares: np.ndarray  # (nwindows, nlocks)

    @property
    def nwindows(self) -> int:
        return len(self.shares)

    def dominant_lock(self, window: int) -> str | None:
        """Name of the lock owning the most path time in a window."""
        row = self.shares[window]
        if not len(row) or row.max() <= 0:
            return None
        return self.lock_names[int(np.argmax(row))]

    def phase_changes(self) -> list[int]:
        """Windows where the dominant lock differs from the previous window."""
        doms = [self.dominant_lock(w) for w in range(self.nwindows)]
        return [w for w in range(1, self.nwindows) if doms[w] != doms[w - 1]]

    def render(self, max_locks: int = 6) -> str:
        """Table: one row per window, one column per (top) lock."""
        totals = self.shares.sum(axis=0)
        order = np.argsort(totals)[::-1][:max_locks]
        headers = ["Window"] + [self.lock_names[i] for i in order] + ["Dominant"]
        rows = []
        for w in range(self.nwindows):
            t0, t1 = self.window_edges[w], self.window_edges[w + 1]
            rows.append(
                [f"[{t0:.4g}, {t1:.4g})"]
                + [format_percent(self.shares[w, i]) for i in order]
                + [self.dominant_lock(w) or "-"]
            )
        return format_table(
            headers, rows, title="Lock criticality over time (share of window CP)"
        )


def windowed_criticality(
    analysis: AnalysisResult, nwindows: int = 10
) -> WindowedCriticality:
    """Split the critical path into time windows and attribute lock shares."""
    if nwindows < 1:
        raise AnalysisError(f"nwindows must be >= 1, got {nwindows}")
    trace = analysis.trace
    start, end = trace.start_time, trace.end_time
    if end <= start:
        raise AnalysisError("trace has zero duration")
    edges = np.linspace(start, end, nwindows + 1)
    locks = [info for info in trace.locks]
    lock_names = [info.display_name for info in locks]
    shares = np.zeros((nwindows, len(locks)))
    window_cp = np.zeros(nwindows)

    pieces_by_tid = analysis.critical_path.pieces_by_thread()

    # Window CP time: pieces tile [start, end], so each window's CP time
    # equals its width — but compute it from the pieces so the invariant
    # holds even on real traces with coverage error.
    for pieces in pieces_by_tid.values():
        for p in pieces:
            _accumulate(window_cp, edges, p.start, p.end, 1.0)

    for col, info in enumerate(locks):
        for tid, pieces in pieces_by_tid.items():
            holds = analysis.timelines[tid].holds.get(info.obj)
            if not holds:
                continue
            starts = [h.start for h in holds]
            for p in pieces:
                if p.duration <= 0:
                    continue
                i = max(0, bisect_right(starts, p.start) - 1)
                while i < len(holds) and holds[i].start < p.end:
                    h = holds[i]
                    lo = max(p.start, h.start)
                    hi = min(p.end, h.end)
                    if hi > lo:
                        _accumulate(shares[:, col], edges, lo, hi, 1.0)
                    i += 1

    nonzero = window_cp > 0
    shares[nonzero] /= window_cp[nonzero, None]
    return WindowedCriticality(
        window_edges=edges, lock_names=lock_names, shares=shares
    )


def _accumulate(
    buckets: np.ndarray, edges: np.ndarray, lo: float, hi: float, weight: float
) -> None:
    """Add ``weight * overlap`` of [lo, hi) into each window bucket."""
    if hi <= lo:
        return
    first = max(0, int(np.searchsorted(edges, lo, side="right")) - 1)
    last = min(len(buckets) - 1, int(np.searchsorted(edges, hi, side="left")) - 1)
    for w in range(first, last + 1):
        overlap = min(hi, edges[w + 1]) - max(lo, edges[w])
        if overlap > 0:
            buckets[w] += weight * overlap
