"""Parameterized synthetic lock workload.

A knob-driven generator of lock-heavy programs used by tests, property
checks and the ablation benchmarks: ``nthreads`` workers each perform
``ops_per_thread`` rounds of (non-critical compute, pick a lock by a
Zipf-like distribution, hold it for an exponential critical section),
with an optional barrier every ``barrier_every`` rounds.

The Zipf skew concentrates traffic on lock 0, giving a tunable gradient
from "one dominant critical lock" (high skew) to "uniform light
contention" (skew 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import WorkloadError
from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["SyntheticLocks"]


@dataclass
class _State:
    locks: list[Any]
    barrier: Any | None
    weights: np.ndarray


@register
class SyntheticLocks(Workload):
    """Configurable random critical-section generator."""

    name = "synthetic"

    def __init__(
        self,
        nlocks: int = 6,
        ops_per_thread: int = 50,
        cs_cost: float = 0.05,
        noncrit_cost: float = 0.2,
        zipf_skew: float = 1.2,
        barrier_every: int = 0,
    ):
        if nlocks < 1:
            raise WorkloadError("nlocks must be >= 1")
        self.nlocks = nlocks
        self.ops_per_thread = ops_per_thread
        self.cs_cost = cs_cost
        self.noncrit_cost = noncrit_cost
        self.zipf_skew = zipf_skew
        self.barrier_every = barrier_every

    def build(self, prog: Program, nthreads: int) -> None:
        ranks = np.arange(1, self.nlocks + 1, dtype=float)
        weights = ranks**-self.zipf_skew if self.zipf_skew > 0 else np.ones_like(ranks)
        state = _State(
            locks=[prog.mutex(f"lock[{i}]") for i in range(self.nlocks)],
            barrier=(
                prog.barrier(nthreads, "phase") if self.barrier_every > 0 else None
            ),
            weights=weights / weights.sum(),
        )
        prog.spawn_workers(nthreads, self._worker, state)

    def _worker(self, env, wid: int, state: _State):
        rng = env.rng
        for op in range(self.ops_per_thread):
            yield env.compute(float(rng.exponential(self.noncrit_cost)))
            lock = state.locks[int(rng.choice(len(state.locks), p=state.weights))]
            yield env.acquire(lock)
            yield env.compute(float(rng.exponential(self.cs_cost)))
            yield env.release(lock)
            if state.barrier is not None and (op + 1) % self.barrier_every == 0:
                yield env.barrier_wait(state.barrier)
