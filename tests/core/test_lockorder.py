"""Lock-order graph and potential-deadlock detection."""

from repro.core.lockorder import build_lock_order
from repro.sim import Program
from repro.trace.builder import TraceBuilder

from tests.conftest import make_micro_program


def nested_program(order_ab=True, order_ba=False):
    """Threads nest A->B and/or B->A (sequentially, so no actual deadlock)."""
    prog = Program()
    a, b = prog.mutex("A"), prog.mutex("B")

    def ab(env):
        yield env.acquire(a)
        yield env.compute(0.1)
        yield env.acquire(b)
        yield env.compute(0.1)
        yield env.release(b)
        yield env.release(a)

    def ba(env):
        yield env.compute(1.0)  # run after ab to avoid real deadlock
        yield env.acquire(b)
        yield env.compute(0.1)
        yield env.acquire(a)
        yield env.compute(0.1)
        yield env.release(a)
        yield env.release(b)

    if order_ab:
        prog.spawn(ab)
    if order_ba:
        prog.spawn(ba)
    return prog.run().trace


def test_no_nesting_in_micro():
    graph = build_lock_order(make_micro_program().run().trace)
    assert graph.edges == {}
    assert graph.max_depth == 1
    assert not graph.has_potential_deadlock
    assert "no lock-order cycles" in graph.render()


def test_single_order_no_cycle():
    graph = build_lock_order(nested_program(order_ab=True, order_ba=False))
    assert graph.nesting_pairs == [("A", "B", 1)]
    assert graph.max_depth == 2
    assert graph.cycles() == []


def test_conflicting_orders_flagged():
    graph = build_lock_order(nested_program(order_ab=True, order_ba=True))
    pairs = {(o, i) for o, i, _ in graph.nesting_pairs}
    assert pairs == {("A", "B"), ("B", "A")}
    assert graph.has_potential_deadlock
    assert graph.cycles() == [["A", "B"]]
    assert "POTENTIAL DEADLOCK" in graph.render()


def test_self_loop_via_reentrant_trace():
    # Hand-build a (validator-invalid) trace where a thread re-obtains the
    # same lock while holding it; the order graph must flag the self-loop.
    b = TraceBuilder()
    lock = b.mutex("L")
    t = b.thread()
    t.start(at=0.0)
    t.acquire(lock, at=1.0)
    t.acquire(lock, at=2.0)
    t.release(lock, at=3.0)
    t.release(lock, at=4.0)
    t.exit(at=5.0)
    graph = build_lock_order(b.build(validate=False))
    assert graph.cycles() == [["L"]]


def test_nesting_counts_accumulate():
    prog = Program()
    a, b = prog.mutex("A"), prog.mutex("B")

    def body(env):
        for _ in range(5):
            yield env.acquire(a)
            yield env.acquire(b)
            yield env.compute(0.1)
            yield env.release(b)
            yield env.release(a)

    prog.spawn(body)
    graph = build_lock_order(prog.run().trace)
    assert graph.nesting_pairs == [("A", "B", 5)]


def test_three_lock_chain_depth():
    prog = Program()
    locks = [prog.mutex(n) for n in "ABC"]

    def body(env):
        for lk in locks:
            yield env.acquire(lk)
        yield env.compute(0.1)
        for lk in reversed(locks):
            yield env.release(lk)

    prog.spawn(body)
    graph = build_lock_order(prog.run().trace)
    assert graph.max_depth == 3
    pairs = {(o, i) for o, i, _ in graph.nesting_pairs}
    assert pairs == {("A", "B"), ("A", "C"), ("B", "C")}
    assert not graph.has_potential_deadlock
