"""Raytrace workload model (SPLASH-2, ``car`` scene, 256x256).

Per-thread ray-job queues with stealing (``jobs[i]`` locks, SPLASH-2's
``gm->workpool``) plus the global memory allocator lock ``mem``: tracing
a ray bundle repeatedly allocates intersection/shading records from the
shared arena, so ``mem`` is hit far more often than the job queues but
each hold is short.

Paper Fig. 8's point for Raytrace: the ``mem`` lock's wait time looks
modest, yet its critical sections sit squarely on the critical path
(CP Time ≫ Wait Time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.program import Program
from repro.workloads.base import Workload, register
from repro.workloads.queues import SingleLockQueue

__all__ = ["Raytrace"]


@dataclass
class _State:
    jobs: list[SingleLockQueue]
    mem_lock: Any
    ray_id_lock: Any
    in_flight: int = 0


@register
class Raytrace(Workload):
    """Ray-bundle tracer with a shared memory-arena lock."""

    name = "raytrace"

    def __init__(
        self,
        bundles_per_thread: int = 48,
        bundle_cost: float = 0.9,
        allocs_per_bundle: int = 6,
        mem_op_cost: float = 0.006,
        q_op_cost: float = 0.01,
        ray_id_prob: float = 0.2,
        ray_id_cost: float = 0.004,
        idle_backoff: float = 0.02,
    ):
        self.bundles_per_thread = bundles_per_thread
        self.bundle_cost = bundle_cost
        self.allocs_per_bundle = allocs_per_bundle
        self.mem_op_cost = mem_op_cost
        self.q_op_cost = q_op_cost
        self.ray_id_prob = ray_id_prob
        self.ray_id_cost = ray_id_cost
        self.idle_backoff = idle_backoff

    def build(self, prog: Program, nthreads: int) -> None:
        state = _State(
            jobs=[
                SingleLockQueue(prog, f"jobs[{i}]", self.q_op_cost)
                for i in range(nthreads)
            ],
            mem_lock=prog.mutex("mem"),
            ray_id_lock=prog.mutex("ray_id"),
        )
        # Static tile decomposition: every thread's pool starts full
        # (SPLASH-2 raytrace pre-partitions the image into job grids).
        for i in range(nthreads):
            state.jobs[i]._items.extend(
                ("bundle", i, k) for k in range(self.bundles_per_thread)
            )
        state.in_flight = nthreads * self.bundles_per_thread
        prog.spawn_workers(nthreads, self._worker, state, nthreads)

    def _worker(self, env, wid: int, state: _State, nthreads: int):
        rng = env.rng
        backoff = self.idle_backoff
        while True:
            job = yield from state.jobs[wid].get(env)
            if job is None:
                job = yield from self._steal(env, wid, state, nthreads)
            if job is None:
                if state.in_flight == 0:
                    return
                yield env.yield_core()  # sched_yield: let ready threads run
                yield env.compute(backoff)
                backoff = min(backoff * 2, 0.5)
                continue
            backoff = self.idle_backoff
            yield from self._trace_bundle(env, state, rng)
            state.in_flight -= 1

    def _steal(self, env, wid: int, state: _State, nthreads: int):
        for offset in range(1, nthreads):
            victim = state.jobs[(wid + offset) % nthreads]
            if len(victim) == 0:
                continue
            job = yield from victim.get(env)
            if job is not None:
                return job
        return None

    def _trace_bundle(self, env, state: _State, rng):
        # Shade/trace interleaved with arena allocations under `mem`.
        cost = self.bundle_cost * float(rng.lognormal(0.0, 0.5))
        allocs = self.allocs_per_bundle
        slice_cost = cost / max(1, allocs)
        for _ in range(allocs):
            yield env.compute(slice_cost)
            yield env.acquire(state.mem_lock)
            yield env.compute(self.mem_op_cost)
            yield env.release(state.mem_lock)
        if rng.random() < self.ray_id_prob:
            yield env.acquire(state.ray_id_lock)
            yield env.compute(self.ray_id_cost)
            yield env.release(state.ray_id_lock)
