"""End-to-end over real HTTP: server thread + worker process + client.

One module-scoped server (1 spawn worker) carries all tests; each test
uses distinct params so cache state never couples them unless the test
is *about* the cache.
"""

import threading

import pytest

from repro.core.analyzer import analyze
from repro.errors import ServiceError
from repro.service import ServiceAPI, ServiceClient
from repro.service.server import make_server
from repro.trace import write_trace


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    api = ServiceAPI(tmp_path_factory.mktemp("svc"), workers=1)
    srv = make_server(api, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    api.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


@pytest.fixture(scope="module")
def micro():
    from repro.workloads import get_workload

    return get_workload("micro")().run(nthreads=4, seed=1).trace


@pytest.fixture(scope="module")
def digest(client, micro, tmp_path_factory):
    path = write_trace(micro, tmp_path_factory.mktemp("up") / "micro.clt")
    return client.upload_trace(path, name="micro")


def test_health_and_version_header(client):
    assert client.health()["ok"]


def test_upload_lists_trace(client, digest):
    entries = client.traces()
    assert any(e["digest"] == digest and e["name"] == "micro" for e in entries)


def test_analyze_over_http_matches_in_process(client, micro, digest):
    """The satellite's flagship check: HTTP ranking == in-process ranking."""
    result = client.analyze(digest, top=4)
    expected = analyze(micro).report.to_dict()
    assert result["locks"] == expected["locks"]
    ranked = [lock["name"] for lock in result["critical_locks"]]
    expected_rank = sorted(
        expected["locks"], key=lambda n: expected["locks"][n]["cp_time_frac"],
        reverse=True,
    )
    assert ranked == expected_rank[:4]


def test_cache_hit_over_http(client, digest):
    before = client.metrics()["cache"]["hits"]
    client.analyze(digest, top=7)   # cold
    again = client.submit("analyze", digest, {"top": 7})  # warm
    job = client.job(again)
    assert job["cached"] and job["state"] == "done"
    assert client.metrics()["cache"]["hits"] == before + 1


def test_whatif_and_forecast_kinds(client, digest):
    whatif = client.whatif(digest, "L2", factor=0.6)
    assert whatif["predicted_speedup"] == pytest.approx(1.263, abs=1e-3)
    forecast = client.forecast(digest)
    assert forecast["locks"][0]["name"] == "L2"


def test_compare_kind(client, digest):
    result = client.compare(digest, digest)
    assert result["speedup"] == pytest.approx(1.0)


def test_job_failure_surfaces_error(client, digest):
    job_id = client.submit("whatif", digest, {"lock": "NOT-A-LOCK"})
    with pytest.raises(ServiceError, match="failed"):
        client.wait(job_id, timeout=60)


def test_unknown_trace_is_client_error(client):
    with pytest.raises(ServiceError) as ei:
        client.submit("analyze", "0" * 64)
    assert ei.value.status == 404


def test_bad_kind_is_client_error(client, digest):
    with pytest.raises(ServiceError) as ei:
        client.submit("frobnicate", digest)
    assert ei.value.status == 400


def test_metrics_expose_latency_histogram(client, digest):
    client.analyze(digest, top=9)
    m = client.metrics()
    hist = m["latency"]["analyze"]
    assert hist["count"] >= 1
    assert hist["sum"] > 0
    assert m["queue"]["workers"] == 1


def test_sampled_analyze_over_http(client, micro, digest):
    result = client.sampled_analyze(digest, rate=1.0, top=3)
    exact = analyze(micro).report
    assert result["sampling"]["rate"] == 1.0
    top = result["critical_locks"][0]
    assert top["name"] == "L2"
    assert top["cp_time_frac"] == exact.lock("L2").cp_fraction
    assert top["ci_low"] <= top["cp_time_frac"] <= top["ci_high"]
