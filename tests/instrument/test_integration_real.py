"""End-to-end: profile real threads, analyze, sane conclusions."""

import time

from repro.core.analyzer import analyze
from repro.instrument import ProfilingSession
from repro.trace.validate import validate_trace


def run_hot_lock_app(nthreads=4, rounds=4):
    with ProfilingSession(name="hot-lock") as s:
        hot = s.lock("hot")
        cold = s.lock("cold")

        def worker(i):
            for _ in range(rounds):
                with hot:
                    time.sleep(0.004)
                with cold:
                    pass  # tiny critical section
                time.sleep(0.001)

        threads = [s.thread(worker, args=(i,), name=f"w{i}") for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return s.trace()


def test_real_trace_analyzable():
    trace = run_hot_lock_app()
    validate_trace(trace)
    analysis = analyze(trace)
    assert analysis.report.nthreads == 5  # 4 workers + main
    # Coverage error is clock skew only: far below the total duration.
    assert analysis.critical_path.coverage_error < 0.2 * trace.duration


def test_hot_lock_identified():
    trace = run_hot_lock_app()
    analysis = analyze(trace)
    top = analysis.report.top_locks(1)[0]
    assert top.name == "hot"
    assert top.cp_fraction > analysis.report.lock("cold").cp_fraction


def test_whatif_on_real_trace():
    trace = run_hot_lock_app()
    analysis = analyze(trace)
    r = analysis.what_if("hot", factor=0.0)
    assert 0 < r.predicted_time < r.baseline_time


def test_roundtrip_real_trace(tmp_path):
    from repro.trace import read_trace, write_trace

    trace = run_hot_lock_app(nthreads=2, rounds=2)
    loaded = read_trace(write_trace(trace, tmp_path / "real.clt"))
    analysis = analyze(loaded)
    assert analysis.report.lock("hot").total_invocations == 4
