"""Service self-observation: counters and latency histograms.

The analyzer's whole thesis is that you diagnose a system by measuring
where its time actually goes — the service applies that to itself.
``GET /metrics`` exposes queue depth, per-kind job counts, cache hit
rate and per-kind latency histograms built here.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Log-spaced upper bounds in seconds (last bucket is +inf).
_DEFAULT_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (Prometheus-style, cumulative-free)."""

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum += seconds
        self.max = max(self.max, seconds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def to_dict(self) -> dict[str, Any]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": (self.sum / self.total) if self.total else 0.0,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Thread-safe counters + per-kind latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.submitted: dict[str, int] = {}
        self.completed: dict[str, int] = {}
        self.failed: dict[str, int] = {}
        self.cache_short_circuits = 0  # jobs answered at submit time
        self.redirected: dict[str, int] = {}  # jobs routed to their ring owner
        self.requests = 0
        self._latency: dict[str, LatencyHistogram] = {}
        # Streaming ingestion (chunked-append sessions).
        self.streams_opened = 0
        self.streams_finalized = 0
        self.stream_chunks = 0
        self.stream_duplicate_chunks = 0
        self.stream_events = 0
        self.stream_bytes = 0
        self.stream_backpressure = 0  # 429 rejections
        self.stream_gaps = 0  # out-of-sequence 409 rejections
        # Fleet aggregation (repro.fleet): the aggregator observes itself.
        self.fleet_observed = 0
        self.fleet_duplicates = 0
        self.fleet_errors = 0
        self.fleet_sse_clients = 0
        self.fleet_sse_events = 0
        self._fleet_ingest = LatencyHistogram()

    def count_request(self) -> None:
        with self._lock:
            self.requests += 1

    def count_submitted(self, kind: str) -> None:
        with self._lock:
            self.submitted[kind] = self.submitted.get(kind, 0) + 1

    def count_cached(self, kind: str) -> None:
        with self._lock:
            self.cache_short_circuits += 1

    def count_completed(self, kind: str, latency: float) -> None:
        with self._lock:
            self.completed[kind] = self.completed.get(kind, 0) + 1
            self._latency.setdefault(kind, LatencyHistogram()).observe(latency)

    def count_failed(self, kind: str) -> None:
        with self._lock:
            self.failed[kind] = self.failed.get(kind, 0) + 1

    def count_redirected(self, kind: str) -> None:
        with self._lock:
            self.redirected[kind] = self.redirected.get(kind, 0) + 1

    # -- streaming ingestion --------------------------------------------------

    def count_stream_opened(self) -> None:
        with self._lock:
            self.streams_opened += 1

    def count_stream_finalized(self) -> None:
        with self._lock:
            self.streams_finalized += 1

    def count_stream_chunks(
        self, accepted: int, duplicates: int, events: int, nbytes: int
    ) -> None:
        with self._lock:
            self.stream_chunks += accepted
            self.stream_duplicate_chunks += duplicates
            self.stream_events += events
            self.stream_bytes += nbytes

    def count_stream_backpressure(self) -> None:
        with self._lock:
            self.stream_backpressure += 1

    def count_stream_gap(self) -> None:
        with self._lock:
            self.stream_gaps += 1

    # -- fleet aggregation ----------------------------------------------------

    def count_fleet(
        self,
        observed: int = 0,
        duplicates: int = 0,
        errors: int = 0,
        seconds: float | None = None,
    ) -> None:
        with self._lock:
            self.fleet_observed += observed
            self.fleet_duplicates += duplicates
            self.fleet_errors += errors
            if seconds is not None:
                self._fleet_ingest.observe(seconds)

    def count_fleet_sse(self, clients: int = 0, events: int = 0) -> None:
        with self._lock:
            self.fleet_sse_clients += clients
            self.fleet_sse_events += events

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "uptime": time.time() - self.started_at,
                "requests": self.requests,
                "jobs": {
                    "submitted": dict(self.submitted),
                    "completed": dict(self.completed),
                    "failed": dict(self.failed),
                    "cache_short_circuits": self.cache_short_circuits,
                    "redirected": dict(self.redirected),
                },
                "streams": {
                    "opened": self.streams_opened,
                    "finalized": self.streams_finalized,
                    "chunks": self.stream_chunks,
                    "duplicate_chunks": self.stream_duplicate_chunks,
                    "events": self.stream_events,
                    "bytes": self.stream_bytes,
                    "backpressure_429": self.stream_backpressure,
                    "sequence_gaps": self.stream_gaps,
                },
                "fleet": {
                    "observed": self.fleet_observed,
                    "duplicates": self.fleet_duplicates,
                    "errors": self.fleet_errors,
                    "sse_clients": self.fleet_sse_clients,
                    "sse_events": self.fleet_sse_events,
                    "ingest_latency": self._fleet_ingest.to_dict(),
                },
                "latency": {k: h.to_dict() for k, h in self._latency.items()},
            }
