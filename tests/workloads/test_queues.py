"""Concurrent queue implementations on the simulator."""

import pytest

from repro.sim import Program
from repro.workloads.queues import SingleLockQueue, TwoLockQueue, make_queue


def drive_queue(queue_cls, op_cost=0.1):
    """Producer enqueues 1..5; consumer drains; returns consumed order."""
    prog = Program()
    q = queue_cls(prog, "q", op_cost)
    consumed = []

    def producer(env):
        for i in range(1, 6):
            yield env.compute(0.5)
            yield from q.put(env, i)

    def consumer(env):
        while len(consumed) < 5:
            item = yield from q.get(env)
            if item is None:
                yield env.compute(0.2)
            else:
                consumed.append(item)

    prog.spawn(producer)
    prog.spawn(consumer)
    prog.run()
    return consumed


@pytest.mark.parametrize("queue_cls", [SingleLockQueue, TwoLockQueue])
def test_fifo_order(queue_cls):
    assert drive_queue(queue_cls) == [1, 2, 3, 4, 5]


@pytest.mark.parametrize("queue_cls", [SingleLockQueue, TwoLockQueue])
def test_get_empty_returns_none(queue_cls):
    prog = Program()
    q = queue_cls(prog, "q", 0.01)

    def body(env):
        item = yield from q.get(env)
        assert item is None

    prog.spawn(body)
    prog.run()


@pytest.mark.parametrize("queue_cls", [SingleLockQueue, TwoLockQueue])
def test_put_many_batches(queue_cls):
    prog = Program()
    q = queue_cls(prog, "q", 0.1)

    def body(env):
        yield from q.put_many(env, [1, 2, 3])
        yield from q.put_many(env, [])  # no-op, no lock traffic
        got = []
        for _ in range(3):
            got.append((yield from q.get(env)))
        assert got == [1, 2, 3]

    prog.spawn(body)
    res = prog.run()
    # One 3-item batch (0.3) + three gets (0.1 each).
    assert res.completion_time == pytest.approx(0.6)


def test_single_lock_serializes_put_and_get():
    prog = Program()
    q = SingleLockQueue(prog, "q", 1.0)
    q._items.extend(["x"])

    def putter(env):
        yield from q.put(env, "y")

    def getter(env):
        yield from q.get(env)

    prog.spawn(putter)
    prog.spawn(getter)
    # Both ops fight over one lock: 2.0 total.
    assert prog.run().completion_time == pytest.approx(2.0)


def test_two_lock_allows_concurrent_put_get():
    prog = Program()
    q = TwoLockQueue(prog, "q", 1.0)
    q._items.extend(["x"])

    def putter(env):
        yield from q.put(env, "y")

    def getter(env):
        yield from q.get(env)

    prog.spawn(putter)
    prog.spawn(getter)
    # Head and tail proceed in parallel: 1.0 total — the Michael-Scott win.
    assert prog.run().completion_time == pytest.approx(1.0)


def test_make_queue_factory():
    prog = Program()
    single = make_queue(prog, "a", 0.1, two_lock=False)
    double = make_queue(prog, "b", 0.1, two_lock=True)
    assert isinstance(single, SingleLockQueue)
    assert isinstance(double, TwoLockQueue)
    assert not single.uses_two_locks
    assert double.uses_two_locks


def test_lock_names_follow_paper_convention():
    prog = Program()
    single = SingleLockQueue(prog, "tq[0]", 0.1)
    double = TwoLockQueue(prog, "Q", 0.1)
    assert single.qlock.name == "tq[0].qlock"
    assert double.head_lock.name == "Q.q_head_lock"
    assert double.tail_lock.name == "Q.q_tail_lock"
