"""Storage-backend contract suite.

Every backend — local disk, object-over-memory, object-over-directory —
must satisfy the same observable contract, and so must the trace store
and result cache running over each of them.  The parametrized fixtures
below are the whole point: one behavioral spec, N implementations.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service.backend import (
    BACKEND_KINDS,
    BackendMissing,
    DirectoryObjectClient,
    LocalDiskBackend,
    MemoryObjectClient,
    ObjectBackend,
    make_backend,
)
from repro.service.cache import ResultCache
from repro.service.store import TraceStore
from repro.trace import trace_digest, write_trace


@pytest.fixture(params=["local", "object-memory", "object-directory"])
def backend(request, tmp_path):
    if request.param == "local":
        return LocalDiskBackend(tmp_path / "store")
    if request.param == "object-memory":
        return ObjectBackend(MemoryObjectClient())
    return ObjectBackend(DirectoryObjectClient(tmp_path / "bucket"))


class TestBackendContract:
    def test_put_get_roundtrip(self, backend):
        backend.put("k1", b"hello")
        assert backend.get("k1") == b"hello"

    def test_overwrite(self, backend):
        backend.put("k", b"old")
        backend.put("k", b"new")
        assert backend.get("k") == b"new"

    def test_missing_key_raises(self, backend):
        with pytest.raises(BackendMissing):
            backend.get("nope")

    def test_exists_and_delete(self, backend):
        assert not backend.exists("k")
        backend.put("k", b"x")
        assert backend.exists("k")
        backend.delete("k")
        assert not backend.exists("k")
        backend.delete("k")  # idempotent

    def test_keys_prefix(self, backend):
        backend.put("a.clt", b"1")
        backend.put("a.meta.json", b"2")
        backend.put("b.clt", b"3")
        assert backend.keys() == ["a.clt", "a.meta.json", "b.clt"]
        assert backend.keys("a") == ["a.clt", "a.meta.json"]
        assert backend.keys("zzz") == []

    def test_size(self, backend):
        backend.put("k", b"12345")
        assert backend.size("k") == 5

    def test_scoped_namespaces_are_disjoint(self, backend):
        a = backend.scoped("traces")
        b = backend.scoped("cache")
        a.put("k", b"from-a")
        b.put("k", b"from-b")
        assert a.get("k") == b"from-a"
        assert b.get("k") == b"from-b"
        assert a.keys() == ["k"]
        assert b.keys() == ["k"]

    def test_put_path_adopts_file(self, backend, tmp_path):
        src = tmp_path / "payload.bin"
        src.write_bytes(b"body")
        backend.put_path("k", src)
        assert backend.get("k") == b"body"

    def test_binary_safe(self, backend):
        blob = bytes(range(256)) * 17
        backend.put("bin", blob)
        assert backend.get("bin") == blob


class TestLocalDiskBackend:
    def test_layout_matches_store_format(self, tmp_path):
        """The local backend writes keys as plain files — the original
        on-disk layout, byte for byte."""
        backend = LocalDiskBackend(tmp_path)
        backend.put("deadbeef.meta.json", b"{}")
        assert (tmp_path / "deadbeef.meta.json").read_bytes() == b"{}"

    def test_dotfiles_invisible(self, tmp_path):
        backend = LocalDiskBackend(tmp_path)
        (tmp_path / ".upload-x.tmp").write_bytes(b"junk")
        backend.put("real", b"x")
        assert backend.keys() == ["real"]

    def test_traversal_rejected(self, tmp_path):
        backend = LocalDiskBackend(tmp_path / "root")
        with pytest.raises(ServiceError):
            backend.put("../escape", b"x")

    def test_keys_oldest_first_tracks_mtime(self, tmp_path):
        import os

        backend = LocalDiskBackend(tmp_path)
        backend.put("newer", b"x")
        backend.put("older", b"x")
        os.utime(tmp_path / "older", (1, 1))
        assert backend.keys_oldest_first() == ["older", "newer"]


class TestDirectoryObjectClient:
    def test_flat_namespace_with_slashes(self, tmp_path):
        client = DirectoryObjectClient(tmp_path)
        client.put_object("traces/abc.clt", b"x")
        assert client.list_objects() == ["traces/abc.clt"]
        assert client.get_object("traces/abc.clt") == b"x"
        # No hierarchy on disk: one file, percent-encoded.
        assert len([p for p in tmp_path.iterdir() if p.is_file()]) == 1

    def test_shared_between_instances(self, tmp_path):
        a = DirectoryObjectClient(tmp_path)
        b = DirectoryObjectClient(tmp_path)
        a.put_object("k", b"written-by-a")
        assert b.get_object("k") == b"written-by-a"


class TestMakeBackend:
    def test_local_is_none(self, tmp_path):
        assert make_backend("local", tmp_path) is None

    def test_object_defaults_under_data_dir(self, tmp_path):
        backend = make_backend("object", tmp_path)
        backend.put("k", b"x")
        assert (tmp_path / "objects").is_dir()

    def test_object_with_shared_root(self, tmp_path):
        a = make_backend("object", tmp_path / "node-a", object_root=tmp_path / "bucket")
        b = make_backend("object", tmp_path / "node-b", object_root=tmp_path / "bucket")
        a.put("k", b"x")
        assert b.get("k") == b"x"

    def test_memory(self, tmp_path):
        backend = make_backend("memory", tmp_path)
        backend.put("k", b"x")
        assert backend.get("k") == b"x"

    def test_unknown_spec_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown storage backend"):
            make_backend("s3://prod", tmp_path)

    def test_kinds_exported(self):
        assert set(BACKEND_KINDS) == {"local", "object", "memory"}


# ---------------------------------------------------------------------------
# TraceStore over every backend: one contract, parametrized.
# ---------------------------------------------------------------------------


@pytest.fixture(params=["local", "object-memory", "object-directory"])
def store_factory(request, tmp_path):
    """Factory building a TraceStore over one backend *kind*; calling it
    again simulates a process restart over the same durable state."""
    clients = {}

    def build():
        root = tmp_path / "scratch"
        if request.param == "local":
            return TraceStore(root)
        if request.param == "object-memory":
            client = clients.setdefault("c", MemoryObjectClient())
        else:
            client = DirectoryObjectClient(tmp_path / "bucket")
        return TraceStore(root, backend=ObjectBackend(client))

    return build


class TestTraceStoreContract:
    def test_put_get_roundtrip(self, store_factory, micro_trace):
        store = store_factory()
        entry = store.put_trace(micro_trace, name="m")
        assert entry.digest == trace_digest(micro_trace)
        assert store.get(entry.digest) == entry
        assert len(store) == 1

    def test_put_deduplicates(self, store_factory, micro_trace):
        store = store_factory()
        first = store.put_trace(micro_trace)
        second = store.put_trace(micro_trace)
        assert first is second
        assert len(store) == 1

    def test_resolve_returns_readable_file(self, store_factory, micro_trace):
        from repro.trace.reader import read_trace

        store = store_factory()
        entry = store.put_trace(micro_trace)
        [path] = store.resolve([entry.digest])
        got = read_trace(path)
        assert trace_digest(got) == entry.digest

    def test_index_survives_restart(self, store_factory, micro_trace):
        digest = store_factory().put_trace(micro_trace, name="m").digest
        reopened = store_factory()
        assert reopened.get(digest).name == "m"
        [path] = reopened.resolve([digest])
        assert Path(path).stat().st_size > 0

    def test_restart_rematerializes_missing_scratch(
        self, store_factory, micro_trace, tmp_path
    ):
        """Losing the local scratch copy is harmless: the backend holds
        the durable bytes and resolve() re-materializes on demand."""
        store = store_factory()
        if not store._remote:
            pytest.skip("local backend: the scratch copy IS the durable copy")
        entry = store.put_trace(micro_trace)
        entry.path.unlink()  # scratch gone (disk swap, new box...)
        reopened = store_factory()
        [path] = reopened.resolve([entry.digest])
        from repro.trace.reader import read_trace

        assert trace_digest(read_trace(path)) == entry.digest

    def test_orphan_body_reaped_on_restart(self, store_factory, micro_trace):
        """A crash between the body write and the sidecar write leaves an
        orphan the next rescan must reap — not skip forever."""
        store = store_factory()
        entry = store.put_trace(micro_trace)
        orphan = f"{'f' * 64}.clt"
        store.backend.put(orphan, entry.path.read_bytes())
        reopened = store_factory()
        assert len(reopened) == 1
        assert not reopened.backend.exists(orphan)

    def test_schema_mismatched_sidecar_skipped(self, store_factory, micro_trace):
        """A sidecar written by an older/newer build (missing or extra
        keys) must not crash startup."""
        store = store_factory()
        good = store.put_trace(micro_trace)
        bad_digest = "e" * 64
        store.backend.put(f"{bad_digest}.clt", good.path.read_bytes())
        store.backend.put(
            f"{bad_digest}.meta.json",
            json.dumps({"digest": bad_digest, "name": "old", "surprise": 1}).encode(),
        )
        reopened = store_factory()  # must boot
        assert reopened.get(good.digest).digest == good.digest
        with pytest.raises(ServiceError, match="no such trace"):
            reopened.get(bad_digest)

    def test_corrupt_sidecar_skipped(self, store_factory, micro_trace):
        store = store_factory()
        good = store.put_trace(micro_trace)
        store.backend.put(f"{'d' * 64}.meta.json", b"{torn")
        reopened = store_factory()
        assert len(reopened) == 1
        assert reopened.get(good.digest)

    def test_stats_name_backend(self, store_factory, micro_trace):
        store = store_factory()
        store.put_trace(micro_trace)
        stats = store.stats()
        assert stats["count"] == 1
        assert stats["bytes"] > 0
        assert stats["backend"]


def test_local_store_layout_unchanged(tmp_path, micro_trace):
    """The default backend keeps the original on-disk format: both files
    directly under the root, sidecar content identical to to_dict()."""
    store = TraceStore(tmp_path)
    entry = store.put_trace(micro_trace, name="m")
    assert (tmp_path / f"{entry.digest}.clt").is_file()
    sidecar = tmp_path / f"{entry.digest}.meta.json"
    assert json.loads(sidecar.read_text()) == entry.to_dict()
    assert entry.path == tmp_path / f"{entry.digest}.clt"


# ---------------------------------------------------------------------------
# ResultCache spill tier over every backend.
# ---------------------------------------------------------------------------


@pytest.fixture(params=["local", "object-memory"])
def cache_backend(request, tmp_path):
    if request.param == "local":
        return LocalDiskBackend(tmp_path / "cache")
    return ObjectBackend(MemoryObjectClient())


class TestCacheTierContract:
    def test_spill_and_promote(self, cache_backend):
        cache = ResultCache(capacity=1, backend=cache_backend)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})  # evicts 'a' into the tier
        assert cache.get("a") == {"n": 1}
        assert cache.stats()["disk_hits"] == 1

    def test_write_through_default_for_backends(self, cache_backend):
        cache = ResultCache(capacity=8, backend=cache_backend)
        assert cache.write_through
        cache.put("k", {"n": 1})
        assert cache_backend.exists("k.json")

    def test_shared_namespace_between_caches(self, cache_backend):
        a = ResultCache(capacity=8, backend=cache_backend)
        b = ResultCache(capacity=8, backend=cache_backend)
        a.put("k", {"answer": 42})
        assert b.get("k") == {"answer": 42}
        assert b.stats()["disk_hits"] == 1

    def test_tier_capacity_enforced(self, cache_backend):
        cache = ResultCache(capacity=1, backend=cache_backend, disk_capacity=2)
        for i in range(6):
            cache.put(f"k{i}", {"n": i})
        assert len([k for k in cache_backend.keys() if k.endswith(".json")]) <= 2

    def test_local_default_remains_spill_on_evict(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=tmp_path)
        assert not cache.write_through
        cache.put("k", {"n": 1})
        assert not (tmp_path / "k.json").exists()
