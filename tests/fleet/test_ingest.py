"""Store-driven ingestion: incremental catch-up and the background worker."""

from __future__ import annotations

from tests.conftest import make_micro_program

from repro.fleet import FleetAggregator, FleetIngestor, ingest_store
from repro.service.metrics import ServiceMetrics
from repro.service.store import TraceStore


def _seed_store(tmp_path, n=3):
    store = TraceStore(tmp_path / "traces")
    entries = []
    for i in range(n):
        trace = make_micro_program(cs2=2.5 + 0.001 * i).run().trace
        entries.append(store.put_trace(trace, name="micro"))
    return store, entries


def test_ingest_store_is_incremental(tmp_path):
    store, _ = _seed_store(tmp_path, n=3)
    agg = FleetAggregator(tmp_path / "fleet")
    metrics = ServiceMetrics()
    out = ingest_store(agg, store, metrics=metrics)
    assert out == {"observed": 3, "skipped": 0, "errors": 0}
    assert agg.summary()["traces"] == 3
    assert metrics.fleet_observed == 3
    # Second pass: everything already observed.
    assert ingest_store(agg, store, metrics=metrics) == {
        "observed": 0, "skipped": 3, "errors": 0,
    }
    assert metrics.fleet_duplicates == 3


def test_ingest_counts_unreadable_traces_as_errors(tmp_path):
    store, entries = _seed_store(tmp_path, n=2)
    entries[0].path.write_bytes(b"garbage, not a trace")
    agg = FleetAggregator(tmp_path / "fleet")
    out = ingest_store(agg, store)
    assert out["errors"] == 1 and out["observed"] == 1


def test_ingest_state_survives_restart(tmp_path):
    store, _ = _seed_store(tmp_path, n=2)
    ingest_store(FleetAggregator(tmp_path / "fleet"), store)
    # A fresh aggregator over the same state dir skips all of them.
    agg = FleetAggregator(tmp_path / "fleet")
    assert ingest_store(agg, store)["skipped"] == 2


def test_background_ingestor_processes_queue(tmp_path):
    store, entries = _seed_store(tmp_path, n=2)
    agg = FleetAggregator(tmp_path / "fleet")
    metrics = ServiceMetrics()
    ingestor = FleetIngestor(agg, metrics=metrics)
    try:
        for entry in entries:
            ingestor.enqueue(entry)
        ingestor.enqueue(entries[0])  # duplicate digest: a no-op
        assert ingestor.flush(timeout=30)
        assert agg.summary()["traces"] == 2
        assert metrics.fleet_observed == 2
        assert metrics.fleet_duplicates == 1
    finally:
        ingestor.close()
    ingestor.enqueue(entries[1])  # post-close enqueue is ignored
    ingestor.close()  # idempotent


def test_background_ingestor_survives_bad_entries(tmp_path):
    store, entries = _seed_store(tmp_path, n=1)
    agg = FleetAggregator(tmp_path / "fleet")
    metrics = ServiceMetrics()
    ingestor = FleetIngestor(agg, metrics=metrics)
    try:
        bad = entries[0]
        bad.path.write_bytes(b"garbage")
        ingestor.enqueue(bad)
        assert ingestor.flush(timeout=30)
        assert metrics.fleet_errors == 1
    finally:
        ingestor.close()
