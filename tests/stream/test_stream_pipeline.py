"""repro.stream: ring drop accounting, flusher, sinks, session streaming."""

import threading
import time

import numpy as np
import pytest

from repro.errors import TraceError
from repro.instrument import ProfilingSession
from repro.stream import ChunkFileSink, EventRing, StreamFlusher, live_snapshots
from repro.trace.digest import trace_digest
from repro.trace.events import Event, EventType
from repro.trace.reader import read_trace
from repro.trace.writer import write_trace


def _ev(seq, t=0.0):
    return Event(seq=seq, time=t, tid=0, etype=EventType.ACQUIRE, obj=0, arg=0)


class TestEventRing:
    def test_push_drain_order(self):
        ring = EventRing(8)
        for i in range(5):
            assert ring.push(_ev(i))
        assert [e.seq for e in ring.drain()] == [0, 1, 2, 3, 4]
        assert len(ring) == 0

    def test_overflow_drops_and_counts(self):
        ring = EventRing(3)
        results = [ring.push(_ev(i)) for i in range(5)]
        assert results == [True, True, True, False, False]
        stats = ring.stats()
        assert stats["dropped"] == 2
        assert stats["pushed"] == 3
        assert stats["depth"] == 3
        # Drops lose the newest events; the survivors are intact.
        assert [e.seq for e in ring.drain()] == [0, 1, 2]

    def test_partial_drain(self):
        ring = EventRing(8)
        for i in range(6):
            ring.push(_ev(i))
        assert [e.seq for e in ring.drain(2)] == [0, 1]
        assert len(ring) == 4

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventRing(0)


class TestFlusherAndFileSink:
    def test_flush_writes_framed_chunks(self, micro_trace, tmp_path):
        ring = EventRing(1 << 16)
        sink = ChunkFileSink(tmp_path / "out.cls")
        flusher = StreamFlusher(ring, sink, chunk_events=10)
        for ev in micro_trace:
            ring.push(ev)
        assert flusher.flush() == len(micro_trace)
        assert sink.chunks == 4  # 32 events / 10 per chunk
        from repro.trace.writer import header_dict

        flusher.close(header_dict(micro_trace))
        back = read_trace(tmp_path / "out.cls")
        assert np.array_equal(back.records, micro_trace.records)

    def test_close_is_idempotent(self, micro_trace, tmp_path):
        flusher = StreamFlusher(
            EventRing(16), ChunkFileSink(tmp_path / "o.cls"), chunk_events=4
        )
        r1 = flusher.close({})
        r2 = flusher.close({})
        assert r1 == r2 == tmp_path / "o.cls"

    def test_background_thread_drains(self, tmp_path):
        ring = EventRing(1 << 10)
        flusher = StreamFlusher(
            ring, ChunkFileSink(tmp_path / "bg.cls"), interval=0.02, chunk_events=16
        ).start()
        for i in range(100):
            ring.push(_ev(i, t=i * 0.001))
        deadline = time.monotonic() + 5
        while len(ring) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(ring) == 0
        assert flusher.events_written == 100
        flusher.close({})


class TestSessionStreaming:
    def _run_session(self, tmp_path):
        sess = ProfilingSession("streamed")
        with sess as s:
            s.stream_to(
                ChunkFileSink(tmp_path / "live.cls"), interval=0.02, chunk_events=32
            )
            lock = s.lock("L")

            def worker():
                for _ in range(20):
                    with lock:
                        pass

            threads = [s.thread(worker) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return sess

    def test_streamed_file_matches_assembled_trace(self, tmp_path):
        sess = self._run_session(tmp_path)
        streamed = read_trace(tmp_path / "live.cls")
        batch = sess.trace()
        assert trace_digest(streamed) == trace_digest(batch)
        assert np.array_equal(streamed.records, batch.records)

    def test_no_drops_under_normal_load(self, tmp_path):
        sess = self._run_session(tmp_path)
        assert sess._flusher.ring.dropped == 0

    def test_stream_result_holds_finalize_value(self, tmp_path):
        sess = self._run_session(tmp_path)
        assert sess.stream_result == tmp_path / "live.cls"

    def test_double_stream_to_rejected(self, tmp_path):
        with ProfilingSession() as s:
            s.stream_to(ChunkFileSink(tmp_path / "a.cls"))
            with pytest.raises(TraceError, match="already streaming"):
                s.stream_to(ChunkFileSink(tmp_path / "b.cls"))

    def test_stream_to_after_close_rejected(self, tmp_path):
        s = ProfilingSession()
        with s:
            pass
        with pytest.raises(TraceError, match="closed"):
            s.stream_to(ChunkFileSink(tmp_path / "c.cls"))


class TestLiveSnapshots:
    def test_final_snapshot_covers_whole_file(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        snaps = list(live_snapshots(path, timeout=0.1, poll_interval=0.02))
        final = snaps[-1]
        assert final["events"] == len(micro_trace)
        assert {l["name"] for l in final["locks"]} == {"L1", "L2"}
        assert "Max dependent chain" in final["rendered"]

    def test_names_resolved_from_clt_header(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        final = list(live_snapshots(path, timeout=0.1, poll_interval=0.02))[-1]
        assert not any(l["name"].startswith("obj#") for l in final["locks"])

    def test_follows_growing_cls(self, micro_trace, tmp_path):
        from repro.trace.framing import encode_records_frame, encode_trailer_frame
        from repro.trace.writer import header_dict

        path = tmp_path / "grow.cls"
        with open(path, "wb") as fh:
            fh.write(encode_records_frame(micro_trace.records[:16], 0))

        def finish():
            time.sleep(0.1)
            with open(path, "ab") as fh:
                fh.write(encode_records_frame(micro_trace.records[16:], 1))
                fh.write(encode_trailer_frame(header_dict(micro_trace), 2))

        t = threading.Thread(target=finish)
        t.start()
        snaps = list(
            live_snapshots(path, poll_interval=0.02, refresh=0.01, timeout=5.0)
        )
        t.join()
        assert snaps[-1]["events"] == len(micro_trace)
        # .cls names only arrive with the trailer; the final snapshot has them.
        assert {l["name"] for l in snaps[-1]["locks"]} == {"L1", "L2"}
