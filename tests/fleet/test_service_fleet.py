"""Fleet observability through the service: routes, jobs, SSE, dashboard."""

from __future__ import annotations

import json
import threading

import pytest

from tests.conftest import make_micro_program

from repro.service import ServiceAPI, ServiceClient
from repro.service.server import make_server
from repro.trace import write_trace

RULES = (
    "[[rule]]\n"
    "name = 'hot'\n"
    "expr = 'cp_fraction > 0.5'\n"
    "severity = 'page'\n"
)


@pytest.fixture()
def api(tmp_path):
    rules = tmp_path / "rules.toml"
    rules.write_text(RULES)
    api = ServiceAPI(tmp_path / "svc", workers=0, rules_path=rules)
    yield api
    api.close()


def _upload_micro(api, tmp_path, cs1=2.0, cs2=2.5, name="micro"):
    trace = make_micro_program(cs1=cs1, cs2=cs2).run().trace
    path = write_trace(trace, tmp_path / f"{name}-{cs1}-{cs2}.clt")
    status, entry = api.handle("POST", "/traces", path.read_bytes(), {"name": name})
    assert status == 201
    return entry["digest"]


def test_upload_feeds_fleet_state(api, tmp_path):
    for i in range(3):
        _upload_micro(api, tmp_path, cs2=2.5 + 0.001 * i)
    assert api.flush_fleet(timeout=30)
    status, summary = api.handle("GET", "/fleet/summary", b"", {})
    assert status == 200
    assert summary["traces"] == 3
    assert [c["site"] for c in summary["top"]] == ["L2", "L1"]
    status, top1 = api.handle("GET", "/fleet/summary", b"", {"top": "1"})
    assert len(top1["top"]) == 1


def test_reupload_is_deduplicated(api, tmp_path):
    d1 = _upload_micro(api, tmp_path)
    d2 = _upload_micro(api, tmp_path)
    assert d1 == d2
    assert api.flush_fleet(timeout=30)
    status, summary = api.handle("GET", "/fleet/summary", b"", {})
    assert summary["traces"] == 1


def test_regressions_and_alerts_routes(api, tmp_path):
    for i in range(3):
        _upload_micro(api, tmp_path, cs2=2.5 + 0.001 * i)
    _upload_micro(api, tmp_path, cs1=6.0)  # ranking flip: L1 takes over
    assert api.flush_fleet(timeout=30)
    status, reg = api.handle("GET", "/fleet/regressions", b"", {})
    assert status == 200
    kinds = {f["kind"] for f in reg["flags"]}
    assert "cp_shift" in kinds and "top1_change" in kinds
    # Query params reach the aggregator.
    status, loose = api.handle(
        "GET", "/fleet/regressions", b"", {"noise_floor": "0.99"}
    )
    assert [f for f in loose["flags"] if f["kind"] == "cp_shift"] == []
    status, alerts = api.handle("GET", "/fleet/alerts", b"", {})
    assert status == 200
    assert alerts["rules"] == 1
    assert any(a["rule"] == "hot" for a in alerts["alerts"])


def test_fleet_job_kinds(api, tmp_path):
    _upload_micro(api, tmp_path)
    assert api.flush_fleet(timeout=30)
    status, job = api.handle(
        "POST",
        "/jobs",
        json.dumps({"kind": "fleet_summary", "traces": [], "params": {}}).encode(),
        {},
    )
    assert status == 202 and job["state"] == "done"
    status, rep = api.handle("GET", f"/reports/{job['id']}", b"", {})
    assert rep["result"]["traces"] == 1
    status, job = api.handle(
        "POST",
        "/jobs",
        json.dumps(
            {"kind": "fleet_regressions", "traces": [], "params": {"topk": 3}}
        ).encode(),
        {},
    )
    assert status == 202
    status, rep = api.handle("GET", f"/reports/{job['id']}", b"", {})
    assert rep["result"]["params"]["topk"] == 3


def test_fleet_jobs_bypass_result_cache(api, tmp_path):
    """Fleet state mutates between submissions; results must not be reused."""
    _upload_micro(api, tmp_path)
    assert api.flush_fleet(timeout=30)
    body = json.dumps({"kind": "fleet_summary", "traces": [], "params": {}}).encode()
    _, job1 = api.handle("POST", "/jobs", body, {})
    _upload_micro(api, tmp_path, cs2=9.0)
    assert api.flush_fleet(timeout=30)
    _, job2 = api.handle("POST", "/jobs", body, {})
    _, rep2 = api.handle("GET", f"/reports/{job2['id']}", b"", {})
    assert rep2["result"]["traces"] == 2


def test_fleet_ingest_route_catches_up(tmp_path):
    # Seed a store with a pre-fleet service, then start a new one over it.
    seeder = ServiceAPI(tmp_path / "svc", workers=0)
    trace = make_micro_program().run().trace
    path = write_trace(trace, tmp_path / "t.clt")
    seeder.handle("POST", "/traces", path.read_bytes(), {"name": "micro"})
    seeder.flush_fleet(timeout=30)
    seeder.close()
    (tmp_path / "svc" / "fleet" / "fleet.json").unlink()  # fleet never saw it

    api = ServiceAPI(tmp_path / "svc", workers=0)
    try:
        status, summary = api.handle("GET", "/fleet/summary", b"", {})
        assert summary["traces"] == 0
        status, out = api.handle("POST", "/fleet/ingest", b"", {})
        assert status == 200 and out["observed"] == 1
        status, summary = api.handle("GET", "/fleet/summary", b"", {})
        assert summary["traces"] == 1
    finally:
        api.close()


def test_metrics_expose_fleet_counters(api, tmp_path):
    _upload_micro(api, tmp_path)
    _upload_micro(api, tmp_path)  # duplicate digest
    assert api.flush_fleet(timeout=30)
    status, metrics = api.handle("GET", "/metrics", b"", {})
    fleet = metrics["fleet"]
    assert fleet["observed"] == 1
    assert fleet["duplicates"] >= 1
    assert fleet["digests"] == 1
    assert fleet["ingest_latency"]["count"] == 1


def test_stream_finalize_feeds_fleet(api, tmp_path):
    from repro.trace.framing import encode_records_frame
    from repro.trace.writer import header_dict

    trace = make_micro_program().run().trace
    status, session = api.handle(
        "POST", "/streams", json.dumps({"name": "micro"}).encode(), {}
    )
    sid = session["id"]
    body = encode_records_frame(trace.records, 0)
    status, _ = api.handle("POST", f"/traces/{sid}/chunks", body, {})
    assert status == 202
    status, out = api.handle(
        "POST",
        f"/traces/{sid}/finalize",
        json.dumps({"header": header_dict(trace)}).encode(),
        {},
    )
    assert status == 200
    assert api.flush_fleet(timeout=30)
    status, summary = api.handle("GET", "/fleet/summary", b"", {})
    assert summary["traces"] == 1


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-http")
    rules = root / "rules.toml"
    rules.write_text(RULES)
    api = ServiceAPI(root / "svc", workers=0, rules_path=rules)
    srv = make_server(api, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    api.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


def test_http_dashboard_and_sse(server, client, tmp_path):
    trace = make_micro_program().run().trace
    path = write_trace(trace, tmp_path / "m.clt")
    client.upload_trace(path, name="micro")
    assert server.api.flush_fleet(timeout=30)

    events = client.fleet_events(max_events=1, timeout=30)
    assert len(events) == 1
    event = events[0]
    assert event["type"] == "fleet" and event["version"] >= 1
    assert event["summary"]["traces"] >= 1
    assert isinstance(event["alerts"], int)

    html = client.dashboard_html()
    assert html.startswith("<!DOCTYPE html>")
    assert "Critical-lock fleet dashboard" in html and "micro" in html

    assert client.fleet_summary(top=1)["top"]
    assert client.fleet_regressions()["params"]["topk"] == 5
    assert client.fleet_alerts()["rules"] == 1
    assert client.fleet_ingest()["observed"] == 0  # already ingested
    fleet = client.metrics()["fleet"]
    assert fleet["sse_clients"] >= 1
