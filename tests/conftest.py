"""Shared fixtures: canonical traces used across the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Program
from repro.trace import TraceBuilder


def make_micro_program(nthreads: int = 4, cs1: float = 2.0, cs2: float = 2.5) -> Program:
    """The paper's Fig. 5 micro-benchmark as a raw Program."""
    prog = Program(name="micro", seed=1)
    l1 = prog.mutex("L1")
    l2 = prog.mutex("L2")

    def worker(env, i):
        yield env.acquire(l1)
        yield env.compute(cs1)
        yield env.release(l1)
        yield env.acquire(l2)
        yield env.compute(cs2)
        yield env.release(l2)

    prog.spawn_workers(nthreads, worker)
    return prog


@pytest.fixture
def micro_result():
    """SimResult of the 4-thread micro-benchmark (completion time 12.0)."""
    return make_micro_program().run()


@pytest.fixture
def micro_trace(micro_result):
    return micro_result.trace


def build_two_thread_handoff():
    """Hand-built trace: T0 holds L [1,4]; T1 blocks at 2, runs [4,6].

    The critical path is T0 [0,4] then T1 [4,6]: length 6.
    """
    b = TraceBuilder()
    lock = b.mutex("L")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.critical_section(lock, acquire=1.0, obtain=1.0, release=4.0)
    t1.critical_section(lock, acquire=2.0, obtain=4.0, release=5.0)
    t0.exit(at=4.0)
    t1.exit(at=6.0)
    return b.build(), lock


@pytest.fixture
def handoff_trace():
    trace, _ = build_two_thread_handoff()
    return trace
