"""Adaptive spin-then-block acquisition with configurable backoff.

Models the hybrid strategy of real mutex implementations (glibc
``PTHREAD_MUTEX_ADAPTIVE_NP``, Java biased spinning): a contended
acquirer first spins, hoping the owner releases quickly, then parks.

In the simulator this costs virtual time two ways:

* **wake-up latency** — if a waiter ended up waiting longer than
  ``spin_limit`` it must have parked, so its eventual handoff pays
  ``wake_latency`` (the scheduler wake-up path that a successful spin
  would have skipped).  Consecutive parks on the same lock by the same
  thread multiply the latency by ``backoff`` each time (exponential
  backoff, capped by ``max_latency``), mirroring spin loops that grow
  their sleep interval under persistent contention.
* **core occupancy** — in core-limited runs a spinning thread burns its
  core for up to ``spin_limit`` before parking, so heavy spinning steals
  throughput from runnable threads (the classic spin-vs-block tradeoff).

Waits shorter than ``spin_limit`` are treated as successful spins: no
latency, and the backoff streak resets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.protocols.base import LockProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = ["AdaptiveSpinProtocol"]


class AdaptiveSpinProtocol(LockProtocol):
    """Spin for ``spin_limit``, then block and pay wake-up latency."""

    name = "spin"

    def __init__(
        self,
        spin_limit: float = 0.05,
        wake_latency: float = 0.02,
        backoff: float = 1.0,
        max_latency: float | None = None,
    ) -> None:
        super().__init__()
        if spin_limit < 0 or wake_latency < 0 or backoff < 1.0:
            raise ValueError(
                "spin protocol needs spin_limit >= 0, wake_latency >= 0, "
                "backoff >= 1"
            )
        self.spin_limit = float(spin_limit)
        self.wake_latency = float(wake_latency)
        self.backoff = float(backoff)
        self.max_latency = None if max_latency is None else float(max_latency)
        self._streak: dict[tuple[int, int], int] = {}

    def describe(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "spin_limit": self.spin_limit,
            "wake_latency": self.wake_latency,
        }
        if self.backoff != 1.0:
            out["backoff"] = self.backoff
        if self.max_latency is not None:
            out["max_latency"] = self.max_latency
        return out

    def spin_hold(self, lock: Any, thread: "SimThread") -> float:
        return self.spin_limit

    def handoff_latency(self, lock: Any, thread: "SimThread") -> float:
        waited = self.engine.now - thread.block_start
        key = (lock.obj, thread.tid)
        if waited <= self.spin_limit:
            self._streak[key] = 0  # spin won: no parking cost
            return 0.0
        streak = self._streak.get(key, 0)
        self._streak[key] = streak + 1
        latency = self.wake_latency * (self.backoff**streak)
        if self.max_latency is not None and latency > self.max_latency:
            latency = self.max_latency
        return latency
