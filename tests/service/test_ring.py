"""Consistent-hash routing: the ring itself and the service redirects."""

import json
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service.api import ServiceAPI
from repro.service.backend import MemoryObjectClient, ObjectBackend
from repro.service.ring import HashRing
from repro.trace import write_trace

NODES = ["http://a:1", "http://b:2", "http://c:3"]


class TestHashRing:
    def test_deterministic(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))  # order must not matter
        for i in range(100):
            assert a.owner(f"key-{i}") == b.owner(f"key-{i}")

    def test_covers_all_nodes(self):
        ring = HashRing(NODES)
        owners = {ring.owner(f"key-{i}") for i in range(500)}
        assert owners == set(NODES)

    def test_roughly_balanced(self):
        ring = HashRing(NODES, replicas=128)
        counts = {n: 0 for n in NODES}
        for i in range(3000):
            counts[ring.owner(f"key-{i}")] += 1
        for node, count in counts.items():
            assert 300 < count < 2000, (node, counts)

    def test_resize_moves_minority_of_keys(self):
        """The whole point of consistent hashing: adding one node moves
        ~1/N of the keyspace, not all of it."""
        small = HashRing(NODES)
        grown = HashRing([*NODES, "http://d:4"])
        keys = [f"key-{i}" for i in range(2000)]
        moved = sum(small.owner(k) != grown.owner(k) for k in keys)
        assert moved < len(keys) * 0.5  # naive mod-N hashing moves ~75%
        # ...and every key that moved, moved *to* the new node.
        for k in keys:
            if small.owner(k) != grown.owner(k):
                assert grown.owner(k) == "http://d:4"

    def test_preference_starts_with_owner(self):
        ring = HashRing(NODES)
        for i in range(50):
            pref = ring.preference(f"key-{i}", n=2)
            assert pref[0] == ring.owner(f"key-{i}")
            assert len(pref) == len(set(pref)) == 2

    def test_single_node_owns_everything(self):
        ring = HashRing(["http://solo:1"])
        assert ring.owner("anything") == "http://solo:1"

    def test_empty_rejected(self):
        with pytest.raises(ServiceError):
            HashRing([])

    def test_contains_len_dict(self):
        ring = HashRing(NODES, replicas=16)
        assert "http://a:1" in ring
        assert len(ring) == 3
        assert ring.to_dict() == {"nodes": sorted(NODES), "replicas": 16}


# ---------------------------------------------------------------------------
# Service-level routing (in-process, two APIs sharing one object bucket).
# ---------------------------------------------------------------------------


@pytest.fixture
def two_nodes(tmp_path):
    """Two ServiceAPI instances in one ring over one shared namespace."""
    client = MemoryObjectClient()
    urls = ["http://node-a", "http://node-b"]
    apis = []
    for i, url in enumerate(urls):
        apis.append(
            ServiceAPI(
                tmp_path / f"node{i}",
                workers=0,
                backend=ObjectBackend(client),
                self_url=url,
                peers=[u for u in urls if u != url],
            )
        )
    yield dict(zip(urls, apis))
    for api in apis:
        api.close()


def _upload(api, trace, tmp_path):
    data = write_trace(trace, tmp_path / "up.clt").read_bytes()
    status, entry = api.handle("POST", "/traces", data)
    assert status == 201
    return entry["digest"]


class TestServiceRouting:
    def test_ring_route(self, two_nodes):
        api = two_nodes["http://node-a"]
        status, out = api.handle("GET", "/ring")
        assert status == 200
        assert out["routing"] is True
        assert out["self"] == "http://node-a"
        assert out["nodes"] == sorted(two_nodes)

    def test_non_owner_redirects_owner_runs(self, two_nodes, micro_trace, tmp_path):
        digest = _upload(two_nodes["http://node-a"], micro_trace, tmp_path)
        body = json.dumps({"kind": "analyze", "trace": digest}).encode()
        results = {url: api.handle("POST", "/jobs", body) for url, api in two_nodes.items()}
        statuses = sorted(status for status, _ in results.values())
        assert statuses == [202, 307]
        for url, (status, payload) in results.items():
            if status == 307:
                assert payload["node"] in two_nodes and payload["node"] != url
                assert payload["redirect"] == f"{payload['node']}/jobs"
            else:
                assert payload["state"] in ("queued", "done")

    def test_owner_consistent_between_nodes(self, two_nodes, micro_trace, tmp_path):
        """Both nodes agree on who owns a given job key."""
        digest = _upload(two_nodes["http://node-a"], micro_trace, tmp_path)
        body = json.dumps({"kind": "analyze", "trace": digest}).encode()
        owners = set()
        for url, api in two_nodes.items():
            status, payload = api.handle("POST", "/jobs", body)
            owners.add(payload["node"] if status == 307 else url)
        assert len(owners) == 1

    def test_shared_store_serves_either_node(self, two_nodes, micro_trace, tmp_path):
        """Content addressing + shared backend: a trace uploaded to one
        node is resolvable on the other."""
        digest = _upload(two_nodes["http://node-a"], micro_trace, tmp_path)
        # node-b's index predates the upload; it adopts the sidecar lazily.
        status, entry = two_nodes["http://node-b"].handle("GET", f"/traces/{digest}")
        assert status == 200
        assert entry["digest"] == digest
        [path] = two_nodes["http://node-b"].store.resolve([digest])
        assert Path(path).stat().st_size > 0

    def test_selftest_and_fleet_jobs_never_redirect(self, two_nodes):
        for api in two_nodes.values():
            status, _ = api.handle(
                "POST", "/jobs", json.dumps({"kind": "selftest"}).encode()
            )
            assert status == 202
            status, _ = api.handle(
                "POST", "/jobs", json.dumps({"kind": "fleet_summary"}).encode()
            )
            assert status == 202

    def test_peers_without_self_url_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="self_url"):
            ServiceAPI(tmp_path / "x", workers=0, peers=["http://other"])

    def test_no_ring_by_default(self, tmp_path):
        with ServiceAPI(tmp_path / "solo", workers=0) as api:
            status, out = api.handle("GET", "/ring")
            assert status == 200
            assert out["routing"] is False
            body = json.dumps({"kind": "selftest"}).encode()
            status, _ = api.handle("POST", "/jobs", body)
            assert status == 202
