"""Runner + CLI: seed orchestration, repro files, replay."""

import json

import pytest

from repro.check import runner as runner_mod
from repro.check.oracle import Discrepancy
from repro.check.runner import replay_repro, run_seed, run_seeds
from repro.check.spec import ProgramSpec
from repro.cli import main
from repro.errors import CheckError


def test_clean_seed_reports_ok():
    report = run_seed(0)
    assert report.ok
    assert report.discrepancies == []
    assert report.repro_path is None
    assert "ok" in report.render()


def test_run_seeds_aggregates():
    run = run_seeds(count=3, start=10)
    assert run.ok
    assert [r.seed for r in run.reports] == [10, 11, 12]
    assert "3 ok" in run.render()


def test_run_seeds_rejects_bad_count():
    with pytest.raises(CheckError, match="count"):
        run_seeds(count=0)


@pytest.fixture
def broken_oracle(monkeypatch):
    """Deterministic fake failure: any spec containing a trylock op."""

    def fake_check_spec(spec: ProgramSpec):
        if any(n["op"] == "trylock" for _, _, n in spec.iter_ops()):
            return [Discrepancy("fake-trylock", "spec contains a trylock")]
        return []

    monkeypatch.setattr(runner_mod, "check_spec", fake_check_spec)
    # find a seed whose generated program has a trylock
    from repro.check.generator import generate_spec

    for seed in range(100):
        if fake_check_spec(generate_spec(seed)):
            return seed
    raise AssertionError("no seed with a trylock in range")


def test_failure_is_shrunk_and_dumped(tmp_path, broken_oracle):
    report = run_seed(broken_oracle, out_dir=tmp_path)
    assert not report.ok
    assert report.invariants == ["fake-trylock"]
    assert report.shrunk is not None
    # minimal reproducer: a single trylock op in a single thread
    assert report.shrunk.op_count() == 1
    assert len(report.shrunk.threads) == 1
    assert report.repro_path is not None and report.repro_path.exists()

    doc = json.loads(report.repro_path.read_text())
    assert doc["discrepancies"][0]["invariant"] == "fake-trylock"
    assert doc["original_op_count"] == report.op_count


def test_repro_file_replays(tmp_path, broken_oracle):
    report = run_seed(broken_oracle, out_dir=tmp_path)
    replay = replay_repro(report.repro_path)
    assert not replay.ok
    assert replay.invariants == ["fake-trylock"]


def test_no_shrink_keeps_original_failure(tmp_path, broken_oracle):
    report = run_seed(broken_oracle, out_dir=tmp_path, shrink_failures=False)
    assert not report.ok
    assert report.shrunk is None
    # the repro file then carries the full generated program
    doc = json.loads(report.repro_path.read_text())
    assert ProgramSpec.from_dict(doc).op_count() == report.op_count


def test_cli_check_clean(tmp_path, capsys):
    assert main(["check", "--seeds", "2", "--out-dir", str(tmp_path)]) == 0
    assert "2 ok, 0 failing" in capsys.readouterr().out


def test_cli_check_failure_and_replay(tmp_path, capsys, broken_oracle):
    code = main([
        "check", "--seeds", "1", "--start", str(broken_oracle),
        "--out-dir", str(tmp_path),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "fake-trylock" in out
    assert "repro written to" in out

    repro = tmp_path / f"repro-seed{broken_oracle}.json"
    assert main(["check", "--repro", str(repro)]) == 1
    assert "fake-trylock" in capsys.readouterr().out


def test_cli_replay_clean_repro(tmp_path, capsys):
    # A clean program replayed through the real oracle exits 0.
    from repro.check.generator import generate_spec

    path = generate_spec(0).to_json(tmp_path / "spec.json")
    assert main(["check", "--repro", str(path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_replay_missing_file(capsys):
    assert main(["check", "--repro", "/nonexistent/nope.json"]) == 1
    assert "error:" in capsys.readouterr().err
