"""Pluggable ready-queue policies: priority dispatch, round-robin slicing."""

import pytest

from repro.errors import SimulationError
from repro.sim import Program, available_schedulers, get_scheduler
from repro.sim.schedulers import SCHEDULER_DOCS, RoundRobinScheduler


def test_registry_lists_all_documented_schedulers():
    assert available_schedulers() == sorted(SCHEDULER_DOCS)


def test_get_scheduler_unknown_name_lists_available():
    with pytest.raises(SimulationError, match="fifo.*priority.*rr"):
        get_scheduler("edf")


def test_rr_quantum_must_be_positive():
    with pytest.raises(SimulationError, match="quantum"):
        RoundRobinScheduler(quantum=0.0)


def test_priority_scheduler_dispatches_highest_first():
    # "low" is dispatched straight onto the free core at its spawn event
    # (non-preemptive; there is no queue yet to rank).  The *queued*
    # threads then run in priority order: high before mid.
    prog = Program(cores=1, scheduler="priority")
    start_order = []

    def body(env, tag):
        start_order.append(tag)
        yield env.compute(1.0)

    prog.spawn(body, "low", priority=0)
    prog.spawn(body, "high", priority=2)
    prog.spawn(body, "mid", priority=1)
    prog.run()
    assert start_order == ["low", "high", "mid"]


def test_priority_scheduler_fifo_among_equals():
    prog = Program(cores=1, scheduler="priority")
    start_order = []

    def body(env, i):
        start_order.append(i)
        yield env.compute(1.0)

    prog.spawn_workers(3, body)  # all priority 0
    prog.run()
    assert start_order == [0, 1, 2]


def test_rr_slices_compute_at_quantum():
    # Two 1.0 computes on one core with quantum 0.5 interleave: A runs
    # [0, .5], B [.5, 1], A [1, 1.5], B [1.5, 2].
    prog = Program(cores=1, scheduler=get_scheduler("rr", quantum=0.5))
    finished = []

    def body(env, tag):
        yield env.compute(1.0)
        finished.append((tag, env.now))

    prog.spawn(body, "a")
    prog.spawn(body, "b")
    result = prog.run()
    assert finished == [("a", 1.5), ("b", 2.0)]
    assert result.completion_time == 2.0


def test_rr_no_slicing_when_core_uncontended():
    # An uncontended core never reschedules: a long compute runs whole.
    prog = Program(cores=1, scheduler=get_scheduler("rr", quantum=0.5))
    finished = []

    def body(env):
        yield env.compute(3.0)
        finished.append(env.now)

    prog.spawn(body)
    prog.run()
    assert finished == [3.0]


def test_rr_preserves_total_work():
    # 4x1.0 of pure compute on 2 saturated cores takes exactly 2.0 no
    # matter how the quantum slices it: slicing shuffles interleavings
    # but cannot create or destroy work.
    prog = Program(cores=2, scheduler=get_scheduler("rr", quantum=0.3))

    def body(env, i):
        yield env.compute(1.0)

    prog.spawn_workers(4, body)
    assert prog.run().completion_time == 2.0


def test_non_default_scheduler_recorded_in_trace_meta():
    prog = Program(cores=1, scheduler="priority")

    def body(env, i):
        yield env.compute(0.1)

    prog.spawn_workers(2, body)
    meta = prog.run().trace.meta
    assert meta["scheduler"] == "priority"
    assert "protocol" not in meta
