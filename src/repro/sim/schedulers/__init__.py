"""Pluggable ready-queue policies for core-limited scheduling.

When the simulator runs with ``cores=N``, runnable threads without a
core wait in a ready queue owned by a :class:`Scheduler`.  The policy
decides who gets a freed core next:

* :class:`FifoScheduler` — arrival order (the engine's historical
  behavior, and the default);
* :class:`PriorityScheduler` — highest effective priority first, FIFO
  among equals (non-preemptive: a running thread keeps its core until
  it blocks, yields or finishes);
* :class:`RoundRobinScheduler` — FIFO plus a time quantum: a compute
  segment longer than the quantum is sliced, and the thread goes to the
  back of the queue between slices (only when other threads are ready —
  an uncontended core never reschedules).

With ``cores=None`` (the default, one core per thread) the ready queue
is always empty and the policy is irrelevant.

Use :func:`get_scheduler` to construct by registry name.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "get_scheduler",
    "available_schedulers",
]


class Scheduler:
    """Ready-queue policy: which coreless runnable thread runs next."""

    #: Registry name (subclasses override).
    name = "fifo"
    #: Compute-slice length, or ``None`` for run-to-completion segments.
    quantum: float | None = None

    def __init__(self) -> None:
        self._q: deque["SimThread"] = deque()

    def push(self, thread: "SimThread") -> None:
        self._q.append(thread)

    def pop(self) -> "SimThread":
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def describe(self) -> dict[str, Any]:
        return {}


class FifoScheduler(Scheduler):
    """Arrival order (the baseline; bit-identical to the old engine)."""

    name = "fifo"


class PriorityScheduler(Scheduler):
    """Highest effective priority first; FIFO among equals."""

    name = "priority"

    def pop(self) -> "SimThread":
        best = 0
        for i in range(1, len(self._q)):
            if self._q[i].effective_priority > self._q[best].effective_priority:
                best = i
        thread = self._q[best]
        del self._q[best]
        return thread


class RoundRobinScheduler(Scheduler):
    """FIFO with compute slicing every ``quantum`` time units."""

    name = "rr"

    def __init__(self, quantum: float = 1.0) -> None:
        super().__init__()
        if quantum <= 0:
            raise SimulationError(f"rr quantum must be > 0, got {quantum}")
        self.quantum = float(quantum)

    def describe(self) -> dict[str, Any]:
        return {"quantum": self.quantum}


SCHEDULERS: dict[str, type[Scheduler]] = {
    FifoScheduler.name: FifoScheduler,
    PriorityScheduler.name: PriorityScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
}

SCHEDULER_DOCS: dict[str, str] = {
    "fifo": "arrival-order ready queue (baseline)",
    "priority": "highest effective priority gets a freed core first",
    "rr": "round-robin compute slicing with a configurable quantum",
}


def available_schedulers() -> list[str]:
    return sorted(SCHEDULERS)


def get_scheduler(name: str, **params: Any) -> Scheduler:
    """Construct a scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; available: "
            + ", ".join(available_schedulers())
        ) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise SimulationError(f"bad parameters for scheduler {name!r}: {exc}") from None
