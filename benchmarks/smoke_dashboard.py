"""Dashboard smoke test: a live server, real HTTP, and one SSE event.

Standalone script (CI runs it directly)::

    PYTHONPATH=src python benchmarks/smoke_dashboard.py

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, uploads a micro-benchmark trace, then validates the fleet
observability surface end to end:

* ``GET /dashboard`` returns the self-contained HTML page (curl when
  available, urllib otherwise — the same check CI's shell would make);
* ``GET /fleet/summary`` reports the uploaded trace's cluster(s);
* ``GET /fleet/events`` (SSE) emits at least one ``fleet`` event;
* ``GET /fleet/alerts`` evaluates the example rule spec.
"""

from __future__ import annotations

import json
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RULES = REPO / "docs" / "examples" / "fleet-alerts.toml"


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def http_get(url: str, timeout: float = 10.0) -> str:
    """GET via the curl binary when present (as CI would), else urllib."""
    curl = shutil.which("curl")
    if curl:
        out = subprocess.run(
            [curl, "-sSf", "--max-time", str(int(timeout)), url],
            capture_output=True, timeout=timeout + 5,
        )
        if out.returncode != 0:
            raise RuntimeError(f"curl {url} failed: {out.stderr.decode()!r}")
        return out.stdout.decode("utf-8")
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def wait_healthy(base: str, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if json.loads(http_get(f"{base}/healthz", timeout=2.0)).get("ok"):
                return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError(f"service at {base} never became healthy")


def read_one_sse_event(base: str, timeout: float = 20.0) -> dict:
    """Read SSE frames off /fleet/events until one full event arrives."""
    req = urllib.request.Request(f"{base}/fleet/events")
    data_lines: list[str] = []
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        assert resp.headers.get("Content-Type", "").startswith("text/event-stream")
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith("data:"):
                data_lines.append(line[5:].lstrip())
            elif not line and data_lines:
                return json.loads("\n".join(data_lines))
    raise RuntimeError("SSE stream closed without emitting an event")


def main() -> int:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    tmp = Path(tempfile.mkdtemp(prefix="smoke-dashboard-"))
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--data-dir", str(tmp / "svc"),
            "--workers", "0",
            "--rules", str(RULES),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=str(REPO),
    )
    try:
        wait_healthy(base)

        # Upload one trace so the dashboard has something to show.
        sys.path.insert(0, str(REPO / "src"))
        from repro.service.client import ServiceClient
        from repro.trace.writer import write_trace
        from repro.workloads import get_workload

        trace = get_workload("micro")().run(nthreads=4, seed=1).trace
        path = write_trace(trace, tmp / "micro.clt")
        client = ServiceClient(base)
        digest = client.upload_trace(path, name="micro")
        print(f"uploaded micro trace {digest[:12]} to {base}")

        event = read_one_sse_event(base)
        assert event["type"] == "fleet", event
        assert event["version"] >= 1, event
        print(f"SSE ok: fleet event v{event['version']}, "
              f"{event['summary']['traces']} trace(s)")

        html = http_get(f"{base}/dashboard")
        assert html.startswith("<!DOCTYPE html>"), html[:80]
        assert "Critical-lock fleet dashboard" in html
        assert "micro" in html and "EventSource" in html
        print(f"dashboard ok: {len(html)} bytes of self-contained HTML")

        summary = json.loads(http_get(f"{base}/fleet/summary"))
        assert summary["traces"] >= 1, summary
        assert summary["top"], summary
        print(f"fleet summary ok: {summary['clusters']} cluster(s), "
              f"top site {summary['top'][0]['site']}")

        alerts = json.loads(http_get(f"{base}/fleet/alerts"))
        assert alerts["rules"] >= 1, alerts
        print(f"alerts ok: {alerts['rules']} rule(s) evaluated, "
              f"{len(alerts['alerts'])} firing")

        print("\nok: dashboard, fleet summary, alerts and SSE all live")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
