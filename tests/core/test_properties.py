"""Property-based tests: analysis invariants over random simulated programs.

The generator draws structurally-safe random programs (locks acquired in
index order to exclude deadlock, barrier rounds hit by every thread) and
checks the invariants that make critical lock analysis sound:

* the backward walk's pieces tile the execution exactly, so the critical
  path length equals the completion time;
* the forward DAG longest path agrees with the backward walk;
* metric bounds (fractions in [0, 1], on-CP counts <= totals);
* traces are well-formed and runs are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.analyzer import analyze
from repro.core.dag import build_event_graph
from repro.sim import Program
from repro.trace.validate import validate_trace

# One op: (kind, lock_index, duration_in_ticks)
op_st = st.tuples(
    st.sampled_from(["compute", "cs"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=8),
)

program_st = st.tuples(
    st.integers(min_value=2, max_value=5),  # threads
    st.integers(min_value=1, max_value=3),  # barrier rounds
    st.lists(  # per-thread op scripts (cycled if fewer than threads)
        st.lists(op_st, min_size=0, max_size=6),
        min_size=1,
        max_size=5,
    ),
    st.booleans(),  # use a barrier between rounds?
)


def run_random_program(spec):
    nthreads, rounds, scripts, use_barrier = spec
    prog = Program(name="prop", seed=7)
    locks = [prog.mutex(f"l{k}") for k in range(4)]
    barrier = prog.barrier(nthreads, "bar") if use_barrier else None

    def body(env, i):
        script = scripts[i % len(scripts)]
        for _ in range(rounds):
            for kind, lock_idx, ticks in script:
                dur = ticks * 0.125
                if kind == "compute":
                    yield env.compute(dur)
                else:
                    yield env.acquire(locks[lock_idx])
                    yield env.compute(dur)
                    yield env.release(locks[lock_idx])
            if barrier is not None:
                yield env.barrier_wait(barrier)

    prog.spawn_workers(nthreads, body)
    return prog.run()


@settings(max_examples=40, deadline=None)
@given(program_st)
def test_critical_path_tiles_execution(spec):
    result = run_random_program(spec)
    validate_trace(result.trace)
    analysis = analyze(result.trace)
    cp = analysis.critical_path
    assert cp.coverage_error == pytest.approx(0.0, abs=1e-9)
    assert cp.length == pytest.approx(result.completion_time, abs=1e-9)
    for a, b in zip(cp.pieces, cp.pieces[1:]):
        assert a.end == b.start
        assert a.duration >= 0


@settings(max_examples=40, deadline=None)
@given(program_st)
def test_dag_agrees_with_backward_walk(spec):
    result = run_random_program(spec)
    graph = build_event_graph(result.trace)
    assert graph.completion_time() == pytest.approx(result.completion_time, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(program_st)
def test_metric_bounds(spec):
    result = run_random_program(spec)
    analysis = analyze(result.trace)
    duration = result.completion_time
    total_cp_frac = 0.0
    for m in analysis.report.locks.values():
        assert 0 <= m.cp_fraction <= 1 + 1e-9
        assert 0 <= m.cont_prob_on_cp <= 1
        assert 0 <= m.avg_cont_prob <= 1
        assert m.invocations_on_cp <= m.total_invocations
        assert m.contended_on_cp <= m.invocations_on_cp
        assert m.contended_invocations <= m.total_invocations
        assert m.cp_hold_time <= duration + 1e-9
        total_cp_frac += m.cp_fraction
    # Critical sections never nest in these programs, so lock CP shares
    # cannot exceed the whole path.
    assert total_cp_frac <= 1 + 1e-9


@settings(max_examples=40, deadline=None)
@given(program_st, st.floats(min_value=0.0, max_value=1.0))
def test_whatif_bounds(spec, factor):
    result = run_random_program(spec)
    analysis = analyze(result.trace)
    locks = [m for m in analysis.report.locks.values() if m.total_invocations]
    if not locks:
        return
    m = locks[0]
    r = analysis.what_if(m.obj, factor=factor)
    assert r.predicted_time <= r.baseline_time + 1e-9
    # Can't save more than the total time spent inside the critical sections.
    assert r.predicted_time >= r.baseline_time - m.total_hold_time - 1e-9


@settings(max_examples=15, deadline=None)
@given(program_st)
def test_replay_reproduces_random_programs(spec):
    from repro.replay import reconstruct
    from repro.trace.events import EventType

    # Replay fidelity is guaranteed for positive-duration operations;
    # zero-length critical sections at tied timestamps may re-resolve
    # their acquisition race (documented limitation in repro.replay), so
    # bump zero ticks to one.
    nthreads, rounds, scripts, use_barrier = spec
    scripts = [
        [(kind, lock, max(1, ticks)) for kind, lock, ticks in script]
        for script in scripts
    ]
    original = run_random_program((nthreads, rounds, scripts, use_barrier))
    # Simultaneous ACQUIREs on the same lock are the other face of the
    # same limitation: the original grant order was decided by scheduling,
    # not by timestamps, so free replay may legitimately re-resolve it
    # (identity replay pins it via protocol="recorded" and is covered by
    # the replay-identity oracle invariant).  Skip such draws.
    seen_acquires = set()
    for ev in original.trace:
        if ev.etype == EventType.ACQUIRE:
            key = (ev.obj, ev.time)
            assume(key not in seen_acquires)
            seen_acquires.add(key)
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(
        original.completion_time, abs=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(program_st)
def test_online_type2_matches_offline(spec):
    from repro.core.online import OnlineAnalyzer

    result = run_random_program(spec)
    analysis = analyze(result.trace)
    online = OnlineAnalyzer().observe_all(result.trace)
    for m in analysis.report.locks.values():
        if m.total_invocations == 0:
            continue
        ls = online.stats(m.obj)
        assert ls.invocations == m.total_invocations
        assert ls.wait_time == pytest.approx(m.total_wait_time, abs=1e-9)
        assert ls.hold_time == pytest.approx(m.total_hold_time, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(program_st)
def test_determinism(spec):
    a = run_random_program(spec)
    b = run_random_program(spec)
    assert np.array_equal(a.trace.records, b.trace.records)


@settings(max_examples=25, deadline=None)
@given(program_st)
def test_thread_stats_conservation(spec):
    result = run_random_program(spec)
    analysis = analyze(result.trace)
    cp_total = sum(s.cp_time for s in analysis.report.thread_stats)
    assert cp_total == pytest.approx(result.completion_time, abs=1e-9)
    for s in analysis.report.thread_stats:
        assert s.exec_time + s.total_wait == pytest.approx(s.lifetime, abs=1e-9)
        assert s.cp_time <= s.lifetime + 1e-9
