"""Cross-validation of the statistical estimator against the exact engine.

These are the acceptance tests of the sampling pipeline: on both pinned
golden workloads, sampling at every tested rate (down to 10%) must
recover the exact analyzer's top-3 critical-lock set, and the exact
``cp_fraction`` of every reported lock must lie inside the estimator's
90% confidence interval.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.sampling import cross_validate
from repro.workloads import get_workload

RATES = (1.0, 0.5, 0.1)

CASES = {
    "radiosity": ("radiosity", {"total_tasks": 80, "iterations": 2}, 4, 11),
    "ldap": (
        "openldap",
        {"requests": 150, "nbuckets": 2, "write_prob": 0.35,
         "write_cost": 0.12, "lookup_cost": 0.04},
        6,
        1,
    ),
}


@pytest.fixture(scope="module")
def validations():
    """One CrossValidation per golden case (exact analysis reused)."""
    out = {}
    for case, (workload, params, nthreads, seed) in CASES.items():
        trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
        exact = analyze(trace).report
        out[case] = cross_validate(trace, rates=RATES, k=3, seed=0, exact=exact)
    return out


def _rate(cv, rate):
    return next(rv for rv in cv.rates if rv.rate == rate)


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("rate", RATES)
def test_top3_ranking_recovered(validations, case, rate):
    rv = _rate(validations[case], rate)
    assert not rv.error
    assert rv.recovered, (
        f"{case} at rate {rate}: estimated top-3 {rv.estimated_top} != "
        f"exact top-3 {rv.exact_top}"
    )


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("rate", RATES)
def test_exact_value_inside_interval(validations, case, rate):
    rv = _rate(validations[case], rate)
    uncovered = [c for c in rv.coverage if not c.covered]
    assert not uncovered, (
        f"{case} at rate {rate}: "
        + "; ".join(
            f"{c.name}: exact {c.exact:.4f} outside [{c.ci_low:.4f}, {c.ci_high:.4f}]"
            for c in uncovered
        )
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_rate_one_is_exact(validations, case):
    rv = _rate(validations[case], 1.0)
    assert rv.exact_match  # every point bit-equal to the exact cp_fraction
    for c in rv.coverage:
        assert c.ci_low == c.ci_high == c.point == c.exact


@pytest.mark.parametrize("case", sorted(CASES))
def test_render_summarizes_all_rates(validations, case):
    text = validations[case].render()
    for rate in RATES:
        assert f"{rate:.2f}" in text or f"{int(rate * 100)}%" in text
    assert "top-3" in text or "recovered" in text
