"""Content-addressed trace digests.

The analysis service (:mod:`repro.service`) keys its result cache and
trace store on a digest of the trace *content*, not of the container
file: the same execution uploaded as ``.clt`` or ``.jsonl`` must hash to
the same address, or re-analysis of a re-uploaded trace would miss the
cache.  :func:`trace_digest` therefore hashes a canonical serialization
(sorted-key JSON header + the raw numpy record block), while
:func:`file_digest` is a plain byte hash for opaque blobs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.trace.trace import Trace
from repro.trace.writer import header_dict

__all__ = ["trace_digest", "file_digest"]

_DIGEST_VERSION = b"CLDIGEST1"


def trace_digest(trace: Trace) -> str:
    """Canonical content digest of a trace (hex sha256).

    Invariant under the on-disk container format: a trace written to
    ``.clt`` and to ``.jsonl`` and read back yields the same digest.
    """
    h = hashlib.sha256()
    h.update(_DIGEST_VERSION)
    header = json.dumps(header_dict(trace), sort_keys=True, separators=(",", ":"))
    h.update(header.encode("utf-8"))
    h.update(trace.records.tobytes())
    return h.hexdigest()


def file_digest(path: str | Path) -> str:
    """Plain sha256 of a file's bytes (streaming, constant memory)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()
