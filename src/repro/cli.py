"""Command line interface.

::

    critical-lock-analysis run radiosity --threads 24 -o rad.clt --report
    critical-lock-analysis analyze rad.clt --top 5 --timeline
    critical-lock-analysis analyze rad.clt --sample-rate 0.1
    critical-lock-analysis import perf_lock_events.jsonl -o perf.clt
    critical-lock-analysis whatif rad.clt "tq[0].qlock" --factor 0.5
    critical-lock-analysis experiment fig9
    critical-lock-analysis check --seeds 200
    critical-lock-analysis serve --port 8323 --workers 4
    critical-lock-analysis fleet summary --store .cla-service
    critical-lock-analysis fleet lint-rules docs/examples/fleet-alerts.toml
    critical-lock-analysis list

(also invocable as ``python -m repro``.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.analyzer import analyze
from repro.core.whatif import predict_shrink
from repro.errors import ReproError
from repro.experiments.harness import list_experiments, run_experiment
from repro.trace.reader import read_trace
from repro.trace.writer import write_trace
from repro.viz.timeline import render_timeline
from repro.workloads import available_workloads, get_workload

__all__ = ["main", "build_parser"]


def _version_string() -> str:
    """Package version, preferring installed metadata over the source tree."""
    from importlib import metadata

    try:
        version = metadata.version("repro")
    except metadata.PackageNotFoundError:
        from repro import __version__ as version
    return f"critical-lock-analysis {version}"


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="critical-lock-analysis",
        description="Critical lock analysis (SC 2012) — simulate, trace, analyze.",
    )
    p.add_argument("--version", action="version", version=_version_string())
    sub = p.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a workload on the simulator")
    run_p.add_argument("workload", help=f"one of: {', '.join(available_workloads())}")
    run_p.add_argument("--threads", "-t", type=int, default=4)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--cores", type=int, default=None, help="simulated core limit")
    run_p.add_argument(
        "--param", "-p", action="append", default=[], metavar="K=V",
        help="workload constructor parameter (repeatable)",
    )
    run_p.add_argument("--output", "-o", help="write the trace to this path (.clt/.jsonl)")
    run_p.add_argument("--report", action="store_true", help="print the analysis report")

    an_p = sub.add_parser("analyze", help="analyze a trace file")
    an_p.add_argument("trace")
    an_p.add_argument("--top", type=int, default=10, help="locks per table")
    an_p.add_argument("--json", action="store_true", help="machine-readable output")
    an_p.add_argument("--timeline", action="store_true", help="also print the ASCII timeline")
    an_p.add_argument("--chart", action="store_true", help="CP-vs-wait lock profile bars")
    an_p.add_argument("--windows", type=int, metavar="N",
                      help="lock criticality over N time windows")
    an_p.add_argument("--lock-order", action="store_true",
                      help="nesting graph + potential-deadlock check")
    an_p.add_argument("--model", action="store_true",
                      help="fit the Eyerman-Eeckhout speedup-ceiling model")
    an_p.add_argument("--blame", action="store_true",
                      help="idleness-blame ranking (prior-art baseline)")
    an_p.add_argument("--phases", action="store_true",
                      help="per-barrier-phase critical lock statistics")
    an_p.add_argument("--no-validate", action="store_true", help="skip trace validation")
    an_p.add_argument(
        "--engine", choices=("columnar", "object"), default="columnar",
        help="analysis engine: vectorized numpy hot path (default) or the "
        "per-event object reference implementation; both are bit-identical",
    )
    an_p.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="analyze in up to N parallel shards split at barrier/join cut "
        "points (same result, less wall-clock; default: sequential)",
    )
    an_p.add_argument(
        "--sample-rate", type=float, default=None, metavar="R",
        help="downsample the trace to this lock-invocation inclusion "
        "probability and print the statistical estimate next to the exact "
        "report (a trace that is already a sampled capture is estimated "
        "directly; no flag needed)",
    )
    an_p.add_argument(
        "--sample-seed", type=int, default=0, metavar="S",
        help="deterministic sampling seed for --sample-rate (default: %(default)s)",
    )

    imp_p = sub.add_parser(
        "import",
        help="import a foreign lock-event dump (perf-style JSONL) as a "
        "native trace",
    )
    imp_p.add_argument("input", help="foreign dump file")
    imp_p.add_argument(
        "--format", default="perf-jsonl",
        help="input format (default: %(default)s)",
    )
    imp_p.add_argument("--output", "-o", help="write the trace here (.clt/.jsonl)")
    imp_p.add_argument("--report", action="store_true",
                       help="also print the analysis report")
    imp_p.add_argument("--top", type=int, default=10, help="locks per table")

    cmp_p = sub.add_parser("compare", help="diff two analyses (before vs after)")
    cmp_p.add_argument("before")
    cmp_p.add_argument("after")

    st_p = sub.add_parser("stats", help="descriptive statistics of a trace")
    st_p.add_argument("trace")

    ex2_p = sub.add_parser(
        "export",
        help="export a trace to Chrome/Perfetto JSON, an SVG timeline, "
        "or a full HTML report",
    )
    ex2_p.add_argument("trace")
    ex2_p.add_argument(
        "output", help="output path (.json = Chrome, .svg = SVG, .html = report)"
    )

    plan_p = sub.add_parser(
        "plan", help="greedy lock-optimization plan (what-if based)"
    )
    plan_p.add_argument("trace")
    plan_p.add_argument("--steps", type=int, default=3)
    plan_p.add_argument("--factor", type=float, default=0.5,
                        help="per-step shrink factor")

    rp_p = sub.add_parser(
        "replay", help="re-run a trace on the simulator, optionally modified"
    )
    rp_p.add_argument("trace")
    rp_p.add_argument("--shrink", metavar="LOCK",
                      help="scale this lock's critical sections")
    rp_p.add_argument("--factor", type=float, default=0.5,
                      help="remaining CS size fraction under --shrink")
    rp_p.add_argument("--cores", type=int, default=None,
                      help="replay under a different core count")
    rp_p.add_argument("--output", "-o", help="write the replayed trace here")

    wi_p = sub.add_parser(
        "whatif",
        help="predict speedup from shrinking a lock's CSs, or ground-truth "
        "replay under another lock protocol / scheduler",
    )
    wi_p.add_argument("trace", nargs="?", help="trace file (.clt/.jsonl)")
    wi_p.add_argument("lock", nargs="?", help="lock display name (shrink mode)")
    wi_p.add_argument("--factor", type=float, default=0.0,
                      help="remaining CS size fraction (0 = eliminate)")
    wi_p.add_argument(
        "--protocol", metavar="NAME",
        help="replay under this lock protocol (see --list-protocols)",
    )
    wi_p.add_argument(
        "--scheduler", metavar="NAME",
        help="replay under this ready-queue scheduler (see --list-protocols)",
    )
    wi_p.add_argument("--quantum", type=float, metavar="T",
                      help="compute quantum for --scheduler rr")
    wi_p.add_argument(
        "--priority", action="append", default=[], metavar="THREAD=P",
        help="base priority for a thread (tid or name; repeatable)",
    )
    wi_p.add_argument(
        "--proto-param", action="append", default=[], metavar="K=V",
        help="protocol constructor parameter, e.g. spin_limit=0.1 (repeatable)",
    )
    wi_p.add_argument("--cores", type=int, default=None,
                      help="replay under a different core count (default: recorded)")
    wi_p.add_argument("--top", type=int, default=10,
                      help="locks in the re-ranking table")
    wi_p.add_argument("--json", action="store_true", help="machine-readable output")
    wi_p.add_argument("--list-protocols", action="store_true",
                      help="list available protocols and schedulers, then exit")

    ex_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    ex_p.add_argument(
        "exp_id", help=f"one of: {', '.join(list_experiments())}, or 'all'"
    )
    ex_p.add_argument("--output", "-o", help="also append the tables to this file")

    chk_p = sub.add_parser(
        "check",
        help="differential verification: fuzz random programs through both "
        "critical-path formulations and cross-check every invariant",
    )
    chk_p.add_argument("--seeds", type=int, default=50, metavar="N",
                       help="number of seeds to check (default: %(default)s)")
    chk_p.add_argument("--start", type=int, default=0,
                       help="first seed (default: %(default)s)")
    chk_p.add_argument(
        "--out-dir", default=".cla-check",
        help="directory for shrunk repro files (default: %(default)s)",
    )
    chk_p.add_argument("--repro", metavar="FILE",
                       help="replay a repro file instead of fuzzing")
    chk_p.add_argument("--no-shrink", action="store_true",
                       help="skip minimization of failing programs")
    chk_p.add_argument(
        "--max-shrink-evals", type=int, default=400, metavar="N",
        help="shrinker evaluation budget per failure (default: %(default)s)",
    )

    lv_p = sub.add_parser(
        "live",
        help="tail a growing trace (or a service stream session) and "
        "render the rolling lock ranking",
    )
    lv_p.add_argument("trace", nargs="?", help="trace file to follow (.clt/.cls/.jsonl)")
    lv_p.add_argument("--service", metavar="URL",
                      help="poll a service stream session instead of a file")
    lv_p.add_argument("--session", metavar="SID",
                      help="stream session id (with --service)")
    lv_p.add_argument("--top", type=int, default=8, help="locks per table")
    lv_p.add_argument("--refresh", type=float, default=1.0,
                      help="seconds between renders (default: %(default)s)")
    lv_p.add_argument(
        "--timeout", type=float, default=5.0,
        help="stop after this long with no new events (default: %(default)s)",
    )
    lv_p.add_argument("--once", action="store_true",
                      help="render a single snapshot and exit")

    srv_p = sub.add_parser(
        "serve", help="run the parallel analysis service (HTTP/JSON API)"
    )
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8323)
    srv_p.add_argument(
        "--data-dir", default=".cla-service",
        help="trace store + cache spill directory (default: %(default)s)",
    )
    srv_p.add_argument(
        "--workers", "-w", type=int, default=2,
        help="analysis worker processes; 0 = run jobs inline (default: %(default)s)",
    )
    srv_p.add_argument(
        "--cache-size", type=int, default=256,
        help="in-memory result cache entries (default: %(default)s)",
    )
    srv_p.add_argument(
        "--rules", metavar="FILE",
        help="TOML alert-rule spec served at /fleet/alerts and the dashboard",
    )
    srv_p.add_argument(
        "--backend", default="local", choices=["local", "object", "memory"],
        help="storage backend: private local disk (default), an S3-style "
        "object bucket (see --object-root), or in-memory (demos)",
    )
    srv_p.add_argument(
        "--object-root", metavar="DIR",
        help="bucket directory for --backend object; point every instance "
        "of a fleet at the same path to share one namespace "
        "(default: <data-dir>/objects)",
    )
    srv_p.add_argument(
        "--peers", metavar="URLS",
        help="comma-separated base URLs of the other ring nodes; enables "
        "consistent-hash job routing (redirects to the owning node)",
    )
    srv_p.add_argument(
        "--self-url", metavar="URL",
        help="this node's URL as peers reach it (default: http://HOST:PORT)",
    )

    fl_p = sub.add_parser(
        "fleet",
        help="cross-trace fleet analytics: cluster summary, ranking "
        "regressions, alert rules, live watch",
    )
    fl_sub = fl_p.add_subparsers(dest="fleet_command", required=True)

    def _fleet_common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--store", default=".cla-service", metavar="DIR",
            help="service data dir holding the trace store (default: %(default)s)",
        )
        sp.add_argument("--service", metavar="URL",
                        help="query a running service instead of local state")
        sp.add_argument("--json", action="store_true", help="machine-readable output")

    fs_p = fl_sub.add_parser("summary", help="fingerprinted bottleneck clusters")
    _fleet_common(fs_p)
    fs_p.add_argument("--top", type=int, default=15, help="clusters to show")

    fr_p = fl_sub.add_parser(
        "regressions", help="ranking shifts beyond the calibrated noise band"
    )
    _fleet_common(fr_p)
    fr_p.add_argument("--topk", type=int, default=None,
                      help="ranking depth for churn detection")
    fr_p.add_argument("--noise-floor", type=float, default=None,
                      help="minimum cp_fraction delta worth flagging")
    fr_p.add_argument("--sigma", type=float, default=None,
                      help="noise-band width in baseline standard deviations")

    fa_p = fl_sub.add_parser("alerts", help="evaluate an alert-rule spec")
    _fleet_common(fa_p)
    fa_p.add_argument("--rules", metavar="FILE",
                      help="TOML rule spec (required unless --service)")

    fw_p = fl_sub.add_parser(
        "watch", help="follow a service's fleet SSE stream and print events"
    )
    fw_p.add_argument("--service", required=True, metavar="URL")
    fw_p.add_argument("--events", type=int, default=0,
                      help="stop after N events (0 = until interrupted)")
    fw_p.add_argument("--timeout", type=float, default=60.0,
                      help="per-read socket timeout (default: %(default)s)")
    fw_p.add_argument("--json", action="store_true", help="machine-readable output")

    flr_p = fl_sub.add_parser(
        "lint-rules", help="validate alert-rule spec files without a store"
    )
    flr_p.add_argument("rules", nargs="+", help="TOML rule spec file(s)")

    sub.add_parser("list", help="list workloads and experiments")
    return p


def _parse_params(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--param expects K=V, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _cmd_run(args: argparse.Namespace) -> int:
    cls = get_workload(args.workload)
    wl = cls(**_parse_params(args.param))
    result = wl.run(nthreads=args.threads, seed=args.seed, cores=args.cores)
    print(
        f"{wl.name}: {args.threads} threads, completion time "
        f"{result.completion_time:.4f}, {len(result.trace)} events"
    )
    if args.output:
        path = write_trace(result.trace, args.output)
        print(f"trace written to {path}")
    if args.report or not args.output:
        print()
        print(analyze(result.trace).render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.eyerman import fit_model
    from repro.core.lockorder import build_lock_order
    from repro.core.windows import windowed_criticality
    from repro.viz.profile import render_lock_profile

    from repro.core.estimate import estimate_report
    from repro.sampling import downsample_trace, trace_sample_rate

    trace = read_trace(args.trace)
    if trace_sample_rate(trace) is not None:
        # A sampled capture: the exact engine's numbers would silently
        # describe the sample, not the execution — estimate instead.
        est = estimate_report(trace, engine=args.engine)
        if args.json:
            print(json.dumps(est.to_dict(), indent=2))
        else:
            print(est.render(args.top))
        return 0
    analysis = analyze(
        trace, validate=not args.no_validate, jobs=args.jobs, engine=args.engine
    )
    est = None
    if args.sample_rate is not None:
        sampled = downsample_trace(trace, args.sample_rate, seed=args.sample_seed)
        est = estimate_report(sampled, engine=args.engine)
    if args.json:
        doc = analysis.report.to_dict()
        if est is not None:
            doc = {"exact": doc, "estimated": est.to_dict()}
        print(json.dumps(doc, indent=2))
    else:
        print(analysis.render(args.top))
        if est is not None:
            print()
            print(est.render(args.top))
    if args.timeline:
        print()
        print(render_timeline(trace, analysis))
    if args.chart:
        print()
        print(render_lock_profile(analysis.report, n=args.top))
    if args.windows:
        print()
        print(windowed_criticality(analysis, args.windows).render())
    if args.lock_order:
        print()
        print(build_lock_order(trace).render())
    if args.model:
        print()
        model = fit_model(analysis)
        print(model)
        for n in (2, 4, 8, 16, 32, 64):
            print(f"  model speedup @{n:>2} threads: {model.speedup(n):.2f}x")
    if args.blame:
        from repro.core.blame import compute_blame

        print()
        print(compute_blame(analysis).render(thread_names=trace.threads))
    if args.phases:
        from repro.core.phases import split_phases

        print()
        print(split_phases(analysis).render())
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from repro.trace.importers import import_trace

    trace = import_trace(args.input, format=args.format)
    info = trace.meta.get("import", {})
    repairs = ", ".join(f"{k}={v}" for k, v in info.items() if k != "file" and v)
    print(
        f"imported {args.input}: {len(trace)} events, "
        f"{len(trace.threads)} threads, {len(trace.objects)} objects"
        + (f" ({repairs})" if repairs else "")
    )
    if args.output:
        path = write_trace(trace, args.output)
        print(f"trace written to {path}")
    if args.report or not args.output:
        print()
        print(analyze(trace).render(args.top))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.trace.stats import compute_trace_stats

    print(compute_trace_stats(read_trace(args.trace)).render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    out = str(args.output)
    if out.endswith(".svg"):
        from repro.viz.svg import write_svg

        path = write_svg(read_trace(args.trace), args.output)
        print(f"SVG timeline written to {path}")
        return 0
    if out.endswith((".html", ".htm")):
        from repro.report_html import write_html_report

        path = write_html_report(read_trace(args.trace), args.output)
        print(f"HTML report written to {path}")
        return 0
    from repro.export import write_chrome_trace

    path = write_chrome_trace(read_trace(args.trace), args.output)
    print(f"Chrome trace written to {path}; open it at https://ui.perfetto.dev")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import plan_optimizations

    analysis = analyze(read_trace(args.trace), validate=False)
    print(plan_optimizations(analysis, steps=args.steps, factor=args.factor).render())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.replay import reconstruct

    trace = read_trace(args.trace)
    replay = reconstruct(trace)
    result = replay.run(
        shrink_lock=args.shrink, factor=args.factor if args.shrink else 1.0,
        cores=args.cores,
    )
    print(
        f"original completion {trace.duration:.6g} -> replay "
        f"{result.completion_time:.6g}"
        + (f" (with {args.shrink} x{args.factor})" if args.shrink else "")
    )
    if trace.duration > 0:
        print(f"speedup vs original: {trace.duration / result.completion_time:.3f}")
    if args.output:
        path = write_trace(result.trace, args.output)
        print(f"replayed trace written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_analyses

    before = analyze(read_trace(args.before), validate=False)
    after = analyze(read_trace(args.after), validate=False)
    print(compare_analyses(before, after).render())
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    if args.list_protocols:
        from repro.sim.protocols import PROTOCOL_DOCS
        from repro.sim.schedulers import SCHEDULER_DOCS

        print("lock protocols (--protocol):")
        for name, doc in PROTOCOL_DOCS.items():
            print(f"  {name:<12} {doc}")
        print("schedulers (--scheduler):")
        for name, doc in SCHEDULER_DOCS.items():
            print(f"  {name:<12} {doc}")
        return 0
    if not args.trace:
        raise ReproError("whatif needs a trace file (or --list-protocols)")
    trace = read_trace(args.trace)
    if args.protocol or args.scheduler:
        from repro.core.replay_whatif import replay_whatif

        priorities = {}
        for pair in args.priority:
            if "=" not in pair:
                raise ReproError(f"--priority expects THREAD=P, got {pair!r}")
            key, val = pair.split("=", 1)
            priorities[int(key) if key.lstrip("-").isdigit() else key] = int(val)
        forecast = replay_whatif(
            trace,
            protocol=args.protocol or "fifo",
            scheduler=args.scheduler or "fifo",
            quantum=args.quantum,
            priorities=priorities or None,
            protocol_params=_parse_params(args.proto_param) or None,
            cores=args.cores if args.cores is not None else "auto",
        )
        if args.json:
            print(json.dumps(forecast.to_dict(), indent=2))
        else:
            print(forecast.render(args.top))
        return 0
    if not args.lock:
        raise ReproError(
            "whatif needs a lock name (shrink mode) or --protocol/--scheduler"
        )
    print(predict_shrink(trace, args.lock, factor=args.factor))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = list_experiments() if args.exp_id == "all" else [args.exp_id]
    sink = open(args.output, "a", encoding="utf-8") if args.output else None
    try:
        for exp_id in ids:
            text = run_experiment(exp_id).render()
            print(text)
            print()
            if sink:
                sink.write(text + "\n\n")
    finally:
        if sink:
            sink.close()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import replay_repro, run_seeds

    if args.repro:
        report = replay_repro(args.repro)
        print(report.render())
        return 0 if report.ok else 1
    run = run_seeds(
        count=args.seeds,
        start=args.start,
        out_dir=args.out_dir,
        shrink_failures=not args.no_shrink,
        max_shrink_evals=args.max_shrink_evals,
    )
    print(run.render())
    return 0 if run.ok else 1


def _cmd_live(args: argparse.Namespace) -> int:
    if args.service:
        return _live_service(args)
    if not args.trace:
        raise ReproError("live needs a trace file, or --service with --session")
    from repro.stream import live_snapshots

    last = None
    for snap in live_snapshots(
        args.trace,
        top=args.top,
        refresh=args.refresh,
        timeout=args.timeout,
        stop=(lambda: True) if args.once else None,
    ):
        last = snap
        if args.once:
            continue  # only the final (complete) snapshot is wanted
        print(snap["rendered"])
        print(f"  [{snap['events']} events, {snap['nlocks']} locks, "
              f"span {snap['elapsed']:.6g}]")
        print()
    if args.once and last is not None:
        print(last["rendered"])
        print(f"  [{last['events']} events, {last['nlocks']} locks, "
              f"span {last['elapsed']:.6g}]")
    return 0


def _live_service(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service.client import ServiceClient

    if not args.session:
        raise ReproError("--service needs --session SID")
    client = ServiceClient(args.service)
    idle_since = _time.monotonic()
    last_events = -1
    while True:
        snap = client.stream_snapshot(args.session, top=args.top, render=True)
        print(snap.get("rendered", ""))
        print(f"  [{snap['events']} events, state {snap['state']}, "
              f"{snap['pending_chunks']} chunks pending]")
        print()
        if args.once or snap["state"] != "open":
            return 0
        if snap["events"] != last_events:
            last_events = snap["events"]
            idle_since = _time.monotonic()
        elif _time.monotonic() - idle_since > args.timeout:
            return 0
        _time.sleep(args.refresh)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        cache_capacity=args.cache_size,
        rules_path=args.rules,
        backend=args.backend,
        object_root=args.object_root,
        self_url=args.self_url,
        peers=tuple(
            p.strip() for p in (args.peers or "").split(",") if p.strip()
        ),
    )


def _local_fleet(store_dir: str):
    """Aggregator over a service data dir, caught up with its trace store."""
    from pathlib import Path

    from repro.fleet import FleetAggregator, ingest_store
    from repro.service.store import TraceStore

    root = Path(store_dir)
    agg = FleetAggregator(root / "fleet")
    if (root / "traces").exists():
        ingest_store(agg, TraceStore(root / "traces"))
    return agg


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        lint_rules,
        render_alerts,
        render_regressions,
        render_summary,
    )

    cmd = args.fleet_command
    if cmd == "lint-rules":
        problems = lint_rules(args.rules)
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if not problems:
            n = len(args.rules)
            print(f"{n} rule file(s) OK")
        return 1 if problems else 0

    if cmd == "watch":
        from repro.service.client import ServiceClient

        client = ServiceClient(args.service)
        shown = 0
        while args.events <= 0 or shown < args.events:
            want = 1 if args.events <= 0 else args.events - shown
            events = client.fleet_events(max_events=want, timeout=args.timeout)
            if not events:
                break
            for event in events:
                shown += 1
                if args.json:
                    print(json.dumps(event))
                else:
                    summ = event.get("summary", {})
                    print(
                        f"fleet v{event.get('version')}: "
                        f"{summ.get('traces', 0)} traces, "
                        f"{summ.get('clusters', 0)} clusters, "
                        f"{event.get('regressions', 0)} regression flag(s), "
                        f"{event.get('alerts', 0)} alert(s)"
                    )
                    for row in summ.get("top", []):
                        print(f"  {row['workload']:<16} {row['site']:<28} "
                              f"cp {row['cp_latest']:.3f}")
        return 0

    if cmd == "summary":
        if args.service:
            from repro.service.client import ServiceClient

            doc = ServiceClient(args.service).fleet_summary(top=args.top)
        else:
            doc = _local_fleet(args.store).summary(top=args.top)
        print(json.dumps(doc, indent=2) if args.json else render_summary(doc, n=args.top))
        return 0

    if cmd == "regressions":
        if args.service:
            from repro.service.client import ServiceClient

            doc = ServiceClient(args.service).fleet_regressions(
                topk=args.topk, noise_floor=args.noise_floor, sigma=args.sigma
            )
        else:
            kwargs = {}
            if args.topk is not None:
                kwargs["topk"] = args.topk
            if args.noise_floor is not None:
                kwargs["noise_floor"] = args.noise_floor
            if args.sigma is not None:
                kwargs["sigma"] = args.sigma
            doc = _local_fleet(args.store).regressions(**kwargs)
        print(json.dumps(doc, indent=2) if args.json else render_regressions(doc))
        return 1 if doc.get("flags") else 0

    # cmd == "alerts"
    if args.service:
        from repro.service.client import ServiceClient

        doc = ServiceClient(args.service).fleet_alerts()
        alerts, nrules = doc["alerts"], doc["rules"]
    else:
        from repro.fleet import evaluate_rules, load_rules

        if not args.rules:
            raise ReproError("fleet alerts needs --rules FILE (or --service URL)")
        rules = load_rules(args.rules)
        alerts, nrules = evaluate_rules(rules, _local_fleet(args.store)), len(rules)
    if args.json:
        print(json.dumps({"rules": nrules, "alerts": alerts}, indent=2))
    else:
        print(render_alerts(alerts, nrules))
    return 1 if alerts else 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("workloads:")
    for name in available_workloads():
        print(f"  {name}")
    print("experiments:")
    for exp_id in list_experiments():
        print(f"  {exp_id}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "import": _cmd_import,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "export": _cmd_export,
        "plan": _cmd_plan,
        "replay": _cmd_replay,
        "whatif": _cmd_whatif,
        "experiment": _cmd_experiment,
        "check": _cmd_check,
        "live": _cmd_live,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "list": _cmd_list,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head/less and closed
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
