"""Tests for the trace-construction DSL."""

import pytest

from repro.errors import TraceValidationError
from repro.trace.builder import TraceBuilder
from repro.trace.events import EventType, ObjectKind


def test_simple_program_builds_valid_trace():
    b = TraceBuilder(meta={"name": "demo"})
    lock = b.mutex("L")
    t = b.thread("w")
    t.start(at=0.0)
    t.critical_section(lock, acquire=1.0, obtain=1.0, release=2.0)
    t.exit(at=3.0)
    trace = b.build()
    assert trace.duration == 3.0
    assert trace.meta["name"] == "demo"
    assert trace.count(EventType.OBTAIN) == 1


def test_contended_flag_inferred():
    b = TraceBuilder()
    lock = b.mutex("L")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.critical_section(lock, acquire=0.0, obtain=0.0, release=2.0)
    t1.critical_section(lock, acquire=1.0, obtain=2.0, release=3.0)
    t0.exit(at=2.0)
    t1.exit(at=4.0)
    trace = b.build()
    obtains = [ev for ev in trace if ev.etype == EventType.OBTAIN]
    assert [ev.arg for ev in obtains] == [0, 1]


def test_object_kinds():
    b = TraceBuilder()
    assert b._objects[b.mutex("m")].kind == ObjectKind.MUTEX
    assert b._objects[b.barrier_obj("b")].kind == ObjectKind.BARRIER
    assert b._objects[b.condition("c")].kind == ObjectKind.CONDITION
    assert b._objects[b.semaphore("s")].kind == ObjectKind.SEMAPHORE


def test_build_validates_by_default():
    b = TraceBuilder()
    t = b.thread()
    t.start(at=0.0)  # never exits
    with pytest.raises(TraceValidationError):
        b.build()
    trace = b.build(validate=False)
    assert len(trace) == 1


def test_thread_names():
    b = TraceBuilder()
    named = b.thread("alpha")
    anon = b.thread()
    named.start(at=0.0).exit(at=1.0)
    anon.start(at=0.0).exit(at=1.0)
    trace = b.build()
    assert trace.thread_name(named.tid) == "alpha"
    assert trace.thread_name(anon.tid) == f"T{anon.tid}"


def test_barrier_and_cond_and_join_events():
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    cv = b.condition("C")
    main = b.thread("main")
    child = b.thread("child")
    main.start(at=0.0)
    main.create(child, at=0.5)
    child.start(at=0.5)
    main.barrier(bar, arrive=1.0, depart=2.0, gen=0)
    child.barrier(bar, arrive=2.0, depart=2.0, gen=0)
    child.cond_block(cv, at=3.0)
    main.cond_signal(cv, at=4.0)
    child.cond_wake(cv, at=4.0, by=main)
    child.exit(at=5.0)
    main.join(child, begin=4.5, end=5.0)
    main.exit(at=6.0)
    trace = b.build()
    assert trace.count(EventType.BARRIER_DEPART) == 2
    assert trace.count(EventType.COND_SIGNAL) == 1
    assert trace.count(EventType.JOIN_END) == 1


def test_events_sorted_by_time_with_stable_ties():
    b = TraceBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t1.exit(at=1.0)
    t0.exit(at=1.0)
    trace = b.build()
    # Tie at t=1.0 resolved by emission order: t1's exit first.
    assert trace[2].tid == 1
    assert trace[3].tid == 0
