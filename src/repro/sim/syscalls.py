"""Requests a simulated thread can yield to the engine.

A thread body is a generator; each ``yield`` hands the engine a request
object from this module and suspends the thread until the engine resumes
it (possibly with a result value, e.g. ``TryAcquire`` yields back a bool).

Thread code normally constructs requests through the convenience methods
on :class:`repro.sim.thread.SimThread` (``env.compute(...)``,
``env.acquire(...)``), so these classes rarely appear by name in workload
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sync import SimBarrier, SimCondition, SimMutex, SimRWLock, SimSemaphore
    from repro.sim.thread import ThreadHandle

__all__ = [
    "Request",
    "Compute",
    "Acquire",
    "TryAcquire",
    "Release",
    "BarrierWait",
    "CondWait",
    "CondSignal",
    "CondBroadcast",
    "SemAcquire",
    "SemRelease",
    "RWAcquire",
    "RWRelease",
    "Spawn",
    "Join",
    "YieldCore",
]


class Request:
    """Base class of all simulator requests (marker only)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Compute(Request):
    """Run for ``duration`` units of virtual time while holding the core."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative compute duration {self.duration}")


@dataclass(frozen=True, slots=True)
class Acquire(Request):
    """Block until the mutex is obtained; resumes with ``None``."""

    mutex: "SimMutex"


@dataclass(frozen=True, slots=True)
class TryAcquire(Request):
    """Non-blocking acquire; resumes with ``True`` iff obtained."""

    mutex: "SimMutex"


@dataclass(frozen=True, slots=True)
class Release(Request):
    """Release a held mutex."""

    mutex: "SimMutex"


@dataclass(frozen=True, slots=True)
class BarrierWait(Request):
    """Wait until every party arrived at the barrier."""

    barrier: "SimBarrier"


@dataclass(frozen=True, slots=True)
class CondWait(Request):
    """Atomically release ``mutex`` and wait for a signal, then reacquire."""

    cond: "SimCondition"
    mutex: "SimMutex"


@dataclass(frozen=True, slots=True)
class CondSignal(Request):
    """Wake one waiter (if any); resumes with the number woken."""

    cond: "SimCondition"


@dataclass(frozen=True, slots=True)
class CondBroadcast(Request):
    """Wake all waiters; resumes with the number woken."""

    cond: "SimCondition"


@dataclass(frozen=True, slots=True)
class SemAcquire(Request):
    """Decrement the semaphore, blocking at zero."""

    sem: "SimSemaphore"


@dataclass(frozen=True, slots=True)
class SemRelease(Request):
    """Increment the semaphore, waking one blocked acquirer."""

    sem: "SimSemaphore"


@dataclass(frozen=True, slots=True)
class RWAcquire(Request):
    """Acquire a read-write lock in ``write`` or read mode."""

    rwlock: "SimRWLock"
    write: bool


@dataclass(frozen=True, slots=True)
class RWRelease(Request):
    """Release a read-write lock held in ``write`` or read mode."""

    rwlock: "SimRWLock"
    write: bool


@dataclass(frozen=True, slots=True)
class Spawn(Request):
    """Create a new thread; resumes with its :class:`ThreadHandle`."""

    fn: Callable[..., Any]
    args: tuple
    name: str | None = None
    priority: int = 0


@dataclass(frozen=True, slots=True)
class Join(Request):
    """Block until the target thread exits."""

    handle: "ThreadHandle"


@dataclass(frozen=True, slots=True)
class YieldCore(Request):
    """Release the core and requeue at the back of the ready queue.

    Only meaningful under core-limited scheduling; a no-op (zero-time)
    otherwise.
    """
