"""Parallel analysis service.

Turns the one-shot post-processing analyzer into a persistent server:
traces are uploaded once into a content-addressed :class:`TraceStore`,
analysis requests become :class:`Job`\\ s fanned out across a
:class:`WorkerPool` of OS processes (sidestepping the GIL for the
numpy-heavy critical-path walk), and finished reports land in a
:class:`ResultCache` keyed on (trace digest, analysis kind, params) so
repeated queries are O(1).  A stdlib-only HTTP/JSON front end
(:mod:`repro.service.server`) and a matching :class:`ServiceClient`
expose the whole thing over the network; ``critical-lock-analysis
serve`` wires it into the CLI.

Layering::

    server.py   HTTP transport (http.server, threads)
      api.py    routing + request/response schemas      <- also usable in-process
    jobs.py     job model, JobStore, execute() facade   <- pure, picklable
    pool.py     multiprocessing worker pool + supervisor
    cache.py    LRU result cache with pluggable spill tier
    store.py    content-addressed trace storage
    backend.py  durable storage backends (local disk, S3-style objects)
    ring.py     consistent-hash job routing across a fleet of instances
    stream.py   chunked-append streaming ingestion sessions (checkpointed)
    metrics.py  counters + latency histograms (self-observation)
    client.py   urllib-based HTTP client (follows ring redirects)
"""

from repro.service.api import ServiceAPI
from repro.service.backend import (
    BackendMissing,
    DirectoryObjectClient,
    LocalDiskBackend,
    MemoryObjectClient,
    ObjectBackend,
    StorageBackend,
    make_backend,
)
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.jobs import JOB_KINDS, Job, JobSpec, JobStore, execute
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.pool import WorkerPool
from repro.service.ring import HashRing
from repro.service.store import TraceStore
from repro.service.stream import StreamSession, StreamStore

__all__ = [
    "ServiceAPI",
    "ServiceClient",
    "ResultCache",
    "TraceStore",
    "StorageBackend",
    "LocalDiskBackend",
    "ObjectBackend",
    "MemoryObjectClient",
    "DirectoryObjectClient",
    "BackendMissing",
    "make_backend",
    "HashRing",
    "StreamStore",
    "StreamSession",
    "WorkerPool",
    "JobStore",
    "Job",
    "JobSpec",
    "JOB_KINDS",
    "execute",
    "ServiceMetrics",
    "LatencyHistogram",
]
