"""HTML report generation."""

import pytest

from repro.core.analyzer import analyze
from repro.report_html import render_html_report, write_html_report

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def html():
    trace = make_micro_program().run().trace
    return render_html_report(trace)


def test_structure(html):
    assert html.startswith("<!DOCTYPE html>")
    assert html.endswith("</html>")
    assert "TYPE 1" in html and "TYPE 2" in html


def test_contains_all_sections(html):
    for section in (
        "Execution timeline",
        "Criticality over time",
        "What-if predictions",
        "Scalability forecast",
        "Who holds L2 on the path",
    ):
        assert section in html


def test_both_whatif_modes_listed(html):
    assert "halve critical sections" in html
    assert "eliminate contention" in html


def test_lock_values_present(html):
    assert "83.33%" in html
    assert "L2" in html and "L1" in html


def test_svg_embedded(html):
    assert "<svg" in html and "</svg>" in html


def test_critical_rows_highlighted(html):
    assert 'class="critical"' in html


def test_custom_title():
    trace = make_micro_program().run().trace
    out = render_html_report(trace, title="My <App>")
    assert "My &lt;App&gt;" in out  # escaped


def test_write_to_file(tmp_path):
    trace = make_micro_program().run().trace
    path = write_html_report(trace, tmp_path / "report.html")
    assert path.stat().st_size > 5000


def test_reuses_analysis():
    trace = make_micro_program().run().trace
    analysis = analyze(trace)
    assert "critical path" in render_html_report(trace, analysis)
