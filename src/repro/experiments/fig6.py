"""Paper Fig. 6 — micro-benchmark: CP Time vs Wait Time, and the speedup
actually obtained by optimizing each lock with the same effort.

Paper values (4 threads): L1 CP 16.67% / wait 36.53%, L2 CP 83.33% /
wait 9.02%; speedup 1.26 after optimizing L1 vs 1.37 after optimizing
L2.  The reproduction must show the same disagreement (TYPE 2 ranks L1
first, TYPE 1 ranks L2 first) and L2's optimization winning.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.micro import MicroBenchmark

__all__ = ["run"]


@experiment("fig6")
def run(nthreads: int = 4, seed: int = 0) -> ExperimentResult:
    base = MicroBenchmark().run(nthreads=nthreads, seed=seed)
    analysis = analyze(base.trace)
    t_base = base.completion_time

    speedups = {}
    for lock in ("L1", "L2"):
        optimized = MicroBenchmark(optimize=lock).run(nthreads=nthreads, seed=seed)
        speedups[lock] = t_base / optimized.completion_time

    rows = []
    values = {"nthreads": nthreads, "baseline_time": t_base}
    for lock in ("L1", "L2"):
        m = analysis.report.lock(lock)
        predicted = analysis.what_if(lock, factor=_shrunk_fraction(lock))
        rows.append(
            [
                lock,
                format_percent(m.cp_fraction),
                format_percent(m.avg_wait_fraction),
                f"{speedups[lock]:.2f}",
                f"{predicted.predicted_speedup:.2f}",
            ]
        )
        values[lock] = {
            "cp_fraction": m.cp_fraction,
            "wait_fraction": m.avg_wait_fraction,
            "speedup": speedups[lock],
            "predicted_speedup": predicted.predicted_speedup,
        }

    return ExperimentResult(
        exp_id="fig6",
        title=f"Micro-benchmark lock statistics and optimization speedups "
        f"({nthreads} threads)",
        headers=["Lock", "CP Time %", "Wait Time %", "Speedup after opt.",
                 "Predicted (what-if)"],
        rows=rows,
        notes=[
            "paper: L1 16.67%/36.53%/1.26, L2 83.33%/9.02%/1.37 — "
            "Wait Time picks L1, CP Time correctly picks L2",
        ],
        values=values,
    )


def _shrunk_fraction(lock: str) -> float:
    """The paper removes 1e9 of {2e9, 2.5e9} iterations: the remaining fraction."""
    return 1.0 / 2.0 if lock == "L1" else 1.5 / 2.5
