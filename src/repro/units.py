"""Virtual-time units and formatting helpers.

The simulator runs in dimensionless virtual time; the real-thread
instrumentation layer records wall-clock nanoseconds.  Both are stored as
``float`` seconds-equivalents in trace records, so the analysis module is
unit-agnostic.  These helpers keep conversions and human formatting in one
place.
"""

from __future__ import annotations

__all__ = [
    "NS_PER_SEC",
    "US_PER_SEC",
    "MS_PER_SEC",
    "ns_to_time",
    "time_to_ns",
    "format_duration",
    "format_percent",
]

NS_PER_SEC = 1_000_000_000
US_PER_SEC = 1_000_000
MS_PER_SEC = 1_000


def ns_to_time(ns: int) -> float:
    """Convert integer nanoseconds (instrumentation clock) to trace time."""
    return ns / NS_PER_SEC


def time_to_ns(t: float) -> int:
    """Convert trace time back to integer nanoseconds (rounded)."""
    return round(t * NS_PER_SEC)


def format_duration(t: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``1.25ms``.

    Virtual-time traces typically have O(1) durations, which render as
    seconds; real traces render in the ns..s range.
    """
    if t < 0:
        return "-" + format_duration(-t)
    if t == 0:
        return "0"
    if t < 1e-6:
        return f"{t * NS_PER_SEC:.0f}ns"
    if t < 1e-3:
        return f"{t * US_PER_SEC:.2f}us"
    if t < 1.0:
        return f"{t * MS_PER_SEC:.2f}ms"
    return f"{t:.3f}s"


def format_percent(fraction: float, digits: int = 2) -> str:
    """Render a 0..1 fraction as a percentage string, e.g. ``39.15%``."""
    return f"{fraction * 100:.{digits}f}%"
