"""Clock sources."""

import pytest

from repro.instrument.clock import MonotonicClock, VirtualClock


def test_monotonic_nondecreasing():
    clock = MonotonicClock()
    readings = [clock.now_ns() for _ in range(100)]
    assert readings == sorted(readings)


def test_virtual_clock_manual_advance():
    clock = VirtualClock(start_ns=100)
    assert clock.now_ns() == 100
    assert clock.advance(50) == 150
    assert clock.now_ns() == 150


def test_virtual_clock_rejects_backwards():
    clock = VirtualClock()
    with pytest.raises(ValueError, match="backwards"):
        clock.advance(-1)
