"""Per-thread lock attribution."""

import pytest

from repro.core.analyzer import analyze
from repro.core.attribution import attribute_lock
from repro.workloads import Radiosity

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


def test_l2_spread_evenly(micro_analysis):
    att = attribute_lock(micro_analysis, "L2")
    assert len(att.shares) == 4
    for s in att.shares:
        assert s.invocations == 1
        assert s.invocations_on_cp == 1
        assert s.cp_hold_time == pytest.approx(2.5)
    assert att.total_cp_hold == pytest.approx(10.0)
    assert att.concentration() == pytest.approx(0.25)


def test_l1_concentrated_on_worker0(micro_analysis):
    att = attribute_lock(micro_analysis, "L1")
    assert att.dominant_thread().thread_name == "worker-0"
    assert att.concentration() == pytest.approx(1.0)  # only T0's hold on CP
    on_cp = [s.invocations_on_cp for s in att.shares]
    assert sorted(on_cp) == [0, 0, 0, 1]


def test_sums_match_lock_metrics(micro_analysis):
    for name in ("L1", "L2"):
        att = attribute_lock(micro_analysis, name)
        m = micro_analysis.report.lock(name)
        assert att.total_cp_hold == pytest.approx(m.cp_hold_time)
        assert sum(s.invocations_on_cp for s in att.shares) == m.invocations_on_cp
        assert sum(s.invocations for s in att.shares) == m.total_invocations


def test_radiosity_master_queue_spread():
    analysis = analyze(Radiosity(total_tasks=80, iterations=1).run(nthreads=4, seed=1).trace)
    att = attribute_lock(analysis, "tq[0].qlock")
    # Every worker touches the master queue.
    assert len(att.shares) == 4
    assert att.total_cp_hold == pytest.approx(
        analysis.report.lock("tq[0].qlock").cp_hold_time
    )


def test_render(micro_analysis):
    text = attribute_lock(micro_analysis, "L2").render()
    assert "Per-thread attribution" in text
    assert "worker-3" in text
