"""Eyerman-Eeckhout model: formula, fitting, validation vs simulator."""

import pytest

from repro.core.analyzer import analyze
from repro.core.eyerman import CriticalSectionModel, eyerman_speedup, fit_model
from repro.errors import AnalysisError
from repro.workloads import SyntheticLocks


class TestFormula:
    def test_amdahl_limits(self):
        # No critical sections: perfect scaling.
        assert eyerman_speedup(0.0, 0.0, 8) == pytest.approx(8.0)
        # Fully serialized critical sections: no scaling at all.
        assert eyerman_speedup(1.0, 1.0, 8) == pytest.approx(1.0)

    def test_uncontended_critical_sections_scale(self):
        # p_ctn = 0: critical sections parallelize like everything else.
        assert eyerman_speedup(0.5, 0.0, 16) == pytest.approx(16.0)

    def test_classic_amdahl_reduction(self):
        # f_seq plays the standard Amdahl role.
        assert eyerman_speedup(0.0, 0.0, 4, f_seq=0.5) == pytest.approx(1 / (0.5 / 4 + 0.5))

    def test_monotone_in_n(self):
        s = [eyerman_speedup(0.3, 0.5, n) for n in (1, 2, 4, 8, 16)]
        assert s == sorted(s)
        assert s[0] == pytest.approx(1.0)

    def test_ceiling(self):
        m = CriticalSectionModel(f_crit=0.25, p_ctn=0.8, nthreads=8)
        assert m.speedup_ceiling() == pytest.approx(1 / 0.2)
        assert m.speedup(10_000) == pytest.approx(m.speedup_ceiling(), rel=1e-2)

    def test_uncontended_ceiling_unbounded(self):
        m = CriticalSectionModel(f_crit=0.25, p_ctn=0.0, nthreads=8)
        assert m.speedup_ceiling() == float("inf")
        assert "unbounded" in str(m)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(f_crit=-0.1, p_ctn=0.5, n=4),
            dict(f_crit=1.1, p_ctn=0.5, n=4),
            dict(f_crit=0.5, p_ctn=2.0, n=4),
            dict(f_crit=0.5, p_ctn=0.5, n=0),
            dict(f_crit=0.5, p_ctn=0.5, n=4, f_seq=0.6),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(AnalysisError):
            eyerman_speedup(**kwargs)


class TestFitting:
    def test_fit_from_synthetic(self):
        res = SyntheticLocks(ops_per_thread=60, cs_cost=0.1, noncrit_cost=0.3).run(
            nthreads=8, seed=4
        )
        analysis = analyze(res.trace)
        model = fit_model(analysis)
        assert 0 < model.f_crit < 1
        assert 0 <= model.p_ctn <= 1
        assert model.nthreads == 8

    def test_model_bounds_measured_scaling(self):
        """The contended-CS ceiling must not be exceeded by real scaling."""
        wl = SyntheticLocks(ops_per_thread=40, cs_cost=0.2, noncrit_cost=0.2,
                            nlocks=1, zipf_skew=0.0)
        t1 = wl.run(nthreads=1, seed=4).completion_time
        t16 = wl.run(nthreads=16, seed=4).completion_time
        measured = t1 / t16
        model = fit_model(analyze(wl.run(nthreads=16, seed=4).trace))
        # The dominant-lock serialization bound: measured scaling cannot
        # beat the ceiling by more than fitting noise.
        assert measured <= model.speedup_ceiling() * 1.25

    def test_fit_no_locks(self):
        from repro.sim import Program

        prog = Program()
        prog.spawn(lambda env: (yield env.compute(1.0)))
        analysis = analyze(prog.run().trace)
        model = fit_model(analysis)
        assert model.f_crit == 0.0
        assert model.p_ctn == 0.0
