"""Vectorized batch kernel for :class:`repro.core.online.OnlineAnalyzer`.

``observe_batch`` used to replay each lock-verb row through
``observe()`` one ``Event`` object at a time; this module consumes a
whole record batch per lock with the same array primitives as the
offline columnar engine, carrying the tiny per-lock dict state
(pending acquires, open holds, last release, running chain) across
batches so a chunked stream produces the same counters as event-at-a-
time feeding.

The chain heuristic exploits that holds are non-negative: between two
chain resets the running chain only grows, so the segment's maximum is
its final value — one grouped sum per reset segment instead of a
running max per release.
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar.ops import latest_prior
from repro.trace.events import EventType

__all__ = ["consume_lock_batch"]

_ACQUIRE = int(EventType.ACQUIRE)
_OBTAIN = int(EventType.OBTAIN)
_RELEASE = int(EventType.RELEASE)


def _batch_sum(values: np.ndarray) -> float:
    return float(np.cumsum(values)[-1]) if len(values) else 0.0


def _slot_batch(
    pos: np.ndarray,
    tid: np.ndarray,
    time: np.ndarray,
    setters: np.ndarray,
    getters: np.ndarray,
    carry: dict[int, float],
) -> np.ndarray:
    """Replay a per-tid pop-on-get slot dict over one lock's rows.

    Returns each getter's popped value (default: its own time).  A
    getter sees an in-batch setter iff the latest prior setter of its
    tid is more recent than the latest prior getter (getters always
    pop); with neither in the batch, the slot still holds whatever
    ``carry`` brought in from earlier batches.  ``carry`` is updated in
    place to the post-batch slot state.
    """
    values = time[getters].copy()
    if len(getters) == 0:
        # No pops: in-batch setters still land in the carried slots.
        for p in setters:
            carry[int(tid[p])] = float(time[p])
        return values
    # latest_prior returns row *positions* (elements of its marker_pos
    # argument), -1 where no prior marker exists.
    if len(setters):
        s_pos = latest_prior(setters, tid[setters], getters, tid[getters])
    else:
        s_pos = np.full(len(getters), -1, dtype=np.int64)
    g_pos = latest_prior(getters, tid[getters], getters, tid[getters])
    from_batch = s_pos > g_pos  # -1 sentinels make the comparison safe
    if np.any(from_batch):
        values[from_batch] = time[s_pos[from_batch]]
    for q in np.flatnonzero((s_pos < 0) & (g_pos < 0)):
        got = carry.get(int(tid[getters[q]]))
        if got is not None:
            values[q] = got

    # Post-batch slot state per tid: the last setter survives iff no
    # getter follows it; any getter at all empties the slot first.
    last_set: dict[int, float] = {}
    last_set_pos: dict[int, int] = {}
    for p in setters:
        last_set[int(tid[p])] = float(time[p])
        last_set_pos[int(tid[p])] = int(p)
    for p in getters:
        t = int(tid[p])
        if last_set_pos.get(t, -1) < int(p):
            carry.pop(t, None)
            last_set.pop(t, None)
            last_set_pos.pop(t, None)
    carry.update(last_set)
    return values


def consume_lock_batch(ls, etype, tid, time, arg) -> None:
    """Feed one lock's rows (batch order) into its ``OnlineLockStats``.

    Bit-for-bit counter parity with ``observe()`` (invocations,
    contended); float accumulators land within summation-reorder noise.
    """
    n = len(etype)
    pos = np.arange(n, dtype=np.int64)
    tid = tid.astype(np.int64)
    acquires = pos[etype == _ACQUIRE]
    obtains = pos[etype == _OBTAIN]
    releases = pos[etype == _RELEASE]

    acq_vals = _slot_batch(pos, tid, time, acquires, obtains, ls._pending_acquire)
    start_vals = _slot_batch(pos, tid, time, obtains, releases, ls._obtain_time)

    contended = arg[obtains] != 0
    ls.invocations += len(obtains)
    ls.contended += int(np.count_nonzero(contended))
    ls.wait_time += _batch_sum(time[obtains][contended] - acq_vals[contended])

    holds = time[releases] - start_vals
    ls.hold_time += _batch_sum(holds)

    # Chain resets: uncontended OBTAIN at or after the last RELEASE seen
    # (in-batch latest prior release, else the carried one).
    unc = obtains[~contended]
    if len(unc) and len(releases):
        prev = np.searchsorted(releases, unc) - 1
        prev_rel = np.where(
            prev >= 0, time[releases[np.maximum(prev, 0)]], ls._last_release
        )
        resets = unc[time[unc] >= prev_rel]
    elif len(unc):
        resets = unc[time[unc] >= ls._last_release]
    else:
        resets = unc
    if len(releases):
        csum = np.cumsum(holds)
        # Segment boundaries: number of releases before each reset.
        k = np.searchsorted(releases, resets)
        bounds = np.concatenate(([0], k, [len(releases)]))
        for j in range(len(bounds) - 1):
            lo, hi = int(bounds[j]), int(bounds[j + 1])
            if hi <= lo:
                continue
            seg = float(csum[hi - 1]) - (float(csum[lo - 1]) if lo else 0.0)
            base = ls.chain_time if j == 0 else 0.0
            ls.max_chain_time = max(ls.max_chain_time, base + seg)
        last_lo = int(bounds[-2])
        tail = float(csum[-1]) - (float(csum[last_lo - 1]) if last_lo else 0.0)
        ls.chain_time = (ls.chain_time if len(resets) == 0 else 0.0) + tail
        ls._last_release = float(time[releases[-1]])
    elif len(resets):
        ls.chain_time = 0.0
