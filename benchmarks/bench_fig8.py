"""Paper Fig. 8: the two most critical locks across all seven applications.

Regenerates the per-application CP Time % vs Wait Time % comparison at
24 threads (OpenLDAP at 16).  Shape assertions follow the paper's
findings: Wait Time underestimates Radiosity's tq[0].qlock, Raytrace's
mem and TSP's Qlock; UTS's stack locks are near-zero wait yet on the
path; OpenLDAP shows no bottleneck.
"""

import pytest

from repro.experiments import fig8

from conftest import run_once


@pytest.mark.benchmark(group="fig8")
def test_fig8(benchmark, show):
    result = run_once(benchmark, fig8.run, nthreads=24)
    show(result.render())
    v = result.values

    def top(app):
        name = max(v[app], key=lambda k: v[app][k]["cp_fraction"])
        return name, v[app][name]

    # Radiosity: tq[0].qlock dominant, CP Time >> Wait Time.
    name, m = top("radiosity")
    assert name == "tq[0].qlock"
    assert m["cp_fraction"] > 0.25
    assert m["cp_fraction"] > 2 * m["wait_fraction"]

    # TSP: Qlock dominates the critical path (paper ~68%).
    name, m = top("tsp")
    assert name == "Q.qlock"
    assert m["cp_fraction"] > 0.4
    assert m["cp_fraction"] > 2 * m["wait_fraction"]

    # Raytrace: mem lock underestimated by wait time.
    name, m = top("raytrace")
    assert name == "mem"
    assert m["cp_fraction"] > m["wait_fraction"]

    # UTS: a stackLock on the path despite negligible wait (paper ~5%).
    name, m = top("uts")
    assert name.startswith("stackLock")
    assert m["cp_fraction"] > 0.02
    assert m["wait_fraction"] < 0.05

    # Water & Volrend: no dominant lock bottleneck.
    for app in ("water-nsquared", "volrend"):
        _, m = top(app)
        assert m["cp_fraction"] < 0.12

    # OpenLDAP: the mature-code negative result.
    _, m = top("openldap")
    assert m["cp_fraction"] < 0.05
