"""Service throughput benchmark: worker-pool fan-out and cache warmth.

Measures three ways of answering "analyze these N traces":

serial     in-process ``analyze(read_trace(p))`` per trace, one at a time
pool       submitted to a running service with worker processes
warm       the identical jobs resubmitted — every one a cache hit

Acceptance targets (ISSUE 1): with N >= 4 traces the pool beats serial
by >= 2x (requires >= 2 usable cores — asserted only then, reported
always), and the warm repeat beats its own cold run by >= 10x.

Run standalone (``PYTHONPATH=src python benchmarks/bench_service.py``)
or via pytest (``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.analyzer import analyze
from repro.service import ServiceAPI
from repro.trace.reader import read_trace
from repro.workloads import SyntheticLocks

N_TRACES = 8
WORKLOAD = dict(nlocks=8, ops_per_thread=300, zipf_skew=1.1)
NTHREADS = 8


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def make_traces(out_dir: Path, n: int = N_TRACES) -> list[Path]:
    """n distinct synthetic traces (different seeds => different digests)."""
    paths = []
    for seed in range(n):
        result = SyntheticLocks(**WORKLOAD).run(nthreads=NTHREADS, seed=seed)
        path = out_dir / f"synthetic-{seed}.clt"
        from repro.trace.writer import write_trace

        write_trace(result.trace, path)
        paths.append(path)
    return paths


def run_benchmark(data_dir: Path, n_traces: int = N_TRACES) -> dict:
    trace_dir = data_dir / "traces-in"
    trace_dir.mkdir(parents=True)
    paths = make_traces(trace_dir, n_traces)
    workers = max(2, min(4, usable_cores()))

    # -- serial baseline ----------------------------------------------------
    t0 = time.perf_counter()
    for path in paths:
        analyze(read_trace(path), validate=False)
    t_serial = time.perf_counter() - t0

    with ServiceAPI(data_dir / "svc", workers=workers) as api:
        digests = [api.store.put_file(p).digest for p in paths]
        params = {"validate": False}

        def run_all() -> float:
            t0 = time.perf_counter()
            ids = [
                api.submit_job({"kind": "analyze", "trace": d, "params": params})["id"]
                for d in digests
            ]
            for job_id in ids:
                out = api.wait(job_id, timeout=600)
                assert out["state"] == "done", out
            return time.perf_counter() - t0

        t_pool = run_all()   # cold: fans out across worker processes
        t_warm = run_all()   # warm: every job short-circuits on the cache
        cache_stats = api.cache.stats()

    return {
        "n_traces": n_traces,
        "workers": workers,
        "cores": usable_cores(),
        "serial_s": t_serial,
        "pool_s": t_pool,
        "warm_s": t_warm,
        "pool_speedup": t_serial / t_pool,
        "warm_speedup": t_pool / t_warm,
        "cache_hits": cache_stats["hits"],
    }


def render(r: dict) -> str:
    lines = [
        f"service benchmark: {r['n_traces']} traces, {r['workers']} workers, "
        f"{r['cores']} usable core(s)",
        f"  serial in-process : {r['serial_s']:8.3f} s",
        f"  pool (cold)       : {r['pool_s']:8.3f} s   "
        f"({r['pool_speedup']:.2f}x vs serial)",
        f"  pool (warm cache) : {r['warm_s']:8.3f} s   "
        f"({r['warm_speedup']:.1f}x vs cold, {r['cache_hits']} hits)",
    ]
    if r["cores"] < 2:
        lines.append(
            "  note: <2 usable cores — parallel speedup is not achievable "
            "on this machine; the >=2x criterion applies on multi-core hosts"
        )
    return "\n".join(lines)


def check(r: dict) -> None:
    assert r["cache_hits"] >= r["n_traces"]
    assert r["warm_speedup"] >= 10.0, f"warm cache only {r['warm_speedup']:.1f}x"
    if r["cores"] >= 2:
        assert r["pool_speedup"] >= 2.0, f"pool only {r['pool_speedup']:.2f}x"


def test_service_throughput(tmp_path, show):
    result = run_benchmark(tmp_path)
    show(render(result))
    check(result)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run_benchmark(Path(tmp))
    print(render(result))
    check(result)
    print("ok")
