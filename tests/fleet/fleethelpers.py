"""Shared fleet-test helpers: synthetic reports and seeded aggregators."""

from __future__ import annotations

from repro.fleet import FleetAggregator


def synth_report(
    locks: dict[str, float],
    name: str = "synthetic",
    duration: float = 10.0,
    nthreads: int = 4,
) -> dict:
    """A minimal ``analyze(...).report.to_dict()`` lookalike."""
    return {
        "name": name,
        "nthreads": nthreads,
        "duration": duration,
        "locks": {
            lock: {
                "cp_time_frac": cp,
                "cont_prob_on_cp": min(1.0, cp + 0.1),
                "wait_time_frac": cp / 2,
            }
            for lock, cp in locks.items()
        },
    }


def seeded_aggregator(
    state_dir,
    runs: int = 5,
    jitter: float = 0.002,
    locks: dict[str, float] | None = None,
    workload: str = "micro",
) -> FleetAggregator:
    """Aggregator holding ``runs`` near-identical observations."""
    locks = locks or {"L2": 0.8, "L1": 0.2}
    agg = FleetAggregator(state_dir)
    for i in range(runs):
        jittered = {
            name: cp + jitter * (i % 3 - 1) for name, cp in locks.items()
        }
        agg.observe(
            synth_report(jittered, name=workload),
            digest=f"run-{i}",
            workload=workload,
            ts=float(i),
        )
    return agg
