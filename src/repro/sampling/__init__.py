"""Sampling capture and its statistical cross-validation.

The capture side (:mod:`repro.sampling.sampler`) keeps a configurable
fraction of lock invocations — whole ACQUIRE/OBTAIN/RELEASE units, with
the blocking chain always intact — and stamps the trace with a sampling
metadata header.  The analysis side lives in :mod:`repro.core.estimate`
(inverse-probability weighting + bootstrap confidence intervals); the
harness in :mod:`repro.sampling.crossval` proves the pair honest against
the exact engine, and powers the ``sample-coverage`` oracle invariant
and the golden cross-validation tests.  See ``docs/sampling.md``.
"""

from repro.sampling.crossval import (
    CrossValidation,
    LockCoverage,
    RateValidation,
    cross_validate,
)
from repro.sampling.sampler import (
    SAMPLING_STRATEGY,
    EventSampler,
    downsample_trace,
    sample_mask,
    sampling_meta,
    trace_sample_rate,
    unit_hash,
)

__all__ = [
    "SAMPLING_STRATEGY",
    "CrossValidation",
    "EventSampler",
    "LockCoverage",
    "RateValidation",
    "cross_validate",
    "downsample_trace",
    "sample_mask",
    "sampling_meta",
    "trace_sample_rate",
    "unit_hash",
]
