"""Tool scaling benchmarks: simulator and analyzer cost vs input size.

Not a paper figure — tracks how the tool itself scales so regressions
in the O(n)-ish paths (event loop, timeline construction, backward
walk) are caught.  The paper's instrumentation overhead claim (~5% at
24 threads) has its analog here: tracing cost per event is constant.
"""

import pytest

from repro.core.analyzer import analyze
from repro.tables import format_table
from repro.workloads import SyntheticLocks

from conftest import run_once


@pytest.mark.benchmark(group="scale")
def test_simulator_scaling_with_threads(benchmark, show):
    """Events/second as thread count grows (fixed per-thread script)."""

    def experiment():
        rows = []
        rates = {}
        import time

        for n in (4, 8, 16, 32):
            wl = SyntheticLocks(ops_per_thread=120, nlocks=8)
            t0 = time.perf_counter()
            res = wl.run(nthreads=n, seed=1)
            dt = time.perf_counter() - t0
            rates[n] = len(res.trace) / dt
            rows.append([n, len(res.trace), f"{dt * 1000:.0f}ms", f"{rates[n]:,.0f}"])
        return rows, rates

    rows, rates = run_once(benchmark, experiment)
    show(format_table(
        ["Threads", "Events", "Sim wall time", "Events/sec"],
        rows,
        title="[scale] simulator throughput vs thread count",
    ))
    # Per-event cost must stay roughly flat: no superlinear blowup.
    assert rates[32] > rates[4] / 5


@pytest.mark.benchmark(group="scale")
def test_analysis_scaling_with_events(benchmark, show):
    """Analysis wall time vs trace size (expect ~linear)."""

    def experiment():
        import time

        rows = []
        per_event = {}
        for ops in (50, 200, 800):
            trace = SyntheticLocks(ops_per_thread=ops, nlocks=8).run(
                nthreads=8, seed=1
            ).trace
            t0 = time.perf_counter()
            analyze(trace)
            dt = time.perf_counter() - t0
            per_event[ops] = dt / len(trace)
            rows.append(
                [len(trace), f"{dt * 1000:.0f}ms", f"{per_event[ops] * 1e6:.1f}us"]
            )
        return rows, per_event

    rows, per_event = run_once(benchmark, experiment)
    show(format_table(
        ["Events", "Analysis time", "Per event"],
        rows,
        title="[scale] analysis cost vs trace size",
    ))
    # Near-linear: per-event cost within 4x across a 16x size range.
    assert per_event[800] < per_event[50] * 4
