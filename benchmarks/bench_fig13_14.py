"""Paper Figs. 13 & 14: quantification of the optimized Radiosity.

After the two-lock-queue optimization at 24 threads the new top lock is
tq[0].q_head_lock with a much smaller CP share than tq[0].qlock had
(paper: 2.53% vs 39.15%) and lower on-path contention (53.62% vs
78.69%).
"""

import pytest

from repro.experiments import fig10_11, fig13_14

from conftest import run_once


@pytest.mark.benchmark(group="fig13_14")
def test_fig13_14(benchmark, show):
    optimized = run_once(benchmark, fig13_14.run, nthreads=24, seed=0)
    show(optimized.render())
    baseline = fig10_11.run(nthreads=24, seed=0)

    f13 = optimized.values["fig13"]
    f14 = optimized.values["fig14"]
    b11 = baseline.values["fig11"]

    top_name = max(f13, key=lambda k: f13[k]["cp_fraction"])
    assert top_name == "tq[0].q_head_lock"

    # The optimized top lock's CP share is far below the original
    # tq[0].qlock share (paper: 2.53% vs 39.15%).
    assert f13[top_name]["cp_fraction"] < 0.8 * b11["tq[0].qlock"]["cp_fraction"]

    # Contention on the path drops relative to the original lock.
    b10 = baseline.values["fig10"]
    assert (
        f14[top_name]["cont_prob_on_cp"] <= b10["tq[0].qlock"]["cont_prob_on_cp"]
    )
