"""Idleness-blame analysis — the prior-art baseline (paper refs [6,7,23,26]).

The methods the paper argues against rank locks by the idle time they
cause; Tallent et al. [26] additionally *attribute* each waiter's idle
time to the thread holding the lock at that moment ("blame shifting").
This module implements that baseline faithfully so the paper's
comparison can be reproduced: for every blocked interval on a lock, the
waiting time is charged to the lock and to its current holder.

Rankings from this module are exactly the TYPE 2 "Wait Time" view —
useful, but (the paper's point) unreliable: see ``bench_baseline.py``
for the cases where it picks the wrong lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import AnalysisResult
from repro.core.model import WaitKind
from repro.tables import format_table
from repro.units import format_duration, format_percent

__all__ = ["BlameReport", "LockBlame", "compute_blame"]


@dataclass(frozen=True)
class LockBlame:
    """Idleness caused by one lock, attributed to its holders."""

    obj: int
    name: str
    total_idle: float  # summed waiting time of all blocked acquirers
    idle_fraction: float  # of total thread lifetime
    holder_blame: dict[int, float]  # tid -> idle time charged while holding

    def top_blamed_holder(self) -> int | None:
        if not self.holder_blame:
            return None
        return max(self.holder_blame, key=self.holder_blame.get)


@dataclass
class BlameReport:
    """The baseline tool's output: locks ranked by caused idleness."""

    locks: list[LockBlame] = field(default_factory=list)  # sorted, most idle first
    total_lifetime: float = 0.0

    def lock(self, name: str) -> LockBlame:
        for lb in self.locks:
            if lb.name == name:
                return lb
        raise KeyError(name)

    def ranking(self) -> list[str]:
        """Lock names, most-blamed first — what the baseline would optimize."""
        return [lb.name for lb in self.locks]

    def render(self, n: int = 10, thread_names: dict[int, str] | None = None) -> str:
        rows = []
        for lb in self.locks[:n]:
            top = lb.top_blamed_holder()
            top_name = (
                "-"
                if top is None
                else (thread_names or {}).get(top, f"T{top}")
            )
            rows.append(
                [
                    lb.name,
                    format_duration(lb.total_idle),
                    format_percent(lb.idle_fraction),
                    top_name,
                ]
            )
        return format_table(
            ["Lock", "Caused idleness", "Idle %", "Most-blamed holder"],
            rows,
            title="Idleness-blame ranking (prior-art baseline, refs [6,7,23,26])",
        )


def compute_blame(analysis: AnalysisResult) -> BlameReport:
    """Attribute every lock wait to the lock and the thread that held it."""
    total_lifetime = sum(tl.lifetime for tl in analysis.timelines.values())
    idle: dict[int, float] = {}
    holder_blame: dict[int, dict[int, float]] = {}
    for tl in analysis.timelines.values():
        for w in tl.waits:
            if w.kind != WaitKind.LOCK:
                continue
            idle[w.obj] = idle.get(w.obj, 0.0) + w.duration
            # The waker (the releasing thread) is the holder that kept us
            # waiting; charge the idle time to it, per [26].
            holder_blame.setdefault(w.obj, {})
            holder_blame[w.obj][w.waker_tid] = (
                holder_blame[w.obj].get(w.waker_tid, 0.0) + w.duration
            )
    locks = [
        LockBlame(
            obj=obj,
            name=analysis.trace.object_name(obj),
            total_idle=t,
            idle_fraction=t / total_lifetime if total_lifetime > 0 else 0.0,
            holder_blame=holder_blame.get(obj, {}),
        )
        for obj, t in idle.items()
    ]
    # Locks that never caused idleness still exist; include them at zero.
    seen = set(idle)
    for info in analysis.trace.locks:
        if info.obj not in seen:
            locks.append(
                LockBlame(
                    obj=info.obj,
                    name=info.display_name,
                    total_idle=0.0,
                    idle_fraction=0.0,
                    holder_blame={},
                )
            )
    locks.sort(key=lambda lb: lb.total_idle, reverse=True)
    return BlameReport(locks=locks, total_lifetime=total_lifetime)
