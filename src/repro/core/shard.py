"""Sharded critical-path analysis with barrier-cut stitching.

The paper's analysis is a single sequential pass; on multi-phase traces
this module splits the work at *quiescent cut points* (see
:mod:`repro.trace.shard` and ``docs/sharding.md``), runs timeline
construction, waker resolution and the backward walk per shard — in
worker processes for large traces — and stitches the per-shard results
into one :class:`~repro.core.analyzer.AnalysisResult` that is
*bit-identical* to the sequential one:

* per-shard walks either stop at a wait whose waker is the cut anchor
  (``"jump"`` boundary — the sequential walk jumps to exactly that
  anchor, which is where the left shard's walk starts) or fall off the
  anchor thread's shard-local start (``"open"`` boundary — the
  sequential walk has one piece spanning the cut, recovered by merging
  the two boundary pieces);
* per-thread timelines merge by concatenation (shard order is seq
  order, so every list keeps the sequential element order);
* metrics run once, sequentially, over the merged structures and the
  stitched path — identical float summation order, identical report.

Both analysis engines shard: the columnar one (default) merges numpy
columns directly, the object one merges ``ThreadTimeline`` lists.

Anything that cannot be proven to stitch cleanly raises
:class:`~repro.errors.ShardError` and the caller falls back to the
sequential pass; sharding is an optimization, never a semantics change.
The ``shard-equiv`` invariant of ``repro.check`` holds this module to
the bit-identity claim on every fuzzed seed.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.analyzer import AnalysisResult
from repro.core.columnar.metrics import (
    compute_metrics_columnar,
    compute_thread_stats_columnar,
)
from repro.core.columnar.timelines import ColumnarTimelines, build_timelines_columnar
from repro.core.columnar.wakers import ColumnarWakers, resolve_wakers_columnar
from repro.core.columnar.walk import backward_walk_columnar
from repro.core.critical_path import CriticalPath, WalkSegment, backward_walk
from repro.core.metrics import compute_metrics, compute_thread_stats
from repro.core.model import CPPiece, ThreadTimeline
from repro.core.report import AnalysisReport
from repro.core.segments import build_timelines
from repro.core.wakers import WakeInfo, WakerTable, resolve_wakers
from repro.errors import ReproError, ShardError
from repro.trace.shard import CutPoint, find_cuts, select_cuts
from repro.trace.trace import Trace

__all__ = ["PARALLEL_MIN_EVENTS", "analyze_sharded"]

#: Below this many events, process spin-up and pickling dominate any
#: walk-time savings; shards then run inline in the calling process.
PARALLEL_MIN_EVENTS = 20_000


# ---------------------------------------------------------------------------
# Per-shard work (module level: picklable under the spawn start method).
# ---------------------------------------------------------------------------


def _analyze_shard(payload):
    """Resolve wakers, build timelines and walk one shard."""
    records, objects, threads, meta, cut, engine = payload
    sub = Trace(records=records, objects=objects, threads=threads, meta=meta)
    barrier_seed = None
    boundary_arrivals = None
    lo_seq = None
    if cut is not None:
        lo_seq = int(records["seq"][0])
        if cut.barrier is not None:
            anchor = WakeInfo(cut.anchor_tid, cut.anchor_time, cut.anchor_seq)
            barrier_seed = {cut.barrier: anchor}
            boundary_arrivals = {cut.barrier: dict(cut.arrivals)}
    if engine == "columnar":
        cw = resolve_wakers_columnar(sub, barrier_seed=barrier_seed)
        ct = build_timelines_columnar(sub, cw, boundary_arrivals=boundary_arrivals)
        walk = backward_walk_columnar(sub, ct, lo_seq=lo_seq)
        return cw, ct, walk
    wakers = resolve_wakers(sub, barrier_seed=barrier_seed)
    timelines = build_timelines(sub, wakers, boundary_arrivals=boundary_arrivals)
    walk = backward_walk(sub, timelines, lo_seq=lo_seq)
    return wakers, timelines, walk


def _available_cpus() -> int:
    count = getattr(os, "process_cpu_count", None)
    if count is not None:  # Python >= 3.13: affinity-aware by definition
        n = count()
        if n:
            return n
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _use_processes(n_events: int, nshards: int, parallel: bool | None) -> bool:
    if nshards <= 1:
        return False
    if parallel is not None:
        return parallel
    # Daemonic workers (the service pool's) may not spawn children.
    if mp.current_process().daemon:
        return False
    return n_events >= PARALLEL_MIN_EVENTS and _available_cpus() > 1


def _run_shards(payloads: list, jobs: int, parallel: bool | None) -> list:
    n_events = sum(len(p[0]) for p in payloads)
    if not _use_processes(n_events, len(payloads), parallel):
        return [_analyze_shard(p) for p in payloads]
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(payloads)), mp_context=ctx
    ) as pool:
        return list(pool.map(_analyze_shard, payloads))


# ---------------------------------------------------------------------------
# Stitching and merging.
# ---------------------------------------------------------------------------


def _stitch_walks(
    cuts: list[CutPoint], walks: list[WalkSegment]
) -> tuple[list, list, list]:
    """Glue per-shard walk segments into the sequential walk's output."""
    pieces = list(walks[0].pieces)
    junctions = list(walks[0].junctions)
    waits = list(walks[0].waits)
    for cut, walk in zip(cuts, walks[1:], strict=True):
        if not walk.pieces or not pieces:
            raise ShardError(f"empty walk segment at cut position {cut.pos}")
        prev = pieces[-1]
        if prev.tid != cut.anchor_tid or prev.end != cut.anchor_time:
            raise ShardError(
                f"left shard walk ends at T{prev.tid}@{prev.end!r}, "
                f"cut anchor is T{cut.anchor_tid}@{cut.anchor_time!r}"
            )
        if walk.boundary == "jump":
            w = walk.waits[0]
            if w.waker_seq != cut.anchor_seq:
                raise ShardError(
                    f"boundary wait resolves to seq {w.waker_seq}, "
                    f"cut anchor is seq {cut.anchor_seq}"
                )
            pieces += walk.pieces
        else:  # "open": one sequential piece spans the cut
            first = walk.pieces[0]
            if first.tid != cut.anchor_tid or first.start < prev.end:
                raise ShardError(
                    f"open boundary piece T{first.tid}@{first.start!r} does not "
                    f"continue anchor T{cut.anchor_tid}@{prev.end!r}"
                )
            pieces[-1] = CPPiece(tid=prev.tid, start=prev.start, end=first.end)
            pieces += walk.pieces[1:]
        junctions += walk.junctions
        waits += walk.waits
    return pieces, junctions, waits


def _merge_timelines(
    shard_timelines: list[dict[int, ThreadTimeline]],
) -> dict[int, ThreadTimeline]:
    """Concatenate per-shard timelines into whole-trace ones.

    Shard order is seq order, so concatenating preserves the element
    order the sequential builder would have produced — which is what
    keeps every downstream float summation order identical.
    """
    merged: dict[int, ThreadTimeline] = {}
    for timelines in shard_timelines:
        for tid, tl in timelines.items():
            base = merged.get(tid)
            if base is None:
                merged[tid] = ThreadTimeline(
                    tid=tl.tid,
                    name=tl.name,
                    start=tl.start,
                    end=tl.end,
                    creator_tid=tl.creator_tid,
                    create_time=tl.create_time,
                    create_seq=tl.create_seq,
                    waits=list(tl.waits),
                    holds={obj: list(hs) for obj, hs in tl.holds.items()},
                )
                continue
            base.start = min(base.start, tl.start)
            base.end = max(base.end, tl.end)
            if tl.creator_tid is not None:
                base.creator_tid = tl.creator_tid
                base.create_time = tl.create_time
                base.create_seq = tl.create_seq
            base.waits.extend(tl.waits)
            for obj, hs in tl.holds.items():
                base.holds.setdefault(obj, []).extend(hs)
    for tl in merged.values():
        for hold_list in tl.holds.values():
            hold_list.sort(key=lambda h: (h.start, h.end))
        tl.waits.sort(key=lambda w: w.wake_seq)
    return {tid: merged[tid] for tid in sorted(merged)}


def _merge_wakers(shard_wakers: list[WakerTable]) -> WakerTable:
    wakes: dict[int, WakeInfo] = {}
    creations: dict[int, WakeInfo] = {}
    for wt in shard_wakers:
        wakes.update(wt.wakes)
        creations.update(wt.creations)
    return WakerTable(wakes=wakes, creations=creations)


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------


def analyze_sharded(
    trace: Trace,
    jobs: int,
    parallel: bool | None = None,
    strict: bool = False,
    engine: str = "columnar",
) -> AnalysisResult | None:
    """Analyze a trace in up to ``jobs`` shards split at quiescent cuts.

    Returns ``None`` when the trace has no usable cut point, when only
    one CPU is usable (``parallel=None``; sharding cannot pay for its
    own splitting/stitching overhead without concurrency), or (unless
    ``strict``) when any shard or the stitcher failed — the caller then
    runs the sequential pass.  ``parallel`` forces worker processes on
    or off; by default they are used for traces of at least
    :data:`PARALLEL_MIN_EVENTS` events outside daemonic workers.
    ``strict`` is the differential oracle's mode: internal failures
    propagate instead of silently degrading to sequential.
    """
    if len(trace) == 0 or jobs <= 1:
        return None
    if parallel is None and _available_cpus() <= 1:
        return None
    cuts = select_cuts(find_cuts(trace), len(trace), jobs)
    if not cuts:
        return None
    bounds = [0, *(c.pos for c in cuts), len(trace)]
    payloads = [
        (
            trace.records[lo:hi],
            trace.objects,
            trace.threads,
            trace.meta,
            cut,
            engine,
        )
        for lo, hi, cut in zip(bounds, bounds[1:], [None, *cuts])
    ]
    try:
        results = _run_shards(payloads, jobs, parallel)
        if engine == "columnar":
            cw = ColumnarWakers.merge([r[0] for r in results])
            ct = ColumnarTimelines.merge([r[1] for r in results])
        else:
            wakers = _merge_wakers([r[0] for r in results])
            timelines = _merge_timelines([r[1] for r in results])
        pieces, junctions, waits = _stitch_walks(cuts, [r[2] for r in results])
    except ReproError:
        if strict:
            raise
        return None
    cp = CriticalPath(
        pieces=pieces,
        junctions=junctions,
        waits=waits,
        trace_duration=trace.duration,
    )
    if engine == "columnar":
        locks = compute_metrics_columnar(trace, ct, cp)
        threads = compute_thread_stats_columnar(ct, cp)
        nthreads = len(ct.tids)
    else:
        locks = compute_metrics(trace, timelines, cp)
        threads = compute_thread_stats(timelines, cp)
        nthreads = len(timelines)
    report = AnalysisReport(
        name=str(trace.meta.get("name", "")),
        nthreads=nthreads,
        duration=trace.duration,
        cp=cp,
        locks=locks,
        thread_stats=threads,
    )
    if engine == "columnar":
        return AnalysisResult(
            trace=trace,
            critical_path=cp,
            report=report,
            shards=len(results),
            columnar=(cw, ct),
        )
    return AnalysisResult(
        trace=trace,
        critical_path=cp,
        report=report,
        shards=len(results),
        wakers=wakers,
        timelines=timelines,
    )
