"""Cross-checks over every workload at small scale.

For each application: the trace validates, the backward-walk critical
path tiles the execution exactly, and the forward DAG agrees — the
paper's algorithm (Fig. 2) and the independent longest-path formulation
must never diverge on simulator traces.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.dag import build_event_graph
from repro.trace.validate import validate_trace
from repro.workloads import (
    LDAPServer,
    MicroBenchmark,
    Radiosity,
    Raytrace,
    SyntheticLocks,
    TSP,
    UTS,
    Volrend,
    WaterNSquared,
)

SMALL_CONFIGS = [
    (MicroBenchmark(), 4),
    (Radiosity(total_tasks=40, iterations=1), 4),
    (TSP(ncities=7), 4),
    (UTS(root_children=30), 4),
    (WaterNSquared(timesteps=1), 4),
    (Volrend(frames=1, tiles_per_frame=40), 4),
    (Raytrace(bundles_per_thread=5), 4),
    (LDAPServer(requests=80), 4),
    (SyntheticLocks(ops_per_thread=25, barrier_every=8), 4),
]

IDS = [type(wl).__name__ for wl, _ in SMALL_CONFIGS]


@pytest.fixture(scope="module", params=range(len(SMALL_CONFIGS)), ids=IDS)
def workload_run(request):
    wl, n = SMALL_CONFIGS[request.param]
    return wl.run(nthreads=n, seed=11)


def test_trace_validates(workload_run):
    validate_trace(workload_run.trace)


def test_backward_walk_tiles_execution(workload_run):
    analysis = analyze(workload_run.trace)
    cp = analysis.critical_path
    assert cp.coverage_error == pytest.approx(0.0, abs=1e-9)
    assert cp.length == pytest.approx(workload_run.completion_time, abs=1e-9)


def test_dag_agrees(workload_run):
    graph = build_event_graph(workload_run.trace)
    assert graph.completion_time() == pytest.approx(
        workload_run.completion_time, abs=1e-9
    )


def test_lock_fractions_bounded(workload_run):
    analysis = analyze(workload_run.trace)
    assert 0 <= analysis.report.total_cp_lock_fraction <= 1 + 1e-9


def test_serialization_roundtrip(workload_run, tmp_path):
    import numpy as np

    from repro.trace import read_trace, write_trace

    path = write_trace(workload_run.trace, tmp_path / "w.clt")
    loaded = read_trace(path)
    assert np.array_equal(loaded.records, workload_run.trace.records)
    assert analyze(loaded).report.duration == pytest.approx(
        workload_run.completion_time
    )
