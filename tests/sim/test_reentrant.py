"""Reentrant (RLock-style) mutexes in the simulator."""

import pytest

from repro.errors import SyncUsageError
from repro.sim import Program
from repro.trace.events import EventType


def test_nested_acquire_allowed():
    prog = Program()
    m = prog.mutex("rl", reentrant=True)

    def body(env):
        yield env.acquire(m)
        yield env.acquire(m)  # nested: fine
        yield env.compute(1.0)
        yield env.release(m)
        yield env.release(m)

    prog.spawn(body)
    trace = prog.run().trace
    # Only the outermost pair is traced.
    assert trace.count(EventType.ACQUIRE) == 1
    assert trace.count(EventType.RELEASE) == 1


def test_non_reentrant_still_rejects():
    prog = Program()
    m = prog.mutex("plain")

    def body(env):
        yield env.acquire(m)
        yield env.acquire(m)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="re-acquired"):
        prog.run()


def test_inner_release_keeps_ownership():
    prog = Program()
    m = prog.mutex("rl", reentrant=True)
    got_at = []

    def owner(env):
        yield env.acquire(m)
        yield env.acquire(m)
        yield env.release(m)  # inner release: still held
        yield env.compute(2.0)
        yield env.release(m)  # outermost: now handed off

    def waiter(env):
        yield env.compute(0.5)
        yield env.acquire(m)
        got_at.append(env.now)
        yield env.release(m)

    prog.spawn(owner)
    prog.spawn(waiter)
    prog.run()
    assert got_at == [2.0]


def test_try_acquire_reentrant():
    prog = Program()
    m = prog.mutex("rl", reentrant=True)

    def body(env):
        assert (yield env.try_acquire(m))
        assert (yield env.try_acquire(m))  # nested try succeeds
        yield env.release(m)
        yield env.release(m)

    prog.spawn(body)
    prog.run()


def test_cond_wait_with_recursive_hold_rejected():
    prog = Program()
    m = prog.mutex("rl", reentrant=True)
    cv = prog.condition("cv")

    def body(env):
        yield env.acquire(m)
        yield env.acquire(m)
        yield env.cond_wait(cv, m)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="recursively"):
        prog.run()


def test_hold_interval_spans_outermost():
    from repro.core.analyzer import analyze

    prog = Program()
    m = prog.mutex("rl", reentrant=True)

    def body(env):
        yield env.compute(1.0)
        yield env.acquire(m)
        yield env.compute(0.5)
        yield env.acquire(m)
        yield env.compute(0.5)
        yield env.release(m)
        yield env.compute(0.5)
        yield env.release(m)

    prog.spawn(body)
    analysis = analyze(prog.run().trace)
    assert analysis.report.lock("rl").total_hold_time == pytest.approx(1.5)
    assert analysis.report.lock("rl").total_invocations == 1
