"""High-level entry point for building simulated programs.

:class:`Program` is the user-facing façade over
:class:`repro.sim.engine.Simulator`: create synchronization objects, spawn
root threads, ``run()``.  It adds conveniences that workloads share, like
spawning a homogeneous worker pool.
"""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Simulator, SimResult
from repro.sim.thread import ThreadBody, ThreadHandle

__all__ = ["Program"]


class Program(Simulator):
    """A simulated multithreaded program.

    Parameters
    ----------
    cores:
        Number of simulated cores; ``None`` (default) means "at least as
        many cores as threads", matching the paper's experimental setup
        which never oversubscribes hardware threads.
    seed:
        Master seed for all per-thread RNG streams; two runs with the same
        seed produce bit-identical traces.
    name:
        Recorded in the trace metadata.
    """

    def spawn_workers(
        self,
        n: int,
        fn: ThreadBody,
        *args: Any,
        name_prefix: str = "worker",
    ) -> list[ThreadHandle]:
        """Spawn ``n`` root threads running ``fn(env, worker_index, *args)``."""
        return [
            self.spawn(fn, i, *args, name=f"{name_prefix}-{i}") for i in range(n)
        ]

    def run(self, meta: dict[str, Any] | None = None) -> SimResult:
        """Execute the program to completion (see :class:`SimResult`)."""
        return super().run(meta=meta)
