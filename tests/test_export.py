"""Chrome trace-event export."""

import json

import pytest

from repro.core.analyzer import analyze
from repro.export import to_chrome_trace, write_chrome_trace

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def exported():
    trace = make_micro_program().run().trace
    return trace, to_chrome_trace(trace)


def test_json_serializable(exported):
    _, events = exported
    json.dumps(events)  # no exception


def test_thread_metadata(exported):
    _, events = exported
    names = {
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    }
    assert "worker-0" in names
    assert "CRITICAL PATH" in names


def test_critical_sections_exported(exported):
    _, events = exported
    cs = [e for e in events if e.get("cat") == "critical-section"]
    assert len(cs) == 8  # 4 threads x 2 locks
    l2 = [e for e in cs if e["name"] == "L2"]
    assert all(e["dur"] == pytest.approx(2500.0) for e in l2)  # 2.5 x 1000us


def test_blocked_intervals_exported(exported):
    _, events = exported
    waits = [e for e in events if e.get("cat") == "blocked"]
    assert len(waits) == 6  # 3 contended acquisitions per lock
    assert all("waker" in e["args"] for e in waits)


def test_critical_path_row(exported):
    _, events = exported
    cp = sorted(
        (e for e in events if e.get("cat") == "critical-path"),
        key=lambda e: e["ts"],
    )
    assert len(cp) == 4
    total = sum(e["dur"] for e in cp)
    assert total == pytest.approx(12_000.0)  # 12 time units in us
    # Pieces are contiguous.
    for a, b in zip(cp, cp[1:]):
        assert a["ts"] + a["dur"] == pytest.approx(b["ts"])


def test_write_to_file(tmp_path):
    trace = make_micro_program().run().trace
    path = write_chrome_trace(trace, tmp_path / "out.json")
    events = json.loads(path.read_text())
    assert isinstance(events, list) and events


def test_reuses_given_analysis():
    trace = make_micro_program().run().trace
    analysis = analyze(trace)
    events = to_chrome_trace(trace, analysis)
    assert any(e.get("cat") == "critical-path" for e in events)
