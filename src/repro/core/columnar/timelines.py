"""Columnar timeline construction (array form of :mod:`repro.core.segments`).

The object engine walks each thread's events with five little dicts
(pending acquire/barrier/cond/join slots and per-lock hold stacks).
Here each dict becomes one vectorized pass:

* every "pending X" slot is two :func:`~repro.core.columnar.ops.
  latest_prior` queries — a slot holds a value iff the latest prior
  setter (ACQUIRE, BARRIER_ARRIVE, COND_BLOCK, JOIN_BEGIN) is more
  recent than the latest prior getter (which always pops);
* the per-``(tid, lock)`` hold stacks are one
  :func:`~repro.core.columnar.ops.lifo_match` parenthesis matching;
* waits and holds end up as flat parallel arrays with per-thread /
  per-``(tid, obj)`` group index ranges, and :meth:`ColumnarTimelines.
  to_object` reconstructs the exact object-engine ``ThreadTimeline``
  dict — including the insertion order of ``holds`` keys, which viz and
  export iterate.

A wait with ``duration == 0`` never delayed its thread, so it is
dropped here and in the object engine alike (it must not redirect the
backward walk through a dependency that cost nothing; see
``docs/algorithm.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.columnar.ops import dense_keys, group_bounds, latest_prior, lifo_match
from repro.core.columnar.wakers import ColumnarWakers, resolve_wakers_columnar
from repro.core.model import HoldInterval, ThreadTimeline, Wait, WaitKind
from repro.errors import AnalysisError
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["ColumnarTimelines", "build_timelines_columnar", "WAIT_KIND_CODES"]

#: Wait-kind code (uint8 column value) -> WaitKind, in a fixed order.
WAIT_KIND_CODES: list[WaitKind] = [
    WaitKind.LOCK,
    WaitKind.BARRIER,
    WaitKind.CONDITION,
    WaitKind.JOIN,
]

_ACQUIRE = int(EventType.ACQUIRE)
_OBTAIN = int(EventType.OBTAIN)
_RELEASE = int(EventType.RELEASE)
_ARRIVE = int(EventType.BARRIER_ARRIVE)
_DEPART = int(EventType.BARRIER_DEPART)
_COND_BLOCK = int(EventType.COND_BLOCK)
_COND_WAKE = int(EventType.COND_WAKE)
_JOIN_BEGIN = int(EventType.JOIN_BEGIN)
_JOIN_END = int(EventType.JOIN_END)


def _empty_f8() -> np.ndarray:
    return np.zeros(0, dtype=np.float64)


def _empty_i8() -> np.ndarray:
    return np.zeros(0, dtype=np.int64)


@dataclass
class ColumnarTimelines:
    """Array-of-struct free timelines: waits/holds as parallel columns.

    Waits are sorted by ``(tid, wake_seq)`` (each thread's slice is the
    object engine's ``tl.waits`` order); holds by ``(tid, obj, start,
    end, insertion)`` (each group is ``tl.holds[obj]`` post-sort order).
    """

    # per-thread scalars, aligned with the sorted ``tids`` array
    tids: np.ndarray = field(default_factory=_empty_i8)
    names: list[str] = field(default_factory=list)
    t_start: np.ndarray = field(default_factory=_empty_f8)
    t_end: np.ndarray = field(default_factory=_empty_f8)
    creator_tid: np.ndarray = field(default_factory=_empty_i8)  # -1 = root
    create_time: np.ndarray = field(default_factory=_empty_f8)
    create_seq: np.ndarray = field(default_factory=_empty_i8)
    # waits, sorted by (tid, wake_seq); [wait_lo[i], wait_hi[i]) per tid
    w_tid: np.ndarray = field(default_factory=_empty_i8)
    w_kind: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))
    w_obj: np.ndarray = field(default_factory=_empty_i8)
    w_start: np.ndarray = field(default_factory=_empty_f8)
    w_end: np.ndarray = field(default_factory=_empty_f8)
    w_wake_seq: np.ndarray = field(default_factory=_empty_i8)
    w_waker_tid: np.ndarray = field(default_factory=_empty_i8)
    w_waker_time: np.ndarray = field(default_factory=_empty_f8)
    w_waker_seq: np.ndarray = field(default_factory=_empty_i8)
    wait_lo: np.ndarray = field(default_factory=_empty_i8)
    wait_hi: np.ndarray = field(default_factory=_empty_i8)
    # holds, sorted by (tid, obj, start, end, insertion order)
    h_tid: np.ndarray = field(default_factory=_empty_i8)
    h_obj: np.ndarray = field(default_factory=_empty_i8)
    h_start: np.ndarray = field(default_factory=_empty_f8)
    h_end: np.ndarray = field(default_factory=_empty_f8)
    h_contended: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    h_acquire: np.ndarray = field(default_factory=_empty_f8)
    #: (tid, obj) -> [lo, hi) into the hold arrays
    hold_groups: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    #: tid -> lock objs in the object engine's ``tl.holds`` dict order
    hold_obj_order: dict[int, list[int]] = field(default_factory=dict)
    #: total event count of the underlying trace (walk-guard sizing)
    n_events: int = 0

    def tid_index(self) -> dict[int, int]:
        return {int(t): i for i, t in enumerate(self.tids)}

    @staticmethod
    def merge(parts: list["ColumnarTimelines"]) -> "ColumnarTimelines":
        """Concatenate per-shard timelines (shard order is seq order).

        Mirrors :func:`repro.core.shard._merge_timelines`: spans take the
        min/max, a later shard's creator wins, waits re-sort by
        ``(tid, wake_seq)``, and holds re-sort stably by ``(tid, obj,
        start, end)`` so equal intervals keep shard order — exactly the
        object engine's stable per-lock re-sort.
        """
        ct = ColumnarTimelines(n_events=sum(p.n_events for p in parts))
        span: dict[int, list] = {}
        obj_order: dict[int, list[int]] = {}
        for p in parts:
            for i, t in enumerate(p.tids):
                tid = int(t)
                cur = span.get(tid)
                if cur is None:
                    span[tid] = [
                        p.names[i],
                        float(p.t_start[i]),
                        float(p.t_end[i]),
                        int(p.creator_tid[i]),
                        float(p.create_time[i]),
                        int(p.create_seq[i]),
                    ]
                else:
                    cur[1] = min(cur[1], float(p.t_start[i]))
                    cur[2] = max(cur[2], float(p.t_end[i]))
                    if p.creator_tid[i] >= 0:
                        cur[3] = int(p.creator_tid[i])
                        cur[4] = float(p.create_time[i])
                        cur[5] = int(p.create_seq[i])
            for tid, objs in p.hold_obj_order.items():
                seen = obj_order.setdefault(tid, [])
                for o in objs:
                    if o not in seen:
                        seen.append(o)
        tids = sorted(span)
        ct.tids = np.array(tids, dtype=np.int64)
        ct.names = [span[t][0] for t in tids]
        ct.t_start = np.array([span[t][1] for t in tids], dtype=np.float64)
        ct.t_end = np.array([span[t][2] for t in tids], dtype=np.float64)
        ct.creator_tid = np.array([span[t][3] for t in tids], dtype=np.int64)
        ct.create_time = np.array([span[t][4] for t in tids], dtype=np.float64)
        ct.create_seq = np.array([span[t][5] for t in tids], dtype=np.int64)
        ct.hold_obj_order = obj_order

        for name in (
            "w_tid", "w_kind", "w_obj", "w_start", "w_end", "w_wake_seq",
            "w_waker_tid", "w_waker_time", "w_waker_seq",
        ):
            setattr(ct, name, np.concatenate([getattr(p, name) for p in parts]))
        worder = np.lexsort((ct.w_wake_seq, ct.w_tid))
        for name in (
            "w_tid", "w_kind", "w_obj", "w_start", "w_end", "w_wake_seq",
            "w_waker_tid", "w_waker_time", "w_waker_seq",
        ):
            setattr(ct, name, getattr(ct, name)[worder])
        ct.wait_lo, ct.wait_hi = _spans_for(ct.tids, ct.w_tid)

        for name in ("h_tid", "h_obj", "h_start", "h_end", "h_contended", "h_acquire"):
            setattr(ct, name, np.concatenate([getattr(p, name) for p in parts]))
        horder = np.lexsort((ct.h_end, ct.h_start, ct.h_obj, ct.h_tid))
        for name in ("h_tid", "h_obj", "h_start", "h_end", "h_contended", "h_acquire"):
            setattr(ct, name, getattr(ct, name)[horder])
        ct.hold_groups = {}
        if len(ct.h_tid):
            gkey = dense_keys(ct.h_tid, ct.h_obj)
            starts, _ = group_bounds(gkey)
            bounds = np.append(starts, len(gkey))
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                ct.hold_groups[(int(ct.h_tid[lo]), int(ct.h_obj[lo]))] = (int(lo), int(hi))
        return ct

    # -- materialization ---------------------------------------------------

    def to_object(self) -> dict[int, ThreadTimeline]:
        """Rebuild the exact ``build_timelines`` output (objects)."""
        out: dict[int, ThreadTimeline] = {}
        for i, t in enumerate(self.tids):
            tid = int(t)
            tl = ThreadTimeline(
                tid=tid,
                name=self.names[i],
                start=float(self.t_start[i]),
                end=float(self.t_end[i]),
            )
            if self.creator_tid[i] >= 0:
                tl.creator_tid = int(self.creator_tid[i])
                tl.create_time = float(self.create_time[i])
                tl.create_seq = int(self.create_seq[i])
            lo, hi = int(self.wait_lo[i]), int(self.wait_hi[i])
            tl.waits = [self._wait_at(j) for j in range(lo, hi)]
            for obj in self.hold_obj_order.get(tid, ()):
                glo, ghi = self.hold_groups[(tid, obj)]
                tl.holds[obj] = [self._hold_at(j) for j in range(glo, ghi)]
            out[tid] = tl
        return out

    def _wait_at(self, j: int) -> Wait:
        return Wait(
            tid=int(self.w_tid[j]),
            kind=WAIT_KIND_CODES[self.w_kind[j]],
            obj=int(self.w_obj[j]),
            start=float(self.w_start[j]),
            end=float(self.w_end[j]),
            wake_seq=int(self.w_wake_seq[j]),
            waker_tid=int(self.w_waker_tid[j]),
            waker_time=float(self.w_waker_time[j]),
            waker_seq=int(self.w_waker_seq[j]),
        )

    def _hold_at(self, j: int) -> HoldInterval:
        return HoldInterval(
            tid=int(self.h_tid[j]),
            obj=int(self.h_obj[j]),
            start=float(self.h_start[j]),
            end=float(self.h_end[j]),
            contended=bool(self.h_contended[j]),
            acquire_time=float(self.h_acquire[j]),
        )


def _slot_values(
    pos: np.ndarray,
    key_cols: tuple[np.ndarray, ...],
    time: np.ndarray,
    setter_pos: np.ndarray,
    getter_pos: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dict-slot semantics: for each getter, the latest prior setter's
    time — valid only if no getter popped the slot in between.

    Returns ``(values, valid, prior_getter_pos)``; invalid slots carry
    the getter's own time (the object engine's ``dict.pop`` default).
    """
    packed = dense_keys(*(c[np.concatenate([setter_pos, getter_pos])] for c in key_cols))
    skey, gkey = packed[: len(setter_pos)], packed[len(setter_pos):]
    s = latest_prior(setter_pos, skey, getter_pos, gkey)
    g = latest_prior(getter_pos, gkey, getter_pos, gkey)
    valid = s > g  # s == -1 never wins; a consumed setter (s < g) neither
    values = np.where(valid, time[np.maximum(s, 0)], time[getter_pos])
    return values, valid, g


def build_timelines_columnar(
    trace: Trace,
    wakers: ColumnarWakers | None = None,
    boundary_arrivals: dict[tuple[int, int], dict[int, float]] | None = None,
) -> ColumnarTimelines:
    """Columnar twin of :func:`repro.core.segments.build_timelines`."""
    if wakers is None:
        wakers = resolve_wakers_columnar(trace)
    rec = trace.records
    n = len(rec)
    ct = ColumnarTimelines(n_events=n)
    if n == 0:
        return ct
    etype = rec["etype"]
    tid = rec["tid"].astype(np.int64)
    obj = rec["obj"].astype(np.int64)
    arg = rec["arg"]
    time = rec["time"]
    seq = rec["seq"].astype(np.int64)

    # -- per-thread spans --------------------------------------------------
    order = np.argsort(tid, kind="stable")
    starts, tids = group_bounds(tid[order])
    ends = np.append(starts[1:], n) - 1
    ct.tids = tids
    ct.names = [trace.thread_name(int(t)) for t in tids]
    ct.t_start = time[order[starts]].astype(np.float64)
    ct.t_end = time[order[ends]].astype(np.float64)
    ct.creator_tid = np.full(len(tids), -1, dtype=np.int64)
    ct.create_time = np.zeros(len(tids), dtype=np.float64)
    ct.create_seq = np.full(len(tids), -1, dtype=np.int64)
    tindex = {int(t): i for i, t in enumerate(tids)}
    for child, info in wakers.creations.items():
        i = tindex.get(int(child))
        if i is not None:
            ct.creator_tid[i] = info.waker_tid
            ct.create_time[i] = info.waker_time
            ct.create_seq[i] = info.waker_seq

    # -- pending-slot matching per wait kind -------------------------------
    obtains = np.flatnonzero(etype == _OBTAIN)
    acq_vals, _, _ = _slot_values(
        obtains, (tid, obj), time, np.flatnonzero(etype == _ACQUIRE), obtains
    )

    departs = np.flatnonzero(etype == _DEPART)
    arrive_vals, arrive_valid, dep_prior_pop = _slot_values(
        departs, (tid, obj, arg), time, np.flatnonzero(etype == _ARRIVE), departs
    )
    if boundary_arrivals and len(departs):
        # A seed fills the slot before the thread's first event; it is
        # consumed by the first pop, and an in-trace arrival overrides it.
        for j in np.flatnonzero(~arrive_valid & (dep_prior_pop < 0)):
            p = departs[j]
            per_tid = boundary_arrivals.get((int(obj[p]), int(arg[p])))
            if per_tid is not None and int(tid[p]) in per_tid:
                arrive_vals[j] = per_tid[int(tid[p])]

    cond_wakes = np.flatnonzero(etype == _COND_WAKE)
    block_vals, _, _ = _slot_values(
        cond_wakes, (tid, obj), time, np.flatnonzero(etype == _COND_BLOCK), cond_wakes
    )

    join_ends = np.flatnonzero(etype == _JOIN_END)
    begin_vals, _, _ = _slot_values(
        join_ends, (tid, arg), time, np.flatnonzero(etype == _JOIN_BEGIN), join_ends
    )

    # -- wait rows ---------------------------------------------------------
    contended = arg[obtains] != 0
    lock_q = obtains[contended]
    parts = [
        (lock_q, np.uint8(0), obj[lock_q], acq_vals[contended]),
        (departs, np.uint8(1), obj[departs], arrive_vals),
        (cond_wakes, np.uint8(2), obj[cond_wakes], block_vals),
        (join_ends, np.uint8(3), arg[join_ends].astype(np.int64), begin_vals),
    ]
    w_pos = np.concatenate([p[0] for p in parts])
    w_kind = np.concatenate([np.full(len(p[0]), p[1], dtype=np.uint8) for p in parts])
    w_obj = np.concatenate([np.asarray(p[2], dtype=np.int64) for p in parts])
    w_start = np.concatenate([np.asarray(p[3], dtype=np.float64) for p in parts])
    w_end = time[w_pos].astype(np.float64)
    # Zero-duration waits never delayed the thread: drop them (both
    # engines; see module docstring).
    keep = w_end > w_start
    w_pos, w_kind, w_obj, w_start, w_end = (
        a[keep] for a in (w_pos, w_kind, w_obj, w_start, w_end)
    )
    worder = np.lexsort((w_pos, tid[w_pos]))
    w_pos = w_pos[worder]
    ct.w_tid = tid[w_pos]
    ct.w_kind = w_kind[worder]
    ct.w_obj = w_obj[worder]
    ct.w_start = w_start[worder]
    ct.w_end = w_end[worder]
    ct.w_wake_seq = seq[w_pos]
    ct.w_waker_tid = wakers.waker_tid[w_pos]
    ct.w_waker_time = wakers.waker_time[w_pos]
    ct.w_waker_seq = wakers.waker_seq[w_pos]
    ct.wait_lo, ct.wait_hi = _spans_for(tids, ct.w_tid)

    # -- holds: LIFO matching per (tid, lock) ------------------------------
    releases = np.flatnonzero(etype == _RELEASE)
    no = len(obtains)
    all_pos = np.concatenate([obtains, releases])
    close_for_open, open_for_close = lifo_match(
        all_pos,
        dense_keys(tid[all_pos], obj[all_pos]),
        np.concatenate([np.ones(no, dtype=bool), np.zeros(len(releases), dtype=bool)]),
    )
    bad = np.flatnonzero(open_for_close[no:] < 0)
    if len(bad):
        # The object engine scans threads in sorted-tid order and raises
        # at the first bad RELEASE it meets.
        bpos = releases[bad]
        k = np.lexsort((bpos, tid[bpos]))[0]
        p = bpos[k]
        raise AnalysisError(
            f"seq {int(seq[p])}: T{int(tid[p])} RELEASE on "
            f"{trace.object_name(int(obj[p]))} without OBTAIN"
        )
    matched = close_for_open[:no] >= 0
    m_open = obtains[matched]
    m_close = all_pos[close_for_open[:no][matched]]
    u_open = obtains[~matched]
    tid_end = ct.t_end[np.searchsorted(tids, tid[u_open])] if len(u_open) else _empty_f8()
    h_pos_open = np.concatenate([m_open, u_open])
    h_start = time[h_pos_open].astype(np.float64)
    h_end = np.concatenate([time[m_close].astype(np.float64), tid_end])
    # Insertion rank: matched holds are appended at their RELEASE, the
    # leftovers after the event loop — ranks n + obtain pos sort last.
    h_rank = np.concatenate([m_close, u_open + n])
    h_acq = np.concatenate([acq_vals[matched], acq_vals[~matched]])
    h_tid = tid[h_pos_open]
    h_obj = obj[h_pos_open]
    h_cont = arg[h_pos_open] != 0
    horder = np.lexsort((h_rank, h_end, h_start, h_obj, h_tid))
    ct.h_tid = h_tid[horder]
    ct.h_obj = h_obj[horder]
    ct.h_start = h_start[horder]
    ct.h_end = h_end[horder]
    ct.h_contended = h_cont[horder]
    ct.h_acquire = h_acq[horder]
    _index_hold_groups(ct, h_rank[horder], n)
    return ct


def _spans_for(tids: np.ndarray, sorted_item_tid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-tid [lo, hi) ranges into an array sorted by tid."""
    lo = np.searchsorted(sorted_item_tid, tids, side="left")
    hi = np.searchsorted(sorted_item_tid, tids, side="right")
    return lo.astype(np.int64), hi.astype(np.int64)


def _index_hold_groups(ct: ColumnarTimelines, sorted_rank: np.ndarray, n: int) -> None:
    """Build (tid, obj) group ranges and the ``tl.holds`` dict key order.

    The object engine inserts a lock into ``tl.holds`` at its first
    RELEASE (``setdefault``) and appends leftover-only locks afterwards
    in first-OBTAIN order — reproduced via each group's minimum
    insertion rank, split on matched (< n) vs leftover (>= n) ranks.
    """
    ct.hold_groups = {}
    ct.hold_obj_order = {}
    if len(ct.h_tid) == 0:
        return
    gkey = dense_keys(ct.h_tid, ct.h_obj)
    starts, _ = group_bounds(gkey)
    bounds = np.append(starts, len(gkey))
    order_keys: dict[int, list[tuple[int, int, int]]] = {}
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        t, o = int(ct.h_tid[lo]), int(ct.h_obj[lo])
        ct.hold_groups[(t, o)] = (int(lo), int(hi))
        ranks = sorted_rank[lo:hi]
        matched = ranks[ranks < n]
        if len(matched):
            key = (0, int(matched.min()))
        else:
            key = (1, int(ranks.min()) - n)
        order_keys.setdefault(t, []).append((key[0], key[1], o))
    for t, entries in order_keys.items():
        ct.hold_obj_order[t] = [o for _, _, o in sorted(entries)]
