"""Storage-backend throughput and restart-durability benchmark.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_backend.py --quick
    PYTHONPATH=src python benchmarks/bench_backend.py --json backend.json

Three claims, measured and asserted:

1. **Object-backend throughput** — raw put/get of trace-sized blobs
   through the object backend (directory-bucket client, the on-prem
   stand-in for S3) sustains at least ``--min-put-mbps`` and
   ``--min-get-mbps``.  The local-disk backend is measured alongside
   for comparison (reported, not asserted — it is the zero-copy path).
2. **Store durability** — a trace put through a :class:`TraceStore`
   over the object backend survives a simulated restart (new store,
   same bucket, scratch directory wiped) and resolves to a file whose
   content digest matches the original.
3. **Rescan cost** — rebuilding the index over N stored traces at
   startup is reported (events the fleet operator watches when sizing
   a bucket), with a generous ceiling asserted.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.service.backend import (
    DirectoryObjectClient,
    LocalDiskBackend,
    ObjectBackend,
)
from repro.service.store import TraceStore
from repro.trace.digest import trace_digest
from repro.trace.reader import read_trace
from repro.workloads import SyntheticLocks


def build_blobs(quick: bool) -> list[bytes]:
    if quick:
        return [bytes([i]) * (128 << 10) for i in range(8)]  # 8 x 128 KiB
    return [bytes([i]) * (1 << 20) for i in range(48)]  # 48 x 1 MiB


def measure_backend(backend, blobs: list[bytes]) -> dict:
    total_mb = sum(len(b) for b in blobs) / 1e6
    t0 = time.perf_counter()
    for i, blob in enumerate(blobs):
        backend.put(f"blob-{i:04d}.clt", blob)
    put_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i, blob in enumerate(blobs):
        got = backend.get(f"blob-{i:04d}.clt")
        assert len(got) == len(blob)
    get_s = time.perf_counter() - t0
    return {
        "total_mb": round(total_mb, 2),
        "put_s": round(put_s, 4),
        "get_s": round(get_s, 4),
        "put_mbps": round(total_mb / put_s, 1) if put_s > 0 else float("inf"),
        "get_mbps": round(total_mb / get_s, 1) if get_s > 0 else float("inf"),
    }


def store_durability(tmp: Path, quick: bool) -> dict:
    """Put traces through an object-backed store, 'crash', rescan, resolve."""
    n_traces = 2 if quick else 8
    bucket = tmp / "bucket"
    scratch = tmp / "scratch"
    traces = [
        SyntheticLocks(nlocks=4, ops_per_thread=100 if quick else 600).run(
            nthreads=4, seed=seed
        ).trace
        for seed in range(n_traces)
    ]

    def fresh_store() -> TraceStore:
        return TraceStore(scratch, backend=ObjectBackend(DirectoryObjectClient(bucket)))

    store = fresh_store()
    t0 = time.perf_counter()
    digests = [store.put_trace(t, name=f"t{i}").digest for i, t in enumerate(traces)]
    put_s = time.perf_counter() - t0

    # The "crash": drop the store AND its scratch materializations.  Only
    # the bucket survives — as when a node is replaced under a real
    # object store.
    del store
    shutil.rmtree(scratch)

    t0 = time.perf_counter()
    reopened = fresh_store()
    rescan_s = time.perf_counter() - t0
    assert len(reopened) == n_traces, f"rescan found {len(reopened)}/{n_traces}"
    paths = reopened.resolve(digests)
    identical = all(
        trace_digest(read_trace(p)) == d for p, d in zip(paths, digests)
    )
    return {
        "n_traces": n_traces,
        "store_put_s": round(put_s, 4),
        "rescan_s": round(rescan_s, 4),
        "restart_digest_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small blobs, machinery check only (CI smoke job)")
    ap.add_argument("--min-put-mbps", type=float, default=20.0,
                    help="object-backend put throughput floor (default: 20)")
    ap.add_argument("--min-get-mbps", type=float, default=40.0,
                    help="object-backend get throughput floor (default: 40)")
    ap.add_argument("--max-rescan-s", type=float, default=5.0,
                    help="startup rescan ceiling over the bucket (default: 5)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    args = ap.parse_args(argv)

    blobs = build_blobs(args.quick)
    with tempfile.TemporaryDirectory(prefix="bench_backend_") as tmp:
        tmp_path = Path(tmp)
        obj = measure_backend(
            ObjectBackend(DirectoryObjectClient(tmp_path / "obj-bucket")), blobs
        )
        local = measure_backend(LocalDiskBackend(tmp_path / "local"), blobs)
        durability = store_durability(tmp_path, args.quick)

    print(f"blobs: {len(blobs)} x {len(blobs[0]) >> 10} KiB "
          f"({obj['total_mb']:.1f} MB total)")
    for name, r in (("object", obj), ("local", local)):
        print(f"  {name:6s} put {r['put_mbps']:8.1f} MB/s   "
              f"get {r['get_mbps']:8.1f} MB/s")
    print(f"store: {durability['n_traces']} traces through the object backend, "
          f"restart rescan {durability['rescan_s'] * 1e3:.1f} ms, "
          f"digests identical: {durability['restart_digest_identical']}")

    failures = []
    if not durability["restart_digest_identical"]:
        failures.append("restarted store resolved different trace content")
    if durability["rescan_s"] > args.max_rescan_s:
        failures.append(f"rescan took {durability['rescan_s']:.2f}s "
                        f"(> {args.max_rescan_s:g}s)")
    if not args.quick:
        if obj["put_mbps"] < args.min_put_mbps:
            failures.append(f"object put {obj['put_mbps']:.1f} MB/s "
                            f"(< {args.min_put_mbps:g})")
        if obj["get_mbps"] < args.min_get_mbps:
            failures.append(f"object get {obj['get_mbps']:.1f} MB/s "
                            f"(< {args.min_get_mbps:g})")

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {
                    "bench": "backend",
                    "quick": args.quick,
                    "blob_count": len(blobs),
                    "total_mb": obj["total_mb"],
                    "object": obj,
                    "local": local,
                    **durability,
                },
                f,
                indent=2,
            )
            f.write("\n")
        print(f"numbers written to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("ok: object backend meets throughput floors; restart is lossless")
    return 0


if __name__ == "__main__":
    sys.exit(main())
