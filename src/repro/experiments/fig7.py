"""Paper Fig. 7 — representative execution of the micro-benchmark.

Renders the ASCII timeline: L1's contended critical sections are
overlapped by the critical path (lowercase — off-path) while the L2
chain forms the path itself (uppercase), visually explaining why
optimizing L2 beats optimizing L1 despite L1's larger idle time.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.viz.timeline import render_timeline
from repro.workloads.micro import MicroBenchmark

__all__ = ["run"]


@experiment("fig7")
def run(nthreads: int = 4, seed: int = 0, width: int = 96) -> ExperimentResult:
    res = MicroBenchmark().run(nthreads=nthreads, seed=seed)
    analysis = analyze(res.trace)
    chart = render_timeline(res.trace, analysis, width=width)

    l1 = analysis.report.lock("L1")
    l2 = analysis.report.lock("L2")
    return ExperimentResult(
        exp_id="fig7",
        title=f"Micro-benchmark execution timeline ({nthreads} threads)",
        headers=["Lock", "on-CP invocations", "total invocations"],
        rows=[
            ["L1", l1.invocations_on_cp, l1.total_invocations],
            ["L2", l2.invocations_on_cp, l2.total_invocations],
        ],
        extra_text=chart,
        values={
            "l1_on_cp": l1.invocations_on_cp,
            "l2_on_cp": l2.invocations_on_cp,
            "nthreads": nthreads,
        },
    )
