"""Minimal ASCII table rendering shared by reports and experiments."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_right: Sequence[bool] | None = None,
) -> str:
    """Render rows as a column-aligned text table.

    ``align_right`` flags per column; by default the first column is
    left-aligned (names) and the rest right-aligned (numbers).
    """
    cells = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    if align_right is None:
        align_right = [False] + [True] * (ncols - 1)
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, c in enumerate(row):
            parts.append(c.rjust(widths[i]) if align_right[i] else c.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "-" * (sum(widths) + 2 * (ncols - 1))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)
