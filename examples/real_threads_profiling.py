#!/usr/bin/env python
"""Profile *real* Python threads with the instrumentation layer.

The analog of the paper's LD_PRELOAD module: traced locks/barriers/
condition variables record the same event schema the simulator emits, so
`analyze` works unchanged on a live multithreaded program.

Caveat (documented in DESIGN.md): CPython's GIL serializes bytecode, so
only I/O-ish workloads (here: ``time.sleep`` standing in for disk reads)
show meaningful parallel structure — use the simulator for scalability
studies; use this layer to find the critical lock in a real app.

Run:  python examples/real_threads_profiling.py
"""

import time

from repro import analyze
from repro.instrument import ProfilingSession
from repro.viz import render_timeline


def main() -> None:
    with ProfilingSession(name="document-indexer") as session:
        # A toy document indexer: workers "read" documents (sleep),
        # update a shared index under one coarse lock, and bump a stats
        # counter under a second, rarely-needed lock.
        index_lock = session.lock("index_lock")
        stats_lock = session.lock("stats_lock")
        barrier = session.barrier(4, "phase_barrier")
        index: dict[str, int] = {}
        stats = {"docs": 0}

        def worker(wid: int):
            for doc in range(5):
                time.sleep(0.002)  # "read the document" (I/O releases the GIL)
                with index_lock:
                    # Coarse-grained index update: the suspect bottleneck.
                    index[f"doc-{wid}-{doc}"] = wid
                    time.sleep(0.003)
                if doc % 2 == 0:
                    with stats_lock:
                        stats["docs"] += 1
            barrier.wait()  # all workers finish the phase together

        workers = [
            session.thread(worker, args=(i,), name=f"indexer-{i}") for i in range(4)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()

    trace = session.trace()
    analysis = analyze(trace)
    print(analysis.render())
    print()
    print(render_timeline(trace, analysis, width=100))

    top = analysis.report.top_locks(1)[0]
    prediction = analysis.what_if(top.name, factor=0.25)
    print()
    print(f"top critical lock: {top.name} "
          f"({top.cp_fraction:.1%} of the critical path)")
    print(f"if its critical sections shrank 4x: {prediction}")


if __name__ == "__main__":
    main()
