"""Deterministic discrete-event multithreaded execution substrate.

Python's GIL makes real lock-contention experiments meaningless at scale,
so the paper's POWER7 testbed is replaced by a virtual-time simulator:
threads are generator coroutines that yield synchronization requests
(:mod:`repro.sim.syscalls`), the engine executes them in virtual time, and
every synchronization event is traced with the exact schema the paper's
LD_PRELOAD instrumentation records (:mod:`repro.sim.tracing`).

Quick example::

    from repro.sim import Program

    prog = Program(name="demo")
    lock = prog.mutex("L")

    def worker(env):
        yield env.acquire(lock)
        yield env.compute(2.0)
        yield env.release(lock)

    for _ in range(4):
        prog.spawn(worker)
    result = prog.run()
    print(result.completion_time, len(result.trace))
"""

from repro.sim.engine import SimResult, Simulator
from repro.sim.program import Program
from repro.sim.protocols import (
    LockProtocol,
    available_protocols,
    get_protocol,
)
from repro.sim.schedulers import (
    Scheduler,
    available_schedulers,
    get_scheduler,
)
from repro.sim.sync import SimBarrier, SimCondition, SimMutex, SimRWLock, SimSemaphore
from repro.sim.thread import SimThread, ThreadHandle

__all__ = [
    "Program",
    "Simulator",
    "SimResult",
    "SimThread",
    "ThreadHandle",
    "SimMutex",
    "SimBarrier",
    "SimCondition",
    "SimSemaphore",
    "SimRWLock",
    "LockProtocol",
    "Scheduler",
    "get_protocol",
    "get_scheduler",
    "available_protocols",
    "available_schedulers",
]
