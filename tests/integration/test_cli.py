"""CLI end-to-end tests."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "radiosity" in out
    assert "fig9" in out


def test_run_with_report(capsys):
    assert main(["run", "micro", "--threads", "4"]) == 0
    out = capsys.readouterr().out
    assert "completion time" in out
    assert "TYPE 1" in out


def test_run_write_analyze_roundtrip(tmp_path, capsys):
    trace_path = tmp_path / "micro.clt"
    assert main(["run", "micro", "-t", "4", "-o", str(trace_path)]) == 0
    assert trace_path.exists()
    capsys.readouterr()

    assert main(["analyze", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "83.33%" in out


def test_analyze_json(tmp_path, capsys):
    trace_path = tmp_path / "micro.clt"
    main(["run", "micro", "-t", "4", "-o", str(trace_path)])
    capsys.readouterr()
    assert main(["analyze", str(trace_path), "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["locks"]["L2"]["cp_time_frac"] == pytest.approx(10 / 12)


def test_analyze_timeline(tmp_path, capsys):
    trace_path = tmp_path / "micro.clt"
    main(["run", "micro", "-t", "2", "-o", str(trace_path)])
    capsys.readouterr()
    assert main(["analyze", str(trace_path), "--timeline"]) == 0
    assert "locks:" in capsys.readouterr().out


def test_whatif(tmp_path, capsys):
    trace_path = tmp_path / "micro.clt"
    main(["run", "micro", "-t", "4", "-o", str(trace_path)])
    capsys.readouterr()
    assert main(["whatif", str(trace_path), "L2", "--factor", "0.6"]) == 0
    out = capsys.readouterr().out
    assert "predicted speedup 1.263" in out


def test_run_with_params(capsys):
    assert main(["run", "micro", "-t", "2", "-p", "cs1=1.0", "-p", "cs2=1.0"]) == 0
    out = capsys.readouterr().out
    assert "completion time 3.0000" in out  # CS1 chain [0,2]; CS2 ends at 3


def test_bad_param_format(capsys):
    assert main(["run", "micro", "-p", "oops"]) == 1
    assert "K=V" in capsys.readouterr().err


def test_unknown_workload(capsys):
    assert main(["run", "nope"]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_experiment_command(capsys):
    assert main(["experiment", "table2"]) == 0
    assert "TYPE 1" in capsys.readouterr().out


def test_run_with_cores(capsys):
    assert main(["run", "micro", "-t", "4", "--cores", "1"]) == 0
    out = capsys.readouterr().out
    assert "completion time" in out


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["--version"])
    assert ei.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("critical-lock-analysis ")
    assert out.split()[-1][0].isdigit()  # ends with a version number


def test_serve_subcommand_registered(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["serve", "--help"])
    assert ei.value.code == 0
    out = capsys.readouterr().out
    assert "--workers" in out
    assert "--data-dir" in out
