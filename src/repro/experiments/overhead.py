"""Instrumentation overhead measurement (paper §IV.A).

The paper reports ~5% overhead at 24 threads for its ``mftb``-based
MAGIC() instrumentation.  This experiment measures our real-thread
analog: the same lock-heavy program run with plain ``threading``
primitives and with traced ones, comparing wall-clock completion times.
Python timestamps (``perf_counter_ns``) are heavier than a time-base
register read and the work units here are tiny, so the percentage is an
upper bound on what a realistic application would see.
"""

from __future__ import annotations

import threading
import time

from repro.experiments.harness import ExperimentResult, experiment
from repro.instrument import ProfilingSession

__all__ = ["run"]


def _app(lock_factory, thread_factory, nthreads: int, rounds: int, cs_seconds: float):
    """The measured program: workers hammer one shared lock."""
    lock = lock_factory()
    spin_until = time.perf_counter  # resolved once

    def busy(seconds: float) -> None:
        end = spin_until() + seconds
        while spin_until() < end:
            pass

    def worker():
        for _ in range(rounds):
            lock.acquire()
            busy(cs_seconds)
            lock.release()
            busy(cs_seconds / 2)

    t0 = time.perf_counter()
    threads = [thread_factory(worker) for _ in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


@experiment("overhead")
def run(
    nthreads: int = 4,
    rounds: int = 40,
    cs_seconds: float = 0.0005,
    repeats: int = 3,
) -> ExperimentResult:
    """Measure traced-vs-plain wall time; returns the overhead ratio."""

    def plain_run():
        return _app(
            threading.Lock,
            lambda fn: threading.Thread(target=fn),
            nthreads,
            rounds,
            cs_seconds,
        )

    def traced_run():
        with ProfilingSession(name="overhead") as session:
            elapsed = _app(
                lambda: session.lock("L"),
                lambda fn: session.thread(fn),
                nthreads,
                rounds,
                cs_seconds,
            )
        return elapsed

    plain = min(plain_run() for _ in range(repeats))
    traced = min(traced_run() for _ in range(repeats))
    overhead = traced / plain - 1.0
    events = nthreads * rounds * 3  # acquire+obtain+release per round

    rows = [
        ["plain threading", f"{plain * 1000:.1f}ms", "-"],
        ["traced", f"{traced * 1000:.1f}ms", f"{overhead:+.1%}"],
    ]
    return ExperimentResult(
        exp_id="overhead",
        title=f"Instrumentation overhead ({nthreads} threads, "
        f"{rounds} rounds, ~{events} lock events)",
        headers=["Variant", "Wall time (best of repeats)", "Overhead"],
        rows=rows,
        notes=[
            "paper §IV.A: ~5% at 24 threads with mftb timestamps; Python "
            "timestamps on micro-sized critical sections bound this from above",
        ],
        values={"plain": plain, "traced": traced, "overhead": overhead},
    )
