"""Paper Fig. 12: speedups of original vs optimized Radiosity.

Regenerates the 4/8/16/24-thread speedup comparison after replacing the
task queues with Michael-Scott two-lock queues.  Shape: the optimization
helps most at 24 threads with a single-digit end-to-end gain (paper: ~7%)
— far below the optimized lock's CP share, because the path shifts.
"""

import pytest

from repro.experiments import fig12

from conftest import run_once


@pytest.mark.benchmark(group="fig12")
def test_fig12(benchmark, show):
    result = run_once(benchmark, fig12.run, thread_counts=(4, 8, 16, 24), seed=0)
    show(result.render())
    v = result.values

    # The optimization's value grows with contention (thread count).
    assert v[24]["improvement"] > v[4]["improvement"]
    # Single-digit-to-low-teens end-to-end gain at 24 threads (paper: 7%).
    assert 0.02 < v[24]["improvement"] < 0.25
    # Both versions still scale with threads.
    assert v[24]["speedup_orig"] > v[4]["speedup_orig"]
    assert v[24]["speedup_opt"] >= v[24]["speedup_orig"]
