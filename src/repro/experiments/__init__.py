"""Experiment regeneration: one module per table/figure of the paper.

Every experiment returns an :class:`~repro.experiments.harness.ExperimentResult`
whose ``render()`` prints the rows the paper reports; the benchmark
harness in ``benchmarks/`` runs them and asserts the paper's qualitative
shape (who wins, by roughly what factor, where crossovers fall).
"""

from repro.experiments.harness import ExperimentResult, list_experiments, run_experiment
from repro.experiments import (  # noqa: F401 (registration side effects)
    fig6,
    fig7,
    fig8,
    fig9,
    fig10_11,
    fig12,
    fig13_14,
    overhead,
    scaling,
    tsp_opt,
)

__all__ = [
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10_11",
    "fig12",
    "fig13_14",
    "overhead",
    "scaling",
    "tsp_opt",
]
