"""Exception hierarchy for the critical lock analysis library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the three layers the paper's tool consists of:
tracing (instrumentation module), simulation (execution substrate) and
analysis (post-processing module).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceError",
    "TraceFormatError",
    "TraceValidationError",
    "SimulationError",
    "DeadlockError",
    "SyncUsageError",
    "AnalysisError",
    "WakerResolutionError",
    "ShardError",
    "WorkloadError",
    "ServiceError",
    "CheckError",
    "RuleError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class TraceError(ReproError):
    """Base class for trace I/O and trace integrity errors."""


class TraceFormatError(TraceError):
    """A trace file could not be parsed (bad magic, truncation, version)."""


class TraceValidationError(TraceError):
    """A trace is structurally inconsistent (e.g. release without obtain).

    Attributes
    ----------
    problems:
        The full list of validation problems discovered; the exception
        message only contains the first few.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        shown = "; ".join(self.problems[:5])
        more = len(self.problems) - 5
        if more > 0:
            shown += f" (+{more} more)"
        super().__init__(f"invalid trace: {shown}")


class SimulationError(ReproError):
    """Base class for errors inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while threads were still blocked."""

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        desc = ", ".join(f"T{tid}: {why}" for tid, why in sorted(blocked.items()))
        super().__init__(f"deadlock: no runnable threads ({desc})")


class SyncUsageError(SimulationError):
    """A synchronization primitive was used incorrectly.

    Examples: releasing a mutex the thread does not hold, waiting on a
    condition variable without holding its mutex, re-acquiring a
    non-reentrant mutex.
    """


class AnalysisError(ReproError):
    """Base class for errors in the post-processing analysis module."""


class WakerResolutionError(AnalysisError):
    """No waker could be determined for a blocking event in the trace."""


class ShardError(AnalysisError):
    """Sharded analysis could not reproduce the sequential result.

    Raised when shard stitching detects an inconsistency at a cut point
    (e.g. a shard's walk fell off a thread that is not the cut anchor).
    The analyzer catches it and falls back to the sequential pass; the
    differential oracle runs strict and reports it instead.
    """


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ServiceError(ReproError):
    """The analysis service rejected a request or lost a job.

    Carries an HTTP-ish ``status`` so the API layer can map library
    failures onto response codes without string matching.
    """

    def __init__(self, message: str, status: int = 400):
        self.status = int(status)
        super().__init__(message)


class CheckError(ReproError):
    """The differential verification harness was misused (bad spec/repro file)."""


class RuleError(ReproError):
    """A fleet alert-rule spec failed to parse or lint (see repro.fleet.rules)."""
