"""CLI surface of the sampling pipeline: analyze --sample-rate, import."""

import json
import pathlib

import pytest

from repro.cli import main

EXAMPLE = pathlib.Path(__file__).parents[2] / "examples" / "perf_lock_events.jsonl"


@pytest.fixture
def micro_path(tmp_path):
    path = tmp_path / "micro.clt"
    assert main(["run", "micro", "-t", "4", "-o", str(path)]) == 0
    return str(path)


def test_analyze_with_sample_rate_prints_both_reports(micro_path, capsys):
    capsys.readouterr()
    assert main(["analyze", micro_path, "--sample-rate", "0.5",
                 "--sample-seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "TYPE 1 — critical lock statistics" in out  # exact report first
    assert "statistical critical lock estimate" in out
    assert "rate=50.00%" in out


def test_analyze_with_sample_rate_json(micro_path, capsys):
    capsys.readouterr()
    assert main(["analyze", micro_path, "--sample-rate", "1.0", "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert set(blob) == {"exact", "estimated"}
    exact = blob["exact"]["locks"]["L2"]["cp_time_frac"]
    assert blob["estimated"]["locks"]["L2"]["cp_time_frac"] == exact


def test_analyze_sampled_trace_estimates_only(micro_path, tmp_path, capsys):
    sampled = tmp_path / "sampled.clt"
    from repro.sampling import downsample_trace
    from repro.trace import read_trace, write_trace

    write_trace(downsample_trace(read_trace(micro_path), 0.5, seed=3), sampled)
    capsys.readouterr()
    assert main(["analyze", str(sampled), "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["sampling"]["rate"] == 0.5  # estimate only, no exact half


def test_import_subcommand_writes_and_reports(tmp_path, capsys):
    out_path = tmp_path / "imported.clt"
    assert main(["import", str(EXAMPLE), "-o", str(out_path), "--report"]) == 0
    out = capsys.readouterr().out
    assert "imported" in out and "36 events" in out
    assert "rq->lock" in out
    assert out_path.exists()

    capsys.readouterr()
    assert main(["analyze", str(out_path)]) == 0
    assert "rq->lock" in capsys.readouterr().out


def test_import_unknown_format_fails(tmp_path, capsys):
    assert main(["import", str(EXAMPLE), "--format", "ftrace"]) != 0
    assert "unknown import format" in capsys.readouterr().err


def test_import_malformed_dump_reports_line(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ts": 0.0, "tid": 1, "event": "acquired", "lock": "m"}\n'
                   "{not json}\n")
    assert main(["import", str(bad)]) != 0
    err = capsys.readouterr().err
    assert f"{bad}:2:" in err
