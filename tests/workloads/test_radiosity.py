"""Radiosity workload: structure, conservation, paper shapes."""

import pytest

from repro.core.analyzer import analyze
from repro.trace.validate import validate_trace
from repro.workloads import Radiosity

SMALL = dict(total_tasks=60, iterations=1)


@pytest.fixture(scope="module")
def small_run():
    return Radiosity(**SMALL).run(nthreads=4, seed=1)


def test_trace_valid(small_run):
    validate_trace(small_run.trace)


def test_lock_population(small_run):
    names = {info.name for info in small_run.trace.locks}
    assert "tq[0].qlock" in names
    assert "tq[3].qlock" in names
    assert "freeInter" in names
    assert "pbar_lock" in names
    assert "free_patch_lock" in names
    # Per-thread queues + 11 misc + pbar_lock.
    assert len(names) == 4 + 12


def test_all_tasks_processed(small_run):
    # Every seeded task triggers interactions_per_task freeInter CSs, plus
    # spawned children: freeInter invocation count reveals tasks done.
    analysis = analyze(small_run.trace)
    free_inter = analysis.report.lock("freeInter")
    wl = Radiosity(**SMALL)
    min_tasks = SMALL["total_tasks"]  # children add more
    assert free_inter.total_invocations >= min_tasks * wl.interactions_per_task


def test_two_lock_variant_lock_names():
    res = Radiosity(**SMALL, two_lock_queues=True).run(nthreads=2, seed=1)
    names = {info.name for info in res.trace.locks}
    assert "tq[0].q_head_lock" in names
    assert "tq[0].q_tail_lock" in names
    assert "tq[0].qlock" not in names


def test_tq0_share_grows_with_threads():
    """Paper Fig. 9: tq[0].qlock's CP share rises with the thread count."""
    shares = {}
    for n in (4, 16):
        res = Radiosity().run(nthreads=n, seed=42)
        analysis = analyze(res.trace)
        shares[n] = analysis.report.lock("tq[0].qlock").cp_fraction
    assert shares[16] > 2 * shares[4]


def test_wait_time_underestimates_tq0_at_scale():
    """Paper Figs. 9/10: CP Time >> Wait Time for tq[0].qlock."""
    res = Radiosity().run(nthreads=16, seed=42)
    m = analyze(res.trace).report.lock("tq[0].qlock")
    assert m.cp_fraction > 2 * m.avg_wait_fraction


def test_optimization_helps_at_scale():
    orig = Radiosity().run(nthreads=16, seed=42).completion_time
    opt = Radiosity(two_lock_queues=True).run(nthreads=16, seed=42).completion_time
    assert opt <= orig * 1.02  # never materially worse


def test_deterministic(small_run):
    import numpy as np

    again = Radiosity(**SMALL).run(nthreads=4, seed=1)
    assert np.array_equal(small_run.trace.records, again.trace.records)


def test_single_thread_runs():
    res = Radiosity(total_tasks=30, iterations=1).run(nthreads=1, seed=0)
    validate_trace(res.trace)
    assert res.completion_time > 0
