"""Paper Figs. 13 and 14 — quantification of the *optimized* Radiosity.

The same contention/size tables as Figs. 10-11, computed on the
two-lock-queue variant at 24 threads.  The shape to reproduce: after
the optimization, ``tq[0].q_head_lock`` is the new most-critical lock
but with a far smaller CP share than ``tq[0].qlock`` had (paper: 2.53%
vs 39.15%), and its contention probability on the path drops (paper:
53.62% vs 78.69%).
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.fig10_11 import contention_table, size_table
from repro.experiments.harness import ExperimentResult, experiment
from repro.workloads.radiosity import Radiosity

__all__ = ["run"]


@experiment("fig13_14")
def run(nthreads: int = 24, seed: int = 0) -> ExperimentResult:
    res = Radiosity(two_lock_queues=True).run(nthreads=nthreads, seed=seed)
    analysis = analyze(res.trace)
    f14 = contention_table(analysis)  # paper fig 14: contention stats
    f13 = size_table(analysis)  # paper fig 13: size stats
    return ExperimentResult(
        exp_id="fig13_14",
        title=f"Optimized Radiosity quantification at {nthreads} threads",
        headers=f13.headers,
        rows=f13.rows,
        extra_text=f14.render(),
        notes=[
            "paper: tq[0].q_head_lock becomes the top lock at a much smaller "
            "CP share than tq[0].qlock had (2.53% vs 39.15%), with lower "
            "contention on the path (53.62% vs 78.69%)",
        ],
        values={"fig13": f13.values, "fig14": f14.values},
    )
