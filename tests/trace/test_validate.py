"""Each class of trace malformation must be detected, and valid traces pass."""

import pytest

from repro.errors import TraceValidationError
from repro.trace.builder import TraceBuilder
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace
from repro.trace.validate import trace_problems, validate_trace


def test_valid_micro_trace_passes(micro_trace):
    validate_trace(micro_trace)  # no exception


def test_valid_handoff_passes(handoff_trace):
    assert trace_problems(handoff_trace) == []


def _trace(events, objects=None):
    return Trace.from_events(events, objects=objects or {})


LOCK = {0: ObjectInfo(obj=0, kind=ObjectKind.MUTEX, name="L")}


def _lifecycle(tid, start, end, middle=()):
    return [
        Event(seq=0, time=start, tid=tid, etype=EventType.THREAD_START),
        *middle,
        Event(seq=10_000, time=end, tid=tid, etype=EventType.THREAD_EXIT),
    ]


class TestLifecycleChecks:
    def test_missing_start(self):
        t = _trace(
            [
                Event(seq=0, time=0.0, tid=0, etype=EventType.ACQUIRE, obj=0),
                Event(seq=1, time=0.0, tid=0, etype=EventType.OBTAIN, obj=0),
                Event(seq=2, time=1.0, tid=0, etype=EventType.RELEASE, obj=0),
                Event(seq=3, time=1.0, tid=0, etype=EventType.THREAD_EXIT),
            ],
            LOCK,
        )
        assert any("expected THREAD_START" in p for p in trace_problems(t))

    def test_missing_exit(self):
        t = _trace([Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START)])
        assert any("expected THREAD_EXIT" in p for p in trace_problems(t))

    def test_phantom_created_thread(self):
        t = _trace(
            _lifecycle(
                0, 0.0, 1.0,
                middle=[Event(seq=1, time=0.5, tid=0, etype=EventType.THREAD_CREATE, arg=7)],
            )
        )
        assert any("T7" in p and "no events" in p for p in trace_problems(t))


class TestLockChecks:
    def test_obtain_without_acquire(self):
        t = _trace(
            _lifecycle(
                0, 0.0, 2.0,
                middle=[
                    Event(seq=1, time=0.5, tid=0, etype=EventType.OBTAIN, obj=0),
                    Event(seq=2, time=1.0, tid=0, etype=EventType.RELEASE, obj=0),
                ],
            ),
            LOCK,
        )
        assert any("OBTAIN without ACQUIRE" in p for p in trace_problems(t))

    def test_release_without_obtain(self):
        t = _trace(
            _lifecycle(
                0, 0.0, 2.0,
                middle=[Event(seq=1, time=0.5, tid=0, etype=EventType.RELEASE, obj=0)],
            ),
            LOCK,
        )
        assert any("RELEASE without OBTAIN" in p for p in trace_problems(t))

    def test_exit_while_holding(self):
        t = _trace(
            _lifecycle(
                0, 0.0, 2.0,
                middle=[
                    Event(seq=1, time=0.5, tid=0, etype=EventType.ACQUIRE, obj=0),
                    Event(seq=2, time=0.5, tid=0, etype=EventType.OBTAIN, obj=0),
                ],
            ),
            LOCK,
        )
        assert any("exited holding" in p for p in trace_problems(t))

    def test_mutex_exclusivity_violation(self):
        events = [
            Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START),
            Event(seq=1, time=0.0, tid=1, etype=EventType.THREAD_START),
            Event(seq=2, time=0.1, tid=0, etype=EventType.ACQUIRE, obj=0),
            Event(seq=3, time=0.1, tid=0, etype=EventType.OBTAIN, obj=0),
            Event(seq=4, time=0.2, tid=1, etype=EventType.ACQUIRE, obj=0),
            Event(seq=5, time=0.2, tid=1, etype=EventType.OBTAIN, obj=0),  # still held!
            Event(seq=6, time=0.3, tid=0, etype=EventType.RELEASE, obj=0),
            Event(seq=7, time=0.3, tid=1, etype=EventType.RELEASE, obj=0),
            Event(seq=8, time=0.4, tid=0, etype=EventType.THREAD_EXIT),
            Event(seq=9, time=0.4, tid=1, etype=EventType.THREAD_EXIT),
        ]
        t = _trace(events, LOCK)
        assert any("while held by" in p for p in trace_problems(t))

    def test_lock_event_on_barrier_object(self):
        objects = {0: ObjectInfo(obj=0, kind=ObjectKind.BARRIER, name="B")}
        t = _trace(
            _lifecycle(
                0, 0.0, 2.0,
                middle=[
                    Event(seq=1, time=0.5, tid=0, etype=EventType.ACQUIRE, obj=0),
                    Event(seq=2, time=0.5, tid=0, etype=EventType.OBTAIN, obj=0),
                    Event(seq=3, time=1.0, tid=0, etype=EventType.RELEASE, obj=0),
                ],
            ),
            objects,
        )
        assert any("non-lock object" in p for p in trace_problems(t))


class TestBarrierChecks:
    def test_mismatched_cohort(self):
        b = TraceBuilder()
        bar = b.barrier_obj("B")
        t0 = b.thread()
        t1 = b.thread()
        t0.start(at=0.0)
        t1.start(at=0.0)
        t0.barrier(bar, arrive=1.0, depart=2.0)
        # t1 arrives but never departs:
        t1._emit(2.0, EventType.BARRIER_ARRIVE, obj=bar, arg=0)
        t0.exit(at=3.0)
        t1.exit(at=3.0)
        trace = b.build(validate=False)
        assert any("arrivals" in p and "departures" in p for p in trace_problems(trace))


class TestCondChecks:
    def test_wake_without_block(self):
        b = TraceBuilder()
        cv = b.condition("c")
        t0 = b.thread()
        t1 = b.thread()
        t0.start(at=0.0)
        t1.start(at=0.0)
        t0.cond_wake(cv, at=1.0, by=t1)
        t0.exit(at=2.0)
        t1.exit(at=2.0)
        trace = b.build(validate=False)
        assert any("COND_WAKE without COND_BLOCK" in p for p in trace_problems(trace))

    def test_unknown_signaller(self):
        b = TraceBuilder()
        cv = b.condition("c")
        t0 = b.thread()
        t0.start(at=0.0)
        t0.cond_block(cv, at=0.5)
        t0._emit(1.0, EventType.COND_WAKE, obj=cv, arg=42)  # no thread 42
        t0.exit(at=2.0)
        trace = b.build(validate=False)
        assert any("unknown signaller" in p for p in trace_problems(trace))


class TestJoinChecks:
    def test_join_end_before_target_exit(self):
        b = TraceBuilder()
        t0 = b.thread()
        t1 = b.thread()
        t0.start(at=0.0)
        t1.start(at=0.0)
        t0.join(t1, begin=1.0, end=2.0)
        t0.exit(at=3.0)
        t1.exit(at=5.0)  # exits after the join "completed"
        trace = b.build(validate=False)
        assert any("JOIN_END precedes" in p for p in trace_problems(trace))

    def test_join_never_exited(self):
        b = TraceBuilder()
        t0 = b.thread()
        t0.start(at=0.0)
        t0._emit(1.0, EventType.JOIN_BEGIN, arg=9)
        t0._emit(2.0, EventType.JOIN_END, arg=9)
        t0.exit(at=3.0)
        trace = b.build(validate=False)
        assert any("never exited" in p for p in trace_problems(trace))


def test_validation_error_lists_problems():
    t = _trace([Event(seq=0, time=0.0, tid=0, etype=EventType.THREAD_START)])
    with pytest.raises(TraceValidationError) as exc_info:
        validate_trace(t)
    assert exc_info.value.problems
    assert "invalid trace" in str(exc_info.value)
