"""Fleet observability: cross-trace analytics over the trace store.

The paper diagnoses one execution; a fleet asks which critical-lock
bottleneck *recurs* across thousands of stored traces and when a
workload's ranking shifted.  This package answers both:

* :mod:`repro.fleet.fingerprint` — stable lock identity across runs.
* :mod:`repro.fleet.aggregate` — per-workload time-series, clustering,
  and calibrated regression detection.
* :mod:`repro.fleet.rules` — Prometheus-style alert rules (TOML) with a
  CI-grade linter.
* :mod:`repro.fleet.dashboard` — the live HTML/SSE dashboard.
* :mod:`repro.fleet.ingest` — incremental aggregation on store writes.

See ``docs/fleet.md``.
"""

from repro.fleet.aggregate import (
    FleetAggregator,
    Observation,
    render_regressions,
    render_summary,
)
from repro.fleet.dashboard import render_dashboard, render_sparkline
from repro.fleet.fingerprint import (
    LockFingerprint,
    canonical_site,
    fingerprint_lock,
    workload_of,
)
from repro.fleet.ingest import FleetIngestor, ingest_store, observe_stored_trace
from repro.fleet.rules import (
    AlertRule,
    evaluate_rules,
    lint_rules,
    load_rules,
    parse_rules,
    render_alerts,
)

__all__ = [
    "FleetAggregator",
    "Observation",
    "render_summary",
    "render_regressions",
    "render_dashboard",
    "render_sparkline",
    "LockFingerprint",
    "canonical_site",
    "fingerprint_lock",
    "workload_of",
    "FleetIngestor",
    "ingest_store",
    "observe_stored_trace",
    "AlertRule",
    "load_rules",
    "parse_rules",
    "lint_rules",
    "evaluate_rules",
    "render_alerts",
]
