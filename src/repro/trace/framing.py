"""Chunk framing for streamed trace record blocks.

Batch traces travel as one monolithic ``.clt`` file; streaming splits
the same numpy record block into self-delimiting **frames** so a
producer can ship a trace incrementally — to the analysis service's
chunked-append endpoint, or to a growing ``.cls`` stream file on disk —
while every consumer stays in O(chunk) memory.

Frame layout (little-endian, no padding)::

    offset  size  content
    0       8     magic "CLCHUNK1"
    8       1     kind: 0 = RECORDS, 1 = TRAILER
    9       8     chunk id (u64; sequential from 0 per stream)
    17      8     payload length P (u64)
    25      4     crc32 of the payload (u32)
    29      P     payload

``RECORDS`` payloads are raw :data:`~repro.trace.schema.EVENT_DTYPE`
bytes (so ``P`` is a multiple of the record size).  A ``TRAILER`` frame
carries the JSON trace header (objects, threads, meta) and marks the
stream finalized; a ``.cls`` file is simply a sequence of RECORDS frames
followed by one TRAILER, which :func:`repro.trace.read_trace` can load
like any other container.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Iterator
from typing import Any, BinaryIO

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.schema import EVENT_DTYPE

__all__ = [
    "CHUNK_MAGIC",
    "FRAME_RECORDS",
    "FRAME_TRAILER",
    "FRAME_HEADER_SIZE",
    "Frame",
    "encode_records_frame",
    "encode_trailer_frame",
    "decode_frame",
    "iter_frames",
    "split_records",
    "sort_stream_records",
]

CHUNK_MAGIC = b"CLCHUNK1"

FRAME_RECORDS = 0
FRAME_TRAILER = 1

_HEAD_FMT = "<8sBQQI"  # magic, kind, chunk_id, payload_len, crc32
FRAME_HEADER_SIZE = struct.calcsize(_HEAD_FMT)


class Frame:
    """One decoded frame: records payload or the finalizing trailer."""

    __slots__ = ("kind", "chunk_id", "payload")

    def __init__(self, kind: int, chunk_id: int, payload: bytes):
        self.kind = kind
        self.chunk_id = chunk_id
        self.payload = payload

    @property
    def is_trailer(self) -> bool:
        return self.kind == FRAME_TRAILER

    @property
    def records(self) -> np.ndarray:
        """Decode a RECORDS payload into an event record array."""
        if self.kind != FRAME_RECORDS:
            raise TraceFormatError("trailer frames carry a header, not records")
        if len(self.payload) % EVENT_DTYPE.itemsize:
            raise TraceFormatError(
                f"chunk {self.chunk_id}: payload of {len(self.payload)} bytes "
                f"is not a whole number of {EVENT_DTYPE.itemsize}-byte records"
            )
        return np.frombuffer(self.payload, dtype=EVENT_DTYPE).copy()

    @property
    def header(self) -> dict[str, Any]:
        """Decode a TRAILER payload into the JSON trace header."""
        if self.kind != FRAME_TRAILER:
            raise TraceFormatError("records frames carry events, not a header")
        try:
            return json.loads(self.payload)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"corrupt trailer header: {exc}") from exc


def _encode(kind: int, chunk_id: int, payload: bytes) -> bytes:
    head = struct.pack(
        _HEAD_FMT, CHUNK_MAGIC, kind, chunk_id, len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return head + payload


def encode_records_frame(records: np.ndarray, chunk_id: int) -> bytes:
    """Frame one batch of event records as a streamable chunk."""
    if records.dtype != EVENT_DTYPE:
        raise TraceFormatError(
            f"records have dtype {records.dtype}, expected EVENT_DTYPE"
        )
    return _encode(FRAME_RECORDS, chunk_id, records.tobytes())


def encode_trailer_frame(header: dict[str, Any], chunk_id: int) -> bytes:
    """Frame the finalizing JSON header (objects, threads, meta)."""
    return _encode(FRAME_TRAILER, chunk_id, json.dumps(header).encode("utf-8"))


def decode_frame(data: bytes, offset: int = 0) -> tuple[Frame, int]:
    """Decode one frame at ``offset``; returns (frame, next offset).

    Raises :class:`TraceFormatError` on bad magic, a short buffer, or a
    CRC mismatch — a truncated or corrupted chunk must never be fed to
    the analyzer silently.
    """
    if len(data) - offset < FRAME_HEADER_SIZE:
        raise TraceFormatError(
            f"truncated frame header: {len(data) - offset} bytes at offset {offset}"
        )
    magic, kind, chunk_id, plen, crc = struct.unpack_from(_HEAD_FMT, data, offset)
    if magic != CHUNK_MAGIC:
        raise TraceFormatError(f"bad chunk magic {magic!r} at offset {offset}")
    if kind not in (FRAME_RECORDS, FRAME_TRAILER):
        raise TraceFormatError(f"unknown frame kind {kind} at offset {offset}")
    start = offset + FRAME_HEADER_SIZE
    payload = data[start:start + plen]
    if len(payload) != plen:
        raise TraceFormatError(
            f"truncated frame payload: wanted {plen} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TraceFormatError(f"chunk {chunk_id}: payload CRC mismatch")
    return Frame(kind, chunk_id, payload), start + plen


def iter_frames(data: bytes) -> Iterator[Frame]:
    """Decode a buffer of zero or more concatenated frames."""
    offset = 0
    while offset < len(data):
        frame, offset = decode_frame(data, offset)
        yield frame


def read_frame(fh: BinaryIO) -> Frame | None:
    """Read one frame from a file object; ``None`` at a clean EOF.

    A *partial* frame (header or payload cut short) raises — callers
    tailing a growing file should remember the pre-read offset and seek
    back to retry once more bytes land (see ``repro.trace.reader``).
    """
    head = fh.read(FRAME_HEADER_SIZE)
    if not head:
        return None
    if len(head) < FRAME_HEADER_SIZE:
        raise TraceFormatError(f"truncated frame header: {len(head)} bytes")
    magic, kind, chunk_id, plen, crc = struct.unpack(_HEAD_FMT, head)
    if magic != CHUNK_MAGIC:
        raise TraceFormatError(f"bad chunk magic {magic!r}")
    if kind not in (FRAME_RECORDS, FRAME_TRAILER):
        raise TraceFormatError(f"unknown frame kind {kind}")
    payload = fh.read(plen)
    if len(payload) != plen:
        raise TraceFormatError(
            f"truncated frame payload: wanted {plen} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TraceFormatError(f"chunk {chunk_id}: payload CRC mismatch")
    return Frame(kind, chunk_id, payload)


def split_records(records: np.ndarray, chunk_events: int) -> Iterator[np.ndarray]:
    """Slice a record block into consecutive batches of ``chunk_events``."""
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    for start in range(0, len(records), chunk_events):
        yield records[start:start + chunk_events]


def sort_stream_records(records: np.ndarray) -> np.ndarray:
    """Normalize streamed records into canonical trace order.

    Streamed chunks preserve *arrival* order, which for a live ring
    buffer can interleave threads slightly out of (time, seq) order.
    This applies the same normalization as :meth:`Trace.from_events` —
    stable sort by (time, seq), then renumber ``seq`` densely — but
    vectorized, so finalizing a multi-hundred-thousand-event stream does
    not round-trip through Python ``Event`` objects.
    """
    out = records[np.argsort(records, order=("time", "seq"), kind="stable")]
    out["seq"] = np.arange(len(out), dtype=out["seq"].dtype)
    return out
