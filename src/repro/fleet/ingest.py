"""Feeding the aggregator: background ingest and store-wide catch-up.

Two paths produce observations:

* :class:`FleetIngestor` — a single daemon thread the service owns.
  Every trace-store write (upload or finalized stream session) enqueues
  the stored entry; the thread analyzes it off the request path and
  folds the result into the aggregator.  Each digest is analyzed at
  most once ever — the observation persists in fleet state, so a
  service restart does not re-analyze the store.
* :func:`ingest_store` — synchronous catch-up over a whole trace store
  (the ``fleet`` CLI working against a data directory, or a service
  that inherited a store populated before fleet observability existed).
  Already-observed digests are skipped, so repeated invocations are
  incremental, not rescans.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Any

from repro.errors import ReproError
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.fingerprint import workload_of

__all__ = ["FleetIngestor", "ingest_store", "observe_stored_trace"]

log = logging.getLogger("repro.fleet")


def observe_stored_trace(
    aggregator: FleetAggregator, entry, *, save: bool = True
) -> Any | None:
    """Analyze one stored trace and observe it; None if already observed.

    ``entry`` is a :class:`repro.service.store.StoredTrace` (or anything
    with ``digest``/``path``/``name`` attributes).
    """
    if aggregator.has(entry.digest):
        return None
    from repro.core.analyzer import analyze
    from repro.trace.reader import read_trace

    trace = read_trace(entry.path)
    report = analyze(trace, validate=False).report.to_dict()
    return aggregator.observe(
        report,
        digest=entry.digest,
        workload=workload_of(trace.meta, entry.name),
        save=save,
    )


def ingest_store(
    aggregator: FleetAggregator, store, *, metrics=None
) -> dict[str, int]:
    """Catch the aggregator up with every trace in a store (incremental)."""
    observed = skipped = errors = 0
    for entry in store.list():
        try:
            t0 = time.perf_counter()
            obs = observe_stored_trace(aggregator, entry, save=False)
        except ReproError as exc:
            errors += 1
            log.warning("fleet ingest failed for %s: %s", entry.digest, exc)
            if metrics is not None:
                metrics.count_fleet(errors=1)
            continue
        if obs is None:
            skipped += 1
            if metrics is not None:
                metrics.count_fleet(duplicates=1)
        else:
            observed += 1
            if metrics is not None:
                metrics.count_fleet(observed=1, seconds=time.perf_counter() - t0)
    if observed:
        aggregator.save()
    return {"observed": observed, "skipped": skipped, "errors": errors}


class FleetIngestor:
    """Single background worker turning store writes into observations."""

    def __init__(self, aggregator: FleetAggregator, metrics=None):
        self.aggregator = aggregator
        self.metrics = metrics
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="fleet-ingest", daemon=True
        )
        self._thread.start()

    def enqueue(self, entry) -> None:
        """Schedule one stored trace for aggregation (idempotent by digest)."""
        if not self._closed:
            self._queue.put(entry)

    def flush(self, timeout: float = 30.0) -> bool:
        """Wait until every enqueued trace has been processed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.01)
        return self._queue.unfinished_tasks == 0

    def close(self, timeout: float = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while True:
            entry = self._queue.get()
            try:
                if entry is None:
                    return
                t0 = time.perf_counter()
                obs = observe_stored_trace(self.aggregator, entry)
                if self.metrics is not None:
                    if obs is None:
                        self.metrics.count_fleet(duplicates=1)
                    else:
                        self.metrics.count_fleet(
                            observed=1, seconds=time.perf_counter() - t0
                        )
            except Exception as exc:  # noqa: BLE001 — keep the worker alive
                log.warning("fleet ingest error: %s", exc)
                if self.metrics is not None:
                    self.metrics.count_fleet(errors=1)
            finally:
                self._queue.task_done()
