#!/usr/bin/env python
"""Quickstart: build a tiny multithreaded program, find its critical lock.

Demonstrates the core loop of critical lock analysis (Chen & Stenström,
SC 2012): run a program on the virtual-time simulator, reconstruct the
critical path, and compare the paper's TYPE 1 metric (CP Time) against
the classical TYPE 2 metric (Wait Time) — they disagree, and TYPE 1 is
the one that predicts real optimization value.

Run:  python examples/quickstart.py
"""

from repro import Program, analyze
from repro.viz import render_timeline


def main() -> None:
    # The paper's Fig. 5 micro-benchmark: two consecutive critical
    # sections per thread — L1 protects 2.0 time units of work, L2
    # protects 2.5.
    prog = Program(name="quickstart", seed=0)
    l1 = prog.mutex("L1")
    l2 = prog.mutex("L2")

    def worker(env, i):
        yield env.acquire(l1)
        yield env.compute(2.0)  # for (i = 0; i < 2e9; i++) a++;
        yield env.release(l1)
        yield env.acquire(l2)
        yield env.compute(2.5)  # for (j = 0; j < 2.5e9; j++) b++;
        yield env.release(l2)

    prog.spawn_workers(4, worker)
    result = prog.run()
    print(f"completion time: {result.completion_time}")

    # Full analysis: critical path + TYPE 1 / TYPE 2 lock statistics.
    analysis = analyze(result.trace)
    print()
    print(analysis.render())

    # The paper's argument in one picture: L1 causes more *idleness*
    # (TYPE 2 ranks it first) but the critical path runs through L2.
    print()
    print(render_timeline(result.trace, analysis, width=90))

    # What-if: predicted speedup from optimizing each lock by the same
    # amount (1.0 time units), without re-running anything.
    print()
    for lock, factor in (("L1", 1.0 / 2.0), ("L2", 1.5 / 2.5)):
        print(analysis.what_if(lock, factor=factor))

    best = analysis.report.top_locks(1)[0]
    print(f"\n=> optimize {best.name} first "
          f"(it owns {best.cp_fraction:.1%} of the critical path)")


if __name__ == "__main__":
    main()
