"""ServiceAPI driven in-process (workers=0): routing, caching, stores.

These tests exercise the exact code the HTTP layer calls, without
sockets or worker processes, so they are fast and deterministic; the
transport itself is covered by ``test_http.py``.
"""

import json

import pytest

from repro.core.analyzer import analyze
from repro.service import ServiceAPI
from repro.trace import trace_digest, write_trace


@pytest.fixture
def api(tmp_path):
    with ServiceAPI(tmp_path / "svc", workers=0) as api:
        yield api


@pytest.fixture
def micro_bytes(micro_trace, tmp_path):
    return write_trace(micro_trace, tmp_path / "up.clt").read_bytes()


def submit(api, body):
    status, job = api.handle("POST", "/jobs", json.dumps(body).encode())
    assert status == 202, job
    return job


class TestTraces:
    def test_upload_and_get(self, api, micro_trace, micro_bytes):
        status, entry = api.handle("POST", "/traces", micro_bytes, {"name": "m"})
        assert status == 201
        assert entry["digest"] == trace_digest(micro_trace)
        assert entry["nevents"] == len(micro_trace)
        assert entry["name"] == "m"
        status, got = api.handle("GET", f"/traces/{entry['digest']}")
        assert status == 200 and got == entry

    def test_upload_deduplicates_across_formats(
        self, api, micro_trace, micro_bytes, tmp_path
    ):
        api.handle("POST", "/traces", micro_bytes)
        jsonl = write_trace(micro_trace, tmp_path / "up.jsonl").read_bytes()
        status, entry = api.handle("POST", "/traces", jsonl)
        assert status == 201
        status, listing = api.handle("GET", "/traces")
        assert len(listing["traces"]) == 1

    def test_upload_garbage_rejected(self, api):
        status, err = api.handle("POST", "/traces", b"not a trace, sorry")
        assert status == 400
        assert "unparseable" in err["error"]

    def test_unknown_digest_404(self, api):
        status, err = api.handle("GET", "/traces/feedbeef")
        assert status == 404


class TestJobs:
    def test_analyze_end_to_end(self, api, micro_trace, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        job = submit(api, {"kind": "analyze", "trace": entry["digest"]})
        assert job["state"] == "done"  # inline pool: finished already
        status, report = api.handle("GET", f"/reports/{job['id']}")
        assert status == 200
        expected = analyze(micro_trace).report.to_dict()
        assert report["result"]["locks"] == expected["locks"]

    def test_cache_hit_on_identical_resubmit(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        body = {"kind": "analyze", "trace": entry["digest"], "params": {"top": 3}}
        first = submit(api, body)
        second = submit(api, body)
        assert not first["cached"]
        assert second["cached"]
        _, r1 = api.handle("GET", f"/reports/{first['id']}")
        _, r2 = api.handle("GET", f"/reports/{second['id']}")
        assert r1["result"] == r2["result"]
        assert api.cache.stats()["hits"] == 1

    def test_different_params_miss_cache(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        submit(api, {"kind": "analyze", "trace": entry["digest"], "params": {"top": 3}})
        job = submit(
            api, {"kind": "analyze", "trace": entry["digest"], "params": {"top": 5}}
        )
        assert not job["cached"]

    def test_job_against_unknown_trace_404(self, api):
        status, err = api.handle(
            "POST", "/jobs", json.dumps({"kind": "analyze", "trace": "nope"}).encode()
        )
        assert status == 404

    def test_bad_kind_400(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        status, err = api.handle(
            "POST",
            "/jobs",
            json.dumps({"kind": "frobnicate", "trace": entry["digest"]}).encode(),
        )
        assert status == 400
        assert "unknown job kind" in err["error"]

    def test_body_not_json_400(self, api):
        status, err = api.handle("POST", "/jobs", b"{nope")
        assert status == 400

    def test_report_of_failed_job_500(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        job = submit(
            api,
            {"kind": "whatif", "trace": entry["digest"], "params": {"lock": "NOPE"}},
        )
        assert job["state"] == "failed"
        status, err = api.handle("GET", f"/reports/{job['id']}")
        assert status == 500
        assert err["error"]

    def test_failed_jobs_never_cached(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        body = {"kind": "whatif", "trace": entry["digest"], "params": {"lock": "NOPE"}}
        submit(api, body)
        job = submit(api, body)
        assert not job["cached"]
        assert job["state"] == "failed"


class TestMetricsAndRouting:
    def test_metrics_shape(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        body = {"kind": "analyze", "trace": entry["digest"]}
        submit(api, body)
        submit(api, body)  # cache short-circuit
        status, m = api.handle("GET", "/metrics")
        assert status == 200
        assert m["jobs"]["submitted"]["analyze"] == 2
        assert m["jobs"]["completed"]["analyze"] == 1
        assert m["jobs"]["cache_short_circuits"] == 1
        assert m["cache"]["hits"] == 1
        assert m["traces"]["count"] == 1
        assert m["latency"]["analyze"]["count"] == 1
        assert m["queue"]["queued"] == 0

    def test_healthz(self, api):
        status, body = api.handle("GET", "/healthz")
        assert status == 200 and body["ok"]

    def test_unknown_route_404(self, api):
        status, _ = api.handle("GET", "/nope")
        assert status == 404
        status, _ = api.handle("POST", "/reports/abc")
        assert status == 404

    def test_wait_returns_result(self, api, micro_bytes):
        _, entry = api.handle("POST", "/traces", micro_bytes)
        job = submit(api, {"kind": "forecast", "trace": entry["digest"]})
        out = api.wait(job["id"], timeout=10)
        assert out["state"] == "done"
        assert out["result"]["locks"]


class TestStoreRestart:
    def test_index_survives_restart(self, tmp_path, micro_bytes):
        with ServiceAPI(tmp_path / "svc", workers=0) as api:
            _, entry = api.handle("POST", "/traces", micro_bytes)
        with ServiceAPI(tmp_path / "svc", workers=0) as api2:
            status, got = api2.handle("GET", f"/traces/{entry['digest']}")
            assert status == 200
            assert got["nevents"] == entry["nevents"]
            # And jobs against the re-indexed trace still run.
            job = submit(api2, {"kind": "analyze", "trace": entry["digest"]})
            assert job["state"] == "done"
