"""Traced locks on real threads: protocol, contention detection."""

import time

from repro.instrument import ProfilingSession
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def test_uncontended_acquire_not_flagged():
    with ProfilingSession() as s:
        lock = s.lock("L")
        with lock:
            pass
    trace = s.trace()
    obtain = next(ev for ev in trace if ev.etype == EventType.OBTAIN)
    assert obtain.arg == 0


def test_contention_detected():
    with ProfilingSession() as s:
        lock = s.lock("L")

        def holder():
            with lock:
                time.sleep(0.05)

        def waiter():
            time.sleep(0.01)  # ensure holder goes first
            with lock:
                pass

        t1 = s.thread(holder, name="holder")
        t2 = s.thread(waiter, name="waiter")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
    trace = s.trace()
    validate_trace(trace)
    contended = [ev for ev in trace if ev.etype == EventType.OBTAIN and ev.arg == 1]
    assert len(contended) == 1


def test_release_before_obtain_in_merged_trace():
    """The pre-unlock timestamping keeps waker order intact."""
    with ProfilingSession() as s:
        lock = s.lock("L")

        def holder():
            with lock:
                time.sleep(0.03)

        def waiter():
            time.sleep(0.005)
            with lock:
                pass

        threads = [s.thread(holder), s.thread(waiter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    release_seq = next(
        ev.seq for ev in trace if ev.etype == EventType.RELEASE
    )
    contended_obtain_seq = next(
        ev.seq for ev in trace if ev.etype == EventType.OBTAIN and ev.arg == 1
    )
    assert release_seq < contended_obtain_seq


def test_nonblocking_acquire():
    with ProfilingSession() as s:
        lock = s.lock("L")
        assert lock.acquire(blocking=False)
        assert not lock.locked() or lock.locked()  # held by us
        lock.release()
        assert not lock.locked()
    validate_trace(s.trace())


def test_failed_try_acquire_emits_nothing():
    with ProfilingSession() as s:
        lock = s.lock("L")

        def holder():
            with lock:
                time.sleep(0.05)

        t = s.thread(holder)
        t.start()
        time.sleep(0.02)
        assert not lock.acquire(blocking=False)
        t.join()
    trace = s.trace()
    main_lock_events = [ev for ev in trace if ev.tid == 0 and ev.obj == lock.obj]
    assert main_lock_events == []
