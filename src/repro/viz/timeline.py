"""ASCII execution timelines (paper Figs. 1 and 7).

One row per thread, one character per time bucket:

* a letter — thread holds the lock assigned that letter (legend below
  the chart); uppercase marks buckets lying on the critical path;
* ``=`` — executing outside critical sections (``#`` when on the
  critical path);
* ``.`` — blocked;
* space — before the thread started / after it exited.

The critical-path overlay makes the paper's core visual argument
directly readable: a heavily idle lock (lots of ``.``) may be entirely
off the path, while the path runs straight through uncontended critical
sections.
"""

from __future__ import annotations

import string

from repro.core.analyzer import AnalysisResult, analyze
from repro.trace.trace import Trace

__all__ = ["render_timeline"]


def render_timeline(
    trace: Trace,
    analysis: AnalysisResult | None = None,
    width: int = 100,
    show_cp: bool = True,
) -> str:
    """Render the execution as an ASCII Gantt chart with CP overlay."""
    if analysis is None:
        analysis = analyze(trace, validate=False)
    duration = trace.duration
    if duration <= 0 or width < 2:
        return "(empty trace)"
    t0 = trace.start_time
    dt = duration / width

    # Assign letters to locks in CP-importance order.
    letters = string.ascii_lowercase
    locks_ranked = [m for m in analysis.report.top_locks() if m.total_invocations > 0]
    letter_of = {m.obj: letters[i % len(letters)] for i, m in enumerate(locks_ranked)}

    cp_by_tid = analysis.critical_path.pieces_by_thread()

    lines = []
    name_w = max((len(tl.name) for tl in analysis.timelines.values()), default=2)
    for tid in sorted(analysis.timelines):
        tl = analysis.timelines[tid]
        row = []
        pieces = cp_by_tid.get(tid, [])
        for k in range(width):
            b0 = t0 + k * dt
            b1 = b0 + dt
            mid0, mid1 = max(b0, tl.start), min(b1, tl.end)
            if mid1 <= mid0 and not (tl.start == tl.end == b0):
                row.append(" ")
                continue
            ch = _classify(tl, letter_of, b0, b1)
            if show_cp and any(p.start < b1 and p.end > b0 and p.duration > 0 for p in pieces):
                ch = ch.upper() if ch.isalpha() else ("#" if ch == "=" else ch)
            row.append(ch)
        lines.append(f"{tl.name.rjust(name_w)} |{''.join(row)}|")

    legend = "  ".join(
        f"{letter_of[m.obj]}={m.name}" for m in locks_ranked if m.obj in letter_of
    )
    header = (
        f"time 0 .. {duration:.4g} ({dt:.4g}/char); "
        "UPPERCASE/# = on critical path, . = blocked"
    )
    out = [header] + lines
    if legend:
        out.append("locks: " + legend)
    return "\n".join(out)


def _classify(tl, letter_of: dict[int, str], b0: float, b1: float) -> str:
    """Dominant state of thread ``tl`` within bucket [b0, b1)."""
    hold_best = 0.0
    hold_letter = ""
    for obj, holds in tl.holds.items():
        for h in holds:
            ov = min(h.end, b1) - max(h.start, b0)
            if ov > hold_best:
                hold_best = ov
                hold_letter = letter_of.get(obj, "?")
    wait_time = 0.0
    for w in tl.waits:
        ov = min(w.end, b1) - max(w.start, b0)
        if ov > 0:
            wait_time += ov
    span = min(tl.end, b1) - max(tl.start, b0)
    if hold_best > 0 and hold_best >= wait_time:
        return hold_letter
    if wait_time > span / 2:
        return "."
    return "="
