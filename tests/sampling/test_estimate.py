"""Estimator unit tests: exact-at-rate-1, intervals, errors, rendering."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.estimate import _MIN_UNITS, estimate_report
from repro.errors import AnalysisError
from repro.sampling import downsample_trace
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def micro_trace():
    return get_workload("micro")().run(nthreads=4, seed=0).trace


@pytest.fixture(scope="module")
def radiosity_trace():
    return (
        get_workload("radiosity")(total_tasks=40, iterations=2)
        .run(nthreads=4, seed=11)
        .trace
    )


def test_rate_one_points_bit_identical_to_exact(radiosity_trace):
    exact = analyze(radiosity_trace).report
    est = estimate_report(downsample_trace(radiosity_trace, 1.0, seed=0))
    for m in exact.locks.values():
        e = est.locks[m.obj]
        assert e.cp_fraction == m.cp_fraction  # bit-for-bit, no tolerance
        assert e.ci_low == e.ci_high == e.cp_fraction
        assert e.units == m.total_invocations
        assert e.est_invocations == pytest.approx(m.total_invocations)


def test_estimate_requires_sampling_metadata_or_rate(micro_trace):
    with pytest.raises(AnalysisError, match="no sampling metadata"):
        estimate_report(micro_trace)
    # An explicit rate makes an unsampled trace estimable (rate 1.0).
    est = estimate_report(micro_trace, rate=1.0)
    exact = analyze(micro_trace).report
    assert est.locks[exact.lock("L2").obj].cp_fraction == exact.lock("L2").cp_fraction


def test_invalid_parameters_rejected(micro_trace):
    with pytest.raises(AnalysisError, match="rate"):
        estimate_report(micro_trace, rate=0.0)
    with pytest.raises(AnalysisError, match="rate"):
        estimate_report(micro_trace, rate=1.5)
    with pytest.raises(AnalysisError, match="confidence"):
        estimate_report(micro_trace, rate=1.0, confidence=1.0)


def test_intervals_are_well_formed(radiosity_trace):
    sampled = downsample_trace(radiosity_trace, 0.5, seed=3)
    est = estimate_report(sampled)
    assert est.rate == 0.5 and est.seed == 3
    for e in est.locks.values():
        assert 0.0 <= e.ci_low <= e.ci_high <= 1.0
        assert 0.0 <= e.cp_fraction <= 1.0
        assert e.ci_low <= min(e.cp_fraction, 1.0)


def test_small_samples_report_full_ignorance(radiosity_trace):
    """Below _MIN_UNITS the bootstrap has ~no variance; the interval must
    widen to [0, 1] instead of pretending certainty."""
    sampled = downsample_trace(radiosity_trace, 0.1, seed=7)
    est = estimate_report(sampled)
    small = [e for e in est.locks.values() if 0 < e.units < _MIN_UNITS]
    assert small, "expected at least one sparsely-sampled lock at rate 0.1"
    for e in small:
        assert (e.ci_low, e.ci_high) == (0.0, 1.0)


def test_estimate_is_deterministic(radiosity_trace):
    sampled = downsample_trace(radiosity_trace, 0.3, seed=5)
    a = estimate_report(sampled)
    b = estimate_report(sampled)
    for obj in a.locks:
        assert (a.locks[obj].ci_low, a.locks[obj].ci_high) == (
            b.locks[obj].ci_low,
            b.locks[obj].ci_high,
        )


def test_lock_lookup_and_top(radiosity_trace):
    est = estimate_report(downsample_trace(radiosity_trace, 1.0))
    top = est.top_locks(3)
    assert len(top) == 3
    assert top[0].cp_fraction >= top[1].cp_fraction >= top[2].cp_fraction
    assert est.lock(top[0].name) is top[0]
    with pytest.raises(AnalysisError, match="no lock named"):
        est.lock("no-such-lock")


def test_render_and_to_dict(radiosity_trace):
    est = estimate_report(downsample_trace(radiosity_trace, 0.5, seed=1))
    text = est.render(5)
    assert "statistical critical lock estimate" in text
    assert "90% CI" in text
    d = est.to_dict()
    assert d["sampling"] == {"strategy": "unit-hash", "rate": 0.5, "seed": 1}
    assert d["estimator"]["confidence"] == 0.9
    for name, row in d["locks"].items():
        assert row["ci_low"] <= row["ci_high"]
        assert est.lock(name).units == row["units"]
