"""Virtual-time discrete-event engine.

The engine owns the event queue, the cores, every thread state transition
and all trace emission.  Determinism comes from two rules:

* queue entries are ordered by ``(time, seq)`` where ``seq`` is a global
  insertion counter, so simultaneous events execute in causal insertion
  order;
* every waiter-queue decision is delegated to a deterministic policy
  object (FIFO by default).

Blocking semantics mirror Pthreads: a blocked acquirer is handed the lock
at release time (direct handoff, which is what the paper's waker
attribution rule — "the thread holding the same lock adjacently before
the blocked thread" — assumes), barriers release the whole cohort when
the last party arrives, and ``cond_wait`` atomically releases the mutex,
waits for a signal and reacquires.

Two policy seams make what-if forecasting possible
(:mod:`repro.core.replay_whatif`):

* a :class:`repro.sim.protocols.LockProtocol` decides queue discipline,
  grant order, handoff latency, spinning and priority boosting for every
  lock-like object (the default :class:`FifoProtocol` reproduces the
  historical engine bit-identically);
* a :class:`repro.sim.schedulers.Scheduler` owns the ready queue used in
  core-limited mode (``cores=N``), optionally slicing compute segments
  into round-robin quanta.  A thread that is runnable but has no core
  waits in the scheduler, and its wait is folded into its next execution
  segment (no extra trace events).

All paper experiments run with ``cores=None`` (as many cores as threads,
like the paper's 24-thread POWER7 runs) under the FIFO protocol.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import DeadlockError, SimulationError, SyncUsageError
from repro.sim import syscalls as sc
from repro.sim.protocols import FifoProtocol, LockProtocol, get_protocol
from repro.sim.schedulers import FifoScheduler, Scheduler, get_scheduler
from repro.sim.sync import (
    SimBarrier,
    SimCondition,
    SimMutex,
    SimRWLock,
    SimSemaphore,
)
from repro.sim.thread import SimThread, ThreadBody, ThreadHandle, ThreadState
from repro.sim.tracing import TraceCollector
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["Simulator", "SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of a simulation run."""

    trace: Trace
    completion_time: float
    results: dict[int, Any] = field(default_factory=dict)

    @property
    def nthreads(self) -> int:
        return len(self.trace.thread_ids)


class Simulator:
    """Discrete-event executor for simulated multithreaded programs."""

    def __init__(
        self,
        cores: int | None = None,
        seed: int = 0,
        name: str = "",
        max_events: int = 50_000_000,
        protocol: LockProtocol | str | None = None,
        scheduler: Scheduler | str | None = None,
    ):
        if cores is not None and cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.seed = seed
        self.name = name
        self.max_events = max_events
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._qseq = 0
        self._busy = 0
        self.protocol = self._resolve_protocol(protocol)
        self.protocol.bind(self)
        self.scheduler = self._resolve_scheduler(scheduler)
        self.threads: dict[int, SimThread] = {}
        self._next_tid = 0
        self._live = 0
        self._ran = False
        self.collector = TraceCollector()
        self._seedseq = np.random.SeedSequence(seed)
        self._handlers: dict[type, Callable[[SimThread, Any], None]] = {
            sc.Compute: self._handle_compute,
            sc.Acquire: self._handle_acquire,
            sc.TryAcquire: self._handle_try_acquire,
            sc.Release: self._handle_release,
            sc.BarrierWait: self._handle_barrier_wait,
            sc.CondWait: self._handle_cond_wait,
            sc.CondSignal: self._handle_cond_signal,
            sc.CondBroadcast: self._handle_cond_broadcast,
            sc.SemAcquire: self._handle_sem_acquire,
            sc.SemRelease: self._handle_sem_release,
            sc.RWAcquire: self._handle_rw_acquire,
            sc.RWRelease: self._handle_rw_release,
            sc.Spawn: self._handle_spawn,
            sc.Join: self._handle_join,
            sc.YieldCore: self._handle_yield_core,
        }

    @staticmethod
    def _resolve_protocol(protocol: LockProtocol | str | None) -> LockProtocol:
        if protocol is None:
            return FifoProtocol()
        if isinstance(protocol, str):
            return get_protocol(protocol)
        return protocol

    @staticmethod
    def _resolve_scheduler(scheduler: Scheduler | str | None) -> Scheduler:
        if scheduler is None:
            return FifoScheduler()
        if isinstance(scheduler, str):
            return get_scheduler(scheduler)
        return scheduler

    def set_protocol(self, protocol: LockProtocol | str) -> None:
        """Swap the lock protocol before the run starts.

        Exists for the replay layer, whose recorded protocol can only be
        built after the simulator's objects have been registered.
        """
        if self._ran:
            raise SimulationError("cannot change the lock protocol after run()")
        self.protocol = self._resolve_protocol(protocol)
        self.protocol.bind(self)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def _post(self, time: float, fn: Callable[[], None]) -> None:
        self._qseq += 1
        heapq.heappush(self._queue, (time, self._qseq, fn))

    # -------------------------------------------------------------- factories

    def mutex(self, name: str = "", reentrant: bool = False) -> SimMutex:
        """Create a traced mutex (``reentrant=True`` for RLock semantics)."""
        obj = self.collector.register_object(SimMutex.kind, name)
        return SimMutex(obj=obj, name=name, reentrant=reentrant)

    def barrier(self, parties: int, name: str = "") -> SimBarrier:
        """Create a traced cyclic barrier for ``parties`` threads."""
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        obj = self.collector.register_object(SimBarrier.kind, name)
        return SimBarrier(obj=obj, name=name, parties=parties)

    def condition(self, name: str = "") -> SimCondition:
        """Create a traced condition variable."""
        obj = self.collector.register_object(SimCondition.kind, name)
        return SimCondition(obj=obj, name=name)

    def semaphore(self, value: int = 1, name: str = "") -> SimSemaphore:
        """Create a traced counting semaphore with initial ``value``."""
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        obj = self.collector.register_object(SimSemaphore.kind, name)
        return SimSemaphore(obj=obj, name=name, value=value)

    def rwlock(self, name: str = "") -> SimRWLock:
        """Create a traced reader-writer lock."""
        obj = self.collector.register_object(SimRWLock.kind, name)
        return SimRWLock(obj=obj, name=name)

    # ------------------------------------------------------------- threading

    def spawn(
        self,
        fn: ThreadBody,
        *args: Any,
        name: str | None = None,
        priority: int = 0,
    ) -> ThreadHandle:
        """Create a root thread (before :meth:`run`), starting at time 0."""
        if self._ran:
            raise SimulationError("cannot spawn root threads after run()")
        return self._add_thread(fn, args, name, parent=None, priority=priority).handle

    def _add_thread(
        self,
        fn: ThreadBody,
        args: tuple,
        name: str | None,
        parent: SimThread | None,
        priority: int = 0,
    ) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        tname = name if name is not None else f"T{tid}"
        rng = np.random.Generator(np.random.PCG64(self._seedseq.spawn(1)[0]))
        thread = SimThread(self, tid, tname, fn, args, rng, priority=priority)
        self.threads[tid] = thread
        self.collector.register_thread(tid, tname)
        self._live += 1
        if parent is not None:
            self.collector.emit(self._now, parent.tid, EventType.THREAD_CREATE, arg=tid)
        self.collector.emit(self._now, tid, EventType.THREAD_START)
        thread.start_generator()
        self._make_runnable(thread, None)
        return thread

    def _finish_thread(self, thread: SimThread) -> None:
        self.collector.emit(self._now, thread.tid, EventType.THREAD_EXIT)
        thread.state = ThreadState.DONE
        self._live -= 1
        self._release_core(thread)
        for joiner in thread.joiners:
            self.collector.emit(
                self._now, joiner.tid, EventType.JOIN_END, arg=thread.tid
            )
            self._make_runnable(joiner, None)
        thread.joiners.clear()

    # --------------------------------------------------------------- cores

    def _core_available(self) -> bool:
        return self.cores is None or self._busy < self.cores

    def _grant_core(self, thread: SimThread) -> None:
        thread.has_core = True
        self._busy += 1
        thread.state = ThreadState.RUNNING

    def _dispatch(self, thread: SimThread) -> None:
        """Start a thread that just got a core (resume or finish a slice)."""
        value, thread.pending = thread.pending, None
        remaining, thread.pending_compute = thread.pending_compute, 0.0
        if remaining > 0:
            self._run_compute(thread, remaining)
        else:
            self._resume(thread, value)

    def _schedule_next_core(self) -> None:
        if len(self.scheduler) and self._core_available():
            nxt = self.scheduler.pop()
            self._grant_core(nxt)
            self._dispatch(nxt)

    def _release_core(self, thread: SimThread) -> None:
        if not thread.has_core:
            return
        thread.has_core = False
        self._busy -= 1
        self._schedule_next_core()

    def _make_runnable(self, thread: SimThread, value: Any) -> None:
        """Thread became runnable (woken or newly created)."""
        thread.block_reason = ""
        thread.blocked_on = None
        if thread.has_core:
            # Was spinning on its core while blocked: resume in place.
            thread.state = ThreadState.RUNNING
            self._resume(thread, value)
        elif self._core_available():
            self._grant_core(thread)
            self._resume(thread, value)
        else:
            thread.state = ThreadState.READY
            thread.pending = value
            self.scheduler.push(thread)

    def _block(self, thread: SimThread, reason: str, spin: float = 0.0) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_reason = reason
        thread.block_start = self._now
        if spin > 0.0 and self.cores is not None and thread.has_core:
            # Spin-then-block: burn the core for the spin window, then park.
            self._post(self._now + spin, lambda: self._spin_expire(thread))
        else:
            self._release_core(thread)

    def _spin_expire(self, thread: SimThread) -> None:
        if thread.state is ThreadState.BLOCKED and thread.has_core:
            thread.has_core = False
            self._busy -= 1
            self._schedule_next_core()

    # --------------------------------------------------------------- stepping

    def _resume(self, thread: SimThread, value: Any) -> None:
        self._post(self._now, lambda: self._step(thread, value))

    def _step(self, thread: SimThread, value: Any) -> None:
        try:
            request = thread.gen.send(value)  # type: ignore[union-attr]
        except StopIteration as stop:
            if stop.value is not None:
                thread.result = stop.value
            self._finish_thread(thread)
            return
        except Exception as exc:
            raise SimulationError(
                f"thread {thread.name} (tid {thread.tid}) raised {type(exc).__name__}: {exc}"
            ) from exc
        handler = self._handlers.get(type(request))
        if handler is None:
            raise SimulationError(
                f"thread {thread.name} yielded non-request object {request!r}"
            )
        handler(thread, request)

    # --------------------------------------------------------------- handlers

    def _handle_compute(self, thread: SimThread, req: sc.Compute) -> None:
        if req.duration == 0:
            self._resume(thread, None)
        else:
            self._run_compute(thread, req.duration)

    def _run_compute(self, thread: SimThread, duration: float) -> None:
        quantum = self.scheduler.quantum
        if quantum is not None and self.cores is not None and duration > quantum:
            self._post(
                self._now + quantum,
                lambda: self._quantum_expire(thread, duration - quantum),
            )
        else:
            self._post(self._now + duration, lambda: self._step(thread, None))

    def _quantum_expire(self, thread: SimThread, remaining: float) -> None:
        if len(self.scheduler) == 0:
            # Nobody is waiting for the core: keep computing.
            self._run_compute(thread, remaining)
            return
        thread.has_core = False
        self._busy -= 1
        thread.state = ThreadState.READY
        thread.pending = None
        thread.pending_compute = remaining
        self.scheduler.push(thread)
        self._schedule_next_core()

    # -- lock grant plumbing -------------------------------------------------

    def _emit_obtain(self, lock: Any, thread: SimThread, contended: bool) -> None:
        arg = self.protocol.obtain_arg(lock, thread, contended)
        self.collector.emit(self._now, thread.tid, EventType.OBTAIN, obj=lock.obj, arg=arg)

    def _grant_mutex(self, m: SimMutex, thread: SimThread, contended: bool) -> None:
        self._emit_obtain(m, thread, contended)
        thread.held.add(m)
        self.protocol.on_obtain(m, thread)

    def _handle_acquire(self, thread: SimThread, req: sc.Acquire) -> None:
        m = req.mutex
        if m.owner is thread:
            if not m.reentrant:
                raise SyncUsageError(
                    f"thread {thread.name} re-acquired non-reentrant mutex {m.name!r}"
                )
            m.depth += 1  # nested acquire: no trace events (outermost only)
            self._resume(thread, None)
            return
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=m.obj)
        if m.owner is None and self.protocol.grant_free(m, thread):
            m.owner = thread
            m.depth = 1
            self._grant_mutex(m, thread, contended=False)
            self._resume(thread, None)
        else:
            self.protocol.enqueue(m, thread)
            thread.blocked_on = m
            self.protocol.on_block(m, thread)
            self._block(
                thread,
                f"mutex {m.name or m.obj}",
                spin=self.protocol.spin_hold(m, thread),
            )

    def _handle_try_acquire(self, thread: SimThread, req: sc.TryAcquire) -> None:
        m = req.mutex
        if m.owner is thread and m.reentrant:
            m.depth += 1
            self._resume(thread, True)
        elif m.owner is None and self.protocol.grant_free(m, thread):
            self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=m.obj)
            m.owner = thread
            m.depth = 1
            self._grant_mutex(m, thread, contended=False)
            self._resume(thread, True)
        else:
            self._resume(thread, False)

    def _release_mutex(self, thread: SimThread, m: SimMutex) -> None:
        if m.owner is not thread:
            holder = m.owner.name if m.owner else "nobody"
            raise SyncUsageError(
                f"thread {thread.name} released mutex {m.name!r} held by {holder}"
            )
        if m.reentrant and m.depth > 1:
            m.depth -= 1  # still held; no trace events until outermost release
            return
        m.depth = 0
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=m.obj)
        thread.held.discard(m)
        self.protocol.on_release(m, thread)
        nxt = self.protocol.select(m) if m.waiters else None
        if nxt is None:
            m.owner = None
            return
        m.owner = nxt
        m.depth = 1
        delay = self.protocol.handoff_latency(m, nxt)
        if delay > 0:
            self._post(self._now + delay, lambda: self._complete_handoff(m, nxt))
        else:
            self._complete_handoff(m, nxt)

    def _complete_handoff(self, m: SimMutex, nxt: SimThread) -> None:
        self._grant_mutex(m, nxt, contended=True)
        self._make_runnable(nxt, None)

    def _handle_release(self, thread: SimThread, req: sc.Release) -> None:
        self._release_mutex(thread, req.mutex)
        self._resume(thread, None)

    def _handle_barrier_wait(self, thread: SimThread, req: sc.BarrierWait) -> None:
        b = req.barrier
        gen = b.generation
        self.collector.emit(self._now, thread.tid, EventType.BARRIER_ARRIVE, obj=b.obj, arg=gen)
        b.arrived.append(thread)
        if len(b.arrived) == b.parties:
            cohort, b.arrived = b.arrived, []
            b.generation += 1
            for t in cohort:
                self.collector.emit(
                    self._now, t.tid, EventType.BARRIER_DEPART, obj=b.obj, arg=gen
                )
            for t in cohort:
                if t is thread:
                    self._resume(t, None)
                else:
                    self._make_runnable(t, None)
        else:
            self._block(thread, f"barrier {b.name or b.obj}")

    def _handle_cond_wait(self, thread: SimThread, req: sc.CondWait) -> None:
        cv, m = req.cond, req.mutex
        if m.owner is not thread:
            raise SyncUsageError(
                f"thread {thread.name} called cond_wait on {cv.name!r} "
                f"without holding mutex {m.name!r}"
            )
        if m.reentrant and m.depth > 1:
            raise SyncUsageError(
                f"thread {thread.name} called cond_wait on {cv.name!r} with "
                f"mutex {m.name!r} held recursively (depth {m.depth})"
            )
        self.collector.emit(self._now, thread.tid, EventType.COND_BLOCK, obj=cv.obj)
        cv.waiters.append((thread, m))
        # Atomically release the mutex; the waker attribution for the block
        # is the future signaller, not the next lock holder.
        self._release_mutex(thread, m)
        self._block(thread, f"cond {cv.name or cv.obj}")

    def _wake_cond_waiter(
        self, signaler: SimThread, cv: SimCondition, waiter: SimThread, m: SimMutex
    ) -> None:
        self.collector.emit(
            self._now, waiter.tid, EventType.COND_WAKE, obj=cv.obj, arg=signaler.tid
        )
        # The woken thread immediately reacquires the mutex (blocking).
        self.collector.emit(self._now, waiter.tid, EventType.ACQUIRE, obj=m.obj)
        if m.owner is None and self.protocol.grant_free(m, waiter):
            m.owner = waiter
            m.depth = 1
            self._grant_mutex(m, waiter, contended=False)
            self._make_runnable(waiter, None)
        else:
            self.protocol.enqueue(m, waiter)
            waiter.blocked_on = m
            waiter.block_start = self._now
            self.protocol.on_block(m, waiter)
            waiter.block_reason = f"mutex {m.name or m.obj}"

    def _handle_cond_signal(self, thread: SimThread, req: sc.CondSignal) -> None:
        cv = req.cond
        n = 1 if cv.waiters else 0
        self.collector.emit(self._now, thread.tid, EventType.COND_SIGNAL, obj=cv.obj, arg=n)
        if cv.waiters:
            waiter, m = self.protocol.select_cond_waiter(cv)
            self._wake_cond_waiter(thread, cv, waiter, m)
        self._resume(thread, n)

    def _handle_cond_broadcast(self, thread: SimThread, req: sc.CondBroadcast) -> None:
        cv = req.cond
        n = len(cv.waiters)
        self.collector.emit(self._now, thread.tid, EventType.COND_BROADCAST, obj=cv.obj, arg=n)
        while cv.waiters:
            waiter, m = self.protocol.select_cond_waiter(cv)
            self._wake_cond_waiter(thread, cv, waiter, m)
        self._resume(thread, n)

    def _handle_sem_acquire(self, thread: SimThread, req: sc.SemAcquire) -> None:
        sem = req.sem
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=sem.obj)
        if sem.value > 0 and self.protocol.grant_free(sem, thread):
            sem.value -= 1
            self._emit_obtain(sem, thread, contended=False)
            self._resume(thread, None)
            self._drain_sem_waiters(sem)
        else:
            self.protocol.enqueue(sem, thread)
            thread.blocked_on = sem
            self.protocol.on_block(sem, thread)
            self._block(
                thread,
                f"semaphore {sem.name or sem.obj}",
                spin=self.protocol.spin_hold(sem, thread),
            )

    def _drain_sem_waiters(self, sem: SimSemaphore) -> None:
        # Only reachable with value > 0 *and* queued waiters, which the
        # FIFO baseline never produces: an order-constrained protocol may
        # queue an early arriver, whose turn can come while value is still
        # positive (after the rightful thread took its grant).
        while sem.value > 0 and sem.waiters:
            nxt = self.protocol.select(sem)
            if nxt is None:
                return
            sem.value -= 1
            self._emit_obtain(sem, nxt, contended=True)
            self._make_runnable(nxt, None)

    def _handle_sem_release(self, thread: SimThread, req: sc.SemRelease) -> None:
        sem = req.sem
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=sem.obj)
        nxt = self.protocol.select(sem) if sem.waiters else None
        if nxt is None:
            sem.value += 1
            self._drain_sem_waiters(sem)
        else:
            delay = self.protocol.handoff_latency(sem, nxt)
            if delay > 0:
                self._post(self._now + delay, lambda: self._complete_sem_handoff(sem, nxt))
            else:
                self._complete_sem_handoff(sem, nxt)
        self._resume(thread, None)

    def _complete_sem_handoff(self, sem: SimSemaphore, nxt: SimThread) -> None:
        self._emit_obtain(sem, nxt, contended=True)
        self._make_runnable(nxt, None)

    def _handle_rw_acquire(self, thread: SimThread, req: sc.RWAcquire) -> None:
        rw, write = req.rwlock, req.write
        mode = 1 if write else 0
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=rw.obj, arg=mode)
        if self.protocol.rw_can_grant(rw, thread, write):
            if write:
                rw.writer = thread
            else:
                rw.readers.add(thread)
            self._emit_obtain(rw, thread, contended=False)
            thread.held.add(rw)
            self.protocol.on_obtain(rw, thread)
            self._resume(thread, None)
            self._drain_rw_waiters(rw)
        else:
            self.protocol.rw_enqueue(rw, thread, write)
            thread.blocked_on = rw
            self.protocol.on_block(rw, thread)
            self._block(
                thread,
                f"rwlock {rw.name or rw.obj}",
                spin=self.protocol.spin_hold(rw, thread),
            )

    def _handle_rw_release(self, thread: SimThread, req: sc.RWRelease) -> None:
        rw, write = req.rwlock, req.write
        mode = 1 if write else 0
        if write:
            if rw.writer is not thread:
                raise SyncUsageError(
                    f"thread {thread.name} write-released rwlock {rw.name!r} it does not hold"
                )
            rw.writer = None
        else:
            if thread not in rw.readers:
                raise SyncUsageError(
                    f"thread {thread.name} read-released rwlock {rw.name!r} it does not hold"
                )
            rw.readers.discard(thread)
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=rw.obj, arg=mode)
        thread.held.discard(rw)
        self.protocol.on_release(rw, thread)
        self._drain_rw_waiters(rw)
        self._resume(thread, None)

    def _drain_rw_waiters(self, rw: SimRWLock) -> None:
        for waiter, _wants_write in self.protocol.rw_drain(rw):
            self._emit_obtain(rw, waiter, contended=True)
            waiter.held.add(rw)
            self.protocol.on_obtain(rw, waiter)
            self._make_runnable(waiter, None)

    def _handle_spawn(self, thread: SimThread, req: sc.Spawn) -> None:
        child = self._add_thread(
            req.fn, req.args, req.name, parent=thread, priority=req.priority
        )
        self._resume(thread, child.handle)

    def _handle_join(self, thread: SimThread, req: sc.Join) -> None:
        target = req.handle._thread
        self.collector.emit(self._now, thread.tid, EventType.JOIN_BEGIN, arg=target.tid)
        if target.state is ThreadState.DONE:
            self.collector.emit(self._now, thread.tid, EventType.JOIN_END, arg=target.tid)
            self._resume(thread, None)
        else:
            target.joiners.append(thread)
            self._block(thread, f"join {target.name}")

    def _handle_yield_core(self, thread: SimThread, req: sc.YieldCore) -> None:
        if self.cores is None or len(self.scheduler) == 0:
            self._resume(thread, None)
            return
        thread.has_core = False
        self._busy -= 1
        thread.state = ThreadState.READY
        thread.pending = None
        self.scheduler.push(thread)
        self._schedule_next_core()

    # --------------------------------------------------------------- running

    def run(self, meta: dict[str, Any] | None = None) -> SimResult:
        """Execute to completion and return the trace and results."""
        if self._ran:
            raise SimulationError("Simulator.run() may only be called once")
        self._ran = True
        processed = 0
        while self._queue:
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelock in the simulated program"
                )
            time, _, fn = heapq.heappop(self._queue)
            self._now = time
            fn()
        blocked = {
            t.tid: t.block_reason or t.state.value
            for t in self.threads.values()
            if t.state in (ThreadState.BLOCKED, ThreadState.READY)
        }
        if blocked:
            raise DeadlockError(blocked)
        full_meta = {
            "name": self.name,
            "cores": self.cores,
            "seed": self.seed,
            "nthreads": len(self.threads),
        }
        if self.protocol.name != "fifo":
            full_meta["protocol"] = self.protocol.name
        if self.scheduler.name != "fifo":
            full_meta["scheduler"] = self.scheduler.name
        full_meta.update(meta or {})
        trace = self.collector.build(full_meta)
        results = {tid: t.result for tid, t in self.threads.items()}
        return SimResult(trace=trace, completion_time=trace.duration, results=results)
