"""Workload registry and base behaviour."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import available_workloads, get_workload
from repro.workloads.base import Workload, register


def test_all_paper_workloads_registered():
    names = available_workloads()
    for expected in (
        "micro",
        "radiosity",
        "tsp",
        "uts",
        "water-nsquared",
        "volrend",
        "raytrace",
        "openldap",
        "synthetic",
    ):
        assert expected in names


def test_get_unknown_workload():
    with pytest.raises(WorkloadError, match="unknown workload"):
        get_workload("nope")


def test_duplicate_registration_rejected():
    class Dup(Workload):
        name = "micro"

        def build(self, prog, nthreads):
            pass

    with pytest.raises(WorkloadError, match="duplicate"):
        register(Dup)


def test_unnamed_registration_rejected():
    class NoName(Workload):
        def build(self, prog, nthreads):
            pass

    with pytest.raises(WorkloadError, match="no name"):
        register(NoName)


def test_invalid_nthreads():
    wl = get_workload("micro")()
    with pytest.raises(WorkloadError, match="nthreads"):
        wl.run(nthreads=0)


def test_describe_captures_scalars():
    wl = get_workload("micro")()
    desc = wl.describe()
    assert desc["cs1"] == 2.0
    assert desc["cs2"] == 2.5


def test_trace_meta_includes_params():
    res = get_workload("micro")().run(nthreads=2)
    assert res.trace.meta["workload"] == "micro"
    assert res.trace.meta["params"]["cs1"] == 2.0
