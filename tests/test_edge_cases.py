"""Edge-case sweep: error paths and options not covered elsewhere."""

import pytest

from repro.cli import main
from repro.core.analyzer import analyze
from repro.errors import DeadlockError, ReproError, TraceValidationError
from repro.sim import Program
from repro.trace.builder import TraceBuilder
from repro.viz.timeline import render_timeline

from tests.conftest import make_micro_program


class TestErrorTypes:
    def test_hierarchy(self):
        from repro import errors

        for name in (
            "TraceError", "TraceFormatError", "TraceValidationError",
            "SimulationError", "DeadlockError", "SyncUsageError",
            "AnalysisError", "WakerResolutionError", "WorkloadError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_validation_error_truncates_message(self):
        problems = [f"problem {i}" for i in range(20)]
        err = TraceValidationError(problems)
        assert "+15 more" in str(err)
        assert len(err.problems) == 20

    def test_deadlock_error_lists_threads(self):
        err = DeadlockError({3: "mutex A", 1: "barrier B"})
        assert "T1: barrier B" in str(err)
        assert "T3: mutex A" in str(err)


class TestTimelineOptions:
    def test_show_cp_false_has_no_uppercase_marks(self):
        trace = make_micro_program().run().trace
        chart = render_timeline(trace, width=40, show_cp=False)
        body = "\n".join(ln for ln in chart.splitlines() if "|" in ln)
        assert "A" not in body and "#" not in body
        assert "a" in body  # lock letters still rendered, lowercase

    def test_tiny_width(self):
        trace = make_micro_program().run().trace
        assert render_timeline(trace, width=2).count("|") >= 8

    def test_width_one_returns_placeholder(self):
        trace = make_micro_program().run().trace
        assert render_timeline(trace, width=1) == "(empty trace)"


class TestReportOptions:
    def test_render_unlimited(self):
        report = analyze(make_micro_program().run().trace).report
        assert "L1" in report.render(n=None)

    def test_top_locks_zero(self):
        report = analyze(make_micro_program().run().trace).report
        assert report.top_locks(0) == []


class TestCLIErrors:
    def test_whatif_unknown_lock(self, tmp_path, capsys):
        path = tmp_path / "m.clt"
        main(["run", "micro", "-t", "2", "-o", str(path)])
        capsys.readouterr()
        assert main(["whatif", str(path), "nope"]) == 1
        assert "no lock named" in capsys.readouterr().err

    def test_analyze_invalid_trace_fails_validation(self, tmp_path, capsys):
        from repro.trace import write_trace

        b = TraceBuilder()
        t = b.thread()
        t.start(at=0.0)  # no exit
        bad = b.build(validate=False)
        path = write_trace(bad, tmp_path / "bad.clt")
        assert main(["analyze", str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_analyze_no_validate_succeeds(self, tmp_path, capsys):
        from repro.trace import write_trace

        b = TraceBuilder()
        t = b.thread()
        t.start(at=0.0)
        bad = b.build(validate=False)
        path = write_trace(bad, tmp_path / "bad.clt")
        assert main(["analyze", str(path), "--no-validate"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestSimulatorEdges:
    def test_zero_thread_program(self):
        result = Program().run()
        assert result.completion_time == 0.0
        assert len(result.trace) == 0

    def test_thousands_of_simultaneous_wakeups(self):
        prog = Program()
        bar = prog.barrier(200, "big")

        def body(env, i):
            yield env.barrier_wait(bar)
            yield env.compute(1.0)

        prog.spawn_workers(200, body)
        assert prog.run().completion_time == 1.0

    def test_long_handoff_chain_no_recursion(self):
        # 2000 sequential lock handoffs at distinct times must not hit
        # recursion limits (the engine is queue-driven, not recursive).
        prog = Program()
        lock = prog.mutex("L")

        def body(env, i):
            yield env.compute(i * 1e-6)
            yield env.acquire(lock)
            yield env.release(lock)

        prog.spawn_workers(2000, body)
        result = prog.run()
        analysis = analyze(result.trace)
        assert analysis.critical_path.coverage_error == pytest.approx(0.0, abs=1e-9)

    def test_handle_repr_and_sim_meta(self):
        prog = Program(name="x")
        h = prog.spawn(lambda env: (yield env.compute(1.0)), name="w")
        assert "w" in repr(h)
        result = prog.run()
        assert result.nthreads == 1
