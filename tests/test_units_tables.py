"""Unit helpers: duration/percent formatting and table rendering."""

import pytest

from repro.tables import format_table
from repro.units import format_duration, format_percent, ns_to_time, time_to_ns


class TestUnits:
    def test_ns_roundtrip(self):
        assert time_to_ns(ns_to_time(123_456_789)) == 123_456_789

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0"),
            (5e-9, "5ns"),
            (2.5e-6, "2.50us"),
            (3.25e-3, "3.25ms"),
            (1.5, "1.500s"),
            (-1.5, "-1.500s"),
        ],
    )
    def test_format_duration(self, value, expected):
        assert format_duration(value) == expected

    def test_format_percent(self):
        assert format_percent(0.3915) == "39.15%"
        assert format_percent(1.0, digits=0) == "100%"


class TestTables:
    def test_alignment(self):
        text = format_table(
            ["Name", "Value"],
            [["alpha", 1], ["b", 22]],
            title="t",
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("Name")
        assert set(lines[2]) == {"-"}
        # Numeric column right-aligned: both rows end at the same column.
        assert lines[3].rstrip().endswith("1")
        assert lines[4].rstrip().endswith("22")
        assert len(lines[3].rstrip()) == len(lines[4].rstrip())

    def test_custom_alignment(self):
        text = format_table(
            ["A", "B"], [["x", "y"]], align_right=[True, False]
        )
        assert "x" in text and "y" in text

    def test_wide_cells_stretch_columns(self):
        text = format_table(["H"], [["very-long-cell-content"]])
        sep = text.splitlines()[1]
        assert len(sep) >= len("very-long-cell-content")

    def test_empty_rows(self):
        text = format_table(["A", "B"], [])
        assert "A" in text
