"""Extension: scalability forecast from a small profile vs measured scaling.

The paper's motivation is identifying "what critical section bottlenecks
will show up if more threads are employed".  This bench profiles
Radiosity and TSP at 4 threads, forecasts the bottleneck lock and the
completion-time roofline, and checks both against actual 16- and
24-thread runs.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.forecast import forecast
from repro.tables import format_table
from repro.workloads import Radiosity, TSP

from conftest import run_once


@pytest.mark.benchmark(group="forecast")
def test_forecast_vs_measured(benchmark, show):
    def experiment():
        rows = []
        checks = []
        for name, make, expected_lock in (
            ("radiosity", lambda: Radiosity(), "tq[0].qlock"),
            ("tsp", lambda: TSP(), "Q.qlock"),
        ):
            profile = analyze(make().run(nthreads=4, seed=0).trace)
            f = forecast(profile)
            first = f.first_saturating_lock()
            checks.append(first.name == expected_lock)
            for n in (16, 24):
                measured = make().run(nthreads=n, seed=0).completion_time
                bound = f.completion_time(n)
                rows.append(
                    [
                        f"{name} @{n}",
                        first.name,
                        f"{bound:.2f}",
                        f"{measured:.2f}",
                        f"{measured / bound:.2f}x",
                    ]
                )
                checks.append(bound <= measured * 1.05)  # valid lower bound
            # The forecast's predicted bottleneck matches the measured one.
            measured_top = analyze(
                make().run(nthreads=24, seed=0).trace
            ).report.top_locks(1)[0].name
            checks.append(measured_top == expected_lock)
        return rows, checks

    rows, checks = run_once(benchmark, experiment)
    show(format_table(
        ["Run", "Forecast bottleneck (from 4T profile)", "Forecast bound",
         "Measured", "Measured/bound"],
        rows,
        title="[forecast] roofline forecast from a 4-thread profile",
    ))
    assert all(checks)
