"""Critical lock analysis — SC 2012 reproduction.

A library for diagnosing critical section bottlenecks in multithreaded
applications by identifying the locks on the execution's *critical path*
(critical locks) and quantifying them with contention probability and hot
critical section size, per Chen & Stenström, "Critical Lock Analysis"
(SC 2012).

Top-level convenience imports::

    from repro import Program, analyze

    prog = Program(name="demo")
    ...
    result = prog.run()
    report = analyze(result.trace)
    print(report.report.render())
"""

from repro.core.analyzer import AnalysisResult, analyze
from repro.replay import reconstruct
from repro.sim import Program
from repro.trace import Trace, TraceBuilder, read_trace, write_trace

__version__ = "1.0.0"

__all__ = [
    "Program",
    "Trace",
    "TraceBuilder",
    "analyze",
    "AnalysisResult",
    "reconstruct",
    "read_trace",
    "write_trace",
    "__version__",
]
