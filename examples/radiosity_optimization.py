#!/usr/bin/env python
"""The paper's Radiosity case study end to end (§V.D).

1. Profile Radiosity at increasing thread counts; watch ``tq[0].qlock``
   come to dominate the critical path while wait-time metrics stay low.
2. Quantify the bottleneck with the paper's two metrics (contention
   probability and hot-critical-section size along the path).
3. Apply the fix the paper validates — replace each task queue with a
   Michael-Scott two-lock queue — and measure the end-to-end gain.

Run:  python examples/radiosity_optimization.py  [--threads 24]
"""

import argparse

from repro import analyze
from repro.tables import format_table
from repro.units import format_percent
from repro.workloads import Radiosity


def profile_across_threads(max_threads: int) -> None:
    print("=== 1. identification: tq[0].qlock vs thread count ===")
    rows = []
    counts = [n for n in (4, 8, 16, 24) if n <= max_threads]
    for n in counts:
        analysis = analyze(Radiosity().run(nthreads=n, seed=0).trace)
        m = analysis.report.lock("tq[0].qlock")
        rows.append(
            [n, format_percent(m.cp_fraction), format_percent(m.avg_wait_fraction)]
        )
    print(format_table(["Threads", "CP Time % (TYPE 1)", "Wait Time % (TYPE 2)"], rows))
    print("note: an idleness-based profiler would keep reporting this lock as minor.\n")


def quantify(nthreads: int):
    print(f"=== 2. quantification at {nthreads} threads ===")
    result = Radiosity().run(nthreads=nthreads, seed=0)
    analysis = analyze(result.trace)
    print(analysis.report.render_type1(3))
    print()
    m = analysis.report.lock("tq[0].qlock")
    print(
        f"tq[0].qlock: {m.invocations_on_cp} invocations on the critical path "
        f"({m.invocation_increase:.1f}x the per-thread average), "
        f"{format_percent(m.cont_prob_on_cp)} of them contended."
    )
    predicted = analysis.what_if("tq[0].qlock", factor=0.0)
    print(f"what-if upper bound: {predicted}")
    print()
    return result.completion_time


def optimize(nthreads: int, baseline_time: float) -> None:
    print(f"=== 3. validation: two-lock queues at {nthreads} threads ===")
    optimized = Radiosity(two_lock_queues=True).run(nthreads=nthreads, seed=0)
    analysis = analyze(optimized.trace)
    gain = baseline_time / optimized.completion_time - 1.0
    print(
        f"original {baseline_time:.2f} -> optimized {optimized.completion_time:.2f} "
        f"({gain:+.1%} end to end; the paper measured ~7%)"
    )
    top = analysis.report.top_locks(1)[0]
    print(
        f"new top lock: {top.name} at {format_percent(top.cp_fraction)} of the "
        "critical path — the path shifted, exactly as the paper observes."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=24)
    args = parser.parse_args()

    profile_across_threads(args.threads)
    baseline = quantify(args.threads)
    optimize(args.threads, baseline)


if __name__ == "__main__":
    main()
