"""The backward critical-path walk (paper Fig. 2).

Starting from the last segment of the last finished thread, walk
backwards; whenever the current position follows a blocked interval, jump
to the thread whose event released the blocked thread; otherwise keep
walking the same thread.  The walk yields contiguous execution *pieces*
that tile the whole execution, so their durations sum exactly to the
end-to-end completion time (asserted up to clock skew for real traces).

Termination is guaranteed because the cursor's event sequence number
strictly decreases at every jump (a waker's event always precedes the
wake it causes), which also makes the walk robust to chains of
simultaneous events in virtual-time traces.

:func:`backward_walk` exposes the walk itself with an optional shard
boundary (``lo_seq``); the sharded analyzer (:mod:`repro.core.shard`)
runs one bounded walk per shard and stitches the segments.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.model import CPPiece, Junction, ThreadTimeline, Wait, WaitKind
from repro.errors import AnalysisError
from repro.core.segments import build_timelines
from repro.core.wakers import WakerTable
from repro.trace.trace import Trace

__all__ = ["CriticalPath", "WalkSegment", "backward_walk", "compute_critical_path"]


@dataclass(frozen=True)
class CriticalPath:
    """The critical path of one execution.

    ``pieces`` are in forward time order; ``junctions`` mark the thread
    crossings between consecutive pieces (``len(junctions) ==
    len(pieces) - 1``); ``waits`` are the blocked intervals the walk
    traversed (one per synchronization junction, none for creations).
    """

    pieces: list[CPPiece]
    junctions: list[Junction]
    waits: list[Wait]
    trace_duration: float

    @property
    def length(self) -> float:
        """Sum of piece durations — the critical path length."""
        return sum(p.duration for p in self.pieces)

    @property
    def start(self) -> float:
        return self.pieces[0].start if self.pieces else 0.0

    @property
    def end(self) -> float:
        return self.pieces[-1].end if self.pieces else 0.0

    @property
    def coverage_error(self) -> float:
        """|critical path length − trace duration|.

        Exactly 0 for simulator traces; bounded by accumulated
        release-to-obtain clock skew for real-thread traces.
        """
        return abs(self.length - self.trace_duration)

    def pieces_by_thread(self) -> dict[int, list[CPPiece]]:
        """Group pieces per thread (each group sorted by time)."""
        out: dict[int, list[CPPiece]] = {}
        for p in self.pieces:
            out.setdefault(p.tid, []).append(p)
        return out

    def junction_count(self, obj: int, kind: WaitKind | None = None) -> int:
        """Number of crossings attributed to a synchronization object."""
        return sum(
            1
            for j in self.junctions
            if j.obj == obj and (kind is None or j.kind == kind)
        )


@dataclass
class _Cursor:
    tid: int
    time: float
    seq: int


@dataclass(frozen=True)
class WalkSegment:
    """One backward walk's output, in forward order.

    ``boundary`` records how the walk terminated: ``"open"`` when it
    fell off a thread's (possibly shard-local) start with no creator to
    jump to, ``"jump"`` when it traversed a wait whose waker lies before
    ``lo_seq`` — i.e. before the shard — and stopped there.  A whole-
    trace walk always terminates ``"open"``, at a root thread's start.
    """

    pieces: list[CPPiece]
    junctions: list[Junction]
    waits: list[Wait]
    boundary: str  # "open" | "jump"


def backward_walk(
    trace: Trace,
    timelines: dict[int, ThreadTimeline],
    lo_seq: int | None = None,
) -> WalkSegment:
    """The paper's backward walk over a trace (or one shard of it).

    With ``lo_seq`` set, the walk treats any wait whose waker seq is
    below it as a shard boundary: the piece, junction and wait are
    recorded as usual but the cursor does not leave the shard.  The
    sharded analyzer stitches the resulting segments end to end.
    """
    # Pre-extract each thread's wake-seq array for bisection.
    wake_seqs: dict[int, list[int]] = {
        tid: [w.wake_seq for w in tl.waits] for tid, tl in timelines.items()
    }

    last = trace[len(trace) - 1]
    cur = _Cursor(tid=last.tid, time=last.time, seq=last.seq)
    pieces: list[CPPiece] = []
    junctions: list[Junction] = []
    waits: list[Wait] = []
    boundary = "open"

    # For traces produced by the simulator or the instrumentation layer a
    # waker's event always precedes the wake, so the cursor seq strictly
    # decreases and the walk visits at most one piece per wake event.  The
    # guard protects against hand-built traces that violate that ordering.
    max_steps = len(trace) + len(timelines) + 1

    while True:
        if len(pieces) > max_steps:
            raise AnalysisError(
                "backward walk did not terminate: trace has wake events "
                "recorded before their wakers"
            )
        tl = timelines[cur.tid]
        seqs = wake_seqs[cur.tid]
        idx = bisect_right(seqs, cur.seq) - 1
        if idx >= 0:
            w = tl.waits[idx]
            pieces.append(CPPiece(tid=cur.tid, start=w.end, end=cur.time))
            junctions.append(
                Junction(
                    time=w.end,
                    from_tid=w.waker_tid,
                    to_tid=cur.tid,
                    kind=w.kind,
                    obj=w.obj,
                )
            )
            waits.append(w)
            if lo_seq is not None and w.waker_seq < lo_seq:
                boundary = "jump"
                break
            cur = _Cursor(tid=w.waker_tid, time=w.waker_time, seq=w.waker_seq)
        else:
            pieces.append(CPPiece(tid=cur.tid, start=tl.start, end=cur.time))
            if tl.creator_tid is not None:
                junctions.append(
                    Junction(
                        time=tl.start,
                        from_tid=tl.creator_tid,
                        to_tid=cur.tid,
                        kind=None,
                        obj=-1,
                    )
                )
                cur = _Cursor(tl.creator_tid, tl.create_time, tl.create_seq)
            else:
                break

    pieces.reverse()
    junctions.reverse()
    waits.reverse()
    return WalkSegment(
        pieces=pieces, junctions=junctions, waits=waits, boundary=boundary
    )


def compute_critical_path(
    trace: Trace,
    timelines: dict[int, ThreadTimeline] | None = None,
    wakers: WakerTable | None = None,
) -> CriticalPath:
    """Run the backward walk and return the critical path.

    ``timelines`` may be passed to reuse a previous
    :func:`repro.core.segments.build_timelines` result.
    """
    if len(trace) == 0:
        return CriticalPath(pieces=[], junctions=[], waits=[], trace_duration=0.0)
    if timelines is None:
        timelines = build_timelines(trace, wakers)
    walk = backward_walk(trace, timelines)
    return CriticalPath(
        pieces=walk.pieces,
        junctions=walk.junctions,
        waits=walk.waits,
        trace_duration=trace.duration,
    )
