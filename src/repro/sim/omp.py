"""OpenMP-style constructs on the simulator.

The paper notes (footnote 1) that its method applies beyond Pthreads to
any lock-based threading model such as OpenMP.  This module provides the
OpenMP surface a workload would use — ``parallel_for`` with static or
dynamic scheduling, ``critical`` sections and ``reductions`` — built
entirely from the traced primitives, so critical lock analysis sees
OpenMP programs with no extra support:

* dynamic scheduling takes chunks from a shared index guarded by a
  schedule lock (the classic ``omp for schedule(dynamic)`` bottleneck);
* ``omp critical`` maps to a named mutex;
* reductions accumulate privately and merge under the critical lock.

Example::

    omp = OpenMP(prog, nthreads=8)

    def body(env, i, ctx):
        yield env.compute(cost(i))
        yield from ctx.critical(env, "update", lambda: totals.append(i), cost=0.01)

    omp.parallel_for(range(1000), body, schedule="dynamic", chunk=16)
    prog.run()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from repro.errors import WorkloadError
from repro.sim import syscalls as sc
from repro.sim.program import Program
from repro.sim.sync import SimMutex

__all__ = ["OpenMP", "OMPContext"]


@dataclass
class _DynamicSchedule:
    items: Sequence[Any]
    chunk: int
    next_index: int = 0


class OMPContext:
    """Per-parallel-region handle passed to loop bodies."""

    def __init__(self, omp: "OpenMP", tid_index: int):
        self._omp = omp
        self.thread_num = tid_index

    def critical(
        self,
        env,
        name: str,
        action: Callable[[], Any] | None = None,
        cost: float = 0.0,
    ) -> Generator[sc.Request, Any, Any]:
        """``#pragma omp critical [name]`` — run ``action`` under the lock.

        Use as ``yield from ctx.critical(env, "update", fn, cost=0.01)``.
        """
        lock = self._omp._critical_lock(name)
        yield env.acquire(lock)
        if cost:
            yield env.compute(cost)
        result = action() if action is not None else None
        yield env.release(lock)
        return result


class OpenMP:
    """An OpenMP-flavoured layer over a :class:`Program`."""

    def __init__(self, prog: Program, nthreads: int):
        if nthreads < 1:
            raise WorkloadError(f"nthreads must be >= 1, got {nthreads}")
        self.prog = prog
        self.nthreads = nthreads
        self._criticals: dict[str, SimMutex] = {}
        self._region = 0

    def _critical_lock(self, name: str) -> SimMutex:
        if name not in self._criticals:
            self._criticals[name] = self.prog.mutex(f"omp_critical:{name}")
        return self._criticals[name]

    def parallel_for(
        self,
        items: Sequence[Any],
        body: Callable[..., Generator[sc.Request, Any, Any]],
        schedule: str = "static",
        chunk: int = 1,
        schedule_cost: float = 0.002,
        name: str | None = None,
    ) -> None:
        """Spawn a team executing ``body(env, item, ctx)`` over ``items``.

        ``schedule="static"`` pre-partitions round-robin by chunk (no
        synchronization); ``"dynamic"`` pulls chunks from a shared index
        under a per-region schedule lock, whose critical sections the
        analysis will see.  There is an implicit barrier at region end
        (the team threads simply exit; callers spawn per region).
        """
        if schedule not in ("static", "dynamic"):
            raise WorkloadError(f"unknown schedule {schedule!r}")
        if chunk < 1:
            raise WorkloadError(f"chunk must be >= 1, got {chunk}")
        self._region += 1
        region_name = name or f"omp_for_{self._region}"
        items = list(items)

        if schedule == "static":
            assignments = [
                [
                    items[i]
                    for base in range(t * chunk, len(items), self.nthreads * chunk)
                    for i in range(base, min(base + chunk, len(items)))
                ]
                for t in range(self.nthreads)
            ]

            def static_worker(env, t):
                ctx = OMPContext(self, t)
                for item in assignments[t]:
                    yield from _drive(body, env, item, ctx)

            for t in range(self.nthreads):
                self.prog.spawn(static_worker, t, name=f"{region_name}-t{t}")
            return

        state = _DynamicSchedule(items=items, chunk=chunk)
        sched_lock = self.prog.mutex(f"{region_name}.schedule_lock")

        def dynamic_worker(env, t):
            ctx = OMPContext(self, t)
            while True:
                yield env.acquire(sched_lock)
                yield env.compute(schedule_cost)
                lo = state.next_index
                hi = min(lo + state.chunk, len(state.items))
                state.next_index = hi
                yield env.release(sched_lock)
                if lo >= hi:
                    return
                for item in state.items[lo:hi]:
                    yield from _drive(body, env, item, ctx)

        for t in range(self.nthreads):
            self.prog.spawn(dynamic_worker, t, name=f"{region_name}-t{t}")


def _drive(body, env, item, ctx):
    """Run one body invocation, tolerating non-generator bodies."""
    out = body(env, item, ctx)
    if out is not None and hasattr(out, "__iter__"):
        result = yield from out
        return result
    return out
