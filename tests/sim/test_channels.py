"""Bounded channels on the simulator."""

import pytest

from repro.errors import WorkloadError
from repro.sim import Program
from repro.sim.channels import CLOSED, Channel
from repro.trace.validate import validate_trace


def test_put_get_fifo():
    prog = Program()
    ch = Channel(prog, capacity=4, name="c")
    got = []

    def producer(env):
        for i in range(6):
            yield env.compute(0.1)
            yield from ch.put(env, i)
        yield from ch.close(env)

    def consumer(env):
        while True:
            item = yield from ch.get(env)
            if item is CLOSED:
                return
            got.append(item)

    prog.spawn(producer)
    prog.spawn(consumer)
    result = prog.run()
    assert got == list(range(6))
    validate_trace(result.trace)


def test_bounded_capacity_blocks_producer():
    prog = Program()
    ch = Channel(prog, capacity=2, name="c")
    put_times = []

    def producer(env):
        for i in range(4):
            yield from ch.put(env, i)
            put_times.append(env.now)
        yield from ch.close(env)

    def slow_consumer(env):
        while True:
            yield env.compute(1.0)
            item = yield from ch.get(env)
            if item is CLOSED:
                return

    prog.spawn(producer)
    prog.spawn(slow_consumer)
    prog.run()
    # First two puts immediate; the rest gated by consumption (1/sec).
    assert put_times[0] == 0.0 and put_times[1] == 0.0
    assert put_times[2] >= 1.0
    assert put_times[3] >= 2.0


def test_close_wakes_all_getters():
    prog = Program()
    ch = Channel(prog, capacity=2, name="c")
    results = []

    def getter(env, i):
        item = yield from ch.get(env)
        results.append(item)

    def closer(env):
        yield env.compute(1.0)
        yield from ch.close(env)

    prog.spawn_workers(3, getter)
    prog.spawn(closer)
    prog.run()
    assert results == [CLOSED] * 3


def test_drain_after_close():
    prog = Program()
    ch = Channel(prog, capacity=8, name="c")
    got = []

    def producer(env):
        for i in range(3):
            yield from ch.put(env, i)
        yield from ch.close(env)

    def late_consumer(env):
        yield env.compute(1.0)
        while True:
            item = yield from ch.get(env)
            if item is CLOSED:
                return
            got.append(item)

    prog.spawn(producer)
    prog.spawn(late_consumer)
    prog.run()
    assert got == [0, 1, 2]


def test_multiple_producers_consumers():
    prog = Program()
    ch = Channel(prog, capacity=4, name="c")
    got = []
    live_producers = [3]

    def producer(env, i):
        for k in range(5):
            yield env.compute(0.05)
            yield from ch.put(env, (i, k))
        live_producers[0] -= 1
        if live_producers[0] == 0:
            yield from ch.close(env)

    def consumer(env, i):
        while True:
            item = yield from ch.get(env)
            if item is CLOSED:
                return
            got.append(item)
            yield env.compute(0.02)

    prog.spawn_workers(3, producer, name_prefix="prod")
    prog.spawn_workers(2, consumer, name_prefix="cons")
    result = prog.run()
    assert len(got) == 15
    validate_trace(result.trace)


def test_invalid_capacity():
    prog = Program()
    with pytest.raises(WorkloadError, match="capacity"):
        Channel(prog, capacity=0)


def test_channel_locks_traced():
    prog = Program()
    Channel(prog, capacity=1, name="pipe")
    names = {info.name for info in prog.collector._objects.values()}
    assert "pipe.lock" in names
    assert "pipe.not_empty" in names
    assert "pipe.not_full" in names
