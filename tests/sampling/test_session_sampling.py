"""Live capture through ProfilingSession(sample_rate=...).

The streaming sampler sits inside ``emit()``; these tests check the
live-captured sampled trace carries the metadata header, stays valid,
matches the offline downsample of the full capture, and that rate 1.0
(or None) bypasses the sampler entirely.
"""

from __future__ import annotations

import pytest

from repro.core.estimate import estimate_report
from repro.instrument import ProfilingSession, VirtualClock
from repro.sampling import downsample_trace, trace_sample_rate
from repro.trace.transform import demote_orphan_contention
from repro.trace.validate import validate_trace


def capture(sample_rate=None, sample_seed=0, invocations=40):
    """Single-threaded deterministic workload over two locks."""
    clock = VirtualClock()
    with ProfilingSession(
        name="live", clock=clock, sample_rate=sample_rate, sample_seed=sample_seed
    ) as s:
        a, b = s.lock("A"), s.lock("B")
        for i in range(invocations):
            lock = a if i % 2 == 0 else b
            clock.advance(1000)
            lock.acquire()
            clock.advance(5000)
            lock.release()
    return s.trace()


def test_sampled_session_carries_metadata_and_validates():
    trace = capture(sample_rate=0.3, sample_seed=7)
    assert trace.meta["sampling"] == {
        "strategy": "unit-hash", "rate": 0.3, "seed": 7,
    }
    assert trace_sample_rate(trace) == 0.3
    repaired, _ = demote_orphan_contention(trace)
    validate_trace(repaired)
    est = estimate_report(trace)
    assert est.rate == 0.3


def test_live_sampling_matches_offline_downsample():
    """Capturing at rate r must keep exactly the units that downsampling
    the full capture at rate r keeps (same hash, same seed)."""
    full = capture(sample_rate=None)
    live = capture(sample_rate=0.3, sample_seed=7)
    offline = downsample_trace(full, 0.3, seed=7)
    # from_events renumbered seqs; compare (time, tid, etype, obj, arg).
    def rows(trace):
        return [
            (r["time"], r["tid"], r["etype"], r["obj"], r["arg"])
            for r in trace.records
        ]

    assert rows(live) == rows(offline)


def test_rate_one_and_none_bypass_the_sampler():
    assert ProfilingSession(sample_rate=None)._sampler is None
    assert ProfilingSession(sample_rate=1.0)._sampler is None
    trace = capture(sample_rate=1.0)
    assert trace_sample_rate(trace) is None  # full capture, no header
    assert len(trace) == len(capture(sample_rate=None))


def test_sampling_reduces_event_volume():
    full = capture(sample_rate=None, invocations=200)
    sampled = capture(sample_rate=0.1, sample_seed=1, invocations=200)
    assert len(sampled) < len(full) / 2


def test_invalid_session_rate_rejected():
    from repro.errors import TraceError

    with pytest.raises(TraceError):
        ProfilingSession(sample_rate=-0.5)
