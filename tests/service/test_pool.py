"""Worker pool: process fan-out, failure isolation, crash recovery.

Process-pool tests share one module-scoped pool (spawn startup is not
free); the crash test gets its own pool so a respawn there can never
perturb the others.
"""

import os
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.pool import WorkerPool


class Recorder:
    """Collects pool events and lets tests await a job's completion."""

    def __init__(self):
        self.events = []
        self._cond = threading.Condition()

    def __call__(self, event, job_id, payload):
        with self._cond:
            self.events.append((event, job_id, payload))
            self._cond.notify_all()

    def wait_for(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                for event, jid, payload in self.events:
                    if jid == job_id and event in ("done", "error", "crashed"):
                        return event, payload
                remaining = deadline - time.monotonic()
                assert remaining > 0, f"timed out waiting for {job_id}: {self.events}"
                self._cond.wait(remaining)


@pytest.fixture(scope="module")
def shared():
    recorder = Recorder()
    pool = WorkerPool(workers=2, on_event=recorder)
    yield pool, recorder
    pool.close()


def test_job_runs_in_worker_process(shared):
    pool, recorder = shared
    pool.submit("proc", "selftest", [], {"echo": "x"})
    event, payload = recorder.wait_for("proc")
    assert event == "done"
    assert payload["pid"] != os.getpid()
    assert payload["echo"] == "x"


def test_job_error_is_isolated(shared):
    pool, recorder = shared
    pool.submit("boom", "selftest", [], {"fail": "kaput"})
    event, payload = recorder.wait_for("boom")
    assert event == "error"
    assert "kaput" in payload
    # The pool is still usable afterwards.
    pool.submit("after-error", "selftest", [], {})
    assert recorder.wait_for("after-error")[0] == "done"


def test_parallel_fanout(shared):
    pool, recorder = shared
    for i in range(6):
        pool.submit(f"fan{i}", "selftest", [], {"sleep": 0.05})
    results = [recorder.wait_for(f"fan{i}") for i in range(6)]
    assert all(event == "done" for event, _ in results)
    assert pool.pending == 0


def test_worker_crash_marks_job_failed_and_pool_survives():
    recorder = Recorder()
    with WorkerPool(workers=1, on_event=recorder) as pool:
        pool.submit("victim", "selftest", [], {"crash": True})
        event, payload = recorder.wait_for("victim")
        assert event == "crashed"
        assert "died" in payload
        # Supervisor replaced the dead worker; new jobs still complete.
        pool.submit("survivor", "selftest", [], {"echo": "alive"})
        event, payload = recorder.wait_for("survivor")
        assert event == "done"
        assert payload["echo"] == "alive"
        assert pool.restarts == 1


def test_inline_mode_runs_synchronously():
    recorder = Recorder()
    pool = WorkerPool(workers=0, on_event=recorder)
    assert pool.inline
    pool.submit("inline", "selftest", [], {"echo": "here"})
    # No waiting: inline submit executes before returning.
    event, payload = recorder.events[-1][0], recorder.events[-1][2]
    assert event == "done"
    assert payload["pid"] == os.getpid()
    pool.close()


def test_inline_mode_isolates_errors():
    recorder = Recorder()
    pool = WorkerPool(workers=0, on_event=recorder)
    pool.submit("bad", "selftest", [], {"fail": "nope"})
    assert recorder.events[-1][0] == "error"
    pool.close()


def test_submit_after_close_rejected():
    pool = WorkerPool(workers=0)
    pool.close()
    with pytest.raises(ServiceError, match="closed"):
        pool.submit("late", "selftest", [], {})


def test_negative_workers_rejected():
    with pytest.raises(ServiceError, match="workers"):
        WorkerPool(workers=-1)
