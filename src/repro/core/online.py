"""Online (streaming) lock statistics.

The paper's future work (§VII) wants critical-lock information *at run
time* to steer mechanisms like accelerated critical sections.  A full
critical-path walk needs the whole trace; this module maintains what CAN
be known online, one event at a time, in O(locks) memory:

* exact TYPE 2 statistics (waits, holds, invocations, contention);
* a **criticality heuristic** per lock — the length of the current
  longest chain of *dependent* critical sections (each contended handoff
  extends the previous holder's chain), which approximates the lock's
  accumulated presence on the eventual critical path without storing
  events.

On the micro-benchmark the heuristic ranks L2 over L1 — matching the
offline analysis where the idle-time metric gets it wrong — and the
exactness of the TYPE 2 counters is tested against the offline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tables import format_table
from repro.trace.events import Event, EventType
from repro.trace.trace import Trace
from repro.units import format_duration, format_percent

__all__ = ["OnlineLockStats", "OnlineAnalyzer"]


@dataclass
class OnlineLockStats:
    """Streaming counters for one lock."""

    obj: int
    name: str
    invocations: int = 0
    contended: int = 0
    wait_time: float = 0.0
    hold_time: float = 0.0
    # Criticality heuristic: longest observed dependent-hold chain.
    chain_time: float = 0.0  # accumulated serialized hold time, running
    max_chain_time: float = 0.0
    # internal
    _pending_acquire: dict[int, float] = field(default_factory=dict)
    _obtain_time: dict[int, float] = field(default_factory=dict)
    _last_release: float = -1.0

    @property
    def cont_prob(self) -> float:
        return self.contended / self.invocations if self.invocations else 0.0


class OnlineAnalyzer:
    """Feed events as they happen; read lock rankings at any moment."""

    def __init__(self, trace_like: Trace | None = None):
        self._locks: dict[int, OnlineLockStats] = {}
        self._names: dict[int, str] = {}
        if trace_like is not None:
            for info in trace_like.locks:
                self._names[info.obj] = info.display_name

    def observe(self, ev: Event) -> None:
        """Consume one event (must arrive in time order per thread)."""
        if ev.etype not in (EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE):
            return
        ls = self._locks.get(ev.obj)
        if ls is None:
            ls = OnlineLockStats(
                obj=ev.obj, name=self._names.get(ev.obj, f"obj#{ev.obj}")
            )
            self._locks[ev.obj] = ls
        if ev.etype == EventType.ACQUIRE:
            ls._pending_acquire[ev.tid] = ev.time
        elif ev.etype == EventType.OBTAIN:
            ls.invocations += 1
            acq = ls._pending_acquire.pop(ev.tid, ev.time)
            ls._obtain_time[ev.tid] = ev.time
            if ev.arg:
                ls.contended += 1
                ls.wait_time += ev.time - acq
                # Dependent handoff: this hold extends the running chain.
            else:
                # Independent acquisition: the lock was free, so nobody
                # was waiting and the chain breaks.  ``>=`` matters: in
                # virtual time an uncontended OBTAIN routinely lands at
                # the exact timestamp of the previous RELEASE, and such a
                # handoff is still not a dependency.
                if ev.time >= ls._last_release:
                    ls.chain_time = 0.0
        else:  # RELEASE
            start = ls._obtain_time.pop(ev.tid, ev.time)
            hold = ev.time - start
            ls.hold_time += hold
            ls.chain_time += hold
            ls.max_chain_time = max(ls.max_chain_time, ls.chain_time)
            ls._last_release = ev.time

    def observe_all(self, trace: Trace) -> "OnlineAnalyzer":
        """Convenience: stream an entire trace through the analyzer."""
        for info in trace.locks:
            self._names[info.obj] = info.display_name
        for ev in trace:
            self.observe(ev)
        return self

    # -- queries -------------------------------------------------------------

    def stats(self, obj: int) -> OnlineLockStats:
        return self._locks[obj]

    def ranking(self) -> list[OnlineLockStats]:
        """Locks by the criticality heuristic (longest dependent chain)."""
        return sorted(
            self._locks.values(), key=lambda ls: ls.max_chain_time, reverse=True
        )

    def ranking_by_wait(self) -> list[OnlineLockStats]:
        """The classical online ranking (what a TYPE 2 tool maintains)."""
        return sorted(
            self._locks.values(), key=lambda ls: ls.wait_time, reverse=True
        )

    def render(self, n: int = 8) -> str:
        rows = [
            [
                ls.name,
                format_duration(ls.max_chain_time),
                format_duration(ls.wait_time),
                ls.invocations,
                format_percent(ls.cont_prob),
                format_duration(ls.hold_time),
            ]
            for ls in self.ranking()[:n]
        ]
        return format_table(
            ["Lock", "Max dependent chain", "Total wait", "Invocations",
             "Cont. prob", "Total hold"],
            rows,
            title="Online lock statistics (streaming)",
        )
