"""The flusher thread: drains the ring into framed chunks on a sink.

One daemon thread per streaming session.  It wakes on a timer (or when
:meth:`StreamFlusher.flush` is called directly), drains whatever the
ring holds, packs it into one numpy record block and hands it to the
sink.  Slow sinks therefore back up the *ring*, never the application
threads — the ring answers by dropping-and-counting, which is the whole
point of the design.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.trace.schema import records_from_events

from repro.stream.ring import EventRing
from repro.stream.sink import ChunkSink

__all__ = ["StreamFlusher"]


class StreamFlusher:
    """Periodically move ring contents to a sink as framed chunks."""

    def __init__(
        self,
        ring: EventRing,
        sink: ChunkSink,
        interval: float = 0.25,
        chunk_events: int = 8192,
    ):
        self.ring = ring
        self.sink = sink
        self.interval = interval
        self.chunk_events = chunk_events
        self.chunks_written = 0
        self.events_written = 0
        self.finalize_result: Any = None
        self._stop = threading.Event()
        self._flush_lock = threading.Lock()  # flush() callable from any thread
        self._thread = threading.Thread(
            target=self._run, name="stream-flusher", daemon=True
        )
        self._started = False
        self._closed = False

    def start(self) -> "StreamFlusher":
        self._thread.start()
        self._started = True
        return self

    def flush(self) -> int:
        """Drain the ring now; returns the number of events flushed."""
        flushed = 0
        with self._flush_lock:
            while True:
                batch = self.ring.drain(self.chunk_events)
                if not batch:
                    return flushed
                self.sink.write_chunk(records_from_events(batch))
                self.chunks_written += 1
                self.events_written += len(batch)
                flushed += len(batch)

    def close(self, header: dict[str, Any] | None = None) -> Any:
        """Stop the thread, flush the tail, finalize the sink."""
        if self._closed:
            return self.finalize_result
        self._closed = True
        self._stop.set()
        if self._started:
            self._thread.join(timeout=10.0)
        self.flush()
        self.finalize_result = self.sink.finalize(header or {})
        return self.finalize_result

    def stats(self) -> dict[str, Any]:
        out = self.ring.stats()
        out["chunks_written"] = self.chunks_written
        out["events_written"] = self.events_written
        return out

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()
