"""Protocol & scheduler what-if forecast matrix over the golden workloads.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_protocols.py --quick
    PYTHONPATH=src python benchmarks/bench_protocols.py --json BENCH_PROTOCOLS.json

For each golden case (``tests/golden``) the script first proves replay
fidelity — the ``recorded`` identity protocol must reproduce the traced
completion time exactly — and then sweeps ``forecast_matrix`` over every
lock protocol x ready-queue scheduler, reporting predicted gains and
critical-lock re-rankings.  The headline assertion (``--require-rerank``,
on by default) is the EXPERIMENTS.md result: on the rwlock-heavy ``ldap``
case, reader-preference re-ranks the critical lock
(``entry_lock[0] -> entry_lock[1]``) with a positive end-to-end gain,
while FIFO replay stays a no-op everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.replay_whatif import forecast_matrix, replay_identity
from repro.sim import available_protocols, available_schedulers
from repro.workloads import get_workload

#: Keep in sync with tests/golden/test_golden_reports.py::CASES.
CASES = {
    "micro": ("micro", {}, 4, 0),
    "radiosity": ("radiosity", {"total_tasks": 80, "iterations": 2}, 4, 11),
    "ldap": (
        "openldap",
        {"requests": 150, "nbuckets": 2, "write_prob": 0.35,
         "write_cost": 0.12, "lookup_cost": 0.04},
        6,
        1,
    ),
}


def build_trace(case: str):
    workload, params, nthreads, seed = CASES[case]
    return get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace


def run_case(case: str, schedulers: list[str]) -> dict:
    trace = build_trace(case)

    t0 = time.perf_counter()
    identity = replay_identity(trace)
    t_identity = time.perf_counter() - t0
    faithful = identity.completion_time == trace.duration

    t0 = time.perf_counter()
    forecasts = forecast_matrix(trace, schedulers=schedulers)
    t_matrix = time.perf_counter() - t0

    return {
        "case": case,
        "events": len(trace),
        "duration": trace.duration,
        "identity_faithful": faithful,
        "identity_replay_s": round(t_identity, 4),
        "matrix_s": round(t_matrix, 4),
        "forecasts": [
            {
                "protocol": f.protocol,
                "scheduler": f.scheduler,
                "predicted_time": f.predicted_time,
                "gain": round(f.predicted_gain, 6),
                "speedup": round(f.predicted_speedup, 4),
                "critical_lock": f.predicted_critical_lock,
                "reranked": f.reranked,
            }
            for f in forecasts
        ],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="micro + ldap only, FIFO scheduler only (CI smoke job)")
    ap.add_argument("--schedulers", nargs="*", default=None, metavar="NAME",
                    help="scheduler subset (default: all; --quick: fifo)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    ap.add_argument("--no-require-rerank", dest="require_rerank",
                    action="store_false", default=True,
                    help="skip the ldap reader-pref re-rank assertion")
    args = ap.parse_args(argv)

    cases = ["micro", "ldap"] if args.quick else list(CASES)
    schedulers = args.schedulers
    if schedulers is None:
        schedulers = ["fifo"] if args.quick else available_schedulers()

    print(f"protocols: {', '.join(p for p in available_protocols() if p != 'recorded')}")
    print(f"schedulers: {', '.join(schedulers)}")

    results, failed = [], False
    for case in cases:
        res = run_case(case, schedulers)
        results.append(res)
        tag = "ok" if res["identity_faithful"] else "FAIL"
        print(f"\n{case}: {res['events']} events, duration {res['duration']:.4f}; "
              f"identity replay {tag} ({res['identity_replay_s']:.2f}s), "
              f"matrix of {len(res['forecasts'])} in {res['matrix_s']:.2f}s")
        if not res["identity_faithful"]:
            failed = True
        for f in res["forecasts"]:
            mark = "  RE-RANK" if f["reranked"] else ""
            print(f"  {f['protocol']:12s} x {f['scheduler']:8s} "
                  f"gain {f['gain']:+8.2%}  crit {f['critical_lock']}{mark}")

    if args.require_rerank and "ldap" in cases:
        ldap = next(r for r in results if r["case"] == "ldap")
        hit = [f for f in ldap["forecasts"]
               if f["protocol"] == "reader-pref" and f["scheduler"] == "fifo"]
        if not (hit and hit[0]["reranked"] and hit[0]["gain"] > 0):
            print("FAIL: ldap reader-pref did not re-rank the critical lock "
                  "with a positive gain", file=sys.stderr)
            failed = True
        else:
            print(f"\nok: ldap reader-pref re-ranks the critical lock "
                  f"({hit[0]['critical_lock']}, {hit[0]['gain']:+.2%})")

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {"bench": "protocols", "quick": args.quick,
                 "schedulers": schedulers, "cases": results},
                f, indent=2,
            )
            f.write("\n")
        print(f"numbers written to {args.json}")

    if failed:
        return 1
    print("ok: identity replay faithful on every case")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
