"""Paper Fig. 9 — Radiosity's two most important locks vs thread count.

Runs Radiosity at 4/8/16/24 threads and reports CP Time % and Wait
Time % for ``tq[0].qlock`` and ``freeInter``.  The shapes to reproduce:
``tq[0].qlock`` grows to dominate the critical path as threads increase
(paper: ~39% at 24), and the CP Time weight far exceeds the Wait Time
weight at 24 threads (paper: 39.15% vs 6.40%).
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.radiosity import Radiosity

__all__ = ["run"]

LOCKS = ("tq[0].qlock", "freeInter")


@experiment("fig9")
def run(thread_counts: tuple = (4, 8, 16, 24), seed: int = 0) -> ExperimentResult:
    rows = []
    values: dict[int, dict] = {}
    for n in thread_counts:
        res = Radiosity().run(nthreads=n, seed=seed)
        analysis = analyze(res.trace)
        values[n] = {}
        for i, lock in enumerate(LOCKS):
            m = analysis.report.lock(lock)
            rows.append(
                [
                    f"{n} threads" if i == 0 else "",
                    lock,
                    format_percent(m.cp_fraction),
                    format_percent(m.avg_wait_fraction),
                ]
            )
            values[n][lock] = {
                "cp_fraction": m.cp_fraction,
                "wait_fraction": m.avg_wait_fraction,
            }
    return ExperimentResult(
        exp_id="fig9",
        title="Radiosity: top locks vs thread count",
        headers=["Threads", "Lock", "CP Time %", "Wait Time %"],
        rows=rows,
        notes=[
            "paper: tq[0].qlock comes to dominate beyond 8 threads, reaching "
            "~39% of the critical path at 24 threads while Wait Time reports "
            "only ~6%",
        ],
        values=values,
    )
