"""Columnar TYPE 1 / TYPE 2 metrics, bit-identical to
:func:`repro.core.metrics.compute_metrics`.

Bit-identity constrains the implementation everywhere floats are summed:
the object engine accumulates left to right, and IEEE addition is not
associative, so every per-group total here is a sequential ``np.cumsum``
(empirically identical to a Python ``sum`` loop), never ``np.sum`` /
``np.add.reduceat`` (pairwise summation).  The hold/critical-path
overlap sweep accumulates per hold in piece order via a multiplicity
loop for the same reason.
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar.timelines import WAIT_KIND_CODES, ColumnarTimelines
from repro.core.critical_path import CriticalPath
from repro.core.metrics import LockMetrics, ThreadStats
from repro.core.model import WaitKind
from repro.trace.trace import Trace

__all__ = ["compute_metrics_columnar", "compute_thread_stats_columnar"]


def _exact_sum(values: np.ndarray) -> float:
    """Left-to-right IEEE sum (what a Python accumulator loop computes)."""
    if len(values) == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def _overlap_group(
    h_s: np.ndarray,
    h_e: np.ndarray,
    contended: np.ndarray,
    p_s: np.ndarray,
    p_e: np.ndarray,
) -> tuple[float, int, int]:
    """Vectorized :func:`repro.core.metrics._hold_cp_overlap`.

    Pieces are disjoint and sorted, so the object engine's persistent
    two-pointer window for hold ``h`` is exactly ``[searchsorted(p_end,
    h.start), searchsorted(p_start, h.end, right))``; the multiplicity
    loop adds each hold's overlap terms in piece order, preserving the
    object engine's float addition order.
    """
    pi = np.searchsorted(p_e, h_s, side="left")
    jend = np.searchsorted(p_s, h_e, side="right")
    k = np.maximum(jend - pi, 0)
    acc = np.zeros(len(h_s), dtype=np.float64)
    for j in range(int(k.max()) if len(k) else 0):
        sel = k > j
        idx = pi[sel] + j
        term = np.maximum(
            0.0,
            np.minimum(h_e[sel], p_e[idx]) - np.maximum(h_s[sel], p_s[idx]),
        )
        acc[sel] = acc[sel] + term
    zero = h_e == h_s
    on_cp = (acc > 0) | (zero & (k > 0))
    return (
        _exact_sum(acc),
        int(np.count_nonzero(on_cp)),
        int(np.count_nonzero(on_cp & contended)),
    )


def compute_metrics_columnar(
    trace: Trace,
    ct: ColumnarTimelines,
    cp: CriticalPath,
) -> dict[int, LockMetrics]:
    """Columnar twin of :func:`repro.core.metrics.compute_metrics`."""
    nthreads = max(1, len(ct.tids))
    cp_length = cp.length
    pieces_by_thread = cp.pieces_by_thread()
    piece_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for tid, plist in pieces_by_thread.items():
        plist.sort(key=lambda p: (p.start, p.end))
        piece_arrays[tid] = (
            np.fromiter((p.start for p in plist), dtype=np.float64, count=len(plist)),
            np.fromiter((p.end for p in plist), dtype=np.float64, count=len(plist)),
        )
    lock_crossings: dict[int, int] = {}
    for j in cp.junctions:
        if j.kind == WaitKind.LOCK:
            lock_crossings[j.obj] = lock_crossings.get(j.obj, 0) + 1

    durations = ct.h_end - ct.h_start
    hold_waits = ct.h_start - ct.h_acquire
    lifetimes = ct.t_end - ct.t_start

    out: dict[int, LockMetrics] = {}
    for info in trace.locks:
        obj = info.obj
        cp_hold = 0.0
        inv_on_cp = 0
        cont_on_cp = 0
        total_inv = 0
        cont_inv = 0
        total_wait = 0.0
        total_hold = 0.0
        wait_fracs = 0.0
        hold_fracs = 0.0
        for i, t in enumerate(ct.tids):
            tid = int(t)
            group = ct.hold_groups.get((tid, obj))
            if group is None:
                t_hold = 0.0
                t_wait = 0.0
            else:
                lo, hi = group
                t_hold = _exact_sum(durations[lo:hi])
                t_wait = _exact_sum(hold_waits[lo:hi])
                total_inv += hi - lo
                cont_inv += int(np.count_nonzero(ct.h_contended[lo:hi]))
            total_hold += t_hold
            total_wait += t_wait
            lifetime = float(lifetimes[i])
            if lifetime > 0:
                wait_fracs += t_wait / lifetime
                hold_fracs += t_hold / lifetime
            pieces = piece_arrays.get(tid)
            if pieces is not None and group is not None and group[1] > group[0]:
                lo, hi = group
                o, cnt, c = _overlap_group(
                    ct.h_start[lo:hi],
                    ct.h_end[lo:hi],
                    ct.h_contended[lo:hi],
                    pieces[0],
                    pieces[1],
                )
                cp_hold += o
                inv_on_cp += cnt
                cont_on_cp += c
        avg_inv = total_inv / nthreads
        avg_hold_frac = hold_fracs / nthreads
        cp_frac = cp_hold / cp_length if cp_length > 0 else 0.0
        out[obj] = LockMetrics(
            obj=obj,
            name=info.display_name,
            kind=info.kind,
            cp_hold_time=cp_hold,
            cp_fraction=cp_frac,
            invocations_on_cp=inv_on_cp,
            contended_on_cp=cont_on_cp,
            invocation_increase=(inv_on_cp / avg_inv) if avg_inv > 0 else 0.0,
            size_increase=(cp_frac / avg_hold_frac) if avg_hold_frac > 0 else 0.0,
            cp_crossings=lock_crossings.get(obj, 0),
            total_invocations=total_inv,
            contended_invocations=cont_inv,
            avg_invocations=avg_inv,
            total_wait_time=total_wait,
            avg_wait_fraction=wait_fracs / nthreads,
            total_hold_time=total_hold,
            avg_hold_fraction=avg_hold_frac,
        )
    return out


def compute_thread_stats_columnar(
    ct: ColumnarTimelines, cp: CriticalPath
) -> list[ThreadStats]:
    """Columnar twin of :func:`repro.core.metrics.compute_thread_stats`."""
    cp_by_tid: dict[int, float] = {}
    for p in cp.pieces:
        cp_by_tid[p.tid] = cp_by_tid.get(p.tid, 0.0) + p.duration
    wait_durations = ct.w_end - ct.w_start
    stats = []
    for i, t in enumerate(ct.tids):
        tid = int(t)
        lo, hi = int(ct.wait_lo[i]), int(ct.wait_hi[i])
        kinds = ct.w_kind[lo:hi]
        durs = wait_durations[lo:hi]
        # dict-insertion order = first appearance of each kind
        by_kind: dict[WaitKind, float] = {}
        if hi > lo:
            codes, first = np.unique(kinds, return_index=True)
            for k in np.argsort(first):
                code = codes[k]
                by_kind[WAIT_KIND_CODES[code]] = _exact_sum(durs[kinds == code])
        total_wait = sum(by_kind.values())
        lifetime = float(ct.t_end[i] - ct.t_start[i])
        stats.append(
            ThreadStats(
                tid=tid,
                name=ct.names[i],
                lifetime=lifetime,
                exec_time=lifetime - total_wait,
                lock_wait=by_kind.get(WaitKind.LOCK, 0.0),
                barrier_wait=by_kind.get(WaitKind.BARRIER, 0.0),
                cond_wait=by_kind.get(WaitKind.CONDITION, 0.0),
                join_wait=by_kind.get(WaitKind.JOIN, 0.0),
                cp_time=cp_by_tid.get(tid, 0.0),
            )
        )
    return stats
