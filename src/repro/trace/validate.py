"""Trace well-formedness checking.

The backward critical-path walk assumes structural invariants that the
instrumentation layer must uphold (every OBTAIN pairs with a preceding
ACQUIRE, mutex ownership is exclusive, barrier cohorts are complete...).
``validate_trace`` checks them all and reports every violation, which makes
it both a guard for the analyzer and a test oracle for the tracers.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import TraceValidationError
from repro.trace.events import NO_OBJECT, Event, EventType, ObjectKind
from repro.trace.trace import Trace

__all__ = ["validate_trace", "trace_problems"]


def validate_trace(trace: Trace) -> None:
    """Raise :class:`TraceValidationError` if the trace is malformed."""
    problems = trace_problems(trace)
    if problems:
        raise TraceValidationError(problems)


def trace_problems(trace: Trace) -> list[str]:
    """Return a list of human-readable structural problems (empty if OK)."""
    problems: list[str] = []
    problems += _check_thread_lifecycles(trace)
    problems += _check_lock_protocol(trace)
    problems += _check_barriers(trace)
    problems += _check_condition_variables(trace)
    problems += _check_joins(trace)
    return problems


def _events_by_thread(trace: Trace) -> dict[int, list[Event]]:
    per: dict[int, list[Event]] = defaultdict(list)
    for ev in trace:
        per[ev.tid].append(ev)
    return per


def _check_thread_lifecycles(trace: Trace) -> list[str]:
    problems = []
    per = _events_by_thread(trace)
    created = {
        ev.arg for ev in trace if ev.etype == EventType.THREAD_CREATE
    }
    for tid, evs in sorted(per.items()):
        if evs[0].etype != EventType.THREAD_START:
            problems.append(f"T{tid}: first event is {evs[0].etype.name}, expected THREAD_START")
        if evs[-1].etype != EventType.THREAD_EXIT:
            problems.append(f"T{tid}: last event is {evs[-1].etype.name}, expected THREAD_EXIT")
        starts = sum(1 for ev in evs if ev.etype == EventType.THREAD_START)
        exits = sum(1 for ev in evs if ev.etype == EventType.THREAD_EXIT)
        if starts != 1:
            problems.append(f"T{tid}: {starts} THREAD_START events, expected 1")
        if exits != 1:
            problems.append(f"T{tid}: {exits} THREAD_EXIT events, expected 1")
    for child in sorted(created):
        if child not in per:
            problems.append(f"THREAD_CREATE names T{child} which emitted no events")
    return problems


def _check_lock_protocol(trace: Trace) -> list[str]:
    problems = []
    # Per (object, thread): pending ACQUIRE awaiting OBTAIN, held count.
    pending: dict[tuple[int, int], int] = defaultdict(int)
    held: dict[tuple[int, int], int] = defaultdict(int)
    owner: dict[int, int | None] = {}  # mutex exclusivity tracking
    for ev in trace:
        if ev.obj == NO_OBJECT or ev.etype not in (
            EventType.ACQUIRE,
            EventType.OBTAIN,
            EventType.RELEASE,
        ):
            continue
        info = trace.objects.get(ev.obj)
        kind = info.kind if info is not None else ObjectKind.MUTEX
        if not kind.is_lock_like:
            problems.append(
                f"seq {ev.seq}: {ev.etype.name} on non-lock object {trace.object_name(ev.obj)}"
            )
            continue
        key = (ev.obj, ev.tid)
        name = trace.object_name(ev.obj)
        if ev.etype == EventType.ACQUIRE:
            if pending[key]:
                problems.append(f"seq {ev.seq}: T{ev.tid} double-ACQUIRE on {name}")
            pending[key] += 1
        elif ev.etype == EventType.OBTAIN:
            if not pending[key]:
                problems.append(f"seq {ev.seq}: T{ev.tid} OBTAIN without ACQUIRE on {name}")
            else:
                pending[key] -= 1
            if kind == ObjectKind.MUTEX:
                prev = owner.get(ev.obj)
                if prev is not None:
                    problems.append(
                        f"seq {ev.seq}: T{ev.tid} OBTAIN on {name} while held by T{prev}"
                    )
                owner[ev.obj] = ev.tid
            held[key] += 1
        else:  # RELEASE
            if not held[key]:
                problems.append(f"seq {ev.seq}: T{ev.tid} RELEASE without OBTAIN on {name}")
            else:
                held[key] -= 1
            if kind == ObjectKind.MUTEX and owner.get(ev.obj) == ev.tid:
                owner[ev.obj] = None
    for (obj, tid), n in held.items():
        if n:
            problems.append(f"T{tid} exited holding {trace.object_name(obj)} ({n} levels)")
    for (obj, tid), n in pending.items():
        if n:
            problems.append(f"T{tid} exited with pending ACQUIRE on {trace.object_name(obj)}")
    return problems


def _check_barriers(trace: Trace) -> list[str]:
    problems = []
    arrivals: dict[tuple[int, int], list[int]] = defaultdict(list)
    departures: dict[tuple[int, int], list[int]] = defaultdict(list)
    for ev in trace:
        if ev.etype == EventType.BARRIER_ARRIVE:
            arrivals[(ev.obj, ev.arg)].append(ev.tid)
        elif ev.etype == EventType.BARRIER_DEPART:
            departures[(ev.obj, ev.arg)].append(ev.tid)
    for key in sorted(set(arrivals) | set(departures)):
        obj, gen = key
        a, d = sorted(arrivals.get(key, [])), sorted(departures.get(key, []))
        if a != d:
            problems.append(
                f"barrier {trace.object_name(obj)} generation {gen}: "
                f"arrivals {a} != departures {d}"
            )
    return problems


def _check_condition_variables(trace: Trace) -> list[str]:
    problems = []
    blocked: dict[tuple[int, int], int] = defaultdict(int)  # (cv, tid) -> pending blocks
    thread_ids = set(trace.thread_ids)
    for ev in trace:
        if ev.etype == EventType.COND_BLOCK:
            blocked[(ev.obj, ev.tid)] += 1
        elif ev.etype == EventType.COND_WAKE:
            key = (ev.obj, ev.tid)
            if not blocked[key]:
                problems.append(
                    f"seq {ev.seq}: T{ev.tid} COND_WAKE without COND_BLOCK on "
                    f"{trace.object_name(ev.obj)}"
                )
            else:
                blocked[key] -= 1
            if ev.arg not in thread_ids:
                problems.append(
                    f"seq {ev.seq}: COND_WAKE names unknown signaller T{ev.arg}"
                )
    for (obj, tid), n in blocked.items():
        if n:
            problems.append(
                f"T{tid} exited still blocked on condition {trace.object_name(obj)}"
            )
    return problems


def _check_joins(trace: Trace) -> list[str]:
    problems = []
    exit_seq: dict[int, int] = {}
    for ev in trace:
        if ev.etype == EventType.THREAD_EXIT:
            exit_seq[ev.tid] = ev.seq
    begun: dict[tuple[int, int], int] = defaultdict(int)
    for ev in trace:
        if ev.etype == EventType.JOIN_BEGIN:
            begun[(ev.tid, ev.arg)] += 1
        elif ev.etype == EventType.JOIN_END:
            key = (ev.tid, ev.arg)
            if not begun[key]:
                problems.append(f"seq {ev.seq}: T{ev.tid} JOIN_END without JOIN_BEGIN on T{ev.arg}")
            else:
                begun[key] -= 1
            target_exit = exit_seq.get(ev.arg)
            if target_exit is None:
                problems.append(f"seq {ev.seq}: T{ev.tid} joined T{ev.arg} which never exited")
            elif target_exit > ev.seq:
                problems.append(
                    f"seq {ev.seq}: T{ev.tid} JOIN_END precedes T{ev.arg} THREAD_EXIT"
                )
    return problems
