"""Text visualizations: timelines, lock profiles, criticality heat rows."""

from repro.viz.profile import render_lock_profile
from repro.viz.timeline import render_timeline

__all__ = ["render_timeline", "render_lock_profile"]
