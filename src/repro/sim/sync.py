"""Synchronization primitive state for the simulator.

These classes hold *state only* (owner, waiter queues, generation
counters); the blocking/waking protocol and all trace emission live in
:class:`repro.sim.engine.Simulator`, which keeps every state transition in
one auditable place.  Waiter queues are strict FIFO, which makes every
execution deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.trace.events import ObjectKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = ["SimObject", "SimMutex", "SimBarrier", "SimCondition", "SimSemaphore", "SimRWLock"]


@dataclass(eq=False)
class SimObject:
    """Base class: a traced synchronization object."""

    obj: int
    name: str

    kind = ObjectKind.NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name or self.obj}>"


@dataclass(eq=False)
class SimMutex(SimObject):
    """A mutual-exclusion lock with a FIFO wait queue.

    ``reentrant=True`` makes it an RLock: the owner may re-acquire, and
    only the outermost acquire/release pair emits trace events (matching
    the instrumentation layer's :class:`TracedRLock`).
    """

    kind = ObjectKind.MUTEX

    owner: "SimThread | None" = None
    waiters: deque["SimThread"] = field(default_factory=deque)
    reentrant: bool = False
    depth: int = 0  # recursion depth while held (reentrant only)

    @property
    def is_held(self) -> bool:
        return self.owner is not None


@dataclass(eq=False)
class SimBarrier(SimObject):
    """A cyclic barrier for a fixed number of parties."""

    kind = ObjectKind.BARRIER

    parties: int = 1
    generation: int = 0
    arrived: list["SimThread"] = field(default_factory=list)


@dataclass(eq=False)
class SimCondition(SimObject):
    """A condition variable; waiters remember the mutex to reacquire."""

    kind = ObjectKind.CONDITION

    waiters: deque[tuple["SimThread", SimMutex]] = field(default_factory=deque)


@dataclass(eq=False)
class SimSemaphore(SimObject):
    """A counting semaphore with FIFO handoff on release."""

    kind = ObjectKind.SEMAPHORE

    value: int = 1
    waiters: deque["SimThread"] = field(default_factory=deque)


@dataclass(eq=False)
class SimRWLock(SimObject):
    """A reader-writer lock with FIFO fairness.

    A new request queues whenever the wait queue is non-empty, so writers
    cannot starve behind a stream of late readers; consecutive queued
    readers are granted as a batch.
    """

    kind = ObjectKind.RWLOCK

    readers: set["SimThread"] = field(default_factory=set)
    writer: "SimThread | None" = None
    waiters: deque[tuple["SimThread", bool]] = field(default_factory=deque)  # (thread, write)

    def can_grant(self, write: bool) -> bool:
        """Whether an incoming request could be granted right now."""
        if self.waiters:
            return False  # FIFO fairness: queue behind earlier waiters
        if write:
            return self.writer is None and not self.readers
        return self.writer is None
