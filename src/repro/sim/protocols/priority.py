"""Priority-aware lock protocols: plain priority, inheritance, ceiling.

All three grant a released lock to the highest-effective-priority waiter
(FIFO among equals — the earliest-queued waiter wins ties, keeping runs
deterministic).  They differ in how they fight priority inversion:

* :class:`PriorityProtocol` — ordering only; a low-priority holder can
  still stall a high-priority waiter for its whole critical section.
* :class:`PriorityInheritanceProtocol` — a blocked waiter donates its
  effective priority to the holder (transitively along the blocked-on
  chain), so the holder finishes its critical section at the waiter's
  urgency.
* :class:`PriorityCeilingProtocol` — taking a lock immediately boosts
  the holder to the lock's ceiling (default: the highest base priority
  in the program), bounding inversion to at most one critical section
  without waiting for a blocker to show up.

Priorities live on threads (``SimThread.priority`` base value plus a
protocol-managed ``boost``); they matter for lock handoff always, and
for core scheduling only when the priority scheduler is also selected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.protocols.base import LockProtocol, holders, waiter_threads

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = [
    "PriorityProtocol",
    "PriorityInheritanceProtocol",
    "PriorityCeilingProtocol",
]


class PriorityProtocol(LockProtocol):
    """Grant to the highest-effective-priority waiter (no boosting)."""

    name = "priority"

    def select(self, lock: Any) -> "SimThread | None":
        ws = lock.waiters
        best = 0
        for i in range(1, len(ws)):
            if ws[i].effective_priority > ws[best].effective_priority:
                best = i
        chosen = ws[best]
        del ws[best]
        return chosen


class PriorityInheritanceProtocol(PriorityProtocol):
    """Priority ordering plus transitive priority inheritance."""

    name = "pi"

    def on_block(self, lock: Any, thread: "SimThread") -> None:
        # Walk the blocked-on chain: boost every holder that is slower
        # than the newly blocked thread, following holders that are
        # themselves blocked (transitive inheritance).
        eff = thread.effective_priority
        node, hops = lock, 0
        while node is not None and hops < 64:
            hops += 1
            advanced = None
            for holder in holders(node):
                if eff > holder.boost:
                    holder.boost = eff
                advanced = holder.blocked_on
            node = advanced

    def on_release(self, lock: Any, thread: "SimThread") -> None:
        # Recompute the boost from the waiters of locks still held.
        boost = 0
        for held in thread.held:
            for waiter in waiter_threads(held):
                if waiter.effective_priority > boost:
                    boost = waiter.effective_priority
        thread.boost = boost


class PriorityCeilingProtocol(PriorityProtocol):
    """Priority ordering plus ceiling boosting on acquisition.

    ``ceilings`` maps lock *names* to ceiling priorities; unnamed locks
    fall back to the highest base priority of any thread in the program
    (computed lazily, once the thread population is known).
    """

    name = "ceiling"

    def __init__(self, ceilings: dict[str, int] | None = None) -> None:
        super().__init__()
        self.ceilings = dict(ceilings or {})
        self._default: int | None = None

    def describe(self) -> dict[str, Any]:
        return {"ceilings": dict(self.ceilings)} if self.ceilings else {}

    def _ceiling(self, lock: Any) -> int:
        name = getattr(lock, "name", "")
        if name in self.ceilings:
            return self.ceilings[name]
        if self._default is None:
            threads = self.engine.threads.values() if self.engine else ()
            self._default = max((t.priority for t in threads), default=0)
        return self._default

    def on_obtain(self, lock: Any, thread: "SimThread") -> None:
        ceiling = self._ceiling(lock)
        if ceiling > thread.boost:
            thread.boost = ceiling

    def on_release(self, lock: Any, thread: "SimThread") -> None:
        boost = 0
        for held in thread.held:
            c = self._ceiling(held)
            if c > boost:
                boost = c
        thread.boost = boost
