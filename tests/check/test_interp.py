"""Interpreter: spec programs execute deterministically and to completion."""

import pytest

from repro.check.generator import generate_spec
from repro.check.interp import run_spec
from repro.check.spec import ProgramSpec, ThreadSpec
from repro.errors import CheckError
from repro.trace.events import EventType


def test_deterministic_execution():
    spec = generate_spec(5)
    a = run_spec(spec).trace
    b = run_spec(spec).trace
    assert (a.records == b.records).all()


def test_generated_specs_terminate_and_trace():
    for seed in range(20):
        spec = generate_spec(seed)
        result = run_spec(spec)
        trace = result.trace
        assert len(trace) > 0
        exits = trace.records["etype"] == int(EventType.THREAD_EXIT)
        # every root thread (plus any children) started and exited
        assert exits.sum() >= len(spec.threads)


def test_handwritten_spec_maps_to_primitives():
    spec = ProgramSpec(
        seed=0,
        n_mutexes=2,
        n_channels=1,
        threads=[
            ThreadSpec(name="a", ops=[
                {"op": "lock", "m": 0, "body": [{"op": "compute", "dur": 1.0}]},
                {"op": "produce", "ch": 0, "broadcast": False},
            ]),
            ThreadSpec(name="b", ops=[{"op": "consume", "ch": 0}]),
        ],
    )
    trace = run_spec(spec).trace
    etypes = set(trace.records["etype"].tolist())
    assert int(EventType.OBTAIN) in etypes
    assert int(EventType.RELEASE) in etypes


def test_empty_spec_rejected():
    with pytest.raises(CheckError, match="no threads"):
        run_spec(ProgramSpec(seed=0, threads=[]))


def test_unknown_op_rejected():
    # The CheckError surfaces through the engine's thread-failure wrapper.
    from repro.errors import SimulationError

    spec = ProgramSpec(
        seed=0, threads=[ThreadSpec(name="a", ops=[{"op": "warp", "dur": 1.0}])]
    )
    with pytest.raises(SimulationError, match="unknown op"):
        run_spec(spec)
