"""Trace slicing and thread filtering."""

import pytest

from repro.core.analyzer import analyze
from repro.errors import TraceError
from repro.trace.transform import filter_threads, slice_time
from repro.trace.validate import validate_trace
from repro.workloads import Radiosity, SyntheticLocks

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_trace_m():
    return make_micro_program().run().trace


class TestSliceTime:
    def test_slice_is_valid_and_analyzable(self, micro_trace_m):
        sub = slice_time(micro_trace_m, 3.0, 9.0)
        validate_trace(sub)
        analysis = analyze(sub)
        assert analysis.report.duration <= 6.0 + 1e-9

    def test_open_holds_repaired(self, micro_trace_m):
        # At t=3, T1 holds L1 (obtained at 2); the slice must synthesize
        # the acquisition so the RELEASE at t=4 pairs up.
        sub = slice_time(micro_trace_m, 3.0, 9.0)
        analysis = analyze(sub)
        l1 = analysis.report.lock("L1")
        assert l1.total_invocations >= 1

    def test_full_window_preserves_lock_stats(self, micro_trace_m):
        sub = slice_time(micro_trace_m, 0.0, 12.0)
        validate_trace(sub)
        analysis = analyze(sub)
        assert analysis.report.lock("L2").total_hold_time == pytest.approx(10.0)
        assert analysis.report.duration == pytest.approx(12.0)

    def test_tail_slice_keeps_l2_chain(self, micro_trace_m):
        sub = slice_time(micro_trace_m, 7.0, 12.0)
        analysis = analyze(sub)
        # The tail is pure L2 chain: it dominates the sliced CP.
        assert analysis.report.top_locks(1)[0].name == "L2"

    def test_empty_window_rejected(self, micro_trace_m):
        with pytest.raises(TraceError, match="empty slice"):
            slice_time(micro_trace_m, 5.0, 5.0)

    def test_slice_metadata(self, micro_trace_m):
        sub = slice_time(micro_trace_m, 1.0, 2.0)
        assert sub.meta["slice_window"] == [1.0, 2.0]

    def test_slice_of_barrier_workload(self):
        trace = SyntheticLocks(ops_per_thread=20, barrier_every=5).run(
            nthreads=4, seed=2
        ).trace
        mid = trace.duration / 2
        sub = slice_time(trace, 0.0, mid)
        validate_trace(sub)
        analyze(sub)

    def test_slice_of_radiosity(self):
        trace = Radiosity(total_tasks=40, iterations=1).run(nthreads=4, seed=1).trace
        sub = slice_time(trace, trace.duration * 0.25, trace.duration * 0.75)
        validate_trace(sub)
        analysis = analyze(sub)
        assert analysis.critical_path.length > 0


class TestFilterThreads:
    def test_subset_valid(self, micro_trace_m):
        sub = filter_threads(micro_trace_m, [0, 1])
        validate_trace(sub)
        assert sub.thread_ids == [0, 1]

    def test_lock_stats_reduced(self, micro_trace_m):
        sub = filter_threads(micro_trace_m, [0])
        analysis = analyze(sub)
        assert analysis.report.lock("L2").total_invocations == 1

    def test_unknown_tid_rejected(self, micro_trace_m):
        with pytest.raises(TraceError, match="unknown thread ids"):
            filter_threads(micro_trace_m, [99])

    def test_contended_waits_degrade_gracefully(self, micro_trace_m):
        # Keeping only T3 removes its wakers; its contended OBTAINs keep
        # their flag but the analysis must still run (the waker falls back
        # to the synthesized history inside the slice).
        sub = filter_threads(micro_trace_m, [3])
        analysis = analyze(sub, validate=False)
        assert analysis.report.nthreads == 1
