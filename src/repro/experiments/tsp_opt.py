"""Paper §V.E — TSP's ``Qlock`` and the head/tail split optimization.

The paper: ``Qlock`` contributes ~68% of the critical path at 24
threads; splitting it into ``Q_headlock``/``Q_taillock`` parallelizes
enqueue and dequeue and improves end-to-end performance by ~19%.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.tsp import TSP

__all__ = ["run"]


@experiment("tsp_opt")
def run(nthreads: int = 24, seed: int = 0) -> ExperimentResult:
    orig = TSP().run(nthreads=nthreads, seed=seed)
    analysis = analyze(orig.trace)
    qlock = analysis.report.lock("Q.qlock")

    opt = TSP(split_queue=True).run(nthreads=nthreads, seed=seed)
    opt_analysis = analyze(opt.trace)
    improvement = orig.completion_time / opt.completion_time - 1.0

    rows = [
        [
            "Q.qlock (original)",
            format_percent(qlock.cp_fraction),
            format_percent(qlock.avg_wait_fraction),
            f"{orig.completion_time:.2f}",
        ]
    ]
    for m in opt_analysis.report.top_locks(2):
        rows.append(
            [
                f"{m.name} (optimized)",
                format_percent(m.cp_fraction),
                format_percent(m.avg_wait_fraction),
                f"{opt.completion_time:.2f}",
            ]
        )
    return ExperimentResult(
        exp_id="tsp_opt",
        title=f"TSP Qlock split optimization ({nthreads} threads)",
        headers=["Lock", "CP Time %", "Wait Time %", "Completion time"],
        rows=rows,
        notes=[
            f"end-to-end improvement from the split: {improvement:+.1%} "
            "(paper: ~19% at 24 threads; Qlock ~68% of the critical path)",
        ],
        values={
            "qlock_cp_fraction": qlock.cp_fraction,
            "qlock_wait_fraction": qlock.avg_wait_fraction,
            "orig_time": orig.completion_time,
            "opt_time": opt.completion_time,
            "improvement": improvement,
        },
    )
