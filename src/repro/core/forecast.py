"""Scalability forecasting: which lock becomes critical at more threads.

The paper's opening motivation: "it is important to identify what
critical section bottlenecks **will show up if more threads are
employed**".  This module answers that from a single profile, with a
roofline-style bound model:

* total execution work ``W`` (thread lifetimes minus blocking) divides
  across ``n`` threads: the *work bound* ``W / n``;
* each lock's critical sections serialize: lock ``l`` with ``I_l``
  invocations of mean hold ``s_l`` imposes the *serialization bound*
  ``I_l * s_l`` (independent of ``n``);
* the forecast completion time is the maximum of the bounds, and the
  **saturation point** of a lock is the thread count where its bound
  overtakes the work bound: ``n*_l = W / (I_l * s_l)``.

The model assumes strong scaling of a fixed workload (total work and
lock demand independent of ``n``) and perfect balance — so it is a
*lower* bound on completion time and an *early* estimate of saturation;
its value is the ranking: the lock with the lowest ``n*`` is the one
the paper's method will flag as critical first, before you ever run at
that scale.  Validated against simulator thread sweeps in
``benchmarks/bench_forecast.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisResult
from repro.errors import AnalysisError
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["LockForecast", "ScalabilityForecast", "forecast"]


@dataclass(frozen=True)
class LockForecast:
    """Serialization bound of one lock."""

    obj: int
    name: str
    invocations: int
    mean_hold: float
    serial_demand: float  # invocations * mean_hold

    def saturation_threads(self, total_work: float) -> float:
        """Thread count beyond which this lock bounds completion."""
        if self.serial_demand <= 0:
            return float("inf")
        return total_work / self.serial_demand


@dataclass(frozen=True)
class ScalabilityForecast:
    """Roofline forecast fitted from one profile."""

    total_work: float
    profiled_threads: int
    locks: list[LockForecast]  # sorted by serial demand, largest first

    def completion_time(self, n: int) -> float:
        """max(work bound, largest lock serialization bound)."""
        if n < 1:
            raise AnalysisError(f"n must be >= 1, got {n}")
        lock_bound = self.locks[0].serial_demand if self.locks else 0.0
        return max(self.total_work / n, lock_bound)

    def speedup(self, n: int) -> float:
        """Forecast speedup over 1 thread."""
        return self.completion_time(1) / self.completion_time(n)

    def bottleneck_lock(self, n: int) -> LockForecast | None:
        """The lock bounding completion at ``n`` threads, if any."""
        if not self.locks:
            return None
        top = self.locks[0]
        return top if top.serial_demand >= self.total_work / n else None

    def first_saturating_lock(self) -> LockForecast | None:
        """The lock that saturates at the lowest thread count."""
        return self.locks[0] if self.locks and self.locks[0].serial_demand > 0 else None

    def cp_share_forecast(self, lock_name: str, n: int) -> float:
        """Forecast fraction of completion time inside the lock's CSs."""
        lf = self._lock(lock_name)
        return min(1.0, lf.serial_demand / self.completion_time(n))

    def _lock(self, name: str) -> LockForecast:
        for lf in self.locks:
            if lf.name == name:
                return lf
        known = ", ".join(lf.name for lf in self.locks)
        raise AnalysisError(f"no lock named {name!r} in forecast; known: {known}")

    def to_dict(self, thread_counts: tuple = (8, 16, 32, 64)) -> dict:
        """JSON-serializable dump (used by the analysis service)."""
        return {
            "total_work": self.total_work,
            "profiled_threads": self.profiled_threads,
            "completion_time": {
                str(n): self.completion_time(n) for n in thread_counts
            },
            "locks": [
                {
                    "name": lf.name,
                    "invocations": lf.invocations,
                    "mean_hold": lf.mean_hold,
                    "serial_demand": lf.serial_demand,
                    "saturation_threads": (
                        None
                        if lf.saturation_threads(self.total_work) == float("inf")
                        else lf.saturation_threads(self.total_work)
                    ),
                }
                for lf in self.locks
            ],
        }

    def render(self, thread_counts: tuple = (8, 16, 32, 64), top: int = 5) -> str:
        rows = []
        for lf in self.locks[:top]:
            n_star = lf.saturation_threads(self.total_work)
            rows.append(
                [
                    lf.name,
                    lf.invocations,
                    f"{lf.serial_demand:.4g}",
                    "never" if n_star == float("inf") else f"{n_star:.1f}",
                ]
                + [
                    format_percent(self.cp_share_forecast(lf.name, n))
                    for n in thread_counts
                ]
            )
        return format_table(
            ["Lock", "Invocations", "Serial demand", "Saturates at N"]
            + [f"CP%@{n}" for n in thread_counts],
            rows,
            title=f"Scalability forecast (profiled at {self.profiled_threads} "
            f"threads, total work {self.total_work:.4g})",
        )


def forecast(analysis: AnalysisResult) -> ScalabilityForecast:
    """Fit the roofline forecast from one analysis result."""
    total_work = sum(
        tl.lifetime - tl.total_wait for tl in analysis.timelines.values()
    )
    if total_work <= 0:
        raise AnalysisError("cannot forecast: zero total execution work")
    locks = []
    for m in analysis.report.locks.values():
        if m.total_invocations == 0:
            continue
        locks.append(
            LockForecast(
                obj=m.obj,
                name=m.name,
                invocations=m.total_invocations,
                mean_hold=m.total_hold_time / m.total_invocations,
                serial_demand=m.total_hold_time,
            )
        )
    locks.sort(key=lambda lf: lf.serial_demand, reverse=True)
    return ScalabilityForecast(
        total_work=total_work,
        profiled_threads=len(analysis.timelines),
        locks=locks,
    )
