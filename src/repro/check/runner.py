"""Seed orchestration: generate → simulate → oracle → shrink → repro file.

One seed is one experiment: :func:`run_seed` generates the seed's
program, simulates it, and runs every oracle invariant on the trace.  On
failure it minimizes the program with :func:`repro.check.shrink.shrink`
(keyed on the violated invariant ids, so the shrinker cannot wander onto
an unrelated failure) and dumps a replayable repro file — a
:class:`~repro.check.spec.ProgramSpec` JSON document annotated with the
observed discrepancies, loadable by ``repro check --repro FILE`` or
:func:`replay_repro`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.generator import generate_spec
from repro.check.interp import run_spec
from repro.check.oracle import Discrepancy, check_trace
from repro.check.shrink import shrink
from repro.check.spec import ProgramSpec
from repro.errors import CheckError, ReproError

__all__ = ["SeedReport", "CheckRun", "check_spec", "run_seed", "run_seeds", "replay_repro"]


def check_spec(spec: ProgramSpec) -> list[Discrepancy]:
    """Simulate a spec and run the full differential oracle on its trace.

    A simulator failure (deadlock, sync misuse) is itself reported as a
    ``sim-error`` discrepancy: generated programs are deadlock-free by
    construction, so one ever raising means a generator or engine bug.
    """
    try:
        result = run_spec(spec)
    except ReproError as exc:
        return [Discrepancy("sim-error", f"{type(exc).__name__}: {exc}")]
    return check_trace(result.trace, has_nested_holds=spec.has_nested_holds)


@dataclass
class SeedReport:
    """Outcome of one seed (clean, or failing with a minimized repro)."""

    seed: int
    discrepancies: list[Discrepancy] = field(default_factory=list)
    op_count: int = 0
    shrunk: ProgramSpec | None = None
    shrink_evals: int = 0
    repro_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    @property
    def invariants(self) -> list[str]:
        """Violated invariant ids, de-duplicated, first-seen order."""
        return list(dict.fromkeys(d.invariant for d in self.discrepancies))

    def render(self) -> str:
        if self.ok:
            return f"seed {self.seed}: ok ({self.op_count} ops)"
        lines = [f"seed {self.seed}: {len(self.discrepancies)} discrepancies"]
        lines += [f"  {d}" for d in self.discrepancies]
        if self.shrunk is not None:
            lines.append(
                f"  shrunk {self.op_count} -> {self.shrunk.op_count()} ops "
                f"({self.shrink_evals} evals)"
            )
        if self.repro_path is not None:
            lines.append(f"  repro written to {self.repro_path}")
        return "\n".join(lines)


@dataclass
class CheckRun:
    """Aggregate outcome over a range of seeds."""

    reports: list[SeedReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def failures(self) -> list[SeedReport]:
        return [r for r in self.reports if not r.ok]

    def render(self) -> str:
        parts = [r.render() for r in self.failures]
        parts.append(
            f"checked {len(self.reports)} seeds: "
            f"{len(self.reports) - len(self.failures)} ok, "
            f"{len(self.failures)} failing"
        )
        return "\n".join(parts)


def _dump_repro(report: SeedReport, out_dir: str | Path) -> Path:
    """Write the minimized failing spec plus its discrepancy annotations.

    The file is a superset of the plain spec format, so
    :meth:`ProgramSpec.from_json` loads it unchanged.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    spec = report.shrunk if report.shrunk is not None else generate_spec(report.seed)
    doc = spec.to_dict()
    doc["discrepancies"] = [
        {"invariant": d.invariant, "detail": d.detail} for d in report.discrepancies
    ]
    doc["original_op_count"] = report.op_count
    path = out_dir / f"repro-seed{report.seed}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def run_seed(
    seed: int,
    out_dir: str | Path | None = None,
    shrink_failures: bool = True,
    max_shrink_evals: int = 400,
) -> SeedReport:
    """Check one seed end to end (see module docstring)."""
    spec = generate_spec(seed)
    report = SeedReport(seed=seed, op_count=spec.op_count())
    report.discrepancies = check_spec(spec)
    if report.ok:
        return report
    if shrink_failures:
        target = set(report.invariants)

        def still_fails(cand: ProgramSpec) -> bool:
            return any(d.invariant in target for d in check_spec(cand))

        report.shrunk, report.shrink_evals = shrink(
            spec, still_fails, max_evals=max_shrink_evals
        )
        # Report the minimized program's discrepancies: that is what the
        # repro file reproduces.
        report.discrepancies = [
            d for d in check_spec(report.shrunk) if d.invariant in target
        ] or report.discrepancies
    if out_dir is not None:
        report.repro_path = _dump_repro(report, out_dir)
    return report


def run_seeds(
    count: int,
    start: int = 0,
    out_dir: str | Path | None = None,
    shrink_failures: bool = True,
    max_shrink_evals: int = 400,
) -> CheckRun:
    """Check seeds ``start .. start + count - 1``."""
    if count < 1:
        raise CheckError(f"seed count must be >= 1, got {count}")
    return CheckRun(
        reports=[
            run_seed(
                seed,
                out_dir=out_dir,
                shrink_failures=shrink_failures,
                max_shrink_evals=max_shrink_evals,
            )
            for seed in range(start, start + count)
        ]
    )


def replay_repro(path: str | Path) -> SeedReport:
    """Re-run a repro file's program through the oracle (no re-shrinking)."""
    spec = ProgramSpec.from_json(path)
    report = SeedReport(seed=spec.seed, op_count=spec.op_count())
    report.discrepancies = check_spec(spec)
    return report
