"""Backward critical-path walk over columnar timelines.

Identical control flow to :func:`repro.core.critical_path.backward_walk`
— start at the last event of the last finished thread, cursor backwards,
jump to the waker whenever the position follows a blocked interval — but
the per-thread wait lookup is an ``np.searchsorted`` over each thread's
``wake_seq`` slice instead of a ``bisect`` over a list of ``Wait``
objects.  Only the path actually traversed materializes objects
(:class:`~repro.core.model.CPPiece` / ``Junction`` / ``Wait``), which is
a tiny fraction of the trace.
"""

from __future__ import annotations

from repro.core.columnar.timelines import ColumnarTimelines
from repro.core.critical_path import CriticalPath, WalkSegment
from repro.core.model import CPPiece, Junction
from repro.errors import AnalysisError
from repro.trace.trace import Trace

import numpy as np

__all__ = ["backward_walk_columnar", "compute_critical_path_columnar"]


def backward_walk_columnar(
    trace: Trace,
    ct: ColumnarTimelines,
    lo_seq: int | None = None,
) -> WalkSegment:
    """Columnar twin of :func:`repro.core.critical_path.backward_walk`."""
    tindex = ct.tid_index()
    last = trace.records[len(trace.records) - 1]
    cur_tid, cur_time, cur_seq = int(last["tid"]), float(last["time"]), int(last["seq"])
    pieces: list[CPPiece] = []
    junctions: list[Junction] = []
    waits = []
    boundary = "open"
    max_steps = ct.n_events + len(ct.tids) + 1

    wake_seq = ct.w_wake_seq
    while True:
        if len(pieces) > max_steps:
            raise AnalysisError(
                "backward walk did not terminate: trace has wake events "
                "recorded before their wakers"
            )
        i = tindex[cur_tid]
        lo, hi = int(ct.wait_lo[i]), int(ct.wait_hi[i])
        j = lo + int(np.searchsorted(wake_seq[lo:hi], cur_seq, side="right")) - 1
        if j >= lo:
            w = ct._wait_at(j)
            pieces.append(CPPiece(tid=cur_tid, start=w.end, end=cur_time))
            junctions.append(
                Junction(
                    time=w.end,
                    from_tid=w.waker_tid,
                    to_tid=cur_tid,
                    kind=w.kind,
                    obj=w.obj,
                )
            )
            waits.append(w)
            if lo_seq is not None and w.waker_seq < lo_seq:
                boundary = "jump"
                break
            cur_tid, cur_time, cur_seq = w.waker_tid, w.waker_time, w.waker_seq
        else:
            pieces.append(CPPiece(tid=cur_tid, start=float(ct.t_start[i]), end=cur_time))
            if ct.creator_tid[i] >= 0:
                creator = int(ct.creator_tid[i])
                junctions.append(
                    Junction(
                        time=float(ct.t_start[i]),
                        from_tid=creator,
                        to_tid=cur_tid,
                        kind=None,
                        obj=-1,
                    )
                )
                cur_tid = creator
                cur_time = float(ct.create_time[i])
                cur_seq = int(ct.create_seq[i])
            else:
                break

    pieces.reverse()
    junctions.reverse()
    waits.reverse()
    return WalkSegment(pieces=pieces, junctions=junctions, waits=waits, boundary=boundary)


def compute_critical_path_columnar(trace: Trace, ct: ColumnarTimelines) -> CriticalPath:
    """Walk a whole trace and wrap the result (columnar fast path)."""
    if len(trace) == 0:
        return CriticalPath(pieces=[], junctions=[], waits=[], trace_duration=0.0)
    walk = backward_walk_columnar(trace, ct)
    return CriticalPath(
        pieces=walk.pieces,
        junctions=walk.junctions,
        waits=walk.waits,
        trace_duration=trace.duration,
    )
