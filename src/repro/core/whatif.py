"""What-if analysis: predicted speedup from optimizing a lock.

The paper validates its rankings by actually optimizing each lock and
re-running (§V).  This module predicts the outcome without re-running:
shrink the execution time spent inside a lock's critical sections on the
event DAG and recompute the longest path.  Because the whole DAG is
re-evaluated, the prediction captures the path shift the paper observes
(the 39% CP-share lock yields only a 7% end-to-end gain once other
segments move onto the critical path) — while keeping the observed lock
acquisition order fixed, which makes it an estimate rather than ground
truth (re-running the workload in the simulator gives ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dag import EventGraph, build_event_graph
from repro.errors import AnalysisError
from repro.trace.trace import Trace

__all__ = ["WhatIfResult", "predict_shrink", "predict_no_contention", "resolve_lock"]


@dataclass(frozen=True)
class WhatIfResult:
    """Predicted outcome of shrinking one lock's critical sections."""

    lock_name: str
    factor: float  # critical sections scaled to this fraction of their size
    baseline_time: float
    predicted_time: float
    mode: str = "shrink"  # "shrink" or "no-contention"

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_time <= 0:
            return float("inf")
        return self.baseline_time / self.predicted_time

    @property
    def predicted_gain(self) -> float:
        """Fractional completion-time reduction (0.07 == 7% faster)."""
        if self.baseline_time <= 0:
            return 0.0
        return 1.0 - self.predicted_time / self.baseline_time

    def __str__(self) -> str:
        if self.mode == "no-contention":
            action = f"eliminating contention on {self.lock_name}"
        else:
            action = (
                f"shrinking critical sections of {self.lock_name} to "
                f"{self.factor:.0%}"
            )
        return (
            f"{action}: predicted speedup {self.predicted_speedup:.3f} "
            f"({self.predicted_gain:.1%} faster)"
        )


def predict_shrink(
    trace: Trace,
    lock: int | str,
    factor: float = 0.0,
    graph: EventGraph | None = None,
) -> WhatIfResult:
    """Predict the speedup from scaling a lock's critical sections.

    Parameters
    ----------
    lock:
        Object id, or display name of a lock in the trace.
    factor:
        New relative critical-section size (0 = eliminate, 0.5 = halve).
    graph:
        Pass a prebuilt :class:`EventGraph` to amortize construction over
        many predictions.
    """
    if graph is None:
        graph = build_event_graph(trace)
    obj = resolve_lock(trace, lock)
    baseline = graph.completion_time()
    predicted = graph.completion_time(graph.shrunk_weights(obj, factor))
    return WhatIfResult(
        lock_name=trace.object_name(obj),
        factor=factor,
        baseline_time=baseline,
        predicted_time=predicted,
    )


def predict_no_contention(
    trace: Trace,
    lock: int | str,
    graph: EventGraph | None = None,
) -> WhatIfResult:
    """Predict the speedup if a lock's acquisitions never blocked.

    Models the hardware/runtime mechanisms of the paper's §VII —
    accelerated critical sections, speculative lock reordering,
    transactional memory — where critical sections still execute but
    waiters no longer serialize behind holders: all contended-handoff
    dependency edges of the lock are removed from the event DAG and the
    longest path is re-solved.  The critical sections' own execution
    time is kept (compare with :func:`predict_shrink`, which keeps the
    serialization but shrinks the work).
    """
    if graph is None:
        graph = build_event_graph(trace)
    obj = resolve_lock(trace, lock)
    baseline = graph.completion_time()
    predicted = graph.completion_time(skip_edges=graph.lock_wake_edge_set(obj))
    return WhatIfResult(
        lock_name=trace.object_name(obj),
        factor=1.0,  # critical-section sizes unchanged
        baseline_time=baseline,
        predicted_time=predicted,
        mode="no-contention",
    )


def resolve_lock(trace: Trace, lock: int | str) -> int:
    """Resolve a lock given by object id or display name to its id.

    Names match exactly first; otherwise a *unique* prefix is accepted
    (``"entry"`` finds ``entry_lock[3]`` if it is the only match).  Both
    misses and ambiguous prefixes raise :class:`AnalysisError` listing
    the candidate lock names.
    """
    if isinstance(lock, int):
        if lock not in trace.objects:
            known = ", ".join(sorted(i.display_name for i in trace.locks))
            raise AnalysisError(
                f"no synchronization object with id {lock}; "
                f"locks in trace: {known}"
            )
        return lock
    for info in trace.locks:
        if info.display_name == lock or info.name == lock:
            return info.obj
    prefixed = [
        info
        for info in trace.locks
        if info.display_name.startswith(lock)
        or (info.name and info.name.startswith(lock))
    ]
    if len(prefixed) == 1:
        return prefixed[0].obj
    known = ", ".join(sorted(i.display_name for i in trace.locks))
    if prefixed:
        candidates = ", ".join(sorted(i.display_name for i in prefixed))
        raise AnalysisError(
            f"no lock named {lock!r}: ambiguous prefix, candidates: {candidates}"
        )
    raise AnalysisError(f"no lock named {lock!r}; locks in trace: {known}")
