"""Virtual-time discrete-event engine.

The engine owns the event queue, the cores, every thread state transition
and all trace emission.  Determinism comes from two rules:

* queue entries are ordered by ``(time, seq)`` where ``seq`` is a global
  insertion counter, so simultaneous events execute in causal insertion
  order;
* every waiter queue is FIFO.

Blocking semantics mirror Pthreads: a blocked acquirer is handed the lock
at release time (direct handoff, which is what the paper's waker
attribution rule — "the thread holding the same lock adjacently before
the blocked thread" — assumes), barriers release the whole cohort when
the last party arrives, and ``cond_wait`` atomically releases the mutex,
waits for a signal and reacquires.

Core-limited scheduling is supported (``cores=N``): a thread that is
runnable but has no core sits in a FIFO ready queue, and its wait is
folded into its next execution segment (no extra trace events).  All
paper experiments run with ``cores=None`` (as many cores as threads, like
the paper's 24-thread POWER7 runs).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import DeadlockError, SimulationError, SyncUsageError
from repro.sim import syscalls as sc
from repro.sim.sync import (
    SimBarrier,
    SimCondition,
    SimMutex,
    SimRWLock,
    SimSemaphore,
)
from repro.sim.thread import SimThread, ThreadBody, ThreadHandle, ThreadState
from repro.sim.tracing import TraceCollector
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["Simulator", "SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of a simulation run."""

    trace: Trace
    completion_time: float
    results: dict[int, Any] = field(default_factory=dict)

    @property
    def nthreads(self) -> int:
        return len(self.trace.thread_ids)


class Simulator:
    """Discrete-event executor for simulated multithreaded programs."""

    def __init__(
        self,
        cores: int | None = None,
        seed: int = 0,
        name: str = "",
        max_events: int = 50_000_000,
    ):
        if cores is not None and cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.seed = seed
        self.name = name
        self.max_events = max_events
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._qseq = 0
        self._busy = 0
        self._ready_q: deque[SimThread] = deque()
        self.threads: dict[int, SimThread] = {}
        self._next_tid = 0
        self._live = 0
        self._ran = False
        self.collector = TraceCollector()
        self._seedseq = np.random.SeedSequence(seed)
        self._handlers: dict[type, Callable[[SimThread, Any], None]] = {
            sc.Compute: self._handle_compute,
            sc.Acquire: self._handle_acquire,
            sc.TryAcquire: self._handle_try_acquire,
            sc.Release: self._handle_release,
            sc.BarrierWait: self._handle_barrier_wait,
            sc.CondWait: self._handle_cond_wait,
            sc.CondSignal: self._handle_cond_signal,
            sc.CondBroadcast: self._handle_cond_broadcast,
            sc.SemAcquire: self._handle_sem_acquire,
            sc.SemRelease: self._handle_sem_release,
            sc.RWAcquire: self._handle_rw_acquire,
            sc.RWRelease: self._handle_rw_release,
            sc.Spawn: self._handle_spawn,
            sc.Join: self._handle_join,
            sc.YieldCore: self._handle_yield_core,
        }

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def _post(self, time: float, fn: Callable[[], None]) -> None:
        self._qseq += 1
        heapq.heappush(self._queue, (time, self._qseq, fn))

    # -------------------------------------------------------------- factories

    def mutex(self, name: str = "", reentrant: bool = False) -> SimMutex:
        """Create a traced mutex (``reentrant=True`` for RLock semantics)."""
        obj = self.collector.register_object(SimMutex.kind, name)
        return SimMutex(obj=obj, name=name, reentrant=reentrant)

    def barrier(self, parties: int, name: str = "") -> SimBarrier:
        """Create a traced cyclic barrier for ``parties`` threads."""
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        obj = self.collector.register_object(SimBarrier.kind, name)
        return SimBarrier(obj=obj, name=name, parties=parties)

    def condition(self, name: str = "") -> SimCondition:
        """Create a traced condition variable."""
        obj = self.collector.register_object(SimCondition.kind, name)
        return SimCondition(obj=obj, name=name)

    def semaphore(self, value: int = 1, name: str = "") -> SimSemaphore:
        """Create a traced counting semaphore with initial ``value``."""
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        obj = self.collector.register_object(SimSemaphore.kind, name)
        return SimSemaphore(obj=obj, name=name, value=value)

    def rwlock(self, name: str = "") -> SimRWLock:
        """Create a traced reader-writer lock."""
        obj = self.collector.register_object(SimRWLock.kind, name)
        return SimRWLock(obj=obj, name=name)

    # ------------------------------------------------------------- threading

    def spawn(self, fn: ThreadBody, *args: Any, name: str | None = None) -> ThreadHandle:
        """Create a root thread (before :meth:`run`), starting at time 0."""
        if self._ran:
            raise SimulationError("cannot spawn root threads after run()")
        return self._add_thread(fn, args, name, parent=None).handle

    def _add_thread(
        self, fn: ThreadBody, args: tuple, name: str | None, parent: SimThread | None
    ) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        tname = name if name is not None else f"T{tid}"
        rng = np.random.Generator(np.random.PCG64(self._seedseq.spawn(1)[0]))
        thread = SimThread(self, tid, tname, fn, args, rng)
        self.threads[tid] = thread
        self.collector.register_thread(tid, tname)
        self._live += 1
        if parent is not None:
            self.collector.emit(self._now, parent.tid, EventType.THREAD_CREATE, arg=tid)
        self.collector.emit(self._now, tid, EventType.THREAD_START)
        thread.start_generator()
        self._make_runnable(thread, None)
        return thread

    def _finish_thread(self, thread: SimThread) -> None:
        self.collector.emit(self._now, thread.tid, EventType.THREAD_EXIT)
        thread.state = ThreadState.DONE
        self._live -= 1
        self._release_core(thread)
        for joiner in thread.joiners:
            self.collector.emit(
                self._now, joiner.tid, EventType.JOIN_END, arg=thread.tid
            )
            self._make_runnable(joiner, None)
        thread.joiners.clear()

    # --------------------------------------------------------------- cores

    def _core_available(self) -> bool:
        return self.cores is None or self._busy < self.cores

    def _grant_core(self, thread: SimThread) -> None:
        thread.has_core = True
        self._busy += 1
        thread.state = ThreadState.RUNNING

    def _release_core(self, thread: SimThread) -> None:
        if not thread.has_core:
            return
        thread.has_core = False
        self._busy -= 1
        if self._ready_q and self._core_available():
            nxt = self._ready_q.popleft()
            self._grant_core(nxt)
            value, nxt.pending = nxt.pending, None
            self._resume(nxt, value)

    def _make_runnable(self, thread: SimThread, value: Any) -> None:
        """Thread became runnable (woken or newly created)."""
        thread.block_reason = ""
        if self._core_available():
            self._grant_core(thread)
            self._resume(thread, value)
        else:
            thread.state = ThreadState.READY
            thread.pending = value
            self._ready_q.append(thread)

    def _block(self, thread: SimThread, reason: str) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_reason = reason
        self._release_core(thread)

    # --------------------------------------------------------------- stepping

    def _resume(self, thread: SimThread, value: Any) -> None:
        self._post(self._now, lambda: self._step(thread, value))

    def _step(self, thread: SimThread, value: Any) -> None:
        try:
            request = thread.gen.send(value)  # type: ignore[union-attr]
        except StopIteration as stop:
            if stop.value is not None:
                thread.result = stop.value
            self._finish_thread(thread)
            return
        except Exception as exc:
            raise SimulationError(
                f"thread {thread.name} (tid {thread.tid}) raised {type(exc).__name__}: {exc}"
            ) from exc
        handler = self._handlers.get(type(request))
        if handler is None:
            raise SimulationError(
                f"thread {thread.name} yielded non-request object {request!r}"
            )
        handler(thread, request)

    # --------------------------------------------------------------- handlers

    def _handle_compute(self, thread: SimThread, req: sc.Compute) -> None:
        if req.duration == 0:
            self._resume(thread, None)
        else:
            self._post(self._now + req.duration, lambda: self._step(thread, None))

    def _handle_acquire(self, thread: SimThread, req: sc.Acquire) -> None:
        m = req.mutex
        if m.owner is thread:
            if not m.reentrant:
                raise SyncUsageError(
                    f"thread {thread.name} re-acquired non-reentrant mutex {m.name!r}"
                )
            m.depth += 1  # nested acquire: no trace events (outermost only)
            self._resume(thread, None)
            return
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=m.obj)
        if m.owner is None:
            m.owner = thread
            m.depth = 1
            self.collector.emit(self._now, thread.tid, EventType.OBTAIN, obj=m.obj, arg=0)
            self._resume(thread, None)
        else:
            m.waiters.append(thread)
            self._block(thread, f"mutex {m.name or m.obj}")

    def _handle_try_acquire(self, thread: SimThread, req: sc.TryAcquire) -> None:
        m = req.mutex
        if m.owner is thread and m.reentrant:
            m.depth += 1
            self._resume(thread, True)
        elif m.owner is None:
            self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=m.obj)
            m.owner = thread
            m.depth = 1
            self.collector.emit(self._now, thread.tid, EventType.OBTAIN, obj=m.obj, arg=0)
            self._resume(thread, True)
        else:
            self._resume(thread, False)

    def _release_mutex(self, thread: SimThread, m: SimMutex) -> None:
        if m.owner is not thread:
            holder = m.owner.name if m.owner else "nobody"
            raise SyncUsageError(
                f"thread {thread.name} released mutex {m.name!r} held by {holder}"
            )
        if m.reentrant and m.depth > 1:
            m.depth -= 1  # still held; no trace events until outermost release
            return
        m.depth = 0
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=m.obj)
        if m.waiters:
            nxt = m.waiters.popleft()
            m.owner = nxt
            m.depth = 1
            self.collector.emit(self._now, nxt.tid, EventType.OBTAIN, obj=m.obj, arg=1)
            self._make_runnable(nxt, None)
        else:
            m.owner = None

    def _handle_release(self, thread: SimThread, req: sc.Release) -> None:
        self._release_mutex(thread, req.mutex)
        self._resume(thread, None)

    def _handle_barrier_wait(self, thread: SimThread, req: sc.BarrierWait) -> None:
        b = req.barrier
        gen = b.generation
        self.collector.emit(self._now, thread.tid, EventType.BARRIER_ARRIVE, obj=b.obj, arg=gen)
        b.arrived.append(thread)
        if len(b.arrived) == b.parties:
            cohort, b.arrived = b.arrived, []
            b.generation += 1
            for t in cohort:
                self.collector.emit(
                    self._now, t.tid, EventType.BARRIER_DEPART, obj=b.obj, arg=gen
                )
            for t in cohort:
                if t is thread:
                    self._resume(t, None)
                else:
                    self._make_runnable(t, None)
        else:
            self._block(thread, f"barrier {b.name or b.obj}")

    def _handle_cond_wait(self, thread: SimThread, req: sc.CondWait) -> None:
        cv, m = req.cond, req.mutex
        if m.owner is not thread:
            raise SyncUsageError(
                f"thread {thread.name} called cond_wait on {cv.name!r} "
                f"without holding mutex {m.name!r}"
            )
        if m.reentrant and m.depth > 1:
            raise SyncUsageError(
                f"thread {thread.name} called cond_wait on {cv.name!r} with "
                f"mutex {m.name!r} held recursively (depth {m.depth})"
            )
        self.collector.emit(self._now, thread.tid, EventType.COND_BLOCK, obj=cv.obj)
        cv.waiters.append((thread, m))
        # Atomically release the mutex; the waker attribution for the block
        # is the future signaller, not the next lock holder.
        self._release_mutex(thread, m)
        self._block(thread, f"cond {cv.name or cv.obj}")

    def _wake_cond_waiter(
        self, signaler: SimThread, cv: SimCondition, waiter: SimThread, m: SimMutex
    ) -> None:
        self.collector.emit(
            self._now, waiter.tid, EventType.COND_WAKE, obj=cv.obj, arg=signaler.tid
        )
        # The woken thread immediately reacquires the mutex (blocking).
        self.collector.emit(self._now, waiter.tid, EventType.ACQUIRE, obj=m.obj)
        if m.owner is None:
            m.owner = waiter
            self.collector.emit(self._now, waiter.tid, EventType.OBTAIN, obj=m.obj, arg=0)
            self._make_runnable(waiter, None)
        else:
            m.waiters.append(waiter)
            waiter.block_reason = f"mutex {m.name or m.obj}"

    def _handle_cond_signal(self, thread: SimThread, req: sc.CondSignal) -> None:
        cv = req.cond
        n = 1 if cv.waiters else 0
        self.collector.emit(self._now, thread.tid, EventType.COND_SIGNAL, obj=cv.obj, arg=n)
        if cv.waiters:
            waiter, m = cv.waiters.popleft()
            self._wake_cond_waiter(thread, cv, waiter, m)
        self._resume(thread, n)

    def _handle_cond_broadcast(self, thread: SimThread, req: sc.CondBroadcast) -> None:
        cv = req.cond
        n = len(cv.waiters)
        self.collector.emit(self._now, thread.tid, EventType.COND_BROADCAST, obj=cv.obj, arg=n)
        while cv.waiters:
            waiter, m = cv.waiters.popleft()
            self._wake_cond_waiter(thread, cv, waiter, m)
        self._resume(thread, n)

    def _handle_sem_acquire(self, thread: SimThread, req: sc.SemAcquire) -> None:
        sem = req.sem
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=sem.obj)
        if sem.value > 0:
            sem.value -= 1
            self.collector.emit(self._now, thread.tid, EventType.OBTAIN, obj=sem.obj, arg=0)
            self._resume(thread, None)
        else:
            sem.waiters.append(thread)
            self._block(thread, f"semaphore {sem.name or sem.obj}")

    def _handle_sem_release(self, thread: SimThread, req: sc.SemRelease) -> None:
        sem = req.sem
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=sem.obj)
        if sem.waiters:
            nxt = sem.waiters.popleft()
            self.collector.emit(self._now, nxt.tid, EventType.OBTAIN, obj=sem.obj, arg=1)
            self._make_runnable(nxt, None)
        else:
            sem.value += 1
        self._resume(thread, None)

    def _handle_rw_acquire(self, thread: SimThread, req: sc.RWAcquire) -> None:
        rw, write = req.rwlock, req.write
        mode = 1 if write else 0
        self.collector.emit(self._now, thread.tid, EventType.ACQUIRE, obj=rw.obj, arg=mode)
        if rw.can_grant(write):
            if write:
                rw.writer = thread
            else:
                rw.readers.add(thread)
            self.collector.emit(self._now, thread.tid, EventType.OBTAIN, obj=rw.obj, arg=0)
            self._resume(thread, None)
        else:
            rw.waiters.append((thread, write))
            self._block(thread, f"rwlock {rw.name or rw.obj}")

    def _handle_rw_release(self, thread: SimThread, req: sc.RWRelease) -> None:
        rw, write = req.rwlock, req.write
        mode = 1 if write else 0
        if write:
            if rw.writer is not thread:
                raise SyncUsageError(
                    f"thread {thread.name} write-released rwlock {rw.name!r} it does not hold"
                )
            rw.writer = None
        else:
            if thread not in rw.readers:
                raise SyncUsageError(
                    f"thread {thread.name} read-released rwlock {rw.name!r} it does not hold"
                )
            rw.readers.discard(thread)
        self.collector.emit(self._now, thread.tid, EventType.RELEASE, obj=rw.obj, arg=mode)
        self._drain_rw_waiters(rw)
        self._resume(thread, None)

    def _drain_rw_waiters(self, rw: SimRWLock) -> None:
        while rw.waiters:
            waiter, wants_write = rw.waiters[0]
            if wants_write:
                if rw.writer is None and not rw.readers:
                    rw.waiters.popleft()
                    rw.writer = waiter
                    self.collector.emit(
                        self._now, waiter.tid, EventType.OBTAIN, obj=rw.obj, arg=1
                    )
                    self._make_runnable(waiter, None)
                break  # a queued writer blocks everyone behind it
            if rw.writer is not None:
                break
            rw.waiters.popleft()
            rw.readers.add(waiter)
            self.collector.emit(self._now, waiter.tid, EventType.OBTAIN, obj=rw.obj, arg=1)
            self._make_runnable(waiter, None)

    def _handle_spawn(self, thread: SimThread, req: sc.Spawn) -> None:
        child = self._add_thread(req.fn, req.args, req.name, parent=thread)
        self._resume(thread, child.handle)

    def _handle_join(self, thread: SimThread, req: sc.Join) -> None:
        target = req.handle._thread
        self.collector.emit(self._now, thread.tid, EventType.JOIN_BEGIN, arg=target.tid)
        if target.state is ThreadState.DONE:
            self.collector.emit(self._now, thread.tid, EventType.JOIN_END, arg=target.tid)
            self._resume(thread, None)
        else:
            target.joiners.append(thread)
            self._block(thread, f"join {target.name}")

    def _handle_yield_core(self, thread: SimThread, req: sc.YieldCore) -> None:
        if self.cores is None or not self._ready_q:
            self._resume(thread, None)
            return
        thread.has_core = False
        self._busy -= 1
        thread.state = ThreadState.READY
        thread.pending = None
        self._ready_q.append(thread)
        nxt = self._ready_q.popleft()
        self._grant_core(nxt)
        value, nxt.pending = nxt.pending, None
        self._resume(nxt, value)

    # --------------------------------------------------------------- running

    def run(self, meta: dict[str, Any] | None = None) -> SimResult:
        """Execute to completion and return the trace and results."""
        if self._ran:
            raise SimulationError("Simulator.run() may only be called once")
        self._ran = True
        processed = 0
        while self._queue:
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a livelock in the simulated program"
                )
            time, _, fn = heapq.heappop(self._queue)
            self._now = time
            fn()
        blocked = {
            t.tid: t.block_reason or t.state.value
            for t in self.threads.values()
            if t.state in (ThreadState.BLOCKED, ThreadState.READY)
        }
        if blocked:
            raise DeadlockError(blocked)
        full_meta = {
            "name": self.name,
            "cores": self.cores,
            "seed": self.seed,
            "nthreads": len(self.threads),
        }
        full_meta.update(meta or {})
        trace = self.collector.build(full_meta)
        results = {tid: t.result for tid, t in self.threads.items()}
        return SimResult(trace=trace, completion_time=trace.duration, results=results)
