"""Multiprocessing worker pool with a supervising collector thread.

Why not :class:`concurrent.futures.ProcessPoolExecutor`?  A worker that
dies mid-job (OOM-killed, segfault in a native extension, ``os._exit``)
breaks the whole executor — every pending future gets
``BrokenProcessPool`` and the pool is unusable.  An always-on analysis
server needs the opposite: the *job* fails, the *pool* survives.  This
pool owns its workers directly: a shared task queue fans jobs out, a
result queue carries ``claim``/``done``/``error`` messages back, and a
collector thread doubles as supervisor — it notices dead workers, fails
the job they had claimed, and respawns a replacement.

Events are delivered to a single ``on_event(event, job_id, payload)``
callback (from the collector thread):

``"start"``   a worker picked the job up (payload: worker pid)
``"done"``    finished; payload is the result dict
``"error"``   the job raised; payload is the error string
``"crashed"`` the worker died mid-job; payload is an explanation

With ``workers=0`` the pool degrades to synchronous in-process
execution — same callback contract, no processes — which is what the
API tests and tiny deployments use.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import traceback
from typing import Any, Callable

from repro.errors import ServiceError
from repro.service.jobs import execute

__all__ = ["WorkerPool", "DEFAULT_START_METHOD"]

#: ``spawn`` everywhere: ``fork`` from a process that already runs the
#: collector + HTTP threads can clone held locks into the child.
DEFAULT_START_METHOD = "spawn"

_POLL_INTERVAL = 0.02  # seconds between result-queue polls / liveness checks


def _worker_main(task_q, result_q) -> None:  # pragma: no cover — child process
    """Worker loop: claim, execute, report; ``None`` is the stop sentinel.

    ``result_q`` must be a ``SimpleQueue``: its ``put`` writes through to
    the pipe synchronously, so the parent is *guaranteed* to see the
    claim before the job runs — a regular ``Queue``'s feeder thread would
    silently drop it if the job hard-kills the process (``os._exit``,
    OOM), and the supervisor could never attribute the crash to the job.
    """
    pid = os.getpid()
    while True:
        item = task_q.get()
        if item is None:
            break
        job_id, kind, paths, params = item
        result_q.put(("claim", job_id, pid))
        try:
            result = execute(kind, paths, params)
        except BaseException as exc:  # noqa: BLE001 — job isolation boundary
            detail = "".join(traceback.format_exception_only(type(exc), exc)).strip()
            result_q.put(("error", job_id, detail))
        else:
            result_q.put(("done", job_id, result))


class WorkerPool:
    """Fixed-size pool of analysis worker processes that survives crashes."""

    def __init__(
        self,
        workers: int = 2,
        on_event: Callable[[str, str, Any], None] | None = None,
        start_method: str = DEFAULT_START_METHOD,
        max_restarts: int = 64,
    ):
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._on_event = on_event or (lambda event, job_id, payload: None)
        self._max_restarts = max_restarts
        self.restarts = 0
        self._pending = 0  # submitted, not yet done/error/crashed
        self._lock = threading.Lock()
        self._closed = False

        if workers == 0:  # inline mode
            self._ctx = None
            return

        self._ctx = mp.get_context(start_method)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.SimpleQueue()
        self._procs: list = [self._spawn() for _ in range(workers)]
        self._claims: dict[int, str] = {}  # worker pid -> in-flight job id
        self._stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, name="pool-collector", daemon=True
        )
        self._collector.start()

    # -- public API ---------------------------------------------------------

    @property
    def inline(self) -> bool:
        return self._ctx is None

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        with self._lock:
            return self._pending

    def submit(self, job_id: str, kind: str, paths: list[str], params: dict) -> None:
        """Enqueue one job; completion arrives via the event callback."""
        if self._closed:
            raise ServiceError("worker pool is closed", status=503)
        with self._lock:
            self._pending += 1
        if self.inline:
            self._run_inline(job_id, kind, paths, params)
            return
        self._tasks.put((job_id, kind, list(paths), dict(params)))

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers and the collector; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.inline:
            return
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._stop.set()
        self._collector.join(timeout=timeout)
        # Cancel the task queue's feeder thread so shutdown never blocks;
        # the result SimpleQueue has no feeder, a plain close suffices.
        self._tasks.cancel_join_thread()
        self._tasks.close()
        self._results.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- inline mode --------------------------------------------------------

    def _run_inline(self, job_id: str, kind: str, paths: list[str], params: dict) -> None:
        self._emit("start", job_id, os.getpid())
        try:
            result = execute(kind, paths, params)
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            detail = "".join(traceback.format_exception_only(type(exc), exc)).strip()
            self._finish("error", job_id, detail)
        else:
            self._finish("done", job_id, result)

    # -- collector / supervisor ---------------------------------------------

    def _collect(self) -> None:
        while not self._stop.is_set():
            drained = self._drain_results()
            if not drained:
                self._check_liveness()

    def _drain_results(self, block: bool = True) -> int:
        """Process queued result messages; returns how many were handled.

        Only the collector thread reads ``self._results``, so the
        ``empty()`` check followed by ``get()`` cannot race.
        """
        import time as _time

        handled = 0
        if block and self._results.empty():
            _time.sleep(_POLL_INTERVAL)
        while not self._results.empty():
            msg = self._results.get()
            handled += 1
            event, job_id, payload = msg
            if event == "claim":
                self._claims[payload] = job_id
                self._emit("start", job_id, payload)
            else:  # done / error
                for pid, claimed in list(self._claims.items()):
                    if claimed == job_id:
                        del self._claims[pid]
                self._finish(event, job_id, payload)

    def _check_liveness(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            # The worker is gone.  Drain once more: its final messages may
            # still be in flight, and a job that managed to report "done"
            # before dying must not be failed retroactively.
            self._drain_results(block=False)
            job_id = self._claims.pop(proc.pid, None)
            if job_id is not None:
                self._finish(
                    "crashed",
                    job_id,
                    f"worker pid {proc.pid} died (exitcode {proc.exitcode}) mid-job",
                )
            if self._closed:
                continue
            if self.restarts >= self._max_restarts:
                continue  # crash loop guard: stop replacing workers
            self.restarts += 1
            self._procs[i] = self._spawn()

    def _spawn(self):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results),
            name="analysis-worker",
            daemon=True,
        )
        proc.start()
        return proc

    # -- bookkeeping ---------------------------------------------------------

    def _finish(self, event: str, job_id: str, payload: Any) -> None:
        with self._lock:
            self._pending = max(0, self._pending - 1)
        self._emit(event, job_id, payload)

    def _emit(self, event: str, job_id: str, payload: Any) -> None:
        try:
            self._on_event(event, job_id, payload)
        except Exception:  # noqa: BLE001 — callbacks must not kill the collector
            traceback.print_exc()
