"""TSP workload: the search is a real branch-and-bound (verified optimal)."""

import itertools

import numpy as np
import pytest

from repro.core.analyzer import analyze
from repro.trace.validate import validate_trace
from repro.workloads import TSP


def brute_force_optimum(dist: np.ndarray) -> float:
    n = len(dist)
    best = float("inf")
    for perm in itertools.permutations(range(1, n)):
        cost = dist[0, perm[0]]
        for a, b in zip(perm, perm[1:]):
            cost += dist[a, b]
        cost += dist[perm[-1], 0]
        best = min(best, float(cost))
    return best


class SearchTrackingTSP(TSP):
    """TSP that records the best tour found (for optimality checks)."""

    name = ""  # not registered

    def build(self, prog, nthreads):
        super().build(prog, nthreads)
        # Grab the shared state from the spawned workers' closure.
        self._state = prog.threads[0]._args[1]


@pytest.fixture(scope="module")
def small_tsp_run():
    wl = SearchTrackingTSP(ncities=7)
    res = wl.run(nthreads=4, seed=0)
    return wl, res


def test_finds_optimal_tour(small_tsp_run):
    wl, _ = small_tsp_run
    dist = wl.make_instance()
    assert wl._state.best == pytest.approx(brute_force_optimum(dist))


def test_parallel_matches_serial_optimum():
    results = []
    for n in (1, 6):
        wl = SearchTrackingTSP(ncities=7)
        wl.run(nthreads=n, seed=0)
        results.append(wl._state.best)
    assert results[0] == pytest.approx(results[1])


def test_trace_valid(small_tsp_run):
    _, res = small_tsp_run
    validate_trace(res.trace)


def test_greedy_tour_is_feasible_upper_bound(small_tsp_run):
    wl, _ = small_tsp_run
    dist = wl.make_instance()
    assert wl.greedy_tour(dist) >= brute_force_optimum(dist) - 1e-9


def test_qlock_dominates_at_scale():
    res = TSP().run(nthreads=24, seed=0)
    m = analyze(res.trace).report.top_locks(1)[0]
    assert m.name == "Q.qlock"
    assert m.cp_fraction > 0.4  # paper: ~68% at 24 threads
    assert m.cp_fraction > 2 * m.avg_wait_fraction


def test_split_queue_improves():
    orig = TSP().run(nthreads=16, seed=0).completion_time
    opt = TSP(split_queue=True).run(nthreads=16, seed=0).completion_time
    assert opt < orig


def test_instance_deterministic():
    a = TSP(instance_seed=7).make_instance()
    b = TSP(instance_seed=7).make_instance()
    c = TSP(instance_seed=8).make_instance()
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_instance_symmetric():
    d = TSP().make_instance()
    off_diag = ~np.eye(len(d), dtype=bool)
    assert np.allclose(d[off_diag], d.T[off_diag])
    assert np.all(np.isinf(np.diag(d)))
