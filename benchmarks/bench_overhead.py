"""Paper §IV.A: instrumentation overhead of the tracing layer.

The paper reports ~5% overhead at 24 threads for its MAGIC()
instrumentation; this bench measures the real-thread analog (plain
`threading` vs traced primitives on the same lock-heavy program) and
asserts the overhead stays within the same order of magnitude.
"""

import pytest

from repro.experiments import overhead

from conftest import run_once


@pytest.mark.benchmark(group="overhead")
def test_instrumentation_overhead(benchmark, show):
    result = run_once(benchmark, overhead.run, nthreads=4, rounds=40)
    show(result.render())
    # Generous ceiling: Python timestamping on sub-ms critical sections
    # must still stay far from doubling the runtime (paper: ~5%).
    assert result.values["overhead"] < 0.5
    assert result.values["traced"] > 0
