"""Profiling sessions: thread registry, event buffers, trace assembly.

A :class:`ProfilingSession` plays the role of the paper's preloaded
instrumentation library: it hands out traced synchronization primitives,
assigns thread ids, buffers event records per thread in memory (one
Python list per thread — appends are GIL-atomic and contention-free) and
assembles the final :class:`~repro.trace.Trace` when the session closes,
the analog of the paper's flush-on-completion trace file.

A session can additionally *stream while running*: :meth:`~ProfilingSession.stream_to`
mirrors every emitted event into a bounded :class:`~repro.stream.EventRing`
drained by a flusher thread (:mod:`repro.stream`), so a live consumer —
a ``.cls`` file tail or the analysis service's chunked-append endpoint —
sees the trace as it grows.  The mirror is lossy under overload (drops
are counted, never blocking the application); the in-memory buffers and
the final :meth:`trace` stay complete regardless.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.errors import TraceError
from repro.instrument.clock import Clock, MonotonicClock
from repro.trace.events import NO_OBJECT, Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace
from repro.units import ns_to_time

__all__ = ["ProfilingSession"]


class ProfilingSession:
    """Collects synchronization events from real Python threads.

    Use as a context manager; the enclosing (usually main) thread is
    registered as tid 0 for the duration of the ``with`` block.  After
    the block, :meth:`trace` returns the assembled trace.
    """

    def __init__(
        self,
        name: str = "",
        clock: Clock | None = None,
        sample_rate: float | None = None,
        sample_seed: int = 0,
    ):
        self.name = name
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._tls = threading.local()
        self._buffers: dict[int, list[Event]] = {}
        self._objects: dict[int, ObjectInfo] = {}
        self._thread_names: dict[int, str] = {}
        self._registry_lock = threading.Lock()  # untraced internal lock
        self._next_tid = itertools.count()
        self._next_obj = itertools.count()
        self._seq = itertools.count()  # global tie-breaker for merged sort
        self._t0_ns = 0
        self._active = False
        self._closed = False
        self._ring = None  # set by stream_to(); emit() mirrors into it
        self._flusher = None
        self.stream_result: Any = None
        # Sampling capture: lock invocations are hash-sampled *before*
        # they reach the buffers (repro.sampling); rate 1.0 (or None)
        # records everything and keeps emit() on the fast path.
        self._sampler = None
        if sample_rate is not None and float(sample_rate) < 1.0:
            from repro.sampling.sampler import EventSampler

            self._sampler = EventSampler(float(sample_rate), int(sample_seed))

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ProfilingSession":
        if self._active or self._closed:
            raise TraceError("ProfilingSession is not reusable")
        self._active = True
        self._t0_ns = self.clock.now_ns()
        tid = self.register_thread("main")
        self.emit(tid, EventType.THREAD_START)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tid = self.current_tid()
        self.emit(tid, EventType.THREAD_EXIT)
        self._active = False
        self._closed = True
        if self._flusher is not None:
            self.stream_result = self._flusher.close(self.stream_header())

    # -- thread registry ------------------------------------------------------

    def register_thread(self, name: str = "") -> int:
        """Assign a tid to the calling thread and open its event buffer."""
        tid = next(self._next_tid)
        self._tls.tid = tid
        with self._registry_lock:
            self._buffers[tid] = []
            self._thread_names[tid] = name or f"T{tid}"
        return tid

    def allocate_tid(self, name: str = "") -> int:
        """Pre-assign a tid for a thread that has not started yet."""
        tid = next(self._next_tid)
        with self._registry_lock:
            self._buffers[tid] = []
            self._thread_names[tid] = name or f"T{tid}"
        return tid

    def adopt_tid(self, tid: int) -> None:
        """Bind a pre-allocated tid to the calling thread."""
        self._tls.tid = tid

    def current_tid(self) -> int:
        """Tid of the calling thread (must be registered)."""
        try:
            return self._tls.tid
        except AttributeError:
            raise TraceError(
                "calling thread is not registered with this ProfilingSession; "
                "spawn threads via session.thread(...)"
            ) from None

    # -- object registry -------------------------------------------------------

    def register_object(self, kind: ObjectKind, name: str) -> int:
        obj = next(self._next_obj)
        with self._registry_lock:
            self._objects[obj] = ObjectInfo(obj=obj, kind=kind, name=name)
        return obj

    # -- event emission (the MAGIC() analog) ------------------------------------

    def emit(
        self,
        tid: int,
        etype: EventType,
        obj: int = NO_OBJECT,
        arg: int = 0,
        at_ns: int | None = None,
    ) -> int:
        """Record one event for thread ``tid``; returns the timestamp used."""
        t_ns = self.clock.now_ns() if at_ns is None else at_ns
        ev = Event(
            seq=next(self._seq),
            time=ns_to_time(t_ns - self._t0_ns),
            tid=tid,
            etype=etype,
            obj=obj,
            arg=arg,
        )
        sampler = self._sampler
        if (
            sampler is not None
            and etype in (EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE)
            and self._objects[obj].kind.is_lock_like
        ):
            # Streaming keep/drop decision; a kept contended OBTAIN may
            # flush a retained waker unit (events of another thread).
            for out in sampler.process(ev):
                self._buffers[out.tid].append(out)
                ring = self._ring
                if ring is not None:
                    ring.push(out)
            return t_ns
        self._buffers[tid].append(ev)
        ring = self._ring
        if ring is not None:
            ring.push(ev)  # lossy mirror; drops are counted in the ring
        return t_ns

    def emit_here(
        self, etype: EventType, obj: int = NO_OBJECT, arg: int = 0, at_ns: int | None = None
    ) -> int:
        """Emit for the calling thread."""
        return self.emit(self.current_tid(), etype, obj, arg, at_ns)

    # -- traced primitive factories -----------------------------------------------

    def lock(self, name: str = "") -> "TracedLock":
        """Create a traced mutual-exclusion lock."""
        from repro.instrument.locks import TracedLock

        return TracedLock(self, name)

    def semaphore(
        self, value: int = 1, name: str = "", bounded: bool = False
    ) -> "TracedSemaphore":
        """Create a traced (optionally bounded) counting semaphore."""
        from repro.instrument.locks import TracedSemaphore

        return TracedSemaphore(self, value, name, bounded=bounded)

    def barrier(self, parties: int, name: str = "") -> "TracedBarrier":
        """Create a traced cyclic barrier."""
        from repro.instrument.barrier import TracedBarrier

        return TracedBarrier(self, parties, name)

    def condition(self, lock: "TracedLock | None" = None, name: str = "") -> "TracedCondition":
        """Create a traced condition variable (optionally over a given lock)."""
        from repro.instrument.condition import TracedCondition

        return TracedCondition(self, lock, name)

    def thread(
        self,
        target: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        name: str = "",
    ) -> "TracedThread":
        """Create a traced (not yet started) thread running ``target``."""
        from repro.instrument.threads import TracedThread

        return TracedThread(self, target, args, kwargs or {}, name)

    # -- streaming ----------------------------------------------------------------

    def stream_to(
        self,
        sink,
        *,
        ring_capacity: int = 65536,
        interval: float = 0.25,
        chunk_events: int = 8192,
    ):
        """Mirror this session's events into ``sink`` while it runs.

        ``sink`` is any :class:`repro.stream.ChunkSink` (a
        :class:`~repro.stream.ChunkFileSink` for a tailable ``.cls``
        file, a :class:`~repro.stream.ServiceSink` for the service's
        chunked-append endpoint).  Returns the started
        :class:`~repro.stream.StreamFlusher`; it is closed — final
        flush + sink finalize with this session's header — automatically
        when the ``with`` block exits, and the finalize result lands in
        :attr:`stream_result`.

        Call this before spawning traced threads: events already emitted
        by the *calling* thread are backfilled into the ring, but events
        other threads emit concurrently with the attach could miss it.
        """
        from repro.stream import EventRing, StreamFlusher

        if self._flusher is not None:
            raise TraceError("session is already streaming")
        if self._closed:
            raise TraceError("session is closed")
        flusher = StreamFlusher(
            EventRing(ring_capacity), sink,
            interval=interval, chunk_events=chunk_events,
        )
        self._flusher = flusher
        # Backfill events emitted before streaming started (e.g. the main
        # thread's THREAD_START from __enter__), then go live.  Interleaving
        # with concurrent emits is harmless: finalization re-sorts by
        # (time, seq), so ring order need not be emission order.
        with self._registry_lock:
            backlog = [ev for buf in self._buffers.values() for ev in buf]
        for ev in sorted(backlog, key=lambda e: e.seq):
            flusher.ring.push(ev)
        self._ring = flusher.ring
        return flusher.start()

    def stream_header(self) -> dict[str, Any]:
        """JSON header (objects, threads, meta) for stream finalization."""
        with self._registry_lock:
            return {
                "objects": {
                    str(obj): {"kind": int(info.kind), "name": info.name}
                    for obj, info in self._objects.items()
                },
                "threads": {
                    str(tid): name for tid, name in self._thread_names.items()
                },
                "meta": self._meta(),
            }

    def _meta(self) -> dict[str, Any]:
        meta: dict[str, Any] = {"name": self.name, "source": "instrument"}
        if self._sampler is not None:
            meta["sampling"] = self._sampler.meta()
        return meta

    # -- assembly -----------------------------------------------------------------

    def trace(self) -> Trace:
        """Merge all per-thread buffers into a time-ordered trace."""
        if self._active:
            raise TraceError("session still active; exit the 'with' block first")
        with self._registry_lock:
            events = [ev for buf in self._buffers.values() for ev in buf]
            return Trace.from_events(
                events,
                objects=dict(self._objects),
                threads=dict(self._thread_names),
                meta=self._meta(),
            )
