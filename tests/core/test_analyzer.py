"""Analyzer façade."""

import pytest

from repro.core.analyzer import analyze
from repro.errors import TraceValidationError
from repro.trace.builder import TraceBuilder


def test_full_pipeline(micro_trace):
    result = analyze(micro_trace)
    assert result.report.nthreads == 4
    assert result.report.duration == pytest.approx(12.0)
    assert result.critical_path.length == pytest.approx(12.0)
    assert set(result.timelines) == {0, 1, 2, 3}
    assert "critical lock analysis" in result.render()


def test_validation_enabled_by_default():
    b = TraceBuilder()
    t = b.thread()
    t.start(at=0.0)  # missing exit
    trace = b.build(validate=False)
    with pytest.raises(TraceValidationError):
        analyze(trace)
    # Opt-out still analyzes best-effort.
    result = analyze(trace, validate=False)
    assert result.report.nthreads == 1


def test_graph_cached(micro_trace):
    result = analyze(micro_trace)
    assert result.graph is result.graph


def test_report_name_from_meta(micro_trace):
    assert analyze(micro_trace).report.name == "micro"
