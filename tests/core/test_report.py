"""Report object: queries, rendering, export."""

import json

import pytest

from repro.core.analyzer import analyze
from repro.errors import AnalysisError

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def report():
    return analyze(make_micro_program().run().trace).report


def test_lock_lookup(report):
    assert report.lock("L1").name == "L1"
    with pytest.raises(AnalysisError, match="no lock named"):
        report.lock("nope")


def test_top_locks_default_order(report):
    names = [m.name for m in report.top_locks()]
    assert names == ["L2", "L1"]


def test_top_locks_by_wait(report):
    names = [m.name for m in report.top_locks(by="avg_wait_fraction")]
    assert names == ["L1", "L2"]


def test_top_locks_limit(report):
    assert len(report.top_locks(1)) == 1


def test_critical_locks(report):
    assert {m.name for m in report.critical_locks} == {"L1", "L2"}


def test_total_cp_lock_fraction(report):
    assert report.total_cp_lock_fraction == pytest.approx(1.0)


def test_render_contains_tables(report):
    text = report.render()
    assert "TYPE 1" in text
    assert "TYPE 2" in text
    assert "L2" in text
    assert "83.33%" in text
    assert "Per-thread breakdown" in text


def test_render_summary(report):
    s = report.render_summary()
    assert "critical path length" in s
    assert "4" in s  # threads


def test_to_dict_json_serializable(report):
    d = report.to_dict()
    blob = json.loads(json.dumps(d))
    assert blob["locks"]["L2"]["cp_time_frac"] == pytest.approx(10 / 12)
    assert blob["nthreads"] == 4
    assert len(blob["threads"]) == 4
    assert blob["critical_path"]["coverage_error"] == 0.0
