"""Micro-benchmark workload: exact completion times (hand-computed)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import MicroBenchmark


def test_four_thread_completion():
    # CS1 serializes to t=8; CS2 chain ends at 12 (paper Fig. 7 layout).
    res = MicroBenchmark().run(nthreads=4)
    assert res.completion_time == pytest.approx(12.0)


def test_single_thread_completion():
    assert MicroBenchmark().run(nthreads=1).completion_time == pytest.approx(4.5)


def test_two_thread_completion():
    # T0: CS1 [0,2] CS2 [2,4.5]; T1: CS1 [2,4], CS2 waits til 4.5 -> 7.
    assert MicroBenchmark().run(nthreads=2).completion_time == pytest.approx(7.0)


def test_optimizing_l2_beats_l1():
    base = MicroBenchmark().run(nthreads=4).completion_time
    t_l1 = MicroBenchmark(optimize="L1").run(nthreads=4).completion_time
    t_l2 = MicroBenchmark(optimize="L2").run(nthreads=4).completion_time
    assert t_l1 == pytest.approx(11.0)
    assert t_l2 == pytest.approx(9.5)
    assert base / t_l2 > base / t_l1  # the paper's Fig. 6 conclusion


def test_invalid_optimize_target():
    with pytest.raises(WorkloadError, match="optimize"):
        MicroBenchmark(optimize="L3")


def test_overshooting_optimization_rejected():
    with pytest.raises(WorkloadError, match="entire critical section"):
        MicroBenchmark(optimize="L1", optimize_amount=2.0)


def test_lock_names():
    trace = MicroBenchmark().run(nthreads=2).trace
    assert {info.name for info in trace.locks} == {"L1", "L2"}
