"""Replay error paths and edge cases."""

import pytest

from repro.errors import AnalysisError
from repro.replay import reconstruct
from repro.sim import Program
from repro.trace.builder import TraceBuilder


def test_varying_barrier_cohorts_rejected():
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    # Generation 0: both arrive; generation 1: only t0.
    t0.barrier(bar, arrive=1.0, depart=1.0, gen=0)
    t1.barrier(bar, arrive=0.5, depart=1.0, gen=0)
    t0.barrier(bar, arrive=2.0, depart=2.0, gen=1)
    t0.exit(at=3.0)
    t1.exit(at=3.0)
    trace = b.build(validate=False)
    with pytest.raises(AnalysisError, match="varying cohort sizes"):
        reconstruct(trace).build()


def test_cond_block_without_release_rejected():
    b = TraceBuilder()
    cv = b.condition("cv")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.cond_block(cv, at=1.0)  # no mutex RELEASE follows
    t0.cond_wake(cv, at=2.0, by=t1)
    t0.exit(at=3.0)
    t1.exit(at=3.0)
    trace = b.build(validate=False)
    with pytest.raises(AnalysisError, match="cannot reconstruct cond_wait"):
        reconstruct(trace)


def test_empty_threads_replayable():
    prog = Program()
    prog.spawn(lambda env: None)
    original = prog.run()
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == original.completion_time == 0.0


def test_semaphore_initial_value_inferred():
    prog = Program()
    sem = prog.semaphore(3, "S")

    def body(env, i):
        yield env.sem_acquire(sem)
        yield env.compute(1.0)
        yield env.sem_release(sem)

    prog.spawn_workers(5, body)
    original = prog.run()
    # 5 holders over 3 slots: 1.0 then 2.0 waves -> completion 2.0.
    assert original.completion_time == pytest.approx(2.0)
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(2.0)


def test_replay_nested_locks():
    prog = Program()
    outer, inner = prog.mutex("outer"), prog.mutex("inner")

    def body(env, i):
        yield env.acquire(outer)
        yield env.compute(0.5)
        yield env.acquire(inner)
        yield env.compute(0.5)
        yield env.release(inner)
        yield env.release(outer)

    prog.spawn_workers(3, body)
    original = prog.run()
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(original.completion_time)


def test_shrink_nested_inner_lock():
    prog = Program()
    outer, inner = prog.mutex("outer"), prog.mutex("inner")

    def body(env, i):
        yield env.acquire(outer)
        yield env.compute(1.0)
        yield env.acquire(inner)
        yield env.compute(1.0)
        yield env.release(inner)
        yield env.release(outer)

    prog.spawn_workers(2, body)
    original = prog.run()  # fully serialized: 2 * 2.0 = 4.0
    assert original.completion_time == pytest.approx(4.0)
    # Shrinking `inner` removes the time spent while holding it (which is
    # also inside `outer`).
    res = reconstruct(original.trace).run(shrink_lock="inner", factor=0.0)
    assert res.completion_time == pytest.approx(2.0)
