"""Quiescent cut-point detection for sharded analysis.

A *cut point* is a position ``pos`` in the record array such that the
prefix ``records[:pos]`` and suffix ``records[pos:]`` can be analyzed
independently and stitched back together losslessly (see
``docs/sharding.md``).  Two trace shapes produce such points:

* **barrier cuts** — the instant right after the *last* BARRIER_ARRIVE
  of a full-barrier episode in which every live thread participates: at
  that instant every thread is blocked inside the barrier, so no lock is
  held, no acquire/cond/join is pending, and the only dependency that
  crosses the cut is the departs' wake edge to that final arrival (the
  *anchor*), which the analysis layer re-injects on the right shard;
* **join cuts** — the position right after a JOIN_END that leaves
  exactly one live thread: the program has collapsed to a single thread,
  so the suffix depends on the prefix only through that thread's own
  program order.

Detection is vectorized: one pass of numpy cumulative balances over the
whole record array (lock ownership, pending acquires, pending condition
blocks, pending joins, live threads, created-but-unstarted threads),
plus a sparse span-cover pass for the two waker rules that can reach
arbitrarily far back in the trace (JOIN_END -> target's THREAD_EXIT and
COND_WAKE -> its signal).  A candidate crossed by any such span is
rejected, which is what keeps per-shard waker resolution *identical* to
whole-trace resolution rather than merely similar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["CutPoint", "find_cuts", "select_cuts"]


@dataclass(frozen=True)
class CutPoint:
    """One quiescent position where a trace may be split.

    ``records[:pos]`` is the left shard, ``records[pos:]`` the right.
    ``anchor_*`` identify the record just before the cut (the episode's
    final BARRIER_ARRIVE, or the surviving thread's JOIN_END): the only
    event post-cut wakes may legally resolve to.
    """

    pos: int
    kind: str  # "barrier" | "join"
    anchor_tid: int
    anchor_time: float
    anchor_seq: int
    #: (obj, generation) of the episode for barrier cuts, else None.
    barrier: tuple[int, int] | None = None
    #: (tid, arrive time) per participant — re-seeds the right shard's
    #: pending-barrier state so boundary Waits keep exact start times.
    arrivals: tuple[tuple[int, float], ...] = field(default=())


def _prefix_balance(et: np.ndarray, plus: int, minus: int) -> np.ndarray:
    delta = (et == plus).astype(np.int64)
    delta -= et == minus
    return np.cumsum(delta)


def find_cuts(trace: Trace) -> list[CutPoint]:
    """All quiescent cut points of a trace, in record order."""
    rec = trace.records
    n = len(rec)
    if n < 3:
        return []
    et = rec["etype"].astype(np.int64)
    tid = rec["tid"]
    obj = rec["obj"].astype(np.int64)
    arg = rec["arg"].astype(np.int64)

    lock_bal = _prefix_balance(et, int(EventType.OBTAIN), int(EventType.RELEASE))
    acq_bal = _prefix_balance(et, int(EventType.ACQUIRE), int(EventType.OBTAIN))
    cond_bal = _prefix_balance(et, int(EventType.COND_BLOCK), int(EventType.COND_WAKE))
    join_bal = _prefix_balance(et, int(EventType.JOIN_BEGIN), int(EventType.JOIN_END))
    live = _prefix_balance(et, int(EventType.THREAD_START), int(EventType.THREAD_EXIT))

    # Created-but-unstarted threads: count only THREAD_STARTs whose tid
    # was announced by a THREAD_CREATE — root threads start unannounced
    # and must not drive the balance negative.
    create_mask = et == int(EventType.THREAD_CREATE)
    start_mask = et == int(EventType.THREAD_START)
    child_tids = arg[create_mask]
    child_start = start_mask & np.isin(tid, child_tids)
    pending_create = np.cumsum(create_mask.astype(np.int64) - child_start)

    quiet = (
        (lock_bal == 0)
        & (acq_bal == 0)
        & (cond_bal == 0)
        & (join_bal == 0)
        & (pending_create == 0)
    )

    cover = _span_cover(trace, et, tid, obj, arg, n)

    cuts: list[CutPoint] = []
    cuts.extend(_barrier_cuts(rec, et, obj, arg, live, quiet, cover))
    cuts.extend(_join_cuts(rec, et, live, quiet, cover, n))
    cuts.sort(key=lambda c: c.pos)
    return cuts


def _span_cover(
    trace: Trace,
    et: np.ndarray,
    tid: np.ndarray,
    obj: np.ndarray,
    arg: np.ndarray,
    n: int,
) -> np.ndarray:
    """cover[i] > 0 iff some long-range waker dependency crosses cut ``i``.

    Replays the two waker-resolution rules that can reach past any
    amount of intervening history — JOIN_END -> the target's
    THREAD_EXIT, and COND_WAKE -> the matching signal (or, per the
    resolver's documented fallback, the signalling thread's latest
    event) — and marks every position strictly inside each (waker,
    wake] span.  These event kinds are rare, so the Python loop touches
    a handful of rows; the cover itself is one cumsum.
    """
    delta = np.zeros(n + 2, dtype=np.int64)

    def add_span(src: int, dst: int) -> None:
        if src < dst:
            delta[src + 1] += 1
            delta[dst + 1] -= 1

    exit_pos: dict[int, int] = {}
    for p in np.flatnonzero(et == int(EventType.THREAD_EXIT)):
        exit_pos[int(tid[p])] = int(p)
    for p in np.flatnonzero(et == int(EventType.JOIN_END)):
        src = exit_pos.get(int(arg[p]))
        if src is not None and src < p:
            add_span(src, int(p))

    cond_rows = np.flatnonzero(
        (et == int(EventType.COND_WAKE))
        | (et == int(EventType.COND_SIGNAL))
        | (et == int(EventType.COND_BROADCAST))
    )
    last_signal: dict[int, tuple[int, int]] = {}  # cond obj -> (pos, tid)
    tid_rows: dict[int, np.ndarray] = {}
    for p in cond_rows:
        p = int(p)
        if et[p] != int(EventType.COND_WAKE):
            last_signal[int(obj[p])] = (p, int(tid[p]))
            continue
        sig = last_signal.get(int(obj[p]))
        if sig is not None and sig[1] == int(arg[p]):
            add_span(sig[0], p)
            continue
        # Resolver fallback: the signalling thread's latest prior event.
        g = int(arg[p])
        rows = tid_rows.get(g)
        if rows is None:
            rows = tid_rows[g] = np.flatnonzero(tid == g)
        i = int(np.searchsorted(rows, p)) - 1
        if i >= 0:
            add_span(int(rows[i]), p)
        # else: whole-trace resolution raises too — nothing to protect.

    return np.cumsum(delta)[: n + 1]


def _barrier_cuts(rec, et, obj, arg, live, quiet, cover) -> list[CutPoint]:
    arrive_pos = np.flatnonzero(et == int(EventType.BARRIER_ARRIVE))
    if len(arrive_pos) == 0:
        return []
    depart_pos = np.flatnonzero(et == int(EventType.BARRIER_DEPART))
    # Group arrivals/departs per episode key (obj, generation).
    a_keys = (obj[arrive_pos] << 32) ^ arg[arrive_pos]
    d_keys = (obj[depart_pos] << 32) ^ arg[depart_pos]
    uniq, inverse = np.unique(a_keys, return_inverse=True)
    a_count = np.bincount(inverse, minlength=len(uniq))
    a_last = np.full(len(uniq), -1, dtype=np.int64)
    np.maximum.at(a_last, inverse, arrive_pos)

    d_count = np.zeros(len(uniq), dtype=np.int64)
    d_first = np.full(len(uniq), np.iinfo(np.int64).max, dtype=np.int64)
    d_idx = np.searchsorted(uniq, d_keys)
    in_uniq = (d_idx < len(uniq)) & (uniq[np.minimum(d_idx, len(uniq) - 1)] == d_keys)
    np.add.at(d_count, d_idx[in_uniq], 1)
    np.minimum.at(d_first, d_idx[in_uniq], depart_pos[in_uniq])

    ok = (
        (d_count == a_count)  # episode complete (not truncated)
        & (d_first > a_last)  # no departs recorded before the last arrival
        & (live[a_last] == a_count)  # every live thread participates
        & quiet[a_last]  # nothing held or pending at the anchor
        & (cover[a_last + 1] == 0)  # no long-range dependency crosses
    )
    cuts = []
    order = np.argsort(a_keys, kind="stable")
    sorted_keys = a_keys[order]
    group_starts = np.searchsorted(sorted_keys, uniq)
    for e in np.flatnonzero(ok):
        anchor = int(a_last[e])
        members = arrive_pos[order[group_starts[e] : group_starts[e] + a_count[e]]]
        # The stitch premise is that every thread crossing the cut
        # backward traverses a depart Wait that jumps to the anchor.  A
        # participant arriving at the anchor's own instant never blocked
        # — its zero-duration Wait is dropped by timeline construction —
        # so the walk would tunnel through the barrier on that thread.
        # Only the anchor itself may arrive at release time.
        if np.count_nonzero(rec["time"][members] == rec["time"][anchor]) != 1:
            continue
        cuts.append(
            CutPoint(
                pos=anchor + 1,
                kind="barrier",
                anchor_tid=int(rec["tid"][anchor]),
                anchor_time=float(rec["time"][anchor]),
                anchor_seq=int(rec["seq"][anchor]),
                barrier=(int(obj[anchor]), int(arg[anchor])),
                arrivals=tuple(
                    (int(rec["tid"][p]), float(rec["time"][p])) for p in members
                ),
            )
        )
    return cuts


def _join_cuts(rec, et, live, quiet, cover, n) -> list[CutPoint]:
    mask = (et == int(EventType.JOIN_END)) & (live == 1) & quiet
    mask[n - 1] = False  # a cut must leave a non-empty right shard
    cuts = []
    for p in np.flatnonzero(mask):
        p = int(p)
        if cover[p + 1] != 0:
            continue
        cuts.append(
            CutPoint(
                pos=p + 1,
                kind="join",
                anchor_tid=int(rec["tid"][p]),
                anchor_time=float(rec["time"][p]),
                anchor_seq=int(rec["seq"][p]),
            )
        )
    return cuts


def select_cuts(cuts: list[CutPoint], n_records: int, jobs: int) -> list[CutPoint]:
    """Pick at most ``jobs - 1`` cuts nearest the ideal even-split positions.

    Shard balance, not shard count, bounds the parallel speedup, so each
    of the ``jobs - 1`` ideal boundaries ``k * n / jobs`` grabs its
    closest candidate; duplicates collapse (a trace with one barrier
    yields one cut however many jobs were requested).
    """
    if jobs <= 1 or not cuts or n_records <= 0:
        return []
    chosen: dict[int, CutPoint] = {}
    for k in range(1, jobs):
        ideal = n_records * k / jobs
        best = min(cuts, key=lambda c: abs(c.pos - ideal))
        chosen[best.pos] = best
    return sorted(chosen.values(), key=lambda c: c.pos)
