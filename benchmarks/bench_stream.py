"""Streaming ingestion throughput, snapshot latency, reader memory.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_stream.py --quick
    PYTHONPATH=src python benchmarks/bench_stream.py --json stream.json

Three claims, measured and asserted:

1. **Identity** — a trace streamed chunk-by-chunk into the service and
   finalized yields the same content digest and a byte-identical
   rendered report as uploading + batch-analyzing the same trace. A
   streaming path that changed the answer would be worse than none.
2. **Reader memory is O(chunk)** — ``iter_trace_chunks`` over a
   multi-hundred-thousand-event ``.clt`` peaks at a small multiple of
   one chunk, not at the file size (tracemalloc, numpy-aware).
3. **Throughput** — chunked append + online analysis keeps up; the
   script reports ingest events/sec and rolling-snapshot latency taken
   *while* the stream is being ingested.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.service.api import ServiceAPI
from repro.service.jobs import execute
from repro.trace.digest import trace_digest
from repro.trace.framing import encode_records_frame, split_records
from repro.trace.reader import iter_trace_chunks
from repro.trace.writer import header_dict, write_trace
from repro.workloads import SyntheticLocks


def build_trace(quick: bool):
    if quick:
        params = dict(ops_per_thread=800, nlocks=6, barrier_every=100)
        nthreads = 6
    else:
        # >= 200k events: 8 threads x 9000 ops x ~3 events/op.
        params = dict(ops_per_thread=9000, nlocks=8, barrier_every=250)
        nthreads = 8
    wl = SyntheticLocks(**params)
    return wl.run(nthreads=nthreads, seed=0).trace


def measure_reader_memory(path: Path, chunk_events: int) -> tuple[int, int]:
    """Iterate the whole file in chunks; return (events read, peak bytes)."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    events = 0
    for batch in iter_trace_chunks(path, chunk_events=chunk_events):
        events += len(batch)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return events, peak


def stream_ingest(api: ServiceAPI, records, chunk_events: int, snap_every: int):
    """Append all chunks, snapshotting as we go; return the measurements."""
    _, session = api.handle("POST", "/streams", json.dumps({"name": "bench"}).encode())
    sid = session["id"]
    snap_latencies: list[float] = []
    backpressure = 0
    t0 = time.perf_counter()
    for cid, block in enumerate(split_records(records, chunk_events)):
        body = encode_records_frame(block, cid)
        while True:
            status, _ = api.handle("POST", f"/traces/{sid}/chunks", body)
            if status == 202:
                break
            assert status == 429, f"unexpected status {status}"
            backpressure += 1
            time.sleep(0.002)
        if cid % snap_every == 0:
            s0 = time.perf_counter()
            status, _ = api.handle("GET", f"/streams/{sid}/snapshot")
            assert status == 200
            snap_latencies.append(time.perf_counter() - s0)
    # Wait for the ingest thread to drain so the rate covers analysis too.
    while api.handle("GET", f"/streams/{sid}")[1]["pending_chunks"]:
        time.sleep(0.002)
    ingest_s = time.perf_counter() - t0
    return sid, ingest_s, snap_latencies, backpressure


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small trace, machinery check only (CI smoke job)")
    ap.add_argument("--chunk-events", type=int, default=8192,
                    help="events per streamed chunk (default: 8192)")
    ap.add_argument("--max-chunk-multiple", type=float, default=8.0, metavar="M",
                    help="fail if the chunked reader's peak memory exceeds "
                         "M x one chunk (default: 8 — O(chunk), not O(file))")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    args = ap.parse_args(argv)

    trace = build_trace(args.quick)
    full_bytes = trace.records.nbytes
    print(f"trace: {len(trace)} events, {len(trace.threads)} threads, "
          f"{full_bytes / 1e6:.1f} MB of records")
    if not args.quick and len(trace) < 200_000:
        print(f"FAIL: expected >= 200k events, built {len(trace)}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="bench_stream_") as tmp:
        tmp_path = Path(tmp)
        clt = write_trace(trace, tmp_path / "bench.clt")

        # -- claim 2: O(chunk) reader memory ------------------------------
        events, peak = measure_reader_memory(clt, args.chunk_events)
        assert events == len(trace)
        chunk_bytes = args.chunk_events * trace.records.itemsize
        frac = peak / full_bytes
        multiple = peak / chunk_bytes
        print(f"reader peak      {peak / 1e6:8.2f} MB over {events} events "
              f"({multiple:.1f}x one chunk, {frac:.1%} of the full array)")
        if multiple > args.max_chunk_multiple:
            print(f"FAIL: reader peak is {multiple:.1f}x one chunk, exceeds "
                  f"--max-chunk-multiple {args.max_chunk_multiple:g}",
                  file=sys.stderr)
            return 1

        # -- claims 1 + 3: ingest, snapshot, finalize, compare -------------
        batch = execute("analyze", [str(clt)], {"render": True, "top": 10})
        with ServiceAPI(tmp_path / "svc", workers=0) as api:
            sid, ingest_s, snaps, backpressure = stream_ingest(
                api, trace.records, args.chunk_events, snap_every=4
            )
            rate = len(trace) / ingest_s if ingest_s > 0 else float("inf")
            snap_mean = sum(snaps) / len(snaps)
            print(f"ingest           {ingest_s:8.3f}s   "
                  f"({rate / 1e3:.0f}k events/s, {backpressure} backpressure waits)")
            print(f"snapshot latency {snap_mean * 1e3:8.2f}ms mean, "
                  f"{max(snaps) * 1e3:.2f}ms max over {len(snaps)} mid-stream polls")

            t0 = time.perf_counter()
            status, fin = api.handle(
                "POST", f"/traces/{sid}/finalize",
                json.dumps({"header": header_dict(trace), "analyze": True,
                            "params": {"render": True, "top": 10}}).encode(),
            )
            finalize_s = time.perf_counter() - t0
            assert status == 200, fin
            print(f"finalize         {finalize_s:8.3f}s   (assemble + exact analysis)")

            if fin["trace"]["digest"] != trace_digest(trace):
                print("FAIL: streamed digest differs from source trace",
                      file=sys.stderr)
                return 1
            if fin["report"]["rendered"] != batch["rendered"]:
                print("FAIL: streamed+finalized report differs from batch analysis",
                      file=sys.stderr)
                return 1
            rec = fin["reconciliation"]
            print(f"reconciliation   counters_exact={rec['counters_exact']} "
                  f"top_lock_agrees={rec['top_lock_agrees']} "
                  f"cp_time_error={rec['cp_time_error']:.3g}")

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {
                    "bench": "stream",
                    "quick": args.quick,
                    "events": len(trace),
                    "threads": len(trace.threads),
                    "chunk_events": args.chunk_events,
                    "record_bytes": full_bytes,
                    "reader_peak_bytes": peak,
                    "reader_peak_chunk_multiple": round(multiple, 2),
                    "reader_peak_frac": round(frac, 4),
                    "ingest_s": round(ingest_s, 4),
                    "events_per_s": round(rate, 1),
                    "backpressure_waits": backpressure,
                    "snapshot_mean_ms": round(snap_mean * 1e3, 3),
                    "snapshot_max_ms": round(max(snaps) * 1e3, 3),
                    "finalize_s": round(finalize_s, 4),
                    "identical_digest": True,
                    "identical_render": True,
                },
                f,
                indent=2,
            )
            f.write("\n")
        print(f"numbers written to {args.json}")

    print("ok: streamed-then-finalized output is byte-identical to batch")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
