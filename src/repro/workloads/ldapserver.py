"""OpenLDAP-like directory server workload (paper §V.C).

The paper drives OpenLDAP 2.4.21 with 10k SLAMD search requests on 16
server threads and finds critical sections are *not* a bottleneck: a
decade of tuning left only fine-grained, rarely-contended locks.  This
model reproduces that structure: a listener thread feeds a connection
queue; worker threads parse each search, look the entry up in an
in-memory 10k-entry directory sharded over many per-bucket
reader-writer locks (searches read-lock, the rare modify write-locks),
and occasionally touch a small operation-counter lock.

The expected analysis outcome is a *negative* result: every lock's
CP Time stays in the low single digits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.program import Program
from repro.workloads.base import Workload, register
from repro.workloads.queues import SingleLockQueue

__all__ = ["LDAPServer"]


@dataclass
class _State:
    conn_q: SingleLockQueue
    bucket_locks: list[Any]
    op_counter_lock: Any
    nbuckets: int


@register
class LDAPServer(Workload):
    """Fine-grained-locking directory server (the paper's mature-code control)."""

    name = "openldap"

    def __init__(
        self,
        requests: int = 1200,
        entries: int = 10_000,
        nbuckets: int = 64,
        parse_cost: float = 0.03,
        lookup_cost: float = 0.012,
        respond_cost: float = 0.025,
        write_prob: float = 0.01,
        write_cost: float = 0.02,
        q_op_cost: float = 0.0004,
        accept_cost: float = 0.005,
        counter_prob: float = 0.1,
        counter_cost: float = 0.002,
    ):
        self.requests = requests
        self.entries = entries
        self.nbuckets = nbuckets
        self.parse_cost = parse_cost
        self.lookup_cost = lookup_cost
        self.respond_cost = respond_cost
        self.write_prob = write_prob
        self.write_cost = write_cost
        self.q_op_cost = q_op_cost
        self.accept_cost = accept_cost
        self.counter_prob = counter_prob
        self.counter_cost = counter_cost

    def build(self, prog: Program, nthreads: int) -> None:
        # nthreads counts the worker pool; the listener is an extra thread
        # (the paper binds the load generator to a dedicated core).
        state = _State(
            conn_q=SingleLockQueue(prog, "conn_q", self.q_op_cost),
            bucket_locks=[prog.rwlock(f"entry_lock[{i}]") for i in range(self.nbuckets)],
            op_counter_lock=prog.mutex("num_ops_mutex"),
            nbuckets=self.nbuckets,
        )
        prog.spawn(self._listener, state, nthreads, name="listener")
        prog.spawn_workers(nthreads, self._worker, state)

    def _listener(self, env, state: _State, nworkers: int):
        rng = env.rng
        for i in range(self.requests):
            yield env.compute(self.accept_cost)
            entry = int(rng.integers(self.entries))
            write = bool(rng.random() < self.write_prob)
            yield from state.conn_q.put(env, (i, entry, write))
        for _ in range(nworkers):  # one shutdown sentinel per worker
            yield from state.conn_q.put(env, "STOP")

    def _worker(self, env, wid: int, state: _State):
        rng = env.rng
        backoff = self.parse_cost
        while True:
            req = yield from state.conn_q.get(env)
            if req == "STOP":
                return
            if req is None:  # queue empty (workers outpace the listener)
                yield env.yield_core()
                yield env.compute(backoff)
                backoff = min(backoff * 2, 0.2)
                continue
            backoff = self.parse_cost
            _, entry, write = req
            yield env.compute(self.parse_cost)
            lock = state.bucket_locks[entry % state.nbuckets]
            if write:
                yield env.rw_acquire_write(lock)
                yield env.compute(self.write_cost)
                yield env.rw_release_write(lock)
            else:
                yield env.rw_acquire_read(lock)
                yield env.compute(self.lookup_cost)
                yield env.rw_release_read(lock)
            if rng.random() < self.counter_prob:
                yield env.acquire(state.op_counter_lock)
                yield env.compute(self.counter_cost)
                yield env.release(state.op_counter_lock)
            yield env.compute(self.respond_cost)
