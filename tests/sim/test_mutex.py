"""Mutex semantics: exclusivity, FIFO handoff, contended flags, trylock."""

import pytest

from repro.errors import DeadlockError, SyncUsageError
from repro.sim import Program
from repro.trace.events import EventType


def test_serialization():
    prog = Program()
    lock = prog.mutex("L")

    def body(env, i):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)

    prog.spawn_workers(3, body)
    assert prog.run().completion_time == 3.0


def test_fifo_handoff_order():
    prog = Program()
    lock = prog.mutex("L")
    order = []

    def body(env, i):
        yield env.compute(i * 0.1)  # stagger arrival: 0, 0.1, 0.2
        yield env.acquire(lock)
        order.append(i)
        yield env.compute(1.0)
        yield env.release(lock)

    prog.spawn_workers(3, body)
    prog.run()
    assert order == [0, 1, 2]


def test_contended_flag():
    prog = Program()
    lock = prog.mutex("L")

    def body(env, i):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)

    prog.spawn_workers(2, body)
    trace = prog.run().trace
    obtains = [ev for ev in trace if ev.etype == EventType.OBTAIN]
    assert sorted(ev.arg for ev in obtains) == [0, 1]


def test_handoff_at_release_time():
    prog = Program()
    lock = prog.mutex("L")
    obtained_at = {}

    def body(env, i):
        yield env.acquire(lock)
        obtained_at[i] = env.now
        yield env.compute(2.0)
        yield env.release(lock)

    prog.spawn_workers(2, body)
    prog.run()
    assert obtained_at == {0: 0.0, 1: 2.0}


def test_try_acquire_success_and_failure():
    prog = Program()
    lock = prog.mutex("L")
    results = {}

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(2.0)
        yield env.release(lock)

    def taster(env):
        yield env.compute(1.0)
        results["while_held"] = yield env.try_acquire(lock)
        yield env.compute(2.0)  # holder released at t=2
        results["after_release"] = yield env.try_acquire(lock)
        if results["after_release"]:
            yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(taster)
    prog.run()
    assert results == {"while_held": False, "after_release": True}


def test_failed_try_acquire_emits_no_events():
    prog = Program()
    lock = prog.mutex("L")

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(2.0)
        yield env.release(lock)

    def taster(env):
        yield env.compute(1.0)
        got = yield env.try_acquire(lock)
        assert not got

    prog.spawn(holder)
    prog.spawn(taster)
    trace = prog.run().trace
    taster_lock_events = [
        ev for ev in trace if ev.tid == 1 and ev.obj == lock.obj
    ]
    assert taster_lock_events == []


def test_release_unheld_rejected():
    prog = Program()
    lock = prog.mutex("L")

    def body(env):
        yield env.release(lock)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="held by nobody"):
        prog.run()


def test_release_other_threads_lock_rejected():
    prog = Program()
    lock = prog.mutex("L")

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(5.0)
        yield env.release(lock)

    def thief(env):
        yield env.compute(1.0)
        yield env.release(lock)

    prog.spawn(holder, name="holder")
    prog.spawn(thief, name="thief")
    with pytest.raises(SyncUsageError, match="held by holder"):
        prog.run()


def test_reacquire_rejected():
    prog = Program()
    lock = prog.mutex("L")

    def body(env):
        yield env.acquire(lock)
        yield env.acquire(lock)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="re-acquired"):
        prog.run()


def test_two_lock_deadlock_detected():
    prog = Program()
    a, b = prog.mutex("A"), prog.mutex("B")

    def one(env):
        yield env.acquire(a)
        yield env.compute(1.0)
        yield env.acquire(b)

    def two(env):
        yield env.acquire(b)
        yield env.compute(1.0)
        yield env.acquire(a)

    prog.spawn(one)
    prog.spawn(two)
    with pytest.raises(DeadlockError) as exc_info:
        prog.run()
    assert set(exc_info.value.blocked) == {0, 1}


def test_uncontended_acquire_is_instant():
    prog = Program()
    lock = prog.mutex("L")

    def body(env):
        yield env.compute(1.0)
        yield env.acquire(lock)
        assert env.now == 1.0
        yield env.release(lock)

    prog.spawn(body)
    assert prog.run().completion_time == 1.0
