"""Reader-writer lock semantics: shared readers, exclusive writer, fairness."""

import pytest

from repro.errors import SyncUsageError
from repro.sim import Program


def test_readers_share():
    prog = Program()
    rw = prog.rwlock("rw")

    def reader(env, i):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    prog.spawn_workers(4, reader)
    assert prog.run().completion_time == 2.0


def test_writers_exclusive():
    prog = Program()
    rw = prog.rwlock("rw")

    def writer(env, i):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn_workers(3, writer)
    assert prog.run().completion_time == 3.0


def test_writer_excludes_readers():
    prog = Program()
    rw = prog.rwlock("rw")
    read_at = []

    def writer(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(2.0)
        yield env.rw_release_write(rw)

    def reader(env):
        yield env.compute(0.5)
        yield env.rw_acquire_read(rw)
        read_at.append(env.now)
        yield env.rw_release_read(rw)

    prog.spawn(writer)
    prog.spawn(reader)
    prog.run()
    assert read_at == [2.0]


def test_writer_waits_for_readers():
    prog = Program()
    rw = prog.rwlock("rw")
    wrote_at = []

    def reader(env, i):
        yield env.rw_acquire_read(rw)
        yield env.compute(1.5)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        wrote_at.append(env.now)
        yield env.rw_release_write(rw)

    prog.spawn_workers(2, reader)
    prog.spawn(writer)
    prog.run()
    assert wrote_at == [1.5]


def test_fifo_fairness_reader_queues_behind_writer():
    # reader A holds; writer W queued; late reader B must NOT jump W.
    prog = Program()
    rw = prog.rwlock("rw")
    order = []

    def reader_a(env):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        order.append(("w", env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader_b(env):
        yield env.compute(1.0)
        yield env.rw_acquire_read(rw)
        order.append(("rb", env.now))
        yield env.rw_release_read(rw)

    prog.spawn(reader_a)
    prog.spawn(writer)
    prog.spawn(reader_b)
    prog.run()
    assert order == [("w", 2.0), ("rb", 3.0)]


def test_reader_batch_granted_together():
    prog = Program()
    rw = prog.rwlock("rw")
    read_at = []

    def writer(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader(env, i):
        yield env.compute(0.5)
        yield env.rw_acquire_read(rw)
        read_at.append(env.now)
        yield env.compute(1.0)
        yield env.rw_release_read(rw)

    prog.spawn(writer)
    prog.spawn_workers(3, reader)
    prog.run()
    assert read_at == [1.0, 1.0, 1.0]


def test_release_read_not_held_rejected():
    prog = Program()
    rw = prog.rwlock("rw")

    def body(env):
        yield env.rw_release_read(rw)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="read-released"):
        prog.run()


def test_release_write_not_held_rejected():
    prog = Program()
    rw = prog.rwlock("rw")

    def body(env):
        yield env.rw_acquire_read(rw)
        yield env.rw_release_write(rw)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="write-released"):
        prog.run()
