"""Hand-construction DSL for traces.

Tests, documentation and the paper's illustrative figures (Fig. 1, Fig. 7)
need small, exactly-specified traces.  :class:`TraceBuilder` lets them be
written declaratively::

    b = TraceBuilder()
    L1 = b.mutex("L1")
    t1 = b.thread("T1")
    t1.start(at=0.0)
    t1.critical_section(L1, acquire=1.0, obtain=2.0, release=5.0)
    t1.exit(at=6.0)
    trace = b.build()

Events are ordered by (time, insertion order), so writing each thread's
program in order produces a deterministic, valid trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.trace.events import NO_OBJECT, Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace
from repro.trace.validate import validate_trace

__all__ = ["TraceBuilder", "ThreadScript"]


@dataclass
class ThreadScript:
    """Event recorder for one thread inside a :class:`TraceBuilder`."""

    builder: "TraceBuilder"
    tid: int
    name: str

    def _emit(self, time: float, etype: EventType, obj: int = NO_OBJECT, arg: int = 0) -> None:
        self.builder._emit(time, self.tid, etype, obj, arg)

    # -- lifecycle ---------------------------------------------------------

    def start(self, at: float) -> "ThreadScript":
        self._emit(at, EventType.THREAD_START)
        return self

    def exit(self, at: float) -> "ThreadScript":
        self._emit(at, EventType.THREAD_EXIT)
        return self

    def create(self, child: "ThreadScript", at: float) -> "ThreadScript":
        self._emit(at, EventType.THREAD_CREATE, arg=child.tid)
        return self

    def join(self, target: "ThreadScript", begin: float, end: float) -> "ThreadScript":
        self._emit(begin, EventType.JOIN_BEGIN, arg=target.tid)
        self._emit(end, EventType.JOIN_END, arg=target.tid)
        return self

    # -- locks ---------------------------------------------------------------

    def acquire(self, obj: int, at: float, obtain: float | None = None) -> "ThreadScript":
        """ACQUIRE at ``at`` and OBTAIN at ``obtain`` (contended iff later)."""
        obtain_time = at if obtain is None else obtain
        contended = 1 if obtain_time > at else 0
        self._emit(at, EventType.ACQUIRE, obj=obj)
        self._emit(obtain_time, EventType.OBTAIN, obj=obj, arg=contended)
        return self

    def release(self, obj: int, at: float) -> "ThreadScript":
        self._emit(at, EventType.RELEASE, obj=obj)
        return self

    def critical_section(
        self, obj: int, acquire: float, obtain: float, release: float
    ) -> "ThreadScript":
        """Shorthand for acquire/obtain/release of one critical section."""
        self.acquire(obj, at=acquire, obtain=obtain)
        self.release(obj, at=release)
        return self

    # -- barriers ------------------------------------------------------------

    def barrier(self, obj: int, arrive: float, depart: float, gen: int = 0) -> "ThreadScript":
        self._emit(arrive, EventType.BARRIER_ARRIVE, obj=obj, arg=gen)
        self._emit(depart, EventType.BARRIER_DEPART, obj=obj, arg=gen)
        return self

    # -- condition variables ---------------------------------------------------

    def cond_block(self, obj: int, at: float) -> "ThreadScript":
        self._emit(at, EventType.COND_BLOCK, obj=obj)
        return self

    def cond_wake(self, obj: int, at: float, by: "ThreadScript") -> "ThreadScript":
        self._emit(at, EventType.COND_WAKE, obj=obj, arg=by.tid)
        return self

    def cond_signal(self, obj: int, at: float, woken: int = 1) -> "ThreadScript":
        self._emit(at, EventType.COND_SIGNAL, obj=obj, arg=woken)
        return self

    def cond_broadcast(self, obj: int, at: float, woken: int = 0) -> "ThreadScript":
        self._emit(at, EventType.COND_BROADCAST, obj=obj, arg=woken)
        return self


@dataclass
class TraceBuilder:
    """Declarative builder producing validated :class:`Trace` objects."""

    meta: dict[str, Any] = field(default_factory=dict)
    _events: list[Event] = field(default_factory=list)
    _objects: dict[int, ObjectInfo] = field(default_factory=dict)
    _threads: dict[int, str] = field(default_factory=dict)
    _next_obj: int = 0
    _next_tid: int = 0
    _next_seq: int = 0

    # -- declarations -------------------------------------------------------

    def _new_object(self, kind: ObjectKind, name: str) -> int:
        obj = self._next_obj
        self._next_obj += 1
        self._objects[obj] = ObjectInfo(obj=obj, kind=kind, name=name)
        return obj

    def mutex(self, name: str = "") -> int:
        return self._new_object(ObjectKind.MUTEX, name)

    def barrier_obj(self, name: str = "") -> int:
        return self._new_object(ObjectKind.BARRIER, name)

    def condition(self, name: str = "") -> int:
        return self._new_object(ObjectKind.CONDITION, name)

    def semaphore(self, name: str = "") -> int:
        return self._new_object(ObjectKind.SEMAPHORE, name)

    def thread(self, name: str = "") -> ThreadScript:
        tid = self._next_tid
        self._next_tid += 1
        self._threads[tid] = name or f"T{tid}"
        return ThreadScript(builder=self, tid=tid, name=self._threads[tid])

    # -- emission ------------------------------------------------------------

    def _emit(self, time: float, tid: int, etype: EventType, obj: int, arg: int) -> None:
        self._events.append(
            Event(seq=self._next_seq, time=float(time), tid=tid, etype=etype, obj=obj, arg=arg)
        )
        self._next_seq += 1

    # -- finalization -----------------------------------------------------------

    def build(self, validate: bool = True) -> Trace:
        """Sort, renumber and (by default) validate the assembled trace."""
        trace = Trace.from_events(
            self._events, objects=self._objects, threads=self._threads, meta=self.meta
        )
        if validate:
            validate_trace(trace)
        return trace
