"""CLI tests for stats/export/replay/experiment-output commands."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def micro_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("tool-traces") / "micro.clt"
    assert main(["run", "micro", "-t", "4", "-o", str(path)]) == 0
    return path


def test_stats(micro_path, capsys):
    assert main(["stats", str(micro_path)]) == 0
    out = capsys.readouterr().out
    assert "32 events" in out  # 4 threads x (start + 2x3 lock events + exit)
    assert "Busiest synchronization objects" in out


def test_export(micro_path, tmp_path, capsys):
    out_path = tmp_path / "chrome.json"
    assert main(["export", str(micro_path), str(out_path)]) == 0
    events = json.loads(out_path.read_text())
    assert any(e.get("cat") == "critical-path" for e in events)
    assert "perfetto" in capsys.readouterr().out


def test_replay_plain(micro_path, capsys):
    assert main(["replay", str(micro_path)]) == 0
    out = capsys.readouterr().out
    assert "replay 12" in out
    assert "speedup vs original: 1.000" in out


def test_replay_with_shrink(micro_path, tmp_path, capsys):
    out_trace = tmp_path / "replayed.clt"
    assert main([
        "replay", str(micro_path), "--shrink", "L2", "--factor", "0.6",
        "-o", str(out_trace),
    ]) == 0
    out = capsys.readouterr().out
    assert "replay 9.5" in out
    assert out_trace.exists()
    # The replayed trace is itself analyzable.
    capsys.readouterr()
    assert main(["analyze", str(out_trace)]) == 0


def test_replay_under_cores(micro_path, capsys):
    assert main(["replay", str(micro_path), "--cores", "1"]) == 0
    assert "replay 18" in capsys.readouterr().out


def test_experiment_output_file(tmp_path, capsys):
    out_file = tmp_path / "results.txt"
    assert main(["experiment", "table2", "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "TYPE 1" in text
    # Appends on repeat invocations.
    assert main(["experiment", "table1", "-o", str(out_file)]) == 0
    text2 = out_file.read_text()
    assert len(text2) > len(text)
    assert "POWER7" in text2


def test_experiment_overhead_runs(capsys):
    assert main(["experiment", "overhead"]) == 0
    assert "Instrumentation overhead" in capsys.readouterr().out
