"""Traced barriers and condition variables on real threads."""

import time

from repro.core.analyzer import analyze
from repro.core.model import WaitKind
from repro.instrument import ProfilingSession
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def test_barrier_cohort_traced():
    with ProfilingSession() as s:
        bar = s.barrier(3, "B")

        def body(delay):
            time.sleep(delay)
            bar.wait()

        threads = [s.thread(body, args=(d,)) for d in (0.0, 0.01, 0.03)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    validate_trace(trace)
    assert trace.count(EventType.BARRIER_ARRIVE) == 3
    assert trace.count(EventType.BARRIER_DEPART) == 3
    gens = {ev.arg for ev in trace if ev.etype == EventType.BARRIER_ARRIVE}
    assert gens == {0}


def test_barrier_generations_cycle():
    with ProfilingSession() as s:
        bar = s.barrier(2, "B")

        def body():
            for _ in range(3):
                bar.wait()

        threads = [s.thread(body) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    validate_trace(trace)
    gens = sorted({ev.arg for ev in trace if ev.etype == EventType.BARRIER_ARRIVE})
    assert gens == [0, 1, 2]


def test_condition_signal_attribution():
    with ProfilingSession() as s:
        cv = s.condition(name="cv")
        state = {"ready": False}

        def waiter():
            with cv.lock:
                while not state["ready"]:
                    cv.wait()

        def signaller():
            time.sleep(0.02)
            with cv.lock:
                state["ready"] = True
                cv.notify()

        tw = s.thread(waiter, name="waiter")
        ts = s.thread(signaller, name="signaller")
        tw.start()
        ts.start()
        tw.join()
        ts.join()
    trace = s.trace()
    validate_trace(trace)
    wake = next(ev for ev in trace if ev.etype == EventType.COND_WAKE)
    assert trace.thread_name(wake.arg) == "signaller"
    # The analysis attributes the wait to the condition variable.
    analysis = analyze(trace)
    waiter_tid = next(t for t, n in trace.threads.items() if n == "waiter")
    kinds = {w.kind for w in analysis.timelines[waiter_tid].waits}
    assert WaitKind.CONDITION in kinds


def test_notify_all_wakes_everyone():
    with ProfilingSession() as s:
        cv = s.condition(name="cv")
        state = {"go": False}

        def waiter():
            with cv.lock:
                while not state["go"]:
                    cv.wait()

        def broadcaster():
            time.sleep(0.03)
            with cv.lock:
                state["go"] = True
                cv.notify_all()

        waiters = [s.thread(waiter) for _ in range(3)]
        b = s.thread(broadcaster)
        for t in waiters + [b]:
            t.start()
        for t in waiters + [b]:
            t.join()
    trace = s.trace()
    validate_trace(trace)
    assert trace.count(EventType.COND_BROADCAST) == 1
    assert trace.count(EventType.COND_WAKE) == 3


def test_wait_for_predicate():
    with ProfilingSession() as s:
        cv = s.condition(name="cv")
        box = {"value": 0}

        def producer():
            for _ in range(3):
                time.sleep(0.005)
                with cv.lock:
                    box["value"] += 1
                    cv.notify()

        def consumer():
            with cv.lock:
                ok = cv.wait_for(lambda: box["value"] >= 3, timeout=5.0)
                assert ok

        tp, tc = s.thread(producer), s.thread(consumer)
        tc.start()
        tp.start()
        tp.join()
        tc.join()
    validate_trace(s.trace())
