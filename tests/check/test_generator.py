"""Generator: determinism, structural liveness rules, spec round-trip."""

from repro.check.generator import generate_spec
from repro.check.spec import ProgramSpec


def test_deterministic_per_seed():
    assert generate_spec(7).to_dict() == generate_spec(7).to_dict()
    assert generate_spec(7).to_dict() != generate_spec(8).to_dict()


def test_spec_round_trips_through_dict_and_json(tmp_path):
    spec = generate_spec(3)
    assert ProgramSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    path = spec.to_json(tmp_path / "spec.json")
    assert ProgramSpec.from_json(path).to_dict() == spec.to_dict()


def test_object_indices_in_range():
    for seed in range(40):
        spec = generate_spec(seed)
        for _, _, node in spec.iter_ops():
            kind = node["op"]
            if kind in ("lock", "trylock"):
                assert 0 <= node["m"] < spec.n_mutexes
            elif kind == "rw":
                assert 0 <= node["rw"] < spec.n_rwlocks
            elif kind == "sem":
                assert 0 <= node["s"] < spec.n_sems
            elif kind in ("produce", "consume"):
                assert 0 <= node["ch"] < spec.n_channels


def test_blocking_locks_are_ordered():
    # Rule 1: a nested blocking acquire only ever targets a strictly
    # larger mutex index than every enclosing hold.
    def walk(ops, held_max):
        for node in ops:
            if node["op"] == "lock":
                assert node["m"] > held_max
                walk(node["body"], node["m"])
            elif node["op"] == "spawn":
                walk(node["ops"], -1)  # children start lock-free

    for seed in range(40):
        for t in generate_spec(seed).threads:
            walk(t.ops, -1)


def test_consumes_backed_by_root_produces():
    # Rule 3: cumulatively, root-thread consumes never outnumber
    # root-thread produces on any channel (child produces don't count).
    def count(ops, kind, ch, in_child=False):
        n = 0
        for node in ops:
            if node["op"] == kind and not in_child and node.get("ch") == ch:
                n += 1
            elif node["op"] == "lock":
                n += count(node["body"], kind, ch, in_child)
            elif node["op"] == "spawn":
                n += count(node["ops"], kind, ch, True)
        return n

    for seed in range(40):
        spec = generate_spec(seed)
        for ch in range(spec.n_channels):
            produced = sum(count(t.ops, "produce", ch) for t in spec.threads)
            consumed = sum(count(t.ops, "consume", ch) for t in spec.threads)
            assert consumed <= produced


def test_barrier_columns_aligned():
    # Rule 4: every root thread arrives at the barrier exactly
    # barrier_rounds times, always at the top level; children never do.
    for seed in range(40):
        spec = generate_spec(seed)
        for t in spec.threads:
            top_level = sum(1 for n in t.ops if n["op"] == "barrier")
            assert top_level == spec.barrier_rounds
        for _, path, node in spec.iter_ops():
            if node["op"] == "barrier":
                assert len(path) == 1  # never nested in lock/spawn bodies
