"""Cross-validation of the statistical estimator against the exact engine.

Given a *full* trace, :func:`cross_validate` downsamples it at several
rates, runs the estimator on each sample and scores it against the exact
analysis of the full trace:

* **ranking recovery** — does the estimated top-k critical-lock set
  match the exact top-k set?
* **interval coverage** — does each lock's reported confidence interval
  contain the exact ``cp_fraction``?
* **rate=1.0 identity** — at full rate the point estimates must equal
  the exact values *bit for bit* (no tolerance).

The harness powers three consumers: the ``sample-coverage`` oracle
invariant (:mod:`repro.check`, randomly generated programs), the golden
cross-validation tests (``tests/golden``, pinned workloads) and
``benchmarks/bench_sampling.py`` (recovery@k vs rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.analyzer import analyze
from repro.core.estimate import EstimatedReport, estimate_report
from repro.core.report import AnalysisReport
from repro.errors import ReproError
from repro.sampling.sampler import downsample_trace
from repro.tables import format_table
from repro.trace.trace import Trace
from repro.units import format_percent

__all__ = ["LockCoverage", "RateValidation", "CrossValidation", "cross_validate"]


@dataclass(frozen=True)
class LockCoverage:
    """One (lock, rate) cell: exact value vs estimated interval."""

    name: str
    exact: float
    point: float
    ci_low: float
    ci_high: float
    units: int

    @property
    def covered(self) -> bool:
        """Whether the interval contains the exact value."""
        return self.ci_low - 1e-12 <= self.exact <= self.ci_high + 1e-12


@dataclass
class RateValidation:
    """Estimator scorecard for one sampling rate."""

    rate: float
    seed: int
    exact_top: list[str]
    estimated_top: list[str]
    coverage: list[LockCoverage] = field(default_factory=list)
    error: str = ""  # estimator exception text, "" on success

    @property
    def recovered(self) -> bool:
        """Whether the estimated top-k set equals the exact top-k set."""
        return not self.error and set(self.estimated_top) == set(self.exact_top)

    @property
    def covered_cells(self) -> int:
        return sum(1 for c in self.coverage if c.covered)

    @property
    def exact_match(self) -> bool:
        """Bit-identity of every point estimate (meaningful at rate=1.0)."""
        return not self.error and all(c.point == c.exact for c in self.coverage)


@dataclass
class CrossValidation:
    """Scorecards for every requested rate plus the exact baseline."""

    name: str
    k: int
    confidence: float
    exact: AnalysisReport
    rates: list[RateValidation] = field(default_factory=list)

    @property
    def cells(self) -> int:
        return sum(len(rv.coverage) for rv in self.rates if rv.rate < 1.0)

    @property
    def covered_cells(self) -> int:
        return sum(rv.covered_cells for rv in self.rates if rv.rate < 1.0)

    def render(self) -> str:
        rows = [
            [
                format_percent(rv.rate, 0),
                "yes" if rv.recovered else ("ERROR" if rv.error else "no"),
                f"{rv.covered_cells}/{len(rv.coverage)}",
                ", ".join(rv.estimated_top) or "-",
            ]
            for rv in self.rates
        ]
        return format_table(
            ["Rate", f"Top-{self.k} recovered", "CI coverage", "Estimated top locks"],
            rows,
            title=f"sampling cross-validation: {self.name or '(unnamed)'} "
            f"({format_percent(self.confidence, 0)} CI)",
        )


def _top_names(report: Any, k: int) -> list[str]:
    """Names of the top-k locks with positive CP share."""
    if isinstance(report, EstimatedReport):
        ranked = [e for e in report.top_locks() if e.cp_fraction > 0]
    else:
        ranked = [m for m in report.top_locks() if m.cp_fraction > 0]
    return [m.name for m in ranked[:k]]


def cross_validate(
    trace: Trace,
    rates: tuple[float, ...] = (1.0, 0.5, 0.1),
    *,
    k: int = 3,
    confidence: float = 0.9,
    bootstrap: int = 200,
    seed: int = 0,
    exact: AnalysisReport | None = None,
) -> CrossValidation:
    """Score the sampling estimator against the exact analysis of ``trace``.

    ``seed`` derives one deterministic sampling seed per rate; pass
    ``exact`` to reuse an already-computed exact report.  Estimator
    failures are captured per rate (``RateValidation.error``) instead of
    raised, so the oracle can shrink crashing programs like any other
    discrepancy.
    """
    if exact is None:
        exact = analyze(trace).report
    exact_top_all = {m.name: m.cp_fraction for m in exact.locks.values()}
    out = CrossValidation(
        name=trace.meta.get("name", ""), k=k, confidence=confidence, exact=exact
    )
    for i, rate in enumerate(rates):
        rate_seed = seed + 1000 * i + int(round(rate * 100))
        rv = RateValidation(
            rate=float(rate),
            seed=rate_seed,
            exact_top=_top_names(exact, k),
            estimated_top=[],
        )
        try:
            sampled = downsample_trace(trace, rate, seed=rate_seed)
            est = estimate_report(
                sampled, confidence=confidence, bootstrap=bootstrap
            )
            rv.estimated_top = _top_names(est, k)
            for e in est.top_locks():
                rv.coverage.append(
                    LockCoverage(
                        name=e.name,
                        exact=exact_top_all.get(e.name, 0.0),
                        point=e.cp_fraction,
                        ci_low=e.ci_low,
                        ci_high=e.ci_high,
                        units=e.units,
                    )
                )
        except ReproError as exc:  # captured, not raised: shrinkable
            rv.error = f"{type(exc).__name__}: {exc}"
        out.rates.append(rv)
    return out
