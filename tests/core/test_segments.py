"""Timeline construction: waits, holds, creation links, skip rules."""

from repro.core.model import WaitKind
from repro.core.segments import build_timelines
from repro.trace.builder import TraceBuilder
from repro.trace.events import EventType


def test_handoff_waits_and_holds(handoff_trace):
    timelines = build_timelines(handoff_trace)
    t0, t1 = timelines[0], timelines[1]
    assert t0.waits == []
    assert len(t1.waits) == 1
    w = t1.waits[0]
    assert (w.start, w.end) == (2.0, 4.0)
    assert w.kind == WaitKind.LOCK
    assert w.waker_tid == 0
    # Holds: T0 [1,4], T1 [4,5].
    (h0,) = t0.holds[0]
    (h1,) = t1.holds[0]
    assert (h0.start, h0.end, h0.contended) == (1.0, 4.0, False)
    assert (h1.start, h1.end, h1.contended) == (4.0, 5.0, True)
    assert h1.wait == 2.0


def test_lifetime_and_totals(handoff_trace):
    timelines = build_timelines(handoff_trace)
    assert timelines[0].lifetime == 4.0
    assert timelines[1].lifetime == 6.0
    assert timelines[1].total_wait == 2.0
    assert timelines[1].hold_time(0) == 1.0
    assert timelines[0].wait_time_by_kind() == {}


def test_last_barrier_arriver_has_no_wait():
    b = TraceBuilder()
    bar = b.barrier_obj("B")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.barrier(bar, arrive=1.0, depart=2.0, gen=0)
    t1.barrier(bar, arrive=2.0, depart=2.0, gen=0)  # last arriver
    t0.exit(at=3.0)
    t1.exit(at=3.0)
    timelines = build_timelines(b.build())
    assert len(timelines[t0.tid].waits) == 1
    assert timelines[t1.tid].waits == []  # never blocked


def test_join_of_dead_thread_not_a_wait():
    b = TraceBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t0.create(t1, at=0.1)
    t1.start(at=0.1)
    t1.exit(at=1.0)
    t0.join(t1, begin=5.0, end=5.0)  # target exited long ago
    t0.exit(at=6.0)
    timelines = build_timelines(b.build())
    assert timelines[t0.tid].waits == []


def test_blocking_join_is_a_wait():
    b = TraceBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t0.create(t1, at=0.1)
    t1.start(at=0.1)
    t1.exit(at=4.0)
    t0.join(t1, begin=1.0, end=4.0)
    t0.exit(at=5.0)
    timelines = build_timelines(b.build())
    (w,) = timelines[t0.tid].waits
    assert w.kind == WaitKind.JOIN
    assert (w.start, w.end) == (1.0, 4.0)
    assert w.waker_tid == t1.tid


def test_creation_links():
    b = TraceBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t0.create(t1, at=1.5)
    t1.start(at=1.5)
    t1.exit(at=2.0)
    t0.exit(at=3.0)
    timelines = build_timelines(b.build())
    assert timelines[t0.tid].creator_tid is None
    assert timelines[t1.tid].creator_tid == t0.tid
    assert timelines[t1.tid].create_time == 1.5


def test_zero_length_contended_handoff_dropped():
    # A contended "wait" of zero duration (acquire at the exact release
    # instant) never delayed the thread, so it must not become a Wait —
    # keeping it would redirect the backward walk through a dependency
    # that cost nothing.  The hold is still recorded as contended.
    b = TraceBuilder()
    lock = b.mutex("L")
    t0, t1 = b.thread(), b.thread()
    t0.start(at=0.0)
    t1.start(at=0.0)
    t0.critical_section(lock, acquire=0.0, obtain=0.0, release=2.0)
    t1._emit(2.0, EventType.ACQUIRE, obj=lock)
    t1._emit(2.0, EventType.OBTAIN, obj=lock, arg=1)
    t1.release(lock, at=3.0)
    t0.exit(at=2.0)
    t1.exit(at=3.0)
    timelines = build_timelines(b.build())
    assert timelines[t1.tid].waits == []
    (h,) = timelines[t1.tid].holds[lock]
    assert h.contended


def test_multiple_locks_tracked_independently(micro_trace):
    timelines = build_timelines(micro_trace)
    for tid, tl in timelines.items():
        assert len(tl.holds[0]) == 1  # L1
        assert len(tl.holds[1]) == 1  # L2
        assert tl.holds[0][0].duration == 2.0
        assert tl.holds[1][0].duration == 2.5
