"""Benchmark fixtures.

``show`` prints through pytest's capture so the regenerated paper tables
appear in the benchmark run's output (the whole point of the harness).
"""

from __future__ import annotations

import random

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _seed_generators():
    """Pin every global RNG before each benchmark.

    Workload generators take an explicit ``seed`` (default 0), but any
    code path that falls through to the process-global generators —
    `random` or numpy's legacy global state — would make bench numbers
    drift run-to-run and between orderings.  Seeding both per test makes
    each benchmark a pure function of its own parameters, regardless of
    which benches ran before it.
    """
    random.seed(0)
    np.random.seed(0)


@pytest.fixture
def show(capfd):
    """Print text bypassing capture (visible in `pytest benchmarks/` output)."""

    def _show(text: str) -> None:
        with capfd.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
