"""Critical lock analysis — the paper's contribution.

Pipeline (mirrors the paper's analysis module, Fig. 3):

1. :mod:`repro.core.segments` turns a trace into per-thread timelines of
   execution, waits and lock-hold intervals;
2. :mod:`repro.core.wakers` resolves, for every blocking wait, the thread
   and event that ended it (lock releaser / last barrier arriver /
   condition signaller / exiting joinee);
3. :mod:`repro.core.critical_path` runs the backward walk of paper Fig. 2
   to produce the critical path;
4. :mod:`repro.core.metrics` computes TYPE 1 (on-critical-path) and
   TYPE 2 (classical per-thread) lock statistics (paper Table 2);
5. :mod:`repro.core.report` renders them; :mod:`repro.core.dag` provides
   an independent longest-path cross-check and powers
   :mod:`repro.core.whatif` speedup predictions.

Use :func:`repro.core.analyzer.analyze` for the whole pipeline.  Steps
1–4 have two interchangeable implementations: the per-event object
modules listed above, and the vectorized numpy twins in
:mod:`repro.core.columnar` (the default engine; bit-identical output,
see ``docs/algorithm.md``).
"""

from repro.core.analyzer import ENGINES, AnalysisResult, analyze
from repro.core.columnar import (
    ColumnarTimelines,
    ColumnarWakers,
    backward_walk_columnar,
    build_timelines_columnar,
    resolve_wakers_columnar,
)
from repro.core.attribution import LockAttribution, attribute_lock
from repro.core.blame import BlameReport, compute_blame
from repro.core.compare import ComparisonReport, compare_analyses
from repro.core.critical_path import CriticalPath, compute_critical_path
from repro.core.dag import EventGraph, build_event_graph
from repro.core.estimate import EstimatedReport, LockEstimate, estimate_report
from repro.core.eyerman import CriticalSectionModel, eyerman_speedup, fit_model
from repro.core.forecast import ScalabilityForecast, forecast
from repro.core.lockorder import LockOrderGraph, build_lock_order
from repro.core.online import OnlineAnalyzer
from repro.core.planner import OptimizationPlan, plan_optimizations
from repro.core.metrics import LockMetrics, compute_metrics
from repro.core.model import CPPiece, HoldInterval, ThreadTimeline, Wait, WaitKind
from repro.core.phases import PhaseReport, split_phases
from repro.core.replay_whatif import (
    LockDelta,
    ProtocolForecast,
    forecast_matrix,
    replay_identity,
    replay_whatif,
)
from repro.core.report import AnalysisReport
from repro.core.segments import build_timelines
from repro.core.whatif import WhatIfResult, predict_shrink
from repro.core.windows import WindowedCriticality, windowed_criticality

__all__ = [
    "analyze",
    "AnalysisResult",
    "AnalysisReport",
    "ColumnarTimelines",
    "ColumnarWakers",
    "ENGINES",
    "BlameReport",
    "LockAttribution",
    "ComparisonReport",
    "CriticalPath",
    "CriticalSectionModel",
    "CPPiece",
    "EstimatedReport",
    "EventGraph",
    "HoldInterval",
    "LockDelta",
    "LockEstimate",
    "LockMetrics",
    "LockOrderGraph",
    "OnlineAnalyzer",
    "OptimizationPlan",
    "ProtocolForecast",
    "ScalabilityForecast",
    "PhaseReport",
    "ThreadTimeline",
    "Wait",
    "WaitKind",
    "WhatIfResult",
    "WindowedCriticality",
    "attribute_lock",
    "backward_walk_columnar",
    "build_event_graph",
    "build_lock_order",
    "build_timelines",
    "build_timelines_columnar",
    "resolve_wakers_columnar",
    "compare_analyses",
    "compute_blame",
    "compute_critical_path",
    "compute_metrics",
    "estimate_report",
    "eyerman_speedup",
    "fit_model",
    "forecast",
    "forecast_matrix",
    "plan_optimizations",
    "predict_shrink",
    "replay_identity",
    "replay_whatif",
    "split_phases",
    "windowed_criticality",
]
