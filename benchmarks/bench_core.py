"""Performance microbenchmarks for the tool itself.

Not a paper figure: measures the throughput of the simulator, the
analysis pipeline and trace I/O, so regressions in the tool are visible.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.segments import build_timelines
from repro.trace.reader import read_trace
from repro.trace.writer import write_trace
from repro.workloads import Radiosity, SyntheticLocks


@pytest.fixture(scope="module")
def big_trace():
    return Radiosity(total_tasks=300, iterations=2).run(nthreads=16, seed=0).trace


@pytest.mark.benchmark(group="tool-simulator")
def test_simulator_throughput(benchmark):
    def run():
        return SyntheticLocks(ops_per_thread=250, nlocks=8).run(nthreads=8, seed=1)

    result = benchmark(run)
    assert len(result.trace) > 5000


@pytest.mark.benchmark(group="tool-analysis")
def test_full_analysis(benchmark, big_trace):
    report = benchmark(lambda: analyze(big_trace).report)
    assert report.nthreads == 16


@pytest.mark.benchmark(group="tool-analysis")
def test_timeline_construction(benchmark, big_trace):
    timelines = benchmark(build_timelines, big_trace)
    assert len(timelines) == 16


@pytest.mark.benchmark(group="tool-io")
def test_trace_write(benchmark, big_trace, tmp_path):
    path = tmp_path / "big.clt"
    benchmark(write_trace, big_trace, path)
    assert path.stat().st_size > len(big_trace) * 33


@pytest.mark.benchmark(group="tool-io")
def test_trace_read(benchmark, big_trace, tmp_path):
    path = write_trace(big_trace, tmp_path / "big.clt")
    loaded = benchmark(read_trace, path)
    assert len(loaded) == len(big_trace)
