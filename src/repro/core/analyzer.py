"""The analysis façade: one call from trace to report.

Mirrors the paper's post-processing analysis module (Fig. 3): validate
the trace, build timelines, resolve wakers, run the backward critical-
path walk, compute TYPE 1 / TYPE 2 metrics and wrap everything in an
:class:`AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.critical_path import CriticalPath, compute_critical_path
from repro.core.dag import EventGraph, build_event_graph
from repro.core.metrics import compute_metrics, compute_thread_stats
from repro.core.model import ThreadTimeline
from repro.core.report import AnalysisReport
from repro.core.segments import build_timelines
from repro.core.wakers import WakerTable, resolve_wakers
from repro.core.whatif import WhatIfResult, predict_no_contention, predict_shrink
from repro.trace.trace import Trace
from repro.trace.validate import validate_trace

__all__ = ["AnalysisResult", "analyze"]


@dataclass
class AnalysisResult:
    """Everything produced by one analysis pass over a trace."""

    trace: Trace
    wakers: WakerTable
    timelines: dict[int, ThreadTimeline]
    critical_path: CriticalPath
    report: AnalysisReport
    #: How many shards produced this result (1 = sequential pass).
    shards: int = 1

    @cached_property
    def graph(self) -> EventGraph:
        """Event DAG (built lazily; used by cross-checks and what-if)."""
        return build_event_graph(self.trace, self.timelines, self.wakers)

    def what_if(self, lock: int | str, factor: float = 0.0) -> WhatIfResult:
        """Predict the speedup from shrinking ``lock``'s critical sections."""
        return predict_shrink(self.trace, lock, factor, graph=self.graph)

    def what_if_no_contention(self, lock: int | str) -> WhatIfResult:
        """Predict the speedup if ``lock``'s acquisitions never blocked.

        The paper's §VII scenario (ACS / speculation / transactional
        memory): waiters stop serializing behind holders while the
        critical sections' own work is kept.
        """
        return predict_no_contention(self.trace, lock, graph=self.graph)

    def render(self, n: int | None = 10) -> str:
        """Convenience passthrough to :meth:`AnalysisReport.render`."""
        return self.report.render(n)


def analyze(
    trace: Trace,
    validate: bool = True,
    jobs: int | None = None,
    parallel: bool | None = None,
) -> AnalysisResult:
    """Run the full critical lock analysis pipeline on a trace.

    ``jobs`` > 1 enables sharded analysis: the trace is split at
    quiescent cut points (full-barrier episodes, final joins) and the
    shards run concurrently, stitched back into a result identical to
    the sequential one (see ``docs/sharding.md``).  Traces with no cut
    points — and any shard-level inconsistency — silently use the
    sequential pass, so ``jobs`` never changes the answer, only the
    wall-clock.  ``parallel`` forces worker processes on or off (the
    default picks based on trace size).
    """
    if validate:
        validate_trace(trace)
    if jobs is not None and jobs > 1:
        from repro.core.shard import analyze_sharded  # deferred: import cycle

        result = analyze_sharded(trace, jobs=jobs, parallel=parallel)
        if result is not None:
            return result
    wakers = resolve_wakers(trace)
    timelines = build_timelines(trace, wakers)
    cp = compute_critical_path(trace, timelines, wakers)
    locks = compute_metrics(trace, timelines, cp)
    threads = compute_thread_stats(timelines, cp)
    report = AnalysisReport(
        name=str(trace.meta.get("name", "")),
        nthreads=len(timelines),
        duration=trace.duration,
        cp=cp,
        locks=locks,
        thread_stats=threads,
    )
    return AnalysisResult(
        trace=trace,
        wakers=wakers,
        timelines=timelines,
        critical_path=cp,
        report=report,
    )
