"""Vectorized waker resolution (columnar form of :mod:`repro.core.wakers`).

Each of the paper's §IV.B rules is one :func:`~repro.core.columnar.ops.
latest_prior` query instead of a dict maintained while looping events:

* contended OBTAIN → latest prior RELEASE keyed by lock object;
* BARRIER_DEPART → the cohort's *global* last arrival per (barrier,
  generation) — a group-max, not a latest-prior, mirroring the object
  engine's separate first pass;
* COND_WAKE → latest prior COND_SIGNAL/BROADCAST on the condition if it
  was emitted by the recorded signaller, else that thread's latest prior
  event of any type;
* JOIN_END → the joined thread's latest prior THREAD_EXIT;
* THREAD_CREATE → last creation per child tid (a dict overwrite in the
  object engine, a group-max here).

Failures raise :class:`~repro.errors.WakerResolutionError` with the same
message the object engine produces, for the earliest failing event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.columnar.ops import dense_keys, group_bounds, latest_prior
from repro.core.wakers import WakeInfo, WakerTable
from repro.errors import WakerResolutionError
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["ColumnarWakers", "resolve_wakers_columnar"]

_OBTAIN = int(EventType.OBTAIN)
_RELEASE = int(EventType.RELEASE)
_ARRIVE = int(EventType.BARRIER_ARRIVE)
_DEPART = int(EventType.BARRIER_DEPART)
_SIGNAL = int(EventType.COND_SIGNAL)
_BROADCAST = int(EventType.COND_BROADCAST)
_COND_WAKE = int(EventType.COND_WAKE)
_EXIT = int(EventType.THREAD_EXIT)
_JOIN_END = int(EventType.JOIN_END)
_CREATE = int(EventType.THREAD_CREATE)


@dataclass
class ColumnarWakers:
    """Waker columns parallel to ``trace.records``.

    ``waker_seq[i] >= 0`` iff record ``i`` is a resolved wake event; the
    other ``waker_*`` columns then carry its waker.  ``creations`` is
    tiny (one entry per created thread) and stays a dict.
    """

    waker_tid: np.ndarray  # int64, -1 where not a wake event
    waker_time: np.ndarray  # float64
    waker_seq: np.ndarray  # int64, -1 where not a wake event
    creations: dict[int, WakeInfo] = field(default_factory=dict)

    @staticmethod
    def merge(parts: list["ColumnarWakers"]) -> "ColumnarWakers":
        """Concatenate per-shard columns (shard order is record order)."""
        merged = ColumnarWakers(
            waker_tid=np.concatenate([p.waker_tid for p in parts]),
            waker_time=np.concatenate([p.waker_time for p in parts]),
            waker_seq=np.concatenate([p.waker_seq for p in parts]),
        )
        for p in parts:
            merged.creations.update(p.creations)
        return merged

    def to_table(self, records: np.ndarray) -> WakerTable:
        """Materialize the object engine's :class:`WakerTable` view."""
        seq = records["seq"]
        wakes: dict[int, WakeInfo] = {}
        for i in np.flatnonzero(self.waker_seq >= 0):
            wakes[int(seq[i])] = WakeInfo(
                int(self.waker_tid[i]),
                float(self.waker_time[i]),
                int(self.waker_seq[i]),
            )
        return WakerTable(wakes=wakes, creations=dict(self.creations))


def _raise_first(trace: Trace, failures: list[tuple[np.ndarray, str]]) -> None:
    """Raise the object engine's error for the earliest failing event."""
    first_pos = None
    first_rule = ""
    for pos_arr, rule in failures:
        if len(pos_arr) == 0:
            continue
        p = int(pos_arr.min())
        if first_pos is None or p < first_pos:
            first_pos, first_rule = p, rule
    if first_pos is None:
        return
    row = trace.records[first_pos]
    seq, obj, arg = int(row["seq"]), int(row["obj"]), int(row["arg"])
    if first_rule == "obtain":
        raise WakerResolutionError(
            f"seq {seq}: contended OBTAIN on "
            f"{trace.object_name(obj)} with no preceding RELEASE"
        )
    if first_rule == "depart":
        raise WakerResolutionError(
            f"seq {seq}: BARRIER_DEPART on {trace.object_name(obj)} "
            f"generation {arg} with no arrivals"
        )
    if first_rule == "cond":
        raise WakerResolutionError(
            f"seq {seq}: COND_WAKE signalled by T{arg} which has no prior events"
        )
    raise WakerResolutionError(
        f"seq {seq}: JOIN_END on T{arg} which has not exited"
    )


def resolve_wakers_columnar(
    trace: Trace,
    barrier_seed: dict[tuple[int, int], WakeInfo] | None = None,
) -> ColumnarWakers:
    """Columnar twin of :func:`repro.core.wakers.resolve_wakers`."""
    rec = trace.records
    n = len(rec)
    etype = rec["etype"]
    tid = rec["tid"].astype(np.int64)
    obj = rec["obj"].astype(np.int64)
    arg = rec["arg"]
    time = rec["time"]
    seq = rec["seq"].astype(np.int64)
    pos = np.arange(n, dtype=np.int64)

    waker_tid = np.full(n, -1, dtype=np.int64)
    waker_time = np.zeros(n, dtype=np.float64)
    waker_seq = np.full(n, -1, dtype=np.int64)
    failures: list[tuple[np.ndarray, str]] = []

    def assign(q_pos: np.ndarray, m_pos: np.ndarray) -> None:
        waker_tid[q_pos] = tid[m_pos]
        waker_time[q_pos] = time[m_pos]
        waker_seq[q_pos] = seq[m_pos]

    # -- contended OBTAIN <- latest prior RELEASE on the same lock --------
    q = np.flatnonzero((etype == _OBTAIN) & (arg != 0))
    m = np.flatnonzero(etype == _RELEASE)
    if len(q):
        ridx = latest_prior(m, obj[m], q, obj[q])
        ok = ridx >= 0
        assign(q[ok], ridx[ok])
        failures.append((q[~ok], "obtain"))

    # -- BARRIER_DEPART <- cohort's global last arrival -------------------
    q = np.flatnonzero(etype == _DEPART)
    m = np.flatnonzero(etype == _ARRIVE)
    if len(q):
        key = dense_keys(
            np.concatenate([obj[m], obj[q]]), np.concatenate([arg[m], arg[q]])
        )
        mkey, qkey = key[: len(m)], key[len(m):]
        if len(m):
            order = np.lexsort((m, mkey))
            starts, skeys = group_bounds(mkey[order])
            # Last element of each (barrier, generation) group is its max pos.
            ends = np.append(starts[1:], len(m)) - 1
            group_last = m[order][ends]
            gi = np.searchsorted(skeys, qkey)
            gi_c = np.minimum(gi, len(skeys) - 1)
            hit = (gi < len(skeys)) & (skeys[gi_c] == qkey)
            assign(q[hit], group_last[gi_c[hit]])
        else:
            hit = np.zeros(len(q), dtype=bool)
        miss = q[~hit]
        if len(miss) and barrier_seed:
            seeded = np.zeros(len(miss), dtype=bool)
            for j, p in enumerate(miss):
                info = barrier_seed.get((int(obj[p]), int(arg[p])))
                if info is not None:
                    seeded[j] = True
                    waker_tid[p] = info.waker_tid
                    waker_time[p] = info.waker_time
                    waker_seq[p] = info.waker_seq
            miss = miss[~seeded]
        failures.append((miss, "depart"))

    # -- COND_WAKE <- latest prior signal, else signaller's latest event --
    q = np.flatnonzero(etype == _COND_WAKE)
    if len(q):
        m = np.flatnonzero((etype == _SIGNAL) | (etype == _BROADCAST))
        sidx = latest_prior(m, obj[m], q, obj[q])
        sig_ok = (sidx >= 0) & (tid[np.maximum(sidx, 0)] == arg[q])
        assign(q[sig_ok], sidx[sig_ok])
        fb = q[~sig_ok]
        if len(fb):
            lidx = latest_prior(pos, tid, fb, arg[fb])
            fb_ok = lidx >= 0
            assign(fb[fb_ok], lidx[fb_ok])
            failures.append((fb[~fb_ok], "cond"))

    # -- JOIN_END <- target thread's latest prior THREAD_EXIT -------------
    q = np.flatnonzero(etype == _JOIN_END)
    if len(q):
        m = np.flatnonzero(etype == _EXIT)
        eidx = latest_prior(m, tid[m], q, arg[q])
        ok = eidx >= 0
        assign(q[ok], eidx[ok])
        failures.append((q[~ok], "join"))

    _raise_first(trace, failures)

    # -- creations: last THREAD_CREATE per child tid ----------------------
    creations: dict[int, WakeInfo] = {}
    c = np.flatnonzero(etype == _CREATE)
    if len(c):
        order = np.lexsort((c, arg[c]))
        starts, _ = group_bounds(arg[c][order])
        ends = np.append(starts[1:], len(c)) - 1
        for p in c[order][ends]:
            creations[int(arg[p])] = WakeInfo(int(tid[p]), float(time[p]), int(seq[p]))

    return ColumnarWakers(
        waker_tid=waker_tid,
        waker_time=waker_time,
        waker_seq=waker_seq,
        creations=creations,
    )
