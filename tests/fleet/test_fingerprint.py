"""Fingerprint stability: identity survives run-to-run noise."""

from __future__ import annotations

import random

import pytest

from repro.core.analyzer import analyze
from repro.fleet import canonical_site, fingerprint_lock, workload_of
from repro.sim import Program


@pytest.mark.parametrize(
    ("name", "site"),
    [
        ("L1", "L1"),
        ("tq[3].qlock", "tq[*].qlock"),
        ("tq[3].qlock#12", "tq[*].qlock#*"),
        ("pool[0][17].m", "pool[*][*].m"),
        ("cache_lock#994", "cache_lock#*"),
        ("ticket#7x", "ticket#7x"),  # '#N' only strips as a trailing object id
        ("", ""),
    ],
)
def test_canonical_site(name, site):
    assert canonical_site(name) == site


def test_fingerprint_folds_instance_noise():
    a = fingerprint_lock("radiosity", "tq[0].qlock#101")
    b = fingerprint_lock("radiosity", "tq[7].qlock#993")
    assert a.fingerprint == b.fingerprint
    assert a.site == "tq[*].qlock#*"


def test_fingerprint_separates_workloads_and_sites():
    base = fingerprint_lock("radiosity", "tq[0].qlock")
    assert fingerprint_lock("ocean", "tq[0].qlock").fingerprint != base.fingerprint
    assert fingerprint_lock("radiosity", "bsp.lock").fingerprint != base.fingerprint


def test_fingerprint_is_stable_text():
    fp = fingerprint_lock("w", "L")
    assert len(fp.fingerprint) == 16
    assert fp.to_dict() == {"fingerprint": fp.fingerprint, "workload": "w", "site": "L"}


def test_workload_of_precedence():
    assert workload_of({"workload": "rad", "name": "x"}, "f") == "rad"
    assert workload_of({"name": "x"}, "f") == "x"
    assert workload_of({}, "f") == "f"
    assert workload_of({}, None) == "unknown"


def _varying_program(seed: int) -> Program:
    """Micro-style program whose lock *names* carry run-varying noise.

    Thread spawn order, per-run object ids and array indexes all change
    with the seed — exactly the noise a fleet fingerprint must survive.
    """
    rng = random.Random(seed)
    prog = Program(name="vary", seed=seed)
    hot = prog.mutex(f"tq[{rng.randrange(64)}].qlock#{rng.randrange(10_000)}")
    cold = prog.mutex(f"stats_lock#{rng.randrange(10_000)}")

    def worker(env, i):
        yield env.acquire(hot)
        yield env.compute(2.0 + 0.001 * ((seed + i) % 5))
        yield env.release(hot)
        yield env.acquire(cold)
        yield env.compute(0.5)
        yield env.release(cold)

    order = list(range(4))
    rng.shuffle(order)  # shuffled spawn order permutes tids across runs
    for i in order:
        prog.spawn(worker, i, name=f"T{i}")
    return prog


def test_fingerprints_stable_over_30_seed_sweep():
    """Same workload re-traced 30 times -> the same fingerprint set."""
    reference: set[str] = set()
    for seed in range(30):
        report = analyze(
            _varying_program(seed).run().trace, validate=False
        ).report.to_dict()
        fps = {
            fingerprint_lock("vary", name).fingerprint for name in report["locks"]
        }
        if not reference:
            reference = fps
        assert fps == reference, f"fingerprints drifted at seed {seed}"
    assert len(reference) == 2
