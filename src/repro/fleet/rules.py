"""Prometheus-style alert rules over fleet state.

Rules live in a TOML spec (``tomllib``, stdlib on Python >= 3.11)::

    [[rule]]
    name = "hot-lock"
    expr = "cp_fraction > 0.35 and runs >= 2"
    severity = "page"
    description = "one lock owns over a third of the critical path"

    [[rule]]
    name = "ranking-shift"
    expr = "topk_churn >= 0.25"
    workload = "radiosity"        # optional: restrict to one workload

An ``expr`` is one or more clauses joined by ``and``; each clause is
``<metric> <op> <number>`` with ops ``> >= < <= == !=``.  Metrics come
in two scopes and a rule must stay inside one of them:

* cluster scope (one row per recurring lock cluster):
  ``cp_fraction`` (latest), ``cp_fraction_mean``, ``cp_fraction_delta``
  (latest minus baseline mean, 0 until flagged), ``cont_prob``, ``runs``.
* workload scope (one row per workload series): ``topk_churn``,
  ``regressions`` (flag count), ``runs``.

:func:`lint_rules` validates specs without any fleet state — unknown
fields, unknown metrics, duplicate rule names, malformed or
unsatisfiable expressions — and is wired into CI over the example
specs in ``docs/examples/``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import RuleError

__all__ = [
    "AlertRule",
    "Clause",
    "load_rules",
    "parse_rules",
    "lint_rules",
    "evaluate_rules",
    "render_alerts",
]

#: metric -> (low, high) value range, used for unsatisfiability lint.
_CLUSTER_METRICS: dict[str, tuple[float, float]] = {
    "cp_fraction": (0.0, 1.0),
    "cp_fraction_mean": (0.0, 1.0),
    "cp_fraction_delta": (-1.0, 1.0),
    "cont_prob": (0.0, 1.0),
    "runs": (0.0, float("inf")),
}
_WORKLOAD_METRICS: dict[str, tuple[float, float]] = {
    "topk_churn": (0.0, 1.0),
    "regressions": (0.0, float("inf")),
    "runs": (0.0, float("inf")),
}
#: Metrics valid in either scope (do not force a scope by themselves).
_SHARED_METRICS = frozenset(_CLUSTER_METRICS) & frozenset(_WORKLOAD_METRICS)

_ALLOWED_FIELDS = frozenset(
    {"name", "expr", "severity", "workload", "description", "labels"}
)
_SEVERITIES = ("info", "warn", "page")

_CLAUSE_RE = re.compile(
    r"^\s*(?P<metric>[a-z][a-z0-9_]*)\s*"
    r"(?P<op>>=|<=|==|!=|>|<)\s*"
    r"(?P<value>[-+]?(?:\d+\.?\d*|\.\d+))\s*$"
)

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Clause:
    """One ``metric op value`` comparison."""

    metric: str
    op: str
    value: float

    def holds(self, row: dict[str, Any]) -> bool:
        return _OPS[self.op](float(row.get(self.metric, 0.0)), self.value)

    def __str__(self) -> str:
        return f"{self.metric} {self.op} {self.value:g}"


@dataclass(frozen=True)
class AlertRule:
    """One named alert condition over fleet metrics."""

    name: str
    clauses: tuple[Clause, ...]
    scope: str  # "cluster" | "workload"
    severity: str = "warn"
    workload: str | None = None
    description: str = ""
    labels: dict[str, str] = field(default_factory=dict)

    @property
    def expr(self) -> str:
        return " and ".join(str(c) for c in self.clauses)

    def matches(self, row: dict[str, Any]) -> bool:
        if self.workload and row.get("workload") != self.workload:
            return False
        return all(c.holds(row) for c in self.clauses)


def _parse_expr(expr: str) -> tuple[Clause, ...]:
    if not expr.strip():
        raise RuleError("empty expr")
    clauses = []
    for part in expr.split(" and "):
        m = _CLAUSE_RE.match(part)
        if m is None:
            raise RuleError(
                f"bad clause {part.strip()!r}: expected '<metric> <op> <number>'"
            )
        clauses.append(
            Clause(metric=m["metric"], op=m["op"], value=float(m["value"]))
        )
    return tuple(clauses)


def _scope_of(clauses: tuple[Clause, ...]) -> str:
    metrics = {c.metric for c in clauses}
    unknown = metrics - set(_CLUSTER_METRICS) - set(_WORKLOAD_METRICS)
    if unknown:
        known = ", ".join(sorted(set(_CLUSTER_METRICS) | set(_WORKLOAD_METRICS)))
        raise RuleError(
            f"unknown metric(s) {', '.join(sorted(unknown))}; known: {known}"
        )
    cluster_only = metrics - set(_WORKLOAD_METRICS)
    workload_only = metrics - set(_CLUSTER_METRICS)
    if cluster_only and workload_only:
        raise RuleError(
            f"expr mixes cluster-scope ({', '.join(sorted(cluster_only))}) and "
            f"workload-scope ({', '.join(sorted(workload_only))}) metrics"
        )
    return "workload" if workload_only else "cluster"


def _check_satisfiable(clauses: tuple[Clause, ...], scope: str) -> None:
    ranges = _CLUSTER_METRICS if scope == "cluster" else _WORKLOAD_METRICS
    # Single comparisons against the metric's own range get the clearest
    # message, so check them before the interval intersection.
    for c in clauses:
        mlo, mhi = ranges[c.metric]
        if c.op == "==" and not (mlo <= c.value <= mhi):
            raise RuleError(
                f"'{c}' can never hold: {c.metric} stays in [{mlo:g}, {mhi:g}]"
            )
        if (c.op == ">" and c.value >= mhi) or (c.op == ">=" and c.value > mhi):
            raise RuleError(
                f"'{c}' can never hold: {c.metric} never exceeds {mhi:g}"
            )
        if (c.op == "<" and c.value <= mlo) or (c.op == "<=" and c.value < mlo):
            raise RuleError(
                f"'{c}' can never hold: {c.metric} never drops below {mlo:g}"
            )
    # Intersect each metric's clauses into one interval; empty = unsatisfiable.
    bounds: dict[str, tuple[float, float]] = {}
    for c in clauses:
        lo, hi = bounds.get(c.metric, ranges[c.metric])
        if c.op in (">", ">="):
            lo = max(lo, c.value)
        elif c.op in ("<", "<="):
            hi = min(hi, c.value)
        elif c.op == "==":
            lo, hi = max(lo, c.value), min(hi, c.value)
        bounds[c.metric] = (lo, hi)
    for metric, (lo, hi) in bounds.items():
        if lo > hi or (lo == hi and not _has_closed_bound(clauses, metric, lo)):
            raise RuleError(
                f"clauses on {metric!r} are unsatisfiable "
                f"(require the empty interval [{lo:g}, {hi:g}])"
            )


def _has_closed_bound(clauses: tuple[Clause, ...], metric: str, value: float) -> bool:
    """Whether ``metric == value`` is reachable given only closed ops at value."""
    for c in clauses:
        if c.metric == metric and c.value == value and c.op in (">", "<"):
            return False
    return True


def _parse_rule(blob: dict[str, Any], index: int) -> AlertRule:
    if not isinstance(blob, dict):
        raise RuleError(f"rule #{index + 1} is not a table")
    unknown = set(blob) - _ALLOWED_FIELDS
    if unknown:
        raise RuleError(
            f"rule #{index + 1}: unknown field(s) {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(_ALLOWED_FIELDS))}"
        )
    name = blob.get("name")
    if not isinstance(name, str) or not name:
        raise RuleError(f"rule #{index + 1} needs a non-empty string 'name'")
    expr = blob.get("expr")
    if not isinstance(expr, str):
        raise RuleError(f"rule {name!r} needs a string 'expr'")
    severity = blob.get("severity", "warn")
    if severity not in _SEVERITIES:
        raise RuleError(
            f"rule {name!r}: severity {severity!r} is not one of "
            f"{', '.join(_SEVERITIES)}"
        )
    labels = blob.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        raise RuleError(f"rule {name!r}: 'labels' must be a table of strings")
    try:
        clauses = _parse_expr(expr)
        scope = _scope_of(clauses)
        _check_satisfiable(clauses, scope)
    except RuleError as exc:
        raise RuleError(f"rule {name!r}: {exc}") from None
    return AlertRule(
        name=name,
        clauses=clauses,
        scope=scope,
        severity=str(severity),
        workload=blob.get("workload") or None,
        description=str(blob.get("description", "")),
        labels=dict(labels),
    )


def parse_rules(text: str) -> list[AlertRule]:
    """Parse and lint a TOML rule spec from a string."""
    try:
        import tomllib
    except ImportError as exc:  # Python 3.10: no stdlib TOML parser
        raise RuleError(
            "alert rules need the stdlib 'tomllib' (Python >= 3.11)"
        ) from exc
    try:
        doc = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise RuleError(f"not valid TOML: {exc}") from None
    unknown_top = set(doc) - {"rule"}
    if unknown_top:
        raise RuleError(
            f"unknown top-level table(s) {', '.join(sorted(unknown_top))}; "
            "rules go in [[rule]] entries"
        )
    entries = doc.get("rule", [])
    if not isinstance(entries, list) or not entries:
        raise RuleError("spec defines no [[rule]] entries")
    rules = [_parse_rule(blob, i) for i, blob in enumerate(entries)]
    seen: dict[str, int] = {}
    for i, rule in enumerate(rules):
        if rule.name in seen:
            raise RuleError(
                f"duplicate rule name {rule.name!r} "
                f"(rules #{seen[rule.name] + 1} and #{i + 1})"
            )
        seen[rule.name] = i
    return rules


def load_rules(path: str | Path) -> list[AlertRule]:
    """Load and lint a TOML rule spec file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise RuleError(f"cannot read rule spec {path}: {exc}") from None
    try:
        return parse_rules(text)
    except RuleError as exc:
        raise RuleError(f"{path}: {exc}") from None


def lint_rules(paths: list[str | Path]) -> list[str]:
    """Lint rule spec files; returns problems (empty = all clean)."""
    problems = []
    for path in paths:
        try:
            load_rules(path)
        except RuleError as exc:
            problems.append(str(exc))
    return problems


def evaluate_rules(rules: list[AlertRule], aggregator) -> list[dict[str, Any]]:
    """Evaluate rules against a :class:`~repro.fleet.aggregate.FleetAggregator`.

    Returns one alert dict per (rule, matching row).
    """
    alerts: list[dict[str, Any]] = []
    cluster_rows = None
    workload_rows = None
    for rule in rules:
        if rule.scope == "cluster":
            if cluster_rows is None:
                cluster_rows = aggregator.cluster_metrics()
            rows = cluster_rows
        else:
            if workload_rows is None:
                workload_rows = aggregator.workload_metrics()
            rows = workload_rows
        for row in rows:
            if not rule.matches(row):
                continue
            alert: dict[str, Any] = {
                "rule": rule.name,
                "severity": rule.severity,
                "scope": rule.scope,
                "expr": rule.expr,
                "workload": row.get("workload", ""),
                "values": {c.metric: row.get(c.metric, 0.0) for c in rule.clauses},
            }
            if rule.scope == "cluster":
                alert["site"] = row.get("site", "")
                alert["fingerprint"] = row.get("fingerprint", "")
            if rule.description:
                alert["description"] = rule.description
            if rule.labels:
                alert["labels"] = dict(rule.labels)
            alerts.append(alert)
    severity_rank = {s: i for i, s in enumerate(_SEVERITIES)}
    alerts.sort(
        key=lambda a: (-severity_rank.get(a["severity"], 0), a["rule"], a["workload"])
    )
    return alerts


def render_alerts(alerts: list[dict[str, Any]], nrules: int) -> str:
    """Text rendering of fired alerts."""
    head = f"alert rules: {nrules} rule(s) evaluated, {len(alerts)} firing"
    if not alerts:
        return head
    lines = [head]
    for a in alerts:
        target = a["workload"] + (f" / {a['site']}" if a.get("site") else "")
        values = ", ".join(f"{k}={v:.3f}" for k, v in a["values"].items())
        lines.append(
            f"  [{a['severity']:<4}] {a['rule']}: {target} ({a['expr']}; {values})"
        )
    return "\n".join(lines)
