"""Greedy structural minimization of failing program specs.

``shrink`` repeatedly tries structure-removing candidate edits — from
coarse (drop a whole root thread, drop a barrier column) to fine (delete
one op subtree, splice a lock/spawn wrapper, zero a duration) — keeping
an edit whenever the caller's predicate still reproduces the failure,
until a full pass yields no accepted edit or the evaluation budget runs
out.  Candidates may break the generator's liveness rules (e.g. delete a
``produce`` that a ``consume`` needs); such edits simply change the
failure (usually to a deadlock), the predicate rejects them, and the
search moves on.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.check.spec import ProgramSpec

__all__ = ["shrink"]

Predicate = Callable[[ProgramSpec], bool]


def _drop_thread(ti: int) -> Callable[[ProgramSpec], None]:
    def edit(s: ProgramSpec) -> None:
        del s.threads[ti]

    return edit


def _drop_barrier_column(col: int) -> Callable[[ProgramSpec], None]:
    # Remove the col-th top-level barrier op from every thread at once so
    # the cohort (parties == thread count) stays aligned.
    def edit(s: ProgramSpec) -> None:
        for t in s.threads:
            seen = 0
            for i, node in enumerate(t.ops):
                if node["op"] == "barrier":
                    if seen == col:
                        del t.ops[i]
                        break
                    seen += 1
        s.barrier_rounds -= 1

    return edit


def _delete_op(ti: int, path: tuple[int, ...]) -> Callable[[ProgramSpec], None]:
    def edit(s: ProgramSpec) -> None:
        ops, idx = s.resolve(ti, path)
        del ops[idx]

    return edit


def _splice_op(ti: int, path: tuple[int, ...]) -> Callable[[ProgramSpec], None]:
    # Replace a lock/spawn wrapper with its children (drop the hold /
    # run the child's ops inline).
    def edit(s: ProgramSpec) -> None:
        ops, idx = s.resolve(ti, path)
        node = ops[idx]
        child = node["body"] if node["op"] == "lock" else node["ops"]
        ops[idx : idx + 1] = child

    return edit


def _zero_dur(ti: int, path: tuple[int, ...]) -> Callable[[ProgramSpec], None]:
    def edit(s: ProgramSpec) -> None:
        ops, idx = s.resolve(ti, path)
        ops[idx]["dur"] = 0.0

    return edit


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Candidate shrinks of ``spec``, coarsest first."""
    if len(spec.threads) > 1:
        for ti in range(len(spec.threads)):
            yield spec.transform(_drop_thread(ti))
    for col in range(spec.barrier_rounds):
        yield spec.transform(_drop_barrier_column(col))
    # Deepest-first so inner deletions are attempted before their parents
    # would invalidate the paths; each candidate is built from a fresh
    # clone, so paths stay valid per candidate.
    nodes = sorted(spec.iter_ops(), key=lambda x: len(x[1]), reverse=True)
    for ti, path, node in nodes:
        if node["op"] == "barrier":
            continue  # only removed column-wise, to keep cohorts aligned
        yield spec.transform(_delete_op(ti, path))
    for ti, path, node in nodes:
        if node["op"] in ("lock", "spawn"):
            yield spec.transform(_splice_op(ti, path))
    for ti, path, node in nodes:
        if "dur" in node and node["dur"]:
            yield spec.transform(_zero_dur(ti, path))


def shrink(
    spec: ProgramSpec,
    predicate: Predicate,
    max_evals: int = 400,
) -> tuple[ProgramSpec, int]:
    """Minimize ``spec`` while ``predicate`` holds.

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the original failure; it is never called on ``spec`` itself
    (the caller established that).  Returns the smallest reproducer
    found and the number of predicate evaluations spent.
    """
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(spec):
            if evals >= max_evals:
                break
            evals += 1
            if predicate(cand):
                spec = cand
                improved = True
                break  # restart candidate enumeration from the smaller spec
    return spec, evals
