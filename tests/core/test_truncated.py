"""Truncated-trace analysis, end to end.

Captures cut off mid-run (crashed apps, bounded ring buffers) leave open
holds and pending COND_BLOCK/JOIN_BEGIN waits at the trace end, and may
contain no THREAD_EXIT at all.  Documented semantics (docs/check.md):

* ``analyze(trace, validate=False)`` must not raise;
* open holds extend to each thread's last event;
* pending waits (a COND_BLOCK or JOIN_BEGIN with no wake) contribute no
  wait interval — the thread simply ends blocked;
* the DAG completion time falls back to the farthest event, so the two
  critical-path formulations still agree with the truncated duration.
"""

import numpy as np
import pytest

from repro.core.analyzer import analyze
from repro.core.dag import build_event_graph
from repro.core.online import OnlineAnalyzer
from repro.trace import TraceBuilder
from repro.trace.events import EventType
from repro.trace.trace import Trace
from repro.workloads import SyntheticLocks


def _truncate_before_first_exit(trace: Trace) -> Trace:
    exits = np.flatnonzero(trace.records["etype"] == int(EventType.THREAD_EXIT))
    cut = int(exits[0])
    return Trace(
        records=trace.records[:cut].copy(),
        objects=dict(trace.objects),
        threads=dict(trace.threads),
        meta=dict(trace.meta),
    )


@pytest.fixture(scope="module")
def truncated():
    trace = SyntheticLocks(ops_per_thread=40, nlocks=3).run(nthreads=4, seed=5).trace
    return _truncate_before_first_exit(trace)


def test_analyze_does_not_raise(truncated):
    result = analyze(truncated, validate=False)
    assert result.critical_path.length == pytest.approx(truncated.duration)


def test_dag_agrees_on_truncated_duration(truncated):
    g = build_event_graph(truncated)
    assert g.completion_time() == pytest.approx(truncated.duration)
    path = g.critical_events()
    assert path, "backtracking must anchor on the farthest event"


def test_metrics_stay_bounded(truncated):
    report = analyze(truncated, validate=False).report
    assert report.locks, "open holds still produce lock metrics"
    for lm in report.locks.values():
        assert -1e-9 <= lm.cp_fraction <= 1.0 + 1e-9
        assert lm.cp_hold_time <= lm.total_hold_time + 1e-9
        assert lm.contended_invocations <= lm.total_invocations


def test_online_analyzer_consumes_truncated_trace(truncated):
    online = OnlineAnalyzer().observe_all(truncated)
    # open holds never released: hold_time only counts completed holds,
    # so every counter stays finite and non-negative
    for ls in online.ranking():
        assert ls.hold_time >= 0.0
        assert ls.wait_time >= 0.0


def test_pending_blocks_at_trace_end():
    # A hand-built worst case: open hold + COND_BLOCK with no wake +
    # JOIN_BEGIN with no end, and no THREAD_EXIT anywhere.
    b = TraceBuilder()
    lock = b.mutex("L")
    cv = b.condition("C")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t2 = b.thread("T2")
    t0.start(at=0.0)
    t1.start(at=0.0)
    t2.start(at=0.0)
    t0.acquire(lock, at=1.0)          # held, never released
    t1.cond_block(cv, at=2.0)         # blocked, never woken
    t2.join(t1, begin=1.5, end=3.0)
    trace = b.build(validate=False)
    # drop the JOIN_END to leave the join pending
    records = trace.records[
        trace.records["etype"] != int(EventType.JOIN_END)
    ].copy()
    trace = Trace(
        records=records, objects=dict(trace.objects),
        threads=dict(trace.threads), meta=dict(trace.meta),
    )

    result = analyze(trace, validate=False)
    assert result.critical_path.length == pytest.approx(trace.duration)
    g = result.graph
    assert g.completion_time() == pytest.approx(trace.duration)
