"""Golden-report regression tests.

Checked-in rendered reports for two representative workloads — the
paper's hand-checkable ``micro`` example and the barrier-heavy
``radiosity`` simulation (which engages the sharded analyzer) — pin the
full text of ``AnalysisResult.render`` so that any change to metrics,
ordering, or formatting shows up as a readable diff instead of a silent
drift.  Regenerate after an intentional change with::

    PYTHONPATH=src python tests/golden/regen.py

(see CONTRIBUTING.md) and review the diff like any other code change.
"""

import pathlib

import pytest

from repro.cli import main
from repro.core.analyzer import ENGINES, analyze
from repro.trace.writer import write_trace
from repro.workloads import get_workload

GOLDEN_DIR = pathlib.Path(__file__).parent

#: name -> (workload, params, nthreads, seed).  Keep in sync with the
#: golden .txt files; regen.py reads this table.
CASES = {
    "micro": ("micro", {}, 4, 0),
    "radiosity": ("radiosity", {"total_tasks": 80, "iterations": 2}, 4, 11),
    # Contended rwlock config: under reader-preference the critical lock
    # re-ranks (entry_lock[0] -> entry_lock[1]), exercised by the
    # protocol-forecast tests.
    "ldap": (
        "openldap",
        {"requests": 150, "nbuckets": 2, "write_prob": 0.35,
         "write_cost": 0.12, "lookup_cost": 0.04},
        6,
        1,
    ),
}


#: Cases with a pinned *sampled* estimate render (<case>.sampled.txt):
#: the statistical pipeline at rate 0.1 with a fixed sampling seed.
SAMPLED_CASES = ("ldap", "radiosity")
SAMPLED_RATE = 0.1
SAMPLED_SEED = 10


def render_case(case: str, engine: str = "columnar") -> str:
    """The exact text the CLI prints for ``analyze`` on this case."""
    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    return analyze(trace, engine=engine).render(10)


def render_sampled_case(case: str) -> str:
    """The estimated report for this case sampled at SAMPLED_RATE."""
    from repro.core.estimate import estimate_report
    from repro.sampling import downsample_trace

    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    sampled = downsample_trace(trace, SAMPLED_RATE, seed=SAMPLED_SEED)
    return estimate_report(sampled).render(10)


def _golden(case: str) -> str:
    path = GOLDEN_DIR / f"{case}.txt"
    assert path.exists(), f"missing golden file {path}; run tests/golden/regen.py"
    return path.read_text()


# Both engines are checked against the *same* golden file: matching it
# byte for byte from either side is the bit-identity contract of
# docs/algorithm.md, pinned here at the rendered-report level.
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", sorted(CASES))
def test_report_matches_golden(case, engine):
    assert render_case(case, engine) == _golden(case)


@pytest.mark.parametrize("case", sorted(CASES))
def test_streamed_report_matches_golden(case, tmp_path):
    """Chunk-streaming a golden trace into the service and finalizing must
    reproduce the checked-in report byte for byte — the streaming path is
    not allowed to change the answer."""
    import json
    import time

    from repro.service.api import ServiceAPI
    from repro.trace.framing import encode_records_frame, split_records
    from repro.trace.writer import header_dict

    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    with ServiceAPI(tmp_path / "svc", workers=0) as api:
        _, session = api.handle("POST", "/streams", json.dumps({}).encode())
        sid = session["id"]
        for cid, block in enumerate(split_records(trace.records, 4096)):
            body = encode_records_frame(block, cid)
            while True:
                status, _ = api.handle("POST", f"/traces/{sid}/chunks", body)
                if status == 202:
                    break
                assert status == 429
                time.sleep(0.005)
        status, fin = api.handle(
            "POST",
            f"/traces/{sid}/finalize",
            json.dumps({"header": header_dict(trace), "analyze": True,
                        "params": {"render": True, "top": 10}}).encode(),
        )
    assert status == 200, fin
    assert fin["report"]["rendered"] == _golden(case)


@pytest.mark.parametrize("case", sorted(CASES))
def test_cli_analyze_matches_golden(case, tmp_path, capsys):
    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    path = tmp_path / f"{case}.clt"
    write_trace(trace, str(path))

    assert main(["analyze", str(path)]) == 0
    assert capsys.readouterr().out == _golden(case) + "\n"

    # Sharded analysis must print the very same bytes.
    assert main(["analyze", str(path), "--jobs", "4"]) == 0
    assert capsys.readouterr().out == _golden(case) + "\n"

    # As must the object-engine escape hatch.
    assert main(["analyze", str(path), "--engine", "object"]) == 0
    assert capsys.readouterr().out == _golden(case) + "\n"


@pytest.mark.parametrize("case", SAMPLED_CASES)
def test_sampled_report_matches_golden(case, tmp_path, capsys):
    """The statistical pipeline (downsample -> estimate -> render) is
    pinned at rate 0.1 the same way the exact reports are; estimator or
    formatting drift shows up as a readable diff."""
    golden = _golden(f"{case}.sampled")
    assert render_sampled_case(case) == golden

    # The CLI prints the same bytes when handed the pre-sampled trace.
    from repro.core.estimate import estimate_report  # noqa: F401 (parity)
    from repro.sampling import downsample_trace

    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    sampled = downsample_trace(trace, SAMPLED_RATE, seed=SAMPLED_SEED)
    path = tmp_path / f"{case}.sampled.clt"
    write_trace(sampled, str(path))
    assert main(["analyze", str(path)]) == 0
    assert capsys.readouterr().out == golden + "\n"
