"""Regression detection: calibrated noise bands, shifts, churn."""

from __future__ import annotations

from tests.fleet.fleethelpers import seeded_aggregator, synth_report

from repro.fleet import FleetAggregator, render_regressions


def test_no_false_positive_on_repeated_runs(tmp_path):
    """Re-running the same workload (with jitter) never alarms."""
    agg = seeded_aggregator(tmp_path / "fleet", runs=8, jitter=0.004)
    out = agg.regressions()
    assert out["flags"] == []
    assert out["workloads"]["micro"]["checked"] is True
    assert out["workloads"]["micro"]["topk_churn"] == 0.0


def test_no_false_positive_on_identical_reuploads(tmp_path):
    """Byte-identical runs have zero variance; the floor still guards."""
    agg = seeded_aggregator(tmp_path / "fleet", runs=6, jitter=0.0)
    assert agg.regressions()["flags"] == []


def test_single_run_is_not_checked(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=1)
    out = agg.regressions()
    assert out["flags"] == []
    assert out["workloads"]["micro"] == {"runs": 1, "checked": False}


def test_injected_cp_shift_is_flagged(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=5)
    agg.observe(
        synth_report({"L2": 0.2, "L1": 0.8}),  # the ranking flipped
        digest="shifted",
        workload="micro",
    )
    out = agg.regressions()
    kinds = sorted(f["kind"] for f in out["flags"])
    assert kinds == ["cp_shift", "cp_shift", "top1_change"]
    up = next(f for f in out["flags"] if f["kind"] == "cp_shift" and f["delta"] > 0)
    assert up["site"] == "L1"
    assert up["delta"] > up["band"]
    top1 = next(f for f in out["flags"] if f["kind"] == "top1_change")
    assert (top1["site"], top1["previous_site"]) == ("L1", "L2")


def test_new_dominant_lock_is_flagged(tmp_path):
    """A lock never seen in the baseline appearing hot is a cp_shift."""
    agg = seeded_aggregator(tmp_path / "fleet", runs=4)
    agg.observe(
        synth_report({"L2": 0.3, "L1": 0.1, "NEW": 0.5}),
        digest="newlock",
        workload="micro",
    )
    flags = agg.regressions()["flags"]
    assert any(f["kind"] == "cp_shift" and f["site"] == "NEW" for f in flags)


def test_noise_band_widens_with_baseline_variance(tmp_path):
    """A delta inside 3 sigma of a noisy baseline does not alarm."""
    agg = FleetAggregator(tmp_path / "fleet")
    values = [0.40, 0.60, 0.35, 0.65, 0.45, 0.55]  # sigma ~ 0.11
    for i, cp in enumerate(values):
        agg.observe(
            synth_report({"L": cp, "M": 1.0 - cp}),
            digest=f"d{i}",
            workload="noisy",
        )
    out = agg.regressions()
    assert [f for f in out["flags"] if f["kind"] == "cp_shift"] == []
    # The same final delta alarms when the baseline is quiet.
    quiet = FleetAggregator(tmp_path / "quiet")
    for i in range(5):
        quiet.observe(
            synth_report({"L": 0.5, "M": 0.5}), digest=f"q{i}", workload="q"
        )
    quiet.observe(synth_report({"L": 0.65, "M": 0.35}), digest="last", workload="q")
    assert any(f["kind"] == "cp_shift" for f in quiet.regressions()["flags"])


def test_rank_churn_flag(tmp_path):
    agg = FleetAggregator(tmp_path / "fleet", topk=4)
    base = {"A": 0.4, "B": 0.3, "C": 0.2, "D": 0.1}
    for i in range(3):
        agg.observe(synth_report(base), digest=f"d{i}", workload="w")
    agg.observe(
        synth_report({"A": 0.4, "X": 0.3, "Y": 0.2, "Z": 0.1}),
        digest="churned",
        workload="w",
    )
    out = agg.regressions()
    churn = next(f for f in out["flags"] if f["kind"] == "rank_churn")
    assert churn["churn"] == 0.75
    assert sorted(churn["entered"]) == ["X", "Y", "Z"]
    assert sorted(churn["left"]) == ["B", "C", "D"]


def test_parameters_override_defaults(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=4)
    agg.observe(
        synth_report({"L2": 0.7, "L1": 0.3}), digest="small-shift", workload="micro"
    )
    # Default floor (0.05) flags the 0.1 shift; a wide floor does not.
    assert agg.regressions()["flags"]
    assert agg.regressions(noise_floor=0.5)["flags"] == []


def test_render_regressions_text(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=3)
    assert "no regressions flagged" in render_regressions(agg.regressions())
    agg.observe(
        synth_report({"L2": 0.2, "L1": 0.8}), digest="shift", workload="micro"
    )
    text = render_regressions(agg.regressions())
    assert "[cp_shift]" in text and "[top1_change]" in text
