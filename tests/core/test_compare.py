"""Before/after analysis comparison."""

import pytest

from repro.core.analyzer import analyze
from repro.core.compare import compare_analyses
from repro.workloads import MicroBenchmark, Radiosity


@pytest.fixture(scope="module")
def micro_comparison():
    before = analyze(MicroBenchmark().run(nthreads=4, seed=0).trace)
    after = analyze(MicroBenchmark(optimize="L2").run(nthreads=4, seed=0).trace)
    return compare_analyses(before, after)


def test_speedup(micro_comparison):
    assert micro_comparison.speedup == pytest.approx(12.0 / 9.5)
    assert micro_comparison.improvement == pytest.approx(12.0 / 9.5 - 1)


def test_l2_share_drops(micro_comparison):
    d = next(d for d in micro_comparison.deltas if d.name == "L2")
    assert d.cp_fraction_delta < 0
    assert d.present_before and d.present_after


def test_top_movers_sorted(micro_comparison):
    movers = micro_comparison.top_movers()
    deltas = [abs(d.cp_fraction_delta) for d in movers]
    assert deltas == sorted(deltas, reverse=True)


def test_render(micro_comparison):
    text = micro_comparison.render()
    assert "end to end" in text
    assert "L2" in text


def test_lock_sets_can_differ():
    """The Radiosity optimization replaces qlock with head/tail locks."""
    before = analyze(Radiosity(total_tasks=60, iterations=1).run(nthreads=4, seed=1).trace)
    after = analyze(
        Radiosity(total_tasks=60, iterations=1, two_lock_queues=True)
        .run(nthreads=4, seed=1)
        .trace
    )
    cmp = compare_analyses(before, after)
    qlock = next(d for d in cmp.deltas if d.name == "tq[0].qlock")
    head = next(d for d in cmp.deltas if d.name == "tq[0].q_head_lock")
    assert qlock.present_before and not qlock.present_after
    assert not head.present_before and head.present_after
    assert "-" in cmp.render()
