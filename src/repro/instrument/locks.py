"""Traced mutex for real threads (paper Fig. 4, ``pthread_mutex_*``).

Implements the paper's trylock-first protocol: attempt a non-blocking
acquire; if it fails the acquisition is *contended* and we fall back to
a blocking acquire.  The release timestamp is taken before the real
unlock so the waker's RELEASE always precedes the waiter's OBTAIN in the
merged trace (see the package docstring for why we deviate from the
paper here).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.trace.events import EventType, ObjectKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument.session import ProfilingSession

__all__ = ["TracedLock", "TracedRLock", "TracedSemaphore"]

# Originals bound at import time so autopatch interposition cannot recurse
# into our own constructors (the LD_PRELOAD dlsym(RTLD_NEXT) analog).
_real_lock_factory = threading.Lock
_real_rlock_factory = threading.RLock
_real_semaphore_factory = threading.Semaphore
_real_bounded_semaphore_factory = threading.BoundedSemaphore


class TracedLock:
    """Drop-in ``threading.Lock`` replacement that records lock events."""

    __slots__ = ("session", "obj", "name", "_real")

    def __init__(self, session: "ProfilingSession", name: str = ""):
        self.session = session
        self.name = name
        self.obj = session.register_object(ObjectKind.MUTEX, name)
        self._real = _real_lock_factory()

    def acquire(self, blocking: bool = True) -> bool:
        """Acquire, recording ACQUIRE and OBTAIN (with the contended flag)."""
        s = self.session
        if not blocking:
            got = self._real.acquire(blocking=False)
            if got:
                t = s.emit_here(EventType.ACQUIRE, obj=self.obj)
                s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t)
            return got
        t_try = s.emit_here(EventType.ACQUIRE, obj=self.obj)
        if self._real.acquire(blocking=False):
            # Uncontended: obtain at (essentially) the acquire time.
            s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t_try)
            return True
        self._real.acquire()  # contended: block for the lock
        s.emit_here(EventType.OBTAIN, obj=self.obj, arg=1)
        return True

    def release(self) -> None:
        """Release, timestamping *before* the real unlock (see module doc)."""
        s = self.session
        t = s.clock.now_ns()
        self._real.release()
        s.emit_here(EventType.RELEASE, obj=self.obj, at_ns=t)

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # Internal access for TracedCondition, which must share the real lock.
    @property
    def real_lock(self) -> threading.Lock:
        return self._real


class TracedRLock:
    """Drop-in ``threading.RLock`` replacement.

    Only the *outermost* acquire/release pair is traced — nested
    re-acquisitions by the owner are bookkeeping, not synchronization —
    so the analysis sees one critical section per ownership episode,
    mirroring the simulator's reentrant mutex.
    """

    __slots__ = ("session", "obj", "name", "_real", "_owner", "_depth")

    def __init__(self, session: "ProfilingSession", name: str = ""):
        self.session = session
        self.name = name
        self.obj = session.register_object(ObjectKind.MUTEX, name)
        self._real = _real_rlock_factory()
        self._owner: int | None = None
        self._depth = 0

    def acquire(self, blocking: bool = True) -> bool:
        s = self.session
        me = threading.get_ident()
        if self._owner == me:  # nested: silent
            self._real.acquire()
            self._depth += 1
            return True
        if not blocking:
            got = self._real.acquire(blocking=False)
            if got:
                self._owner = me
                self._depth = 1
                t = s.emit_here(EventType.ACQUIRE, obj=self.obj)
                s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t)
            return got
        t_try = s.emit_here(EventType.ACQUIRE, obj=self.obj)
        if self._real.acquire(blocking=False):
            s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t_try)
        else:
            self._real.acquire()
            s.emit_here(EventType.OBTAIN, obj=self.obj, arg=1)
        self._owner = me
        self._depth = 1
        return True

    def release(self) -> None:
        s = self.session
        if self._owner == threading.get_ident() and self._depth > 1:
            self._depth -= 1
            self._real.release()
            return
        self._owner = None
        self._depth = 0
        t = s.clock.now_ns()
        self._real.release()
        s.emit_here(EventType.RELEASE, obj=self.obj, at_ns=t)

    def __enter__(self) -> "TracedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class TracedSemaphore:
    """Drop-in ``threading.Semaphore``/``BoundedSemaphore`` replacement.

    Same trylock-first protocol as :class:`TracedLock`: a permit taken
    without blocking is an uncontended OBTAIN; having to wait for one is
    contended.  With ``value > 1`` several threads legitimately hold
    permits at once, so the trace can contain overlapping critical
    sections on the same object — each thread's OBTAIN/RELEASE pair is
    still well-formed.  A timed-out or failed non-blocking acquire emits
    nothing: no permit, no critical section, no dangling ACQUIRE.
    """

    __slots__ = ("session", "obj", "name", "_real")

    def __init__(
        self,
        session: "ProfilingSession",
        value: int = 1,
        name: str = "",
        bounded: bool = False,
    ):
        self.session = session
        self.name = name
        self.obj = session.register_object(ObjectKind.SEMAPHORE, name)
        factory = (
            _real_bounded_semaphore_factory if bounded else _real_semaphore_factory
        )
        self._real = factory(value)

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> bool:
        s = self.session
        if not blocking:
            got = self._real.acquire(blocking=False)
            if got:
                t = s.emit_here(EventType.ACQUIRE, obj=self.obj)
                s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t)
            return got
        if timeout is not None:
            t_try = s.clock.now_ns()
            if self._real.acquire(blocking=False):
                s.emit_here(EventType.ACQUIRE, obj=self.obj, at_ns=t_try)
                s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t_try)
                return True
            if not self._real.acquire(True, timeout):
                return False
            s.emit_here(EventType.ACQUIRE, obj=self.obj, at_ns=t_try)
            s.emit_here(EventType.OBTAIN, obj=self.obj, arg=1)
            return True
        t_try = s.emit_here(EventType.ACQUIRE, obj=self.obj)
        if self._real.acquire(blocking=False):
            s.emit_here(EventType.OBTAIN, obj=self.obj, arg=0, at_ns=t_try)
            return True
        self._real.acquire()
        s.emit_here(EventType.OBTAIN, obj=self.obj, arg=1)
        return True

    def release(self, n: int = 1) -> None:
        """Release ``n`` permits (one RELEASE event, like one sem_post)."""
        s = self.session
        t = s.clock.now_ns()
        self._real.release(n)
        s.emit_here(EventType.RELEASE, obj=self.obj, at_ns=t)

    def __enter__(self) -> "TracedSemaphore":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
