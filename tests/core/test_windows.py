"""Windowed criticality analysis."""

import numpy as np
import pytest

from repro.core.analyzer import analyze
from repro.core.windows import windowed_criticality
from repro.errors import AnalysisError

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


def test_micro_phase_structure(micro_analysis):
    """Early windows belong to L1's phase, later ones entirely to L2."""
    wc = windowed_criticality(micro_analysis, nwindows=6)
    # Execution: [0,2] = L1 CS on the path, [2,4.5] onward = L2 chain.
    assert wc.dominant_lock(0) == "L1"
    for w in range(3, 6):
        assert wc.dominant_lock(w) == "L2"
    assert wc.phase_changes()  # the dominance switches at least once


def test_shares_bounded(micro_analysis):
    wc = windowed_criticality(micro_analysis, nwindows=8)
    assert np.all(wc.shares >= -1e-9)
    assert np.all(wc.shares.sum(axis=1) <= 1 + 1e-9)


def test_micro_full_coverage(micro_analysis):
    # In the micro-benchmark the whole path is inside critical sections,
    # so every window's shares sum to 1.
    wc = windowed_criticality(micro_analysis, nwindows=4)
    assert np.allclose(wc.shares.sum(axis=1), 1.0)


def test_single_window_equals_global_cp_fraction(micro_analysis):
    wc = windowed_criticality(micro_analysis, nwindows=1)
    l2 = wc.lock_names.index("L2")
    assert wc.shares[0, l2] == pytest.approx(
        micro_analysis.report.lock("L2").cp_fraction
    )


def test_window_edges(micro_analysis):
    wc = windowed_criticality(micro_analysis, nwindows=5)
    assert wc.nwindows == 5
    assert wc.window_edges[0] == 0.0
    assert wc.window_edges[-1] == pytest.approx(12.0)


def test_render(micro_analysis):
    text = windowed_criticality(micro_analysis, nwindows=3).render()
    assert "Dominant" in text
    assert "L2" in text


def test_invalid_nwindows(micro_analysis):
    with pytest.raises(AnalysisError, match="nwindows"):
        windowed_criticality(micro_analysis, nwindows=0)


def test_zero_duration_trace_rejected():
    from repro.sim import Program

    prog = Program()
    prog.spawn(lambda env: (yield env.compute(0.0)))
    analysis = analyze(prog.run().trace)
    with pytest.raises(AnalysisError, match="zero duration"):
        windowed_criticality(analysis, nwindows=2)


def test_dominant_none_when_no_lock_on_window():
    from repro.sim import Program

    prog = Program()
    lock = prog.mutex("L")

    def body(env):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)
        yield env.compute(3.0)  # long lock-free tail

    prog.spawn(body)
    analysis = analyze(prog.run().trace)
    wc = windowed_criticality(analysis, nwindows=4)
    assert wc.dominant_lock(0) == "L"
    assert wc.dominant_lock(3) is None
