"""Regenerate the golden report files in this directory.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/regen.py

Run it only after an *intentional* change to metrics or report
formatting, then review the resulting diff like any other code change.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from test_golden_reports import (  # noqa: E402
    CASES,
    GOLDEN_DIR,
    SAMPLED_CASES,
    render_case,
    render_sampled_case,
)


def _write(path: pathlib.Path, text: str) -> None:
    changed = not path.exists() or path.read_text() != text
    path.write_text(text)
    print(f"{'updated' if changed else 'unchanged'}  {path}")


def main() -> int:
    for case in sorted(CASES):
        _write(GOLDEN_DIR / f"{case}.txt", render_case(case))
    for case in sorted(SAMPLED_CASES):
        _write(GOLDEN_DIR / f"{case}.sampled.txt", render_sampled_case(case))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
