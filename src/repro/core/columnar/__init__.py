"""Columnar (numpy) implementation of the analysis hot path.

The object engine (:mod:`repro.core.wakers`, :mod:`repro.core.segments`)
materializes one :class:`~repro.trace.events.Event` per record — three
full passes of Python object construction on a path the trace reader
already hands us as a structured array.  This package keeps the columns:

* :mod:`repro.core.columnar.wakers` resolves every waker with sorted
  searchsorted/argsort passes instead of two dict-driven event loops;
* :mod:`repro.core.columnar.timelines` builds blocked intervals and
  lock-hold intervals as flat arrays (one slot-matching pass per wait
  kind, one LIFO paren-matching pass for holds), with a thin view layer
  that materializes :class:`~repro.core.model.Wait` /
  :class:`~repro.core.model.HoldInterval` objects only where the DAG,
  what-if and viz layers need them;
* :mod:`repro.core.columnar.walk` drives the paper's backward walk with
  per-thread index arrays instead of dict lookups;
* :mod:`repro.core.columnar.metrics` computes the TYPE 1 / TYPE 2 tables
  with per-group ``np.cumsum`` so every float is summed in exactly the
  order the object engine uses — the output is *bit-identical*, which
  the 14th ``repro.check`` invariant (``engine-equiv``) enforces on
  every fuzzed seed;
* :mod:`repro.core.columnar.online` is the batch kernel behind
  :meth:`repro.core.online.OnlineAnalyzer.observe_batch`.

``analyze(trace)`` dispatches here by default; ``engine="object"`` is
the escape hatch (see ``docs/algorithm.md``).
"""

from repro.core.columnar.metrics import (
    compute_metrics_columnar,
    compute_thread_stats_columnar,
)
from repro.core.columnar.timelines import ColumnarTimelines, build_timelines_columnar
from repro.core.columnar.wakers import ColumnarWakers, resolve_wakers_columnar
from repro.core.columnar.walk import backward_walk_columnar

__all__ = [
    "ColumnarTimelines",
    "ColumnarWakers",
    "backward_walk_columnar",
    "build_timelines_columnar",
    "compute_metrics_columnar",
    "compute_thread_stats_columnar",
    "resolve_wakers_columnar",
]
