"""Autopatching: profiling unmodified `threading` code."""

import threading
import time

import pytest

from repro.core.analyzer import analyze
from repro.instrument import ProfilingSession, TracedRLock, patch_threading
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def unmodified_hotlock_app(rounds=3, nthreads=3):
    """Plain-threading code: knows nothing about profiling."""
    lock = threading.Lock()
    done = []

    def worker(i):
        for _ in range(rounds):
            with lock:
                time.sleep(0.002)
        done.append(i)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return done


def test_unmodified_code_traced():
    with ProfilingSession(name="auto") as s:
        with patch_threading(s):
            done = unmodified_hotlock_app()
    assert sorted(done) == [0, 1, 2]
    trace = s.trace()
    validate_trace(trace)
    analysis = analyze(trace)
    top = analysis.report.top_locks(1)[0]
    assert top.name == "Lock#1"
    assert top.total_invocations == 9


def test_originals_restored_after_exit():
    originals = (threading.Lock, threading.Thread, threading.Condition)
    with ProfilingSession() as s:
        with patch_threading(s):
            assert threading.Lock is not originals[0]
    assert (threading.Lock, threading.Thread, threading.Condition) == originals


def test_restored_even_on_exception():
    original = threading.Lock
    with ProfilingSession() as s:
        with pytest.raises(RuntimeError):
            with patch_threading(s):
                raise RuntimeError("boom")
    assert threading.Lock is original


def test_interpreter_internals_not_traced():
    # Creating (real) threads allocates internal Events/Conditions; none
    # of those may leak into the trace as traced objects.
    with ProfilingSession(name="internals") as s:
        with patch_threading(s):
            t = threading.Thread(target=lambda: None)
            t.start()
            t.join()
    trace = s.trace()
    validate_trace(trace)
    # Only lifecycle events: no lock/cond objects were created by user code.
    assert all(info.name.startswith(("Lock#", "RLock#", "Barrier#", "Condition#"))
               for info in trace.objects.values())
    assert trace.count(EventType.THREAD_CREATE) == 1


def test_rlock_nested_traced_once():
    with ProfilingSession(name="rl") as s:
        with patch_threading(s):
            rl = threading.RLock()
            assert isinstance(rl, TracedRLock)
            with rl:
                with rl:
                    pass
    trace = s.trace()
    assert trace.count(EventType.OBTAIN) == 1
    assert trace.count(EventType.RELEASE) == 1


def test_condition_via_patch():
    with ProfilingSession(name="cond") as s:
        with patch_threading(s):
            cv = threading.Condition()
            state = {"go": False}

            def waiter():
                with cv.lock:
                    while not state["go"]:
                        cv.wait()

            def signaller():
                time.sleep(0.01)
                with cv.lock:
                    state["go"] = True
                    cv.notify()

            tw = threading.Thread(target=waiter)
            ts = threading.Thread(target=signaller)
            tw.start()
            ts.start()
            tw.join()
            ts.join()
    trace = s.trace()
    validate_trace(trace)
    assert trace.count(EventType.COND_WAKE) == 1


def test_barrier_via_patch():
    with ProfilingSession(name="bar") as s:
        with patch_threading(s):
            bar = threading.Barrier(2)

            def party():
                bar.wait()

            ts = [threading.Thread(target=party) for _ in range(2)]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
    trace = s.trace()
    validate_trace(trace)
    assert trace.count(EventType.BARRIER_DEPART) == 2


def test_real_rlock_contention():
    with ProfilingSession(name="rlc") as s:
        rl = TracedRLock(s, "shared")

        def holder():
            with rl:
                time.sleep(0.03)

        def waiter():
            time.sleep(0.01)
            with rl:
                pass

        t1, t2 = s.thread(holder), s.thread(waiter)
        t1.start()
        t2.start()
        t1.join()
        t2.join()
    trace = s.trace()
    validate_trace(trace)
    contended = [ev for ev in trace if ev.etype == EventType.OBTAIN and ev.arg == 1]
    assert len(contended) == 1
