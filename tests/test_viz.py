"""Visualization tests: timeline and lock-profile charts."""

import pytest

from repro.core.analyzer import analyze
from repro.viz.profile import render_lock_profile
from repro.viz.timeline import render_timeline

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro():
    result = make_micro_program().run()
    return result.trace, analyze(result.trace)


class TestTimeline:
    def test_basic_structure(self, micro):
        trace, analysis = micro
        chart = render_timeline(trace, analysis, width=60)
        lines = chart.splitlines()
        assert "critical path" in lines[0]
        rows = [ln for ln in lines if "|" in ln]
        assert len(rows) == 4  # one per thread
        assert lines[-1].startswith("locks:")

    def test_cp_marked_uppercase(self, micro):
        trace, analysis = micro
        chart = render_timeline(trace, analysis, width=60)
        # L2 chain on the path (uppercase A); off-path L1 lowercase b.
        assert "A" in chart
        assert "b" in chart

    def test_blocked_rendered_as_dots(self, micro):
        trace, analysis = micro
        chart = render_timeline(trace, analysis, width=60)
        assert "." in chart

    def test_width_respected(self, micro):
        trace, analysis = micro
        chart = render_timeline(trace, analysis, width=30)
        for line in chart.splitlines():
            if line.count("|") == 2:
                inner = line.split("|")[1]
                assert len(inner) == 30

    def test_analysis_computed_when_omitted(self, micro):
        trace, _ = micro
        assert "locks:" in render_timeline(trace, width=20)

    def test_empty_trace(self):
        from repro.trace.trace import Trace

        assert render_timeline(Trace.from_events([])) == "(empty trace)"


class TestLockProfile:
    def test_bars_present(self, micro):
        _, analysis = micro
        chart = render_lock_profile(analysis.report, width=20)
        assert "#" in chart and "." in chart
        assert "L2" in chart and "L1" in chart
        assert "83.33%" in chart

    def test_cp_ordering(self, micro):
        _, analysis = micro
        chart = render_lock_profile(analysis.report)
        assert chart.index("L2") < chart.index("L1")

    def test_no_locks(self):
        from repro.sim import Program

        prog = Program()
        prog.spawn(lambda env: (yield env.compute(1.0)))
        report = analyze(prog.run().trace).report
        assert render_lock_profile(report) == "(no lock activity)"
