"""Experiment plumbing: result container, registry, static tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.tables import format_table

__all__ = [
    "ExperimentResult",
    "experiment",
    "run_experiment",
    "list_experiments",
    "table1",
    "table2",
]

_EXPERIMENTS: dict[str, Callable[..., "ExperimentResult"]] = {}


@dataclass
class ExperimentResult:
    """Rendered output of one experiment plus machine-readable values."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    values: dict[str, Any] = field(default_factory=dict)
    extra_text: str = ""

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")]
        if self.extra_text:
            parts.append(self.extra_text)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def experiment(exp_id: str):
    """Decorator registering an experiment entry point under ``exp_id``."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        _EXPERIMENTS[exp_id] = fn
        return fn

    return wrap


def run_experiment(exp_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment by id (``fig6`` … ``tsp_opt``)."""
    try:
        fn = _EXPERIMENTS[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; available: {', '.join(sorted(_EXPERIMENTS))}"
        ) from None
    return fn(**kwargs)


def list_experiments() -> list[str]:
    """Registered experiment ids."""
    return sorted(_EXPERIMENTS)


@experiment("table1")
def table1() -> ExperimentResult:
    """Paper Table 1 — experimental configuration, paper vs this reproduction."""
    rows = [
        ["Machine", "POWER7, 2s x 6c x SMT2 (24 HW threads)", "virtual-time simulator"],
        ["Timestamps", "mftb time-base register", "virtual clock (exact)"],
        ["Radiosity input", "-batch -largeroom", "640 tasks x 3 iterations"],
        ["Water-nsquared input", "512 molec", "512 molec, 3 timesteps"],
        ["Volrend input", "head", "320 tiles x 3 frames"],
        ["Raytrace input", "car 256", "48 bundles/thread"],
        ["TSP input", "10 cities", "10 cities (seeded euclidean)"],
        ["UTS input", "-T8 -c 2 ST3", "tree_seed=8, 240 root children"],
        ["OpenLDAP input", "10k directory entries, SLAMD", "10k entries, queued search load"],
    ]
    return ExperimentResult(
        exp_id="table1",
        title="Experimental configuration (paper vs reproduction)",
        headers=["Item", "Paper", "Reproduction"],
        rows=rows,
    )


@experiment("table2")
def table2() -> ExperimentResult:
    """Paper Table 2 — the TYPE 1 / TYPE 2 statistic definitions."""
    rows = [
        ["TYPE 1", "CP Time %",
         "fraction of the critical path inside hot critical sections of the lock"],
        ["TYPE 1", "Invocation # on CP", "invocations of the lock along the critical path"],
        ["TYPE 1", "Cont. Prob. on CP %",
         "contended fraction of the lock's invocations on the critical path"],
        ["TYPE 2", "Wait Time %", "avg fraction of thread time spent waiting for the lock"],
        ["TYPE 2", "Avg. Invo. #", "average invocations of the lock per thread"],
        ["TYPE 2", "Avg. Cont. Prob %", "contended fraction over all invocations"],
        ["TYPE 2", "Avg. Hold Time %", "avg fraction of thread time inside the lock's CSs"],
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Metric definitions (TYPE 1 = this paper, TYPE 2 = prior approaches)",
        headers=["Class", "Metric", "Meaning"],
        rows=rows,
    )
