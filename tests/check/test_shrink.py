"""Shrinker: minimizes while preserving the failure predicate."""

from repro.check.generator import generate_spec
from repro.check.shrink import shrink
from repro.check.spec import ProgramSpec, ThreadSpec


def _has_lock_on(spec: ProgramSpec, m: int) -> bool:
    return any(
        node["op"] == "lock" and node["m"] == m for _, _, node in spec.iter_ops()
    )


def test_shrinks_to_near_minimal():
    # Find a generated spec with a lock on some mutex, then minimize the
    # synthetic failure "spec still contains a lock op on that mutex".
    spec = target = None
    for seed in range(50):
        spec = generate_spec(seed)
        locks = [n["m"] for _, _, n in spec.iter_ops() if n["op"] == "lock"]
        if locks and spec.op_count() > 10:
            target = locks[0]
            break
    assert target is not None

    small, evals = shrink(spec, lambda s: _has_lock_on(s, target))
    assert _has_lock_on(small, target)       # failure preserved
    assert small.op_count() < spec.op_count()
    assert len(small.threads) == 1           # extra threads dropped
    assert small.op_count() <= 2             # the lock op (body emptied)
    assert evals > 0


def test_respects_eval_budget():
    spec = generate_spec(1)
    _, evals = shrink(spec, lambda s: True, max_evals=7)
    assert evals <= 7


def test_barrier_columns_stay_aligned():
    spec = ProgramSpec(
        seed=0,
        barrier_rounds=2,
        threads=[
            ThreadSpec(name="a", ops=[
                {"op": "compute", "dur": 1.0}, {"op": "barrier"},
                {"op": "compute", "dur": 1.0}, {"op": "barrier"},
            ]),
            ThreadSpec(name="b", ops=[
                {"op": "barrier"}, {"op": "barrier"},
            ]),
        ],
    )
    # Predicate: both threads still agree on the number of barrier ops
    # (the interpreter would deadlock otherwise) and one compute remains.
    def pred(s: ProgramSpec) -> bool:
        counts = {
            sum(1 for n in t.ops if n["op"] == "barrier") for t in s.threads
        }
        has_compute = any(n["op"] == "compute" for _, _, n in s.iter_ops())
        return len(counts) == 1 and has_compute

    small, _ = shrink(spec, pred)
    assert pred(small)
    assert small.barrier_rounds <= spec.barrier_rounds


def test_shrunk_spec_stays_serializable(tmp_path):
    spec = generate_spec(2)
    small, _ = shrink(spec, lambda s: s.op_count() > 0, max_evals=50)
    path = small.to_json(tmp_path / "small.json")
    assert ProgramSpec.from_json(path).to_dict() == small.to_dict()
