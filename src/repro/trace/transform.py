"""Trace transformations: time slicing and thread filtering.

Long traces are unwieldy; these utilities cut analyzable sub-traces:

* :func:`slice_time` keeps the events of a time window and *repairs the
  boundary*: synthetic THREAD_START/THREAD_EXIT bracket each thread's
  surviving events, critical sections open at the left edge get a
  synthetic ACQUIRE/OBTAIN at the window start, and sections still open
  at the right edge get a synthetic RELEASE at the window end — so the
  slice passes validation and the analyzer runs unchanged.
* :func:`filter_threads` keeps a thread subset (plus repairs), for
  zooming into one worker pool of a larger system.

Boundary repair keeps per-thread state consistent; cross-thread
dependencies whose waker fell outside the window degrade gracefully
(the wait collapses because its OBTAIN becomes uncontended).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

import numpy as np

from repro.errors import TraceError
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import Trace

__all__ = ["slice_time", "filter_threads", "demote_orphan_contention"]


def slice_time(trace: Trace, start: float, end: float) -> Trace:
    """Extract the [start, end] window as a standalone valid trace."""
    if end <= start:
        raise TraceError(f"empty slice window [{start}, {end}]")
    kept: list[Event] = [ev for ev in trace if start <= ev.time <= end]
    return _repair(trace, kept, start, end, trace.thread_ids)


def filter_threads(trace: Trace, tids: Iterable[int]) -> Trace:
    """Keep only the given threads' events (boundary-repaired)."""
    wanted = set(tids)
    unknown = wanted - set(trace.thread_ids)
    if unknown:
        raise TraceError(f"unknown thread ids: {sorted(unknown)}")
    kept = [ev for ev in trace if ev.tid in wanted]
    return _repair(trace, kept, trace.start_time, trace.end_time, sorted(wanted))


def _repair(
    trace: Trace,
    kept: list[Event],
    start: float,
    end: float,
    tids: Iterable[int],
) -> Trace:
    """Make a kept-event list structurally valid (see module docstring)."""
    events: list[Event] = []
    per_thread: dict[int, list[Event]] = defaultdict(list)
    for ev in kept:
        per_thread[ev.tid].append(ev)

    lock_ids = {
        info.obj
        for info in trace.objects.values()
        if info.kind in (ObjectKind.MUTEX, ObjectKind.SEMAPHORE, ObjectKind.RWLOCK)
    }
    barrier_cohorts: dict[tuple[int, int], int] = defaultdict(int)

    # Synthetic-event ordering: leading synths (THREAD_START, pre-window
    # acquisitions) must sort before every real event at the same time,
    # trailing synths (closing RELEASEs, THREAD_EXIT) after — real events
    # keep their original seq, so leading seqs are negative and trailing
    # seqs start past the trace's maximum.
    lead_seq = [-1_000_000_000]
    tail_seq = [int(trace.records["seq"][-1]) + 1 if len(trace) else 1]

    for tid in tids:
        evs = per_thread.get(tid, [])
        out: list[Event] = []
        held: list[tuple[int, int]] = []  # (obj, mode) stack
        # obj -> (rwlock mode, the ACQUIRE event itself); keeping the event
        # lets the dangling filter below remove exactly that instance.
        pending_acquire: dict[int, tuple[int, Event]] = {}
        # The thread exists for the window portion of its original life.
        o_start, o_end = trace.thread_span(tid)
        t_first = max(start, o_start)
        t_end = min(end, o_end)

        def synth(time, etype, obj=-1, arg=0, trailing=False):
            if trailing:
                tail_seq[0] += 1
                seq = tail_seq[0]
            else:
                lead_seq[0] += 1
                seq = lead_seq[0]
            out.append(Event(seq=seq, time=time, tid=tid, etype=etype, obj=obj, arg=arg))

        synth(t_first, EventType.THREAD_START)
        for ev in evs:
            et = ev.etype
            if et in (EventType.THREAD_START, EventType.THREAD_EXIT,
                      EventType.THREAD_CREATE, EventType.JOIN_BEGIN,
                      EventType.JOIN_END):
                # Lifecycle is resynthesized; joins/creates reference
                # threads that may be outside the slice: drop them.
                continue
            if ev.obj in lock_ids:
                if et == EventType.ACQUIRE:
                    pending_acquire[ev.obj] = (ev.arg, ev)
                    out.append(ev)
                    continue
                if et == EventType.OBTAIN:
                    if ev.obj in pending_acquire:
                        mode, _ = pending_acquire.pop(ev.obj)
                    else:
                        # The ACQUIRE fell before the window: synthesize it
                        # (leading), keeping the original OBTAIN so it stays
                        # ordered after the previous holder's RELEASE.
                        mode = 0
                        synth(ev.time, EventType.ACQUIRE, obj=ev.obj)
                    out.append(ev)
                    held.append((ev.obj, mode))
                    continue
                if et == EventType.RELEASE:
                    match = next(
                        (i for i in range(len(held) - 1, -1, -1)
                         if held[i][0] == ev.obj),
                        None,
                    )
                    if match is None:
                        # Hold opened before the window: synthesize the
                        # acquisition at the window start.
                        synth(t_first, EventType.ACQUIRE, obj=ev.obj, arg=ev.arg)
                        synth(t_first, EventType.OBTAIN, obj=ev.obj)
                        # Re-sort later puts these first (same time as start).
                    else:
                        held.pop(match)
                    out.append(ev)
                    continue
            if et in (EventType.BARRIER_ARRIVE, EventType.BARRIER_DEPART):
                barrier_cohorts[(ev.obj, ev.arg)] += 1
                out.append(ev)
                continue
            out.append(ev)
        # Close still-open holds and dangling acquires at the window end.
        t_last = max(t_end, max((e.time for e in out), default=t_end))
        for obj, mode in reversed(held):
            synth(t_last, EventType.RELEASE, obj=obj, arg=mode, trailing=True)
        # Dangling ACQUIREs (their OBTAIN fell past the window) are noise —
        # remove exactly those instances, not every ACQUIRE on the object.
        dangling = {id(acq_ev) for _, acq_ev in pending_acquire.values()}
        out = [e for e in out if id(e) not in dangling]
        synth(t_last, EventType.THREAD_EXIT, trailing=True)
        events.extend(out)

    # Drop barrier events whose cohort was cut in half (unmatched
    # arrivals/departures fail validation and carry no usable dependency).
    counts: dict[tuple[int, int, int], int] = defaultdict(int)  # (obj,gen,etype)
    for ev in events:
        if ev.etype in (EventType.BARRIER_ARRIVE, EventType.BARRIER_DEPART):
            counts[(ev.obj, ev.arg, int(ev.etype))] += 1
    events = [
        ev
        for ev in events
        if ev.etype not in (EventType.BARRIER_ARRIVE, EventType.BARRIER_DEPART)
        or counts[(ev.obj, ev.arg, int(EventType.BARRIER_ARRIVE))]
        == counts[(ev.obj, ev.arg, int(EventType.BARRIER_DEPART))]
    ]
    # Cond events: drop wakes whose block was cut (and vice versa).
    cond_ok: dict[tuple[int, int], int] = defaultdict(int)
    for ev in events:
        if ev.etype == EventType.COND_BLOCK:
            cond_ok[(ev.obj, ev.tid)] += 1
    events = [
        ev
        for ev in events
        if ev.etype != EventType.COND_WAKE or cond_ok[(ev.obj, ev.tid)] > 0
    ]

    # A contended OBTAIN whose releasing predecessor fell outside the
    # window has no resolvable waker: demote it to uncontended (the wait
    # context is gone along with the waker).
    events.sort(key=lambda ev: (ev.time, ev.seq))
    released: set[int] = set()
    for i, ev in enumerate(events):
        if ev.etype == EventType.RELEASE:
            released.add(ev.obj)
        elif ev.etype == EventType.OBTAIN and ev.arg and ev.obj not in released:
            events[i] = Event(
                seq=ev.seq, time=ev.time, tid=ev.tid,
                etype=EventType.OBTAIN, obj=ev.obj, arg=0,
            )

    meta = dict(trace.meta)
    meta["sliced_from"] = [trace.start_time, trace.end_time]
    meta["slice_window"] = [start, end]
    return Trace.from_events(
        events, objects=trace.objects, threads=trace.threads, meta=meta
    )


def demote_orphan_contention(trace: Trace) -> tuple[Trace, int]:
    """Demote contended OBTAINs with no surviving prior RELEASE to arg=0.

    Sampled captures (:mod:`repro.sampling`) and imported foreign dumps
    (:mod:`repro.trace.importers`) can contain a contended OBTAIN whose
    waking RELEASE was dropped or never recorded; waker resolution would
    fail on it.  As in :func:`slice_time`'s boundary repair, the wait
    context is gone along with the waker, so the acquisition is demoted
    to uncontended.  Returns ``(trace, number_of_demotions)``; the input
    trace is returned unchanged when nothing needs repair.
    """
    records = trace.records
    etype = records["etype"]
    lock_objs = {info.obj for info in trace.objects.values() if info.kind.is_lock_like}
    released: set[int] = set()
    demote: list[int] = []
    candidates = (etype == int(EventType.OBTAIN)) | (etype == int(EventType.RELEASE))
    for i in np.flatnonzero(candidates):
        obj = int(records["obj"][i])
        if obj not in lock_objs:
            continue
        if etype[i] == int(EventType.RELEASE):
            released.add(obj)
        elif records["arg"][i] and obj not in released:
            demote.append(int(i))
    if not demote:
        return trace, 0
    repaired = records.copy()
    repaired["arg"][demote] = 0
    return (
        Trace(
            records=repaired,
            objects=dict(trace.objects),
            threads=dict(trace.threads),
            meta=dict(trace.meta),
        ),
        len(demote),
    )
