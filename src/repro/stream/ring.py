"""Bounded event ring between instrumented threads and the flusher.

The producer side is the application's own threads calling
:meth:`~repro.instrument.session.ProfilingSession.emit`; perturbing them
is exactly what a tracing tool must not do, so :meth:`EventRing.push`
never blocks: when the ring is full the event is *dropped and counted*.
The drop count is part of the ring's public accounting — a lossy stream
that knows its loss is diagnosable, a silently lossy one is a lie.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.trace.events import Event

__all__ = ["EventRing"]


class EventRing:
    """Fixed-capacity MPSC buffer of :class:`Event` with drop accounting."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buf: deque[Event] = deque()
        self._lock = threading.Lock()
        self.pushed = 0
        self.dropped = 0

    def push(self, event: Event) -> bool:
        """Append one event; returns ``False`` (and counts) when full."""
        with self._lock:
            if len(self._buf) >= self.capacity:
                self.dropped += 1
                return False
            self._buf.append(event)
            self.pushed += 1
            return True

    def drain(self, max_events: int | None = None) -> list[Event]:
        """Pop up to ``max_events`` (default: everything) in push order."""
        with self._lock:
            if max_events is None or max_events >= len(self._buf):
                out = list(self._buf)
                self._buf.clear()
            else:
                out = [self._buf.popleft() for _ in range(max_events)]
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": len(self._buf),
                "pushed": self.pushed,
                "dropped": self.dropped,
            }
