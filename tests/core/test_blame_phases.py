"""Blame baseline and barrier-phase analysis."""

import pytest

from repro.core.analyzer import analyze
from repro.core.blame import compute_blame
from repro.core.phases import split_phases
from repro.sim import Program
from repro.workloads import MicroBenchmark

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


class TestBlame:
    def test_baseline_picks_the_wrong_lock(self, micro_analysis):
        """The paper's core claim: idleness ranks L1 first; CP says L2."""
        blame = compute_blame(micro_analysis)
        assert blame.ranking()[0] == "L1"
        assert micro_analysis.report.top_locks(1)[0].name == "L2"

    def test_idle_totals(self, micro_analysis):
        blame = compute_blame(micro_analysis)
        assert blame.lock("L1").total_idle == pytest.approx(12.0)  # 2+4+6
        assert blame.lock("L2").total_idle == pytest.approx(3.0)  # .5+1+1.5

    def test_holder_attribution(self, micro_analysis):
        # L1's idleness is charged to the previous holders (workers 0..2).
        blame = compute_blame(micro_analysis).lock("L1")
        assert blame.holder_blame == pytest.approx({0: 2.0, 1: 4.0, 2: 6.0})
        assert blame.top_blamed_holder() == 2

    def test_uncontended_lock_zero_blame(self):
        prog = Program()
        lock = prog.mutex("quiet")

        def body(env):
            yield env.acquire(lock)
            yield env.compute(1.0)
            yield env.release(lock)

        prog.spawn(body)
        blame = compute_blame(analyze(prog.run().trace))
        assert blame.lock("quiet").total_idle == 0.0
        assert blame.lock("quiet").top_blamed_holder() is None

    def test_render(self, micro_analysis):
        text = compute_blame(micro_analysis).render(
            thread_names=micro_analysis.trace.threads
        )
        assert "Idleness-blame" in text
        assert "worker-2" in text


class TestPhases:
    def make_phased_program(self):
        prog = Program()
        a = prog.mutex("phase1_lock")
        b = prog.mutex("phase2_lock")
        bar = prog.barrier(3, "bar")

        def body(env, i):
            yield env.acquire(a)
            yield env.compute(1.0)
            yield env.release(a)
            yield env.barrier_wait(bar)
            yield env.acquire(b)
            yield env.compute(0.5)
            yield env.release(b)

        prog.spawn_workers(3, body)
        return prog.run()

    def test_phase_split_and_dominance(self):
        analysis = analyze(self.make_phased_program().trace)
        report = split_phases(analysis)
        assert len(report.phases) == 2
        assert report.phases[0].dominant_lock() == "phase1_lock"
        assert report.phases[1].dominant_lock() == "phase2_lock"

    def test_phases_tile_duration(self):
        result = self.make_phased_program()
        report = split_phases(analyze(result.trace))
        total = sum(p.duration for p in report.phases)
        assert total == pytest.approx(result.completion_time)
        assert report.phases[0].start == 0.0
        assert report.phases[-1].end == pytest.approx(result.completion_time)

    def test_no_barriers_single_phase(self, micro_analysis):
        report = split_phases(micro_analysis)
        assert len(report.phases) == 1
        assert report.phases[0].dominant_lock() == "L2"

    def test_partial_barrier_not_a_boundary(self):
        # A barrier only half the threads use must not split the run.
        prog = Program()
        bar = prog.barrier(2, "pair")

        def pair(env, i):
            yield env.compute(1.0)
            yield env.barrier_wait(bar)
            yield env.compute(1.0)

        def loner(env):
            yield env.compute(3.0)

        prog.spawn_workers(2, pair)
        prog.spawn(loner)
        report = split_phases(analyze(prog.run().trace))
        assert len(report.phases) == 1

    def test_render(self):
        analysis = analyze(self.make_phased_program().trace)
        text = split_phases(analysis).render()
        assert "Barrier-phase" in text
        assert "phase1_lock" in text
