"""Per-thread drill-down of a critical lock.

The paper's tables aggregate per lock; once a critical lock is known,
the natural next question is *whose* invocations sit on the critical
path — a skewed distribution points at one thread's usage pattern (a
producer enqueuing everything, a master doing the stealing) rather than
the lock itself.  This module splits a lock's TYPE 1 statistics per
thread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisResult
from repro.core.metrics import _hold_cp_overlap
from repro.core.whatif import resolve_lock
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["ThreadLockShare", "LockAttribution", "attribute_lock"]


@dataclass(frozen=True)
class ThreadLockShare:
    """One thread's contribution to a lock's critical-path presence."""

    tid: int
    thread_name: str
    invocations: int
    invocations_on_cp: int
    contended_on_cp: int
    hold_time: float
    cp_hold_time: float

    @property
    def cont_prob_on_cp(self) -> float:
        if self.invocations_on_cp == 0:
            return 0.0
        return self.contended_on_cp / self.invocations_on_cp


@dataclass(frozen=True)
class LockAttribution:
    """Per-thread breakdown of one lock's TYPE 1 statistics."""

    lock_name: str
    cp_length: float
    shares: list[ThreadLockShare]  # sorted by CP hold time, largest first

    @property
    def total_cp_hold(self) -> float:
        return sum(s.cp_hold_time for s in self.shares)

    def dominant_thread(self) -> ThreadLockShare | None:
        return self.shares[0] if self.shares and self.shares[0].cp_hold_time > 0 else None

    def concentration(self) -> float:
        """Fraction of the lock's on-path time owned by its top thread."""
        total = self.total_cp_hold
        if total <= 0:
            return 0.0
        return self.shares[0].cp_hold_time / total

    def render(self, n: int = 10) -> str:
        rows = [
            [
                s.thread_name,
                s.invocations,
                s.invocations_on_cp,
                format_percent(s.cont_prob_on_cp),
                format_percent(s.cp_hold_time / self.cp_length if self.cp_length else 0),
            ]
            for s in self.shares[:n]
        ]
        return format_table(
            ["Thread", "Invocations", "On CP", "Cont. on CP", "CP Time %"],
            rows,
            title=f"Per-thread attribution of {self.lock_name}",
        )


def attribute_lock(analysis: AnalysisResult, lock: int | str) -> LockAttribution:
    """Split a lock's critical-path statistics per thread."""
    obj = resolve_lock(analysis.trace, lock)
    cp = analysis.critical_path
    cp_length = cp.length
    pieces_by_tid = cp.pieces_by_thread()
    for plist in pieces_by_tid.values():
        plist.sort(key=lambda p: (p.start, p.end))
    shares = []
    for tid, tl in analysis.timelines.items():
        holds = tl.holds.get(obj, [])
        if not holds:
            continue
        pieces = pieces_by_tid.get(tid, [])
        overlap, on_cp, contended = (
            _hold_cp_overlap(holds, pieces) if pieces else (0.0, 0, 0)
        )
        shares.append(
            ThreadLockShare(
                tid=tid,
                thread_name=tl.name,
                invocations=len(holds),
                invocations_on_cp=on_cp,
                contended_on_cp=contended,
                hold_time=sum(h.duration for h in holds),
                cp_hold_time=overlap,
            )
        )
    shares.sort(key=lambda s: s.cp_hold_time, reverse=True)
    return LockAttribution(
        lock_name=analysis.trace.object_name(obj),
        cp_length=cp_length,
        shares=shares,
    )
