"""Statistical critical-lock analysis of sampled traces.

A trace captured at sampling rate ``r`` (:mod:`repro.sampling`) contains
each lock invocation independently with probability ``r``; everything
else — thread lifecycle, barriers, condition variables — is complete.
This module reconstructs the critical-lock ranking from such a trace:

1. **Repair**: a kept contended OBTAIN whose waking RELEASE was sampled
   out has no resolvable waker; it is demoted to uncontended
   (:func:`repro.trace.transform.demote_orphan_contention`), exactly the
   degradation rule trace slicing already uses.
2. **Exact analysis of the sample**: the repaired trace is a valid trace,
   so the exact engine runs unchanged — backward walk, pieces, per-hold
   critical-path overlaps.
3. **Inverse-probability weighting** (Horvitz–Thompson): a unit of lock
   ``L`` survives with probability ``r`` by hash, plus — because the
   sampler retains the waker unit behind every kept contended wait —
   ``(1-r)·r·c`` by retention, where ``c`` is the lock's contention
   probability.  The estimator inverts the *effective* rate
   ``r_eff = r + (1-r)·r·ĉ`` (``ĉ`` estimated from the sample's OBTAIN
   flags before repair), scaling the sampled CP-overlap sum and the
   invocation/wait/hold totals by ``1/r_eff``.
4. **Bootstrap confidence intervals**: invocations are resampled with
   replacement ``B`` times; the percentile interval is widened by a
   bias guard proportional to ``1 - r`` because the critical path of the
   *sample* systematically differs from the critical path of the full
   execution (dropped waits reroute the walk).  Fewer than four surviving
   invocations yield the full-ignorance interval ``[0, 1]`` — too little
   data for an interval claim (the point estimate still ranks).

At ``rate=1.0`` the sample *is* the full trace: the point estimates
reproduce the exact engine's ``cp_fraction`` bit for bit (the per-hold
overlap sweep replicates :func:`repro.core.metrics.compute_metrics`'s
accumulation order) and the interval collapses to a point.

Honesty of the (estimator, sampler) pair is cross-validated against the
exact engine by :mod:`repro.sampling.crossval`, the ``sample-coverage``
oracle invariant and the golden sampled-report tests; the math and its
failure modes are documented in ``docs/sampling.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.analyzer import analyze
from repro.core.model import CPPiece, HoldInterval
from repro.errors import AnalysisError
from repro.tables import format_table
from repro.trace.events import EventType, ObjectKind
from repro.trace.trace import Trace
from repro.trace.transform import demote_orphan_contention
from repro.units import format_duration, format_percent

__all__ = ["LockEstimate", "EstimatedReport", "estimate_report"]

#: Minimum half-width (at rate -> 0) of the bias guard, in cp_fraction.
_GUARD_FLOOR = 0.02
#: Bias-guard proportionality to the point estimate (see docs/sampling.md).
_GUARD_SCALE = 0.35
#: Below this many surviving invocations the bootstrap sees essentially no
#: variance and the interval degenerates to the point: report the
#: full-ignorance interval instead (the point estimate still ranks).
_MIN_UNITS = 4


@dataclass(frozen=True)
class LockEstimate:
    """Estimated TYPE 1 + TYPE 2 statistics for one lock."""

    obj: int
    name: str
    kind: ObjectKind
    #: invocations of this lock surviving in the sample
    units: int
    contended_units: int
    #: Horvitz–Thompson point estimates
    cp_fraction: float
    cp_hold_time: float
    est_invocations: float
    est_wait_time: float
    est_hold_time: float
    #: percentile-bootstrap interval on ``cp_fraction`` (guard-widened)
    ci_low: float
    ci_high: float

    @property
    def est_cont_prob(self) -> float:
        """Estimated contention probability (sample proportion)."""
        if self.units == 0:
            return 0.0
        return self.contended_units / self.units

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low


@dataclass
class EstimatedReport:
    """Statistical counterpart of :class:`repro.core.report.AnalysisReport`.

    Renders alongside the exact report (same table idiom, explicitly
    labelled as estimates with their confidence intervals).
    """

    name: str
    nthreads: int
    duration: float
    rate: float
    seed: int
    strategy: str
    confidence: float
    bootstrap: int
    events: int
    demoted: int
    locks: dict[int, LockEstimate] = field(default_factory=dict)

    # -- queries -------------------------------------------------------------

    def lock(self, name: str) -> LockEstimate:
        """Look up one lock's estimates by display name."""
        for e in self.locks.values():
            if e.name == name:
                return e
        known = ", ".join(sorted(e.name for e in self.locks.values()))
        raise AnalysisError(f"no lock named {name!r}; locks in trace: {known}")

    def top_locks(self, n: int | None = None) -> list[LockEstimate]:
        """Locks ranked by estimated CP Time %."""
        ranked = sorted(self.locks.values(), key=lambda e: e.cp_fraction, reverse=True)
        return ranked if n is None else ranked[:n]

    @property
    def critical_locks(self) -> list[LockEstimate]:
        """Locks with a positive estimated critical-path share."""
        return [e for e in self.top_locks() if e.cp_fraction > 0]

    @property
    def sampled_units(self) -> int:
        return sum(e.units for e in self.locks.values())

    # -- rendering -----------------------------------------------------------

    def render_summary(self) -> str:
        lines = [
            f"statistical critical lock estimate: {self.name or '(unnamed)'}",
            f"  threads: {self.nthreads}   completion time: {format_duration(self.duration)}",
            f"  sampling: {self.strategy} rate={format_percent(self.rate)} "
            f"seed={self.seed}   events kept: {self.events}   "
            f"lock invocations kept: {self.sampled_units}"
            + (f"   demoted waits: {self.demoted}" if self.demoted else ""),
            f"  estimator: inverse-probability weighting, percentile bootstrap "
            f"(B={self.bootstrap}), {format_percent(self.confidence, 0)} CI",
        ]
        return "\n".join(lines)

    def render_table(self, n: int | None = None) -> str:
        """Estimated TYPE 1 table with confidence intervals."""
        ci_label = f"{format_percent(self.confidence, 0)} CI"
        rows = [
            [
                e.name,
                format_percent(e.cp_fraction),
                f"[{format_percent(e.ci_low)}, {format_percent(e.ci_high)}]",
                e.units,
                f"{e.est_invocations:.1f}",
                format_percent(e.est_cont_prob),
            ]
            for e in self.top_locks(n)
        ]
        return format_table(
            ["Lock", "CP Time % (est)", ci_label, "Units", "Invo. # (est)",
             "Cont. Prob % (est)"],
            rows,
            title="ESTIMATED TYPE 1 — critical lock statistics (sampled)",
        )

    def render(self, n: int | None = 10) -> str:
        """Full estimated report: summary + TYPE 1 estimates."""
        return "\n\n".join([self.render_summary(), self.render_table(n)])

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump of every estimate."""
        return {
            "name": self.name,
            "nthreads": self.nthreads,
            "duration": self.duration,
            "sampling": {
                "strategy": self.strategy,
                "rate": self.rate,
                "seed": self.seed,
            },
            "estimator": {
                "confidence": self.confidence,
                "bootstrap": self.bootstrap,
                "events": self.events,
                "units": self.sampled_units,
                "demoted_waits": self.demoted,
            },
            "locks": {
                e.name: {
                    "cp_time_frac": e.cp_fraction,
                    "ci_low": e.ci_low,
                    "ci_high": e.ci_high,
                    "units": e.units,
                    "contended_units": e.contended_units,
                    "est_invocations": e.est_invocations,
                    "est_cont_prob": e.est_cont_prob,
                    "est_wait_time": e.est_wait_time,
                    "est_hold_time": e.est_hold_time,
                }
                for e in self.locks.values()
            },
        }


def _per_hold_overlaps(
    holds: list[HoldInterval], pieces: list[CPPiece]
) -> tuple[list[float], float]:
    """Per-hold CP overlap values and their sum.

    Mirrors :func:`repro.core.metrics._hold_cp_overlap`'s two-pointer
    sweep *and accumulation order*, so at rate=1.0 the summed values
    reproduce the exact engine's ``cp_hold_time`` bit for bit.
    """
    values: list[float] = []
    total = 0.0
    pi = 0
    for h in holds:
        h_overlap = 0.0
        while pi < len(pieces) and pieces[pi].end < h.start:
            pi += 1
        pj = pi
        while pj < len(pieces) and pieces[pj].start <= h.end:
            p = pieces[pj]
            h_overlap += max(0.0, min(h.end, p.end) - max(h.start, p.start))
            pj += 1
        total += h_overlap
        values.append(h_overlap)
    return values, total


def estimate_report(
    trace: Trace,
    rate: float | None = None,
    seed: int | None = None,
    *,
    confidence: float = 0.9,
    bootstrap: int = 200,
    engine: str = "columnar",
) -> EstimatedReport:
    """Estimate the critical-lock ranking of the *full* execution.

    ``trace`` is a sampled capture; ``rate``/``seed`` default to its
    ``meta["sampling"]`` header.  See the module docstring for the
    estimator; ``confidence`` sets the bootstrap interval's nominal
    coverage and ``bootstrap`` the number of resamples.
    """
    info = trace.meta.get("sampling")
    if rate is None:
        if not isinstance(info, dict) or "rate" not in info:
            raise AnalysisError(
                "trace carries no sampling metadata; pass rate= explicitly or "
                "sample it first (repro.sampling.downsample_trace)"
            )
        rate = float(info["rate"])
    rate = float(rate)
    if not 0.0 < rate <= 1.0:
        raise AnalysisError(f"sampling rate must be in (0, 1], got {rate}")
    if seed is None:
        seed = int(info["seed"]) if isinstance(info, dict) and "seed" in info else 0
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    strategy = (
        str(info.get("strategy", "unit-hash")) if isinstance(info, dict) else "unit-hash"
    )

    repaired, demoted = demote_orphan_contention(trace)
    result = analyze(repaired, validate=False, engine=engine)
    cp = result.critical_path
    timelines = result.timelines
    cp_length = cp.length
    pieces_by_thread = cp.pieces_by_thread()
    for plist in pieces_by_thread.values():
        plist.sort(key=lambda p: (p.start, p.end))

    # Per-lock contention observed in the sample *before* repair (repair
    # demotes exactly the contended flags whose waker is missing, which
    # would bias the effective-rate correction toward zero).
    obtains = trace.records[trace.records["etype"] == int(EventType.OBTAIN)]
    n_obt: dict[int, int] = {}
    n_cont: dict[int, int] = {}
    for o, a in zip(obtains["obj"], obtains["arg"]):
        o = int(o)
        n_obt[o] = n_obt.get(o, 0) + 1
        if a:
            n_cont[o] = n_cont.get(o, 0) + 1

    exact = rate >= 1.0
    alpha = 1.0 - confidence
    locks: dict[int, LockEstimate] = {}
    for lock_info in repaired.locks:
        obj = lock_info.obj
        cp_hold = 0.0
        per_unit: list[float] = []
        per_unit_wait: list[float] = []
        units = 0
        contended = 0
        hold_time = 0.0
        wait_time = 0.0
        for tid in sorted(timelines):
            tl = timelines[tid]
            holds = tl.holds.get(obj, [])
            units += len(holds)
            contended += sum(1 for h in holds if h.contended)
            hold_time += sum(h.duration for h in holds)
            wait_time += sum(h.wait for h in holds)
            per_unit_wait.extend(h.wait for h in holds)
            pieces = pieces_by_thread.get(tid)
            if pieces and holds:
                values, total = _per_hold_overlaps(holds, pieces)
                cp_hold += total
                per_unit.extend(values)
            else:
                per_unit.extend(0.0 for _ in holds)

        # Effective inclusion rate of this lock's units: hash + retention.
        c_hat = n_cont.get(obj, 0) / n_obt[obj] if n_obt.get(obj) else 0.0
        r_eff = min(1.0, rate + (1.0 - rate) * rate * c_hat)
        scale = 1.0 / r_eff
        walk_point = cp_hold * scale / cp_length if cp_length > 0 else 0.0
        # Wait-chain estimate: the ACQUIRE->OBTAIN gap of each surviving
        # unit is time the execution was serialized behind this lock —
        # while a thread waits, the critical path of that span runs inside
        # the holder's critical section.  Unlike the walk estimate it does
        # not depend on the sampled trace's (rerouted) backward walk, so
        # at low rates it recovers hot locks the walk misses; with deep
        # waiter queues it overcounts, which only pushes the interval's
        # upper end out.  The point is the larger of the two estimates.
        wait_point = (
            min(sum(per_unit_wait) * scale / cp_length, 1.0) if cp_length > 0 else 0.0
        )
        walk_point = min(walk_point, 1.0)
        point = max(walk_point, wait_point)
        if exact:
            # The sample is the full trace: exact value, degenerate CI.
            point = cp_hold / cp_length if cp_length > 0 else 0.0
            lo = hi = point
        elif units < _MIN_UNITS:
            # Too few (or no) invocations survived: the sample supports no
            # interval claim at all (the point estimate still ranks).
            lo, hi = 0.0, 1.0 if cp_length > 0 else 0.0
        else:
            vals = np.asarray(per_unit, dtype=np.float64)
            waits = np.asarray(per_unit_wait, dtype=np.float64)
            # Deterministic per (sampling seed, lock): resamples are
            # reproducible for pinned golden renders and repro replays.
            rng = np.random.default_rng([abs(int(seed)), obj, len(vals), bootstrap])
            resamples = rng.integers(0, len(vals), size=(bootstrap, len(vals)))
            if cp_length > 0:
                walk_reps = vals[resamples].sum(axis=1) * scale / cp_length
                wait_reps = waits[resamples].sum(axis=1) * scale / cp_length
            else:
                walk_reps = wait_reps = np.zeros(bootstrap)
            # The walk estimate is biased *down* (dropped waits reroute the
            # backward walk off this lock's holds), the wait estimate *up*
            # (queued waiters overcount): the interval takes its low end
            # from the former and its high end from their maximum.
            lo = float(np.quantile(walk_reps, alpha / 2.0))
            hi = float(np.quantile(np.maximum(walk_reps, wait_reps), 1.0 - alpha / 2.0))
            # Bias guard: the sample's critical path is not the full
            # execution's; widen proportionally to the unsampled mass.
            guard = (1.0 - rate) * max(_GUARD_SCALE * point, _GUARD_FLOOR)
            lo = min(lo, walk_point) - guard
            hi = max(hi, point) + guard
        lo = min(max(lo, 0.0), 1.0)
        hi = min(max(hi, 0.0), 1.0)
        point = min(max(point, 0.0), 1.0)
        locks[obj] = LockEstimate(
            obj=obj,
            name=lock_info.display_name,
            kind=lock_info.kind,
            units=units,
            contended_units=contended,
            cp_fraction=point,
            cp_hold_time=cp_hold if exact else cp_hold * scale,
            est_invocations=float(units) if exact else units * scale,
            est_wait_time=wait_time if exact else wait_time * scale,
            est_hold_time=hold_time if exact else hold_time * scale,
            ci_low=lo,
            ci_high=hi,
        )

    return EstimatedReport(
        name=trace.meta.get("name", ""),
        nthreads=len(timelines),
        duration=trace.duration,
        rate=rate,
        seed=int(seed),
        strategy=strategy,
        confidence=confidence,
        bootstrap=int(bootstrap),
        events=len(trace),
        demoted=demoted,
        locks=locks,
    )
