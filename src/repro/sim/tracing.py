"""Trace collection from the simulator.

The simulator emits exactly the event stream the paper's instrumentation
module records at its ``MAGIC()`` points (Fig. 4): acquire / obtain (with
the contended flag the trylock-first protocol would detect) / release,
barrier arrive/depart, condition block/wake/signal, and the thread
lifecycle events.  The collector buffers rows in columnar Python lists and
packs them into the numpy record block once at the end of the run.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.trace.events import NO_OBJECT, EventType, ObjectKind
from repro.trace.schema import EVENT_DTYPE
from repro.trace.trace import ObjectInfo, Trace

__all__ = ["TraceCollector"]


class TraceCollector:
    """Accumulates synchronization events during a simulation run."""

    def __init__(self) -> None:
        self._seq = 0
        self._times: list[float] = []
        self._tids: list[int] = []
        self._etypes: list[int] = []
        self._objs: list[int] = []
        self._args: list[int] = []
        self._objects: dict[int, ObjectInfo] = {}
        self._threads: dict[int, str] = {}
        self._next_obj = 0

    # -- registration -------------------------------------------------------

    def register_object(self, kind: ObjectKind, name: str) -> int:
        """Assign a trace id to a new synchronization object."""
        obj = self._next_obj
        self._next_obj += 1
        self._objects[obj] = ObjectInfo(obj=obj, kind=kind, name=name)
        return obj

    def register_thread(self, tid: int, name: str) -> None:
        self._threads[tid] = name

    # -- emission -------------------------------------------------------------

    def emit(
        self, time: float, tid: int, etype: EventType, obj: int = NO_OBJECT, arg: int = 0
    ) -> None:
        """Record one event; calls must come in causal (time-ordered) order."""
        self._seq += 1
        self._times.append(time)
        self._tids.append(tid)
        self._etypes.append(int(etype))
        self._objs.append(obj)
        self._args.append(arg)

    def __len__(self) -> int:
        return self._seq

    # -- finalization -------------------------------------------------------------

    def build(self, meta: dict[str, Any] | None = None) -> Trace:
        """Pack the buffered events into an immutable :class:`Trace`."""
        n = len(self._times)
        records = np.empty(n, dtype=EVENT_DTYPE)
        records["seq"] = np.arange(n, dtype=np.uint64)
        records["time"] = self._times
        records["tid"] = self._tids
        records["etype"] = self._etypes
        records["obj"] = self._objs
        records["arg"] = self._args
        return Trace(
            records=records,
            objects=dict(self._objects),
            threads=dict(self._threads),
            meta=dict(meta or {}),
        )
