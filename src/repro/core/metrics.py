"""Quantitative performance metrics (paper Table 2 and §III.B).

TYPE 1 — along the critical path (this paper's contribution):

* ``cp_fraction`` ("CP Time %"): fraction of the critical path occupied
  by hot critical sections protected by the lock;
* ``invocations_on_cp`` ("Invocation # on CP");
* ``cont_prob_on_cp`` ("Cont. Prob. on CP %"): of the invocations on the
  critical path, the fraction whose acquisition blocked;
* ``invocation_increase`` ("Incr. Times of Invo. #"): invocations on the
  critical path vs the per-thread average — the amplification a
  contended lock suffers on the path (paper Fig. 10);
* ``size_increase`` ("Incr. Times of Critical Section Size"): CP Time %
  vs the average per-thread hold fraction (paper Fig. 11).

TYPE 2 — classical per-lock statistics used by prior tools:

* ``avg_wait_fraction`` ("Wait Time %"): average over threads of the
  fraction of the thread's lifetime spent waiting for the lock;
* ``avg_invocations`` ("Avg. Invo. #") per thread;
* ``avg_cont_prob`` ("Avg. Cont. Prob %") over all invocations;
* ``avg_hold_fraction`` ("Avg. Hold Time %").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.critical_path import CriticalPath
from repro.core.model import CPPiece, HoldInterval, ThreadTimeline, WaitKind
from repro.trace.events import ObjectKind
from repro.trace.trace import Trace

__all__ = ["LockMetrics", "ThreadStats", "compute_metrics", "compute_thread_stats"]


@dataclass(frozen=True)
class LockMetrics:
    """TYPE 1 + TYPE 2 statistics for one lock (see module docstring)."""

    obj: int
    name: str
    kind: ObjectKind
    # TYPE 1 — critical path statistics
    cp_hold_time: float
    cp_fraction: float
    invocations_on_cp: int
    contended_on_cp: int
    invocation_increase: float
    size_increase: float
    cp_crossings: int  # times the critical path jumped threads via this lock
    # TYPE 2 — classical statistics
    total_invocations: int
    contended_invocations: int
    avg_invocations: float
    total_wait_time: float
    avg_wait_fraction: float
    total_hold_time: float
    avg_hold_fraction: float

    @property
    def cont_prob_on_cp(self) -> float:
        """Contention probability of this lock along the critical path."""
        if self.invocations_on_cp == 0:
            return 0.0
        return self.contended_on_cp / self.invocations_on_cp

    @property
    def avg_cont_prob(self) -> float:
        """Overall contention probability across all invocations."""
        if self.total_invocations == 0:
            return 0.0
        return self.contended_invocations / self.total_invocations

    @property
    def is_critical(self) -> bool:
        """Whether this is a critical lock (appears on the critical path)."""
        return self.invocations_on_cp > 0


@dataclass(frozen=True)
class ThreadStats:
    """Per-thread execution/blocking breakdown (extra diagnostics)."""

    tid: int
    name: str
    lifetime: float
    exec_time: float
    lock_wait: float
    barrier_wait: float
    cond_wait: float
    join_wait: float
    cp_time: float  # time this thread spent on the critical path

    @property
    def total_wait(self) -> float:
        return self.lock_wait + self.barrier_wait + self.cond_wait + self.join_wait


def _hold_cp_overlap(
    holds: list[HoldInterval], pieces: list[CPPiece]
) -> tuple[float, int, int]:
    """(overlap time, invocations on CP, contended invocations on CP).

    ``holds`` and ``pieces`` both belong to one thread and are sorted and
    pairwise disjoint, so a two-pointer sweep suffices.  A hold counts as
    "on the critical path" if it overlaps a piece for positive time, or —
    for zero-length holds — if it lies inside a piece.
    """
    total = 0.0
    on_cp = 0
    contended = 0
    pi = 0
    for h in holds:
        h_overlap = 0.0
        inside = False
        while pi < len(pieces) and pieces[pi].end < h.start:
            pi += 1
        pj = pi
        while pj < len(pieces) and pieces[pj].start <= h.end:
            p = pieces[pj]
            h_overlap += max(0.0, min(h.end, p.end) - max(h.start, p.start))
            if h.duration == 0 and p.start <= h.start <= p.end:
                inside = True
            pj += 1
        total += h_overlap
        if h_overlap > 0 or (h.duration == 0 and inside):
            on_cp += 1
            if h.contended:
                contended += 1
    return total, on_cp, contended


def compute_metrics(
    trace: Trace,
    timelines: dict[int, ThreadTimeline],
    cp: CriticalPath,
) -> dict[int, LockMetrics]:
    """Compute :class:`LockMetrics` for every lock-like object in the trace."""
    nthreads = max(1, len(timelines))
    cp_length = cp.length
    pieces_by_thread = cp.pieces_by_thread()
    for plist in pieces_by_thread.values():
        plist.sort(key=lambda p: (p.start, p.end))

    out: dict[int, LockMetrics] = {}
    for info in trace.locks:
        obj = info.obj
        cp_hold = 0.0
        inv_on_cp = 0
        cont_on_cp = 0
        total_inv = 0
        cont_inv = 0
        total_wait = 0.0
        total_hold = 0.0
        wait_fracs = 0.0
        hold_fracs = 0.0
        for tid, tl in timelines.items():
            holds = tl.holds.get(obj, [])
            t_hold = sum(h.duration for h in holds)
            t_wait = sum(h.wait for h in holds)
            total_inv += len(holds)
            cont_inv += sum(1 for h in holds if h.contended)
            total_hold += t_hold
            total_wait += t_wait
            if tl.lifetime > 0:
                wait_fracs += t_wait / tl.lifetime
                hold_fracs += t_hold / tl.lifetime
            pieces = pieces_by_thread.get(tid)
            if pieces and holds:
                o, n, c = _hold_cp_overlap(holds, pieces)
                cp_hold += o
                inv_on_cp += n
                cont_on_cp += c
        avg_inv = total_inv / nthreads
        avg_hold_frac = hold_fracs / nthreads
        cp_frac = cp_hold / cp_length if cp_length > 0 else 0.0
        out[obj] = LockMetrics(
            obj=obj,
            name=info.display_name,
            kind=info.kind,
            cp_hold_time=cp_hold,
            cp_fraction=cp_frac,
            invocations_on_cp=inv_on_cp,
            contended_on_cp=cont_on_cp,
            invocation_increase=(inv_on_cp / avg_inv) if avg_inv > 0 else 0.0,
            size_increase=(cp_frac / avg_hold_frac) if avg_hold_frac > 0 else 0.0,
            cp_crossings=cp.junction_count(obj, WaitKind.LOCK),
            total_invocations=total_inv,
            contended_invocations=cont_inv,
            avg_invocations=avg_inv,
            total_wait_time=total_wait,
            avg_wait_fraction=wait_fracs / nthreads,
            total_hold_time=total_hold,
            avg_hold_fraction=avg_hold_frac,
        )
    return out


def compute_thread_stats(
    timelines: dict[int, ThreadTimeline], cp: CriticalPath
) -> list[ThreadStats]:
    """Per-thread breakdown: execution vs each kind of blocking, CP share."""
    cp_by_tid: dict[int, float] = {}
    for p in cp.pieces:
        cp_by_tid[p.tid] = cp_by_tid.get(p.tid, 0.0) + p.duration
    stats = []
    for tid, tl in sorted(timelines.items()):
        by_kind = tl.wait_time_by_kind()
        total_wait = sum(by_kind.values())
        stats.append(
            ThreadStats(
                tid=tid,
                name=tl.name,
                lifetime=tl.lifetime,
                exec_time=tl.lifetime - total_wait,
                lock_wait=by_kind.get(WaitKind.LOCK, 0.0),
                barrier_wait=by_kind.get(WaitKind.BARRIER, 0.0),
                cond_wait=by_kind.get(WaitKind.CONDITION, 0.0),
                join_wait=by_kind.get(WaitKind.JOIN, 0.0),
                cp_time=cp_by_tid.get(tid, 0.0),
            )
        )
    return stats
