"""Live trace streaming: ring buffer, flusher, sinks, and tail-follow.

The batch pipeline (:mod:`repro.instrument` -> ``.clt`` file ->
:mod:`repro.core`) only speaks after the program exits.  This package is
the runtime half of the streaming story:

* :class:`EventRing` — a bounded ring the instrumented threads push
  events into; when the consumer falls behind, *new* events are dropped
  and counted rather than blocking the application (the paper's
  instrumentation-perturbation concern, applied to streaming);
* :class:`StreamFlusher` — a daemon thread draining the ring into framed
  chunks (:mod:`repro.trace.framing`) on a sink;
* :class:`ChunkFileSink` / :class:`ServiceSink` — chunks appended to a
  ``.cls`` container on disk, or shipped to the analysis service's
  chunked-append endpoint with backpressure-aware retries;
* :func:`live_snapshots` — tail a growing trace file and yield rolling
  :class:`~repro.core.online.OnlineAnalyzer` snapshots (the ``live`` CLI
  subcommand renders these).
"""

from repro.stream.flusher import StreamFlusher
from repro.stream.live import live_snapshots, read_live_header
from repro.stream.ring import EventRing
from repro.stream.sink import ChunkFileSink, ChunkSink, ServiceSink

__all__ = [
    "EventRing",
    "StreamFlusher",
    "ChunkSink",
    "ChunkFileSink",
    "ServiceSink",
    "live_snapshots",
    "read_live_header",
]
